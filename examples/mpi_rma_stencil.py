#!/usr/bin/env python3
"""MPI RMA over RVMA: a fence-synchronized 1-D stencil with rollback.

Eight ranks run a ring stencil: every epoch each rank puts its halo
cells into both neighbours' windows, fences (the fence's count exchange
installs the hardware completion threshold — ``RVMA_Win_set_threshold``),
and computes.  After epoch 3 the application detects a (simulated) data
error and calls ``MPIX_Rewind`` to restore the previous epoch's window
state — the paper's §IV-F flow on top of MPI (§IV-E).

    python examples/mpi_rma_stencil.py
"""

from repro import Cluster
from repro.mpi import MpiRma
from repro.sim import spawn
from repro.units import fmt_time

N_RANKS = 8
CELLS = 64  # bytes of state per rank window
HALO = 8
EPOCHS = 4


def main() -> None:
    cluster = Cluster.build(
        n_nodes=N_RANKS, topology="dragonfly", nic_type="rvma", fidelity="flow"
    )
    rma = MpiRma(cluster, ring_depth=4)
    log: list[str] = []

    def rank_proc(rank: int):
        win = yield from rma.win_allocate(rank, size=CELLS, win_id=1)
        win.write_local(HALO, bytes([rank]) * (CELLS - 2 * HALO))
        left, right = (rank - 1) % N_RANKS, (rank + 1) % N_RANKS
        for epoch in range(EPOCHS):
            # Halo exchange: my edge cells into the neighbours' windows.
            edge = bytes([(rank + epoch) % 251 + 1]) * HALO
            yield from win.put(left, data=edge, disp=CELLS - HALO)
            yield from win.put(right, data=edge, disp=0)
            yield from win.fence()
            if rank == 0 and epoch == 2:
                log.append(
                    f"[{fmt_time(cluster.sim.now)}] rank 0: epoch {epoch} fenced; "
                    f"halos = {win.read(0, 4).hex()}.. / ..{win.read(CELLS - 4, 4).hex()}"
                )
            yield 500.0  # "compute"
        # --- simulated detection of a corrupted epoch on rank 0 --------
        if rank == 0:
            before = win.read(0, HALO)
            restored_epoch = yield from win.rewind(1)
            after = win.read(0, HALO)
            log.append(
                f"[{fmt_time(cluster.sim.now)}] rank 0: MPIX_Rewind -> epoch "
                f"{restored_epoch}; left halo {before.hex()} -> {after.hex()}"
            )
        yield from rma.comm.barrier(win.comm)

    procs = [spawn(cluster.sim, rank_proc(r), f"rank{r}") for r in range(N_RANKS)]
    cluster.sim.run()
    assert all(p.finished for p in procs)
    for line in log:
        print(line)
    print(f"{N_RANKS} ranks, {EPOCHS} fenced epochs + rollback in "
          f"{fmt_time(cluster.sim.now)} of simulated time")
    print("fence completion used hardware thresholds installed at the fence "
          "(RVMA_Win_set_threshold); no receiver polling, no address exchange.")


if __name__ == "__main__":
    main()
