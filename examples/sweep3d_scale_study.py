#!/usr/bin/env python3
"""Sweep3D at scale: the Fig 7 study, parameterized.

Runs the wavefront-sweep motif on a dragonfly across link rates and
node counts, RVMA vs RDMA, and prints the speedup grid.  The paper ran
8,192 nodes; pass ``--nodes 8192`` to match it (several minutes of
wall time at flow fidelity).

    python examples/sweep3d_scale_study.py [--nodes N]
"""

import argparse
import time

from repro import Cluster, RdmaProtocol, RvmaProtocol, Sweep3D
from repro.network import LINK_RATES, NetworkConfig, RoutingMode
from repro.units import fmt_time


def run_once(n_nodes: int, rate: str, nic: str) -> float:
    cluster = Cluster.build(
        n_nodes=n_nodes,
        topology="dragonfly",
        nic_type=nic,
        fidelity="flow",
        net_config=NetworkConfig(link_bw=LINK_RATES[rate], routing=RoutingMode.ADAPTIVE),
    )
    protocol = RvmaProtocol() if nic == "rvma" else RdmaProtocol()
    result = Sweep3D(cluster, protocol, kb=8, msg_bytes=2048, compute_ns=200.0).run()
    return result.elapsed


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--nodes", type=int, default=64,
                        help="ranks in the sweep (paper: 8192)")
    parser.add_argument("--rates", nargs="+", default=["100Gbps", "400Gbps", "2Tbps"])
    args = parser.parse_args()

    print(f"Sweep3D on an adaptively routed dragonfly, {args.nodes} nodes")
    print(f"{'link':>8}  {'rvma':>12}  {'rdma':>12}  {'speedup':>8}  wall")
    speedups = []
    for rate in args.rates:
        t0 = time.time()
        rvma_ns = run_once(args.nodes, rate, "rvma")
        rdma_ns = run_once(args.nodes, rate, "rdma")
        wall = time.time() - t0
        speedup = rdma_ns / rvma_ns
        speedups.append(speedup)
        print(f"{rate:>8}  {fmt_time(rvma_ns):>12}  {fmt_time(rdma_ns):>12}  "
              f"{speedup:7.2f}x  {wall:.1f}s")
    print(f"\naverage speedup {sum(speedups) / len(speedups):.2f}x "
          f"(paper: 3.56x average, 4.4x at 2 Tbps adaptive dragonfly)")


if __name__ == "__main__":
    main()
