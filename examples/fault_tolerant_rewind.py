#!/usr/bin/env python3
"""Fault-tolerant RDMA-like communication with hardware rewind (§IV-F).

A producer streams timestep snapshots to a consumer's mailbox.  Mid-way
through timestep 3, the producer node dies.  The consumer's in-progress
buffer is dangling, but the failure detector (heartbeat probes over the
reliability transport) suspects the dead producer within its timeout
and ``recover_on_failure`` automatically runs ``MPIX_Rewind``: the RVMA
NIC retains completed epochs, so the computation rolls back to the last
consistent timestep instead of hanging forever on a completion that
will never come.

    python examples/fault_tolerant_rewind.py
"""

from repro import Cluster, FaultInjector, ReliabilityConfig, RvmaApi
from repro.core import EpochJournal, recover_on_failure
from repro.nic.rvma import RvmaNicConfig
from repro.sim import spawn
from repro.units import fmt_time

MAILBOX = 0x51E9
STEP_BYTES = 8192
FAIL_DURING_STEP = 3


def snapshot(step: int) -> bytes:
    """A recognisable per-timestep payload (checksummable)."""
    return bytes((step * 41 + i) % 256 for i in range(STEP_BYTES))


def main() -> None:
    reliability = ReliabilityConfig(
        heartbeat_interval=10_000.0, min_suspicion_timeout=60_000.0
    )
    cluster = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="packet",
        nic_config=RvmaNicConfig(reliability=reliability),
    )
    producer_api = RvmaApi(cluster.node(0))
    consumer_api = RvmaApi(cluster.node(1))
    injector = FaultInjector(cluster)
    journal = EpochJournal()

    def producer():
        yield 2_000.0
        for step in range(FAIL_DURING_STEP):
            op = yield from producer_api.put(1, MAILBOX, data=snapshot(step))
            yield op.local_done
            print(f"[{fmt_time(cluster.sim.now)}] producer: timestep {step} sent")
            yield 5_000.0
        # Timestep 3 starts... and the node dies with half the data out.
        half = snapshot(FAIL_DURING_STEP)[: STEP_BYTES // 2]
        op = yield from producer_api.put(1, MAILBOX, data=half, size=len(half))
        yield op.local_done
        injector.fail_node_at(0, cluster.sim.now + 1.0)
        print(f"[{fmt_time(cluster.sim.now)}] producer: NODE FAILURE mid-timestep "
              f"{FAIL_DURING_STEP}")

    def consumer():
        win = yield from consumer_api.init_window(MAILBOX, epoch_threshold=STEP_BYTES)
        for _ in range(FAIL_DURING_STEP + 2):
            yield from consumer_api.post_buffer(win, size=STEP_BYTES)
        for step in range(FAIL_DURING_STEP):
            info = yield from consumer_api.wait_completion(win)
            ok = info.read_data() == snapshot(step)
            epoch = yield from consumer_api.win_get_epoch(win)
            journal.commit(step + 1, epoch - 1)
            print(f"[{fmt_time(cluster.sim.now)}] consumer: timestep {step} "
                  f"complete (epoch {epoch - 1}, intact={ok})")
        # Timestep 3 will never complete — but we don't sleep and hope:
        # the failure detector pings the producer, suspects it when the
        # pongs stop, and recovery fires the moment suspicion does.
        recovery = yield from recover_on_failure(consumer_api, win, peer=0)
        failure = recovery.failure
        print(f"[{fmt_time(cluster.sim.now)}] consumer: peer {failure.peer} "
              f"suspected at {fmt_time(failure.time)} ({failure.reason}) — "
              f"initiating recovery")

        # --- recovery ran automatically: last consistent epoch + rewind
        target_step = journal.rollback_target(recovery.consistent_epoch)
        rewound = recovery.rewound
        ok = rewound.data == snapshot(target_step - 1)
        print(
            f"[{fmt_time(cluster.sim.now)}] consumer: MPIX_Rewind -> epoch "
            f"{rewound.epoch} ({rewound.length} bytes at {rewound.head_addr:#x}) "
            f"in {fmt_time(recovery.recovery_ns)}"
        )
        print(
            f"    rollback to timestep {target_step - 1}: data intact={ok} — "
            f"computation resumes from the last completed state"
        )

    spawn(cluster.sim, producer(), "producer")
    spawn(cluster.sim, consumer(), "consumer")
    cluster.sim.run()
    print(f"done at {fmt_time(cluster.sim.now)}; "
          f"node 0 dead={injector.node_is_dead(0)}")


if __name__ == "__main__":
    main()
