#!/usr/bin/env python3
"""Fault-tolerant RDMA-like communication with hardware rewind (§IV-F).

A producer streams timestep snapshots to a consumer's mailbox.  Mid-way
through timestep 3, the producer node dies.  The consumer's in-progress
buffer is dangling, but the RVMA NIC retains completed epochs — so
``MPIX_Rewind`` recovers the last consistent timestep and the
computation can roll back instead of aborting.

    python examples/fault_tolerant_rewind.py
"""

from repro import Cluster, FaultInjector, RvmaApi, mpix_rewind
from repro.core import EpochJournal, latest_consistent_epoch
from repro.sim import spawn
from repro.units import fmt_time

MAILBOX = 0x51E9
STEP_BYTES = 8192
FAIL_DURING_STEP = 3


def snapshot(step: int) -> bytes:
    """A recognisable per-timestep payload (checksummable)."""
    return bytes((step * 41 + i) % 256 for i in range(STEP_BYTES))


def main() -> None:
    cluster = Cluster.build(n_nodes=2, topology="star", nic_type="rvma", fidelity="packet")
    producer_api = RvmaApi(cluster.node(0))
    consumer_api = RvmaApi(cluster.node(1))
    injector = FaultInjector(cluster)
    journal = EpochJournal()

    def producer():
        yield 2_000.0
        for step in range(FAIL_DURING_STEP):
            op = yield from producer_api.put(1, MAILBOX, data=snapshot(step))
            yield op.local_done
            print(f"[{fmt_time(cluster.sim.now)}] producer: timestep {step} sent")
            yield 5_000.0
        # Timestep 3 starts... and the node dies with half the data out.
        half = snapshot(FAIL_DURING_STEP)[: STEP_BYTES // 2]
        op = yield from producer_api.put(1, MAILBOX, data=half, size=len(half))
        yield op.local_done
        injector.fail_node_at(0, cluster.sim.now + 1.0)
        print(f"[{fmt_time(cluster.sim.now)}] producer: NODE FAILURE mid-timestep "
              f"{FAIL_DURING_STEP}")

    def consumer():
        win = yield from consumer_api.init_window(MAILBOX, epoch_threshold=STEP_BYTES)
        for _ in range(FAIL_DURING_STEP + 2):
            yield from consumer_api.post_buffer(win, size=STEP_BYTES)
        for step in range(FAIL_DURING_STEP):
            info = yield from consumer_api.wait_completion(win)
            ok = info.read_data() == snapshot(step)
            epoch = yield from consumer_api.win_get_epoch(win)
            journal.commit(step + 1, epoch - 1)
            print(f"[{fmt_time(cluster.sim.now)}] consumer: timestep {step} "
                  f"complete (epoch {epoch - 1}, intact={ok})")
        # Waiting on timestep 3... which will never complete.
        yield 300_000.0
        print(f"[{fmt_time(cluster.sim.now)}] consumer: timestep "
              f"{FAIL_DURING_STEP} never completed — initiating recovery")

        # --- recovery: ask the NIC for the last consistent epoch ------
        completed = yield from latest_consistent_epoch(consumer_api, win)
        target_step = journal.rollback_target(completed)
        rewound = yield from mpix_rewind(consumer_api, win, 1)
        ok = rewound.data == snapshot(target_step - 1)
        print(
            f"[{fmt_time(cluster.sim.now)}] consumer: MPIX_Rewind -> epoch "
            f"{rewound.epoch} ({rewound.length} bytes at {rewound.head_addr:#x})"
        )
        print(
            f"    rollback to timestep {target_step - 1}: data intact={ok} — "
            f"computation resumes from the last completed state"
        )

    spawn(cluster.sim, producer(), "producer")
    spawn(cluster.sim, consumer(), "consumer")
    cluster.sim.run()
    print(f"done at {fmt_time(cluster.sim.now)}; "
          f"node 0 dead={injector.node_is_dead(0)}")


if __name__ == "__main__":
    main()
