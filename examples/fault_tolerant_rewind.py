#!/usr/bin/env python3
"""Fault-tolerant RDMA-like communication: the full crash-restart cycle.

Act 1 — crash, restart, rejoin.  A producer streams timestep snapshots
to a consumer's mailbox.  Mid-stream the *consumer's* NIC crashes (LUT,
buckets, sequence state all destroyed) and restarts a while later.  The
recovery stack — host-side journals, periodic quiescent checkpoints,
the rejoin handshake, peer replay — rebuilds the window and replays the
lost traffic so the consumer's ``wait_completion`` loop never notices:
every timestep still arrives byte-identical, watched by the runtime
invariant auditor.

Act 2 — detect, rewind, converge.  Later the *producer* node dies for
good, mid-timestep.  The failure detector suspects it when the
heartbeats stop, ``recover_on_failure`` automatically runs
``MPIX_Rewind`` back to the last hardware-complete epoch, and a
``coordinated_rewind`` negotiates the recovery line with the (simulated)
surviving peers — everyone converges on the minimum completed epoch.

    python examples/fault_tolerant_rewind.py
"""

from repro import Cluster, FaultInjector, ReliabilityConfig, RvmaApi
from repro.core import EpochJournal, coordinated_rewind, recover_on_failure
from repro.nic.rvma import RvmaNicConfig
from repro.recovery import InvariantAuditor, RecoveryConfig, RecoveryManager
from repro.sim import spawn
from repro.units import fmt_time

MAILBOX = 0x51E9
STEP_BYTES = 8192
STEPS_BEFORE_DEATH = 6
CRASH_AT = 22_000.0
RESTART_AT = 47_000.0


def snapshot(step: int) -> bytes:
    """A recognisable per-timestep payload (checksummable)."""
    return bytes((step * 41 + i) % 256 for i in range(STEP_BYTES))


def main() -> None:
    reliability = ReliabilityConfig(
        heartbeat_interval=10_000.0,
        min_suspicion_timeout=60_000.0,
        retransmit_timeout=8_000.0,
        max_backoff=50_000.0,
        max_retries=10,
    )
    cluster = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="packet",
        nic_config=RvmaNicConfig(reliability=reliability),
    )
    auditor = InvariantAuditor().attach(cluster)
    manager = RecoveryManager(
        cluster,
        RecoveryConfig(checkpoint_interval_ns=5_000.0, horizon_ns=400_000.0),
    ).start()
    producer_api = RvmaApi(cluster.node(0))
    consumer_api = RvmaApi(cluster.node(1))
    injector = FaultInjector(cluster)
    manager.arm(injector)
    # Act 1's fault: the consumer NIC dies mid-stream and comes back.
    injector.crash_restart(1, CRASH_AT, RESTART_AT)
    journal = EpochJournal()

    def producer():
        yield 2_000.0
        for step in range(STEPS_BEFORE_DEATH):
            op = yield from producer_api.put(1, MAILBOX, data=snapshot(step))
            yield op.local_done
            print(f"[{fmt_time(cluster.sim.now)}] producer: timestep {step} sent")
            yield 5_000.0
        # Outlive the consumer's outage: steps sent into the dead window
        # sit in the retransmit queue and the send journal, and replay
        # when the consumer rejoins — which needs this node alive.
        yield RESTART_AT + 30_000.0 - cluster.sim.now
        # Act 2's fault: the next timestep starts... and the producer
        # node dies with half the data out.
        half = snapshot(STEPS_BEFORE_DEATH)[: STEP_BYTES // 2]
        op = yield from producer_api.put(1, MAILBOX, data=half, size=len(half))
        yield op.local_done
        injector.fail_node_at(0, cluster.sim.now + 1.0)
        print(f"[{fmt_time(cluster.sim.now)}] producer: NODE FAILURE mid-timestep "
              f"{STEPS_BEFORE_DEATH}")

    def consumer():
        win = yield from consumer_api.init_window(MAILBOX, epoch_threshold=STEP_BYTES)
        for _ in range(STEPS_BEFORE_DEATH + 2):
            yield from consumer_api.post_buffer(win, size=STEP_BYTES)
        for step in range(STEPS_BEFORE_DEATH):
            info = yield from consumer_api.wait_completion(win)
            ok = info.read_data() == snapshot(step)
            epoch = yield from consumer_api.win_get_epoch(win)
            journal.commit(step + 1, epoch - 1)
            print(f"[{fmt_time(cluster.sim.now)}] consumer: timestep {step} "
                  f"complete (epoch {epoch - 1}, intact={ok})")
        # The next timestep will never complete — but we don't sleep and
        # hope: the failure detector pings the producer, suspects it when
        # the pongs stop, and recovery fires the moment suspicion does.
        recovery = yield from recover_on_failure(consumer_api, win, peer=0)
        failure = recovery.failure
        print(f"[{fmt_time(cluster.sim.now)}] consumer: peer {failure.peer} "
              f"suspected at {fmt_time(failure.time)} ({failure.reason}) — "
              f"initiating recovery")

        # --- recovery ran automatically: last consistent epoch + rewind
        target_step = journal.rollback_target(recovery.consistent_epoch)
        rewound = recovery.rewound
        ok = rewound.data == snapshot(target_step - 1)
        print(
            f"[{fmt_time(cluster.sim.now)}] consumer: MPIX_Rewind -> epoch "
            f"{rewound.epoch} ({rewound.length} bytes at {rewound.head_addr:#x}) "
            f"in {fmt_time(recovery.recovery_ns)}"
        )
        print(
            f"    rollback to timestep {target_step - 1}: data intact={ok} — "
            f"computation resumes from the last completed state"
        )

        # --- cluster-wide convergence: negotiate the recovery line with
        # the surviving peers' views (here: a straggler one epoch back)
        outcome = yield from coordinated_rewind(
            consumer_api, win, peer_epochs=[rewound.epoch - 1]
        )
        print(
            f"[{fmt_time(cluster.sim.now)}] consumer: coordinated rewind — local "
            f"epoch {outcome.local_epoch}, group minimum {outcome.target_epoch}, "
            f"stepped back {outcome.epochs_back} (converged={outcome.ok})"
        )

    spawn(cluster.sim, producer(), "producer")
    spawn(cluster.sim, consumer(), "consumer")
    cluster.sim.run()

    # --- Act 1's report: the crash-restart really happened and healed.
    nic1 = cluster.node(1).nic
    rejoin = manager.report.rejoins[0]
    print(
        f"consumer crash-restart: incarnation {nic1.incarnation}, "
        f"{rejoin.mailboxes_restored} mailbox(es) restored, "
        f"{rejoin.peers_greeted} peer(s) greeted, "
        f"replay holes: {len(manager.report.replay_holes)}"
    )
    audit = auditor.report()
    print(
        f"auditor: {audit['checked']['placements']} placements checked, "
        f"violations={len(audit['violations'])} (clean={audit['ok']})"
    )
    print(f"done at {fmt_time(cluster.sim.now)}; "
          f"node 0 dead={injector.node_is_dead(0)}")


if __name__ == "__main__":
    main()
