#!/usr/bin/env python3
"""Many-to-one server: RVMA's receiver-managed resources (paper §I).

N clients send requests to one server.  With RDMA the server must
pre-negotiate and *dedicate* a registered region to every client for an
unbounded time; with RVMA all clients target one mailbox whose bucket
the server replenishes at its own pace.  This example quantifies both
the time and the resource footprint.

    python examples/incast_server.py [--clients N]
"""

import argparse

from repro import Cluster, Incast, RdmaProtocol, RvmaProtocol
from repro.motifs.incast import BUCKET_DEPTH
from repro.units import fmt_time


def run(nic: str, n_clients: int, msgs: int):
    cluster = Cluster.build(
        n_nodes=n_clients + 1, topology="dragonfly", nic_type=nic, fidelity="flow"
    )
    protocol = RvmaProtocol() if nic == "rvma" else RdmaProtocol()
    motif = Incast(cluster, protocol, msgs_per_client=msgs, msg_bytes=4096)
    result = motif.run()
    retries = sum(
        v for k, v in cluster.sim.stats.counters().items() if "put_retries" in k
    )
    return result, retries


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--msgs", type=int, default=4)
    args = parser.parse_args()

    print(f"{args.clients} clients x {args.msgs} messages of 4 KiB -> one server\n")
    rvma, rvma_retries = run("rvma", args.clients, args.msgs)
    rdma, _ = run("rdma", args.clients, args.msgs)

    print("                         RVMA                RDMA")
    print(f"setup time       {fmt_time(rvma.setup_elapsed):>12}  "
          f"{fmt_time(rdma.setup_elapsed):>16}")
    print(f"data phase       {fmt_time(rvma.elapsed):>12}  "
          f"{fmt_time(rdma.elapsed):>16}")
    print(f"server buffers   {rvma.extras['server_buffers']:>12}  "
          f"{rdma.extras['server_buffers']:>16}")
    print(f"registered MRs   {rvma.extras['server_regions']:>12}  "
          f"{rdma.extras['server_regions']:>16}")
    print()
    print(f"RVMA serves {args.clients} clients from a shared bucket of "
          f"{BUCKET_DEPTH} buffers;")
    print(f"overflow puts were NACKed and retried {rvma_retries} times — "
          f"the *receiver* stayed in control throughout.")
    print(f"RDMA needed a dedicated region + handshake per client "
          f"({rdma.extras['server_regions']} regions), "
          f"{rdma.setup_elapsed / max(rvma.setup_elapsed, 1):.1f}x the setup time.")


if __name__ == "__main__":
    main()
