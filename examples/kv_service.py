#!/usr/bin/env python3
"""A sharded key-value service on RVMA mailboxes (paper §IV-B, extended).

Three server nodes split a hashed keyspace into shards, one
receiver-managed request stream per shard.  Eight clients on four nodes
drive a Zipf-skewed mixed workload; replies come back batched to
per-client completion mailboxes.  Nobody negotiates buffers with
anybody: clients address shards by hash, servers replenish their own
buckets, and the reliability transport paces writers that outrun a
shard (the NO_BUFFER hold path) without a single control round-trip.

    python examples/kv_service.py [--ops N] [--zipf S] [--chaos]
"""

import argparse

from repro.experiments.kv_churn import run_kv_service
from repro.services import WorkloadConfig


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--ops", type=int, default=320)
    parser.add_argument("--keys", type=int, default=128)
    parser.add_argument("--zipf", type=float, default=0.9)
    parser.add_argument("--chaos", action="store_true",
                        help="add link flaps + light loss under the workload")
    args = parser.parse_args()

    n_servers, n_client_nodes, per_node = 3, 4, 2
    workload = WorkloadConfig(
        n_ops=args.ops, n_keys=args.keys, value_bytes=64,
        zipf_s=args.zipf, mode="closed", batch=4,
    )
    print(f"{n_servers} server nodes x 2 shards, "
          f"{n_client_nodes * per_node} clients on {n_client_nodes} nodes, "
          f"{args.ops} ops (Zipf s={args.zipf})"
          + (", chaos on" if args.chaos else ""))
    out = run_kv_service(
        seed=7, n_server_nodes=n_servers, shards_per_node=2,
        n_client_nodes=n_client_nodes, clients_per_node=per_node,
        workload=workload, chaos=args.chaos,
        drop_prob=0.02 if args.chaos else 0.0,
    )

    print()
    print("latency (client-observed, issue -> decoded reply)")
    print(f"  p50   {out.p50_ns:>10,.0f} ns")
    print(f"  p99   {out.p99_ns:>10,.0f} ns")
    print()
    print(f"requests served     {out.requests:>8}")
    print(f"replies batched     {out.replies:>8}  "
          f"(mean {out.reply_batch_mean:.2f} per reply put)")
    print(f"epoch flushes       {out.flushes:>8}")
    print(f"retransmits         {out.retransmits:>8}")
    print(f"paced deliveries    {out.rx_paced:>8}")
    print()
    ok = out.invariants_ok
    print(f"completed {out.ops_completed}/{out.ops_issued} ops, "
          f"invariants ok={ok}"
          + (f"  ({out.error})" if out.error else ""))
    print("every client addressed shards by key hash alone — no per-client "
          "server state, no buffer handshakes.")
    raise SystemExit(0 if ok else 1)


if __name__ == "__main__":
    main()
