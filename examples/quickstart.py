#!/usr/bin/env python3
"""Quickstart: one RVMA put, end to end.

Builds a two-node simulated system, posts a receive buffer to a mailbox
on node 1, puts 4 KiB from node 0 — no handshake, no remote addresses —
and waits on the completion pointer.  Run:

    python examples/quickstart.py
"""

from repro import Cluster, EpochType, RvmaApi
from repro.sim import spawn
from repro.units import fmt_time

MAILBOX = 0xC0DE  # any 64-bit value the peers agree on — not an address!
SIZE = 4096


def main() -> None:
    cluster = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="packet"
    )
    sender_api = RvmaApi(cluster.node(0))
    receiver_api = RvmaApi(cluster.node(1))
    payload = bytes(range(256)) * (SIZE // 256)

    def receiver():
        # 1. Create a window on the mailbox: threshold = SIZE bytes.
        win = yield from receiver_api.init_window(
            MAILBOX, epoch_threshold=SIZE, epoch_type=EpochType.EPOCH_BYTES
        )
        # 2. Post a buffer into the mailbox's bucket.
        yield from receiver_api.post_buffer(win, size=SIZE)
        print(f"[{fmt_time(cluster.sim.now)}] receiver: buffer armed")
        # 3. Sleep on the buffer's own completion pointer (MWait).
        info = yield from receiver_api.wait_completion(win)
        print(
            f"[{fmt_time(cluster.sim.now)}] receiver: epoch complete — "
            f"{info.length} bytes at {info.head_addr:#x}, "
            f"intact={info.read_data() == payload}"
        )

    def sender():
        yield 1_000.0  # give the receiver a moment to arm
        t0 = cluster.sim.now
        # One call: target node + mailbox. No rkey, no raw pointer,
        # no address-exchange round trip.
        op = yield from sender_api.put(1, MAILBOX, data=payload)
        yield op.local_done
        print(
            f"[{fmt_time(cluster.sim.now)}] sender: payload on the wire "
            f"({fmt_time(cluster.sim.now - t0)} after posting)"
        )

    spawn(cluster.sim, receiver(), "receiver")
    spawn(cluster.sim, sender(), "sender")
    cluster.sim.run()
    print(f"simulation drained at {fmt_time(cluster.sim.now)}")


if __name__ == "__main__":
    main()
