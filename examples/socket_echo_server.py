#!/usr/bin/env python3
"""Sockets over RVMA: a concurrent echo server (paper §IV-B in action).

Three clients connect to one port with a TCP-like three-way handshake,
stream ragged requests, and read echoed responses — all of it carried
by Receiver-Managed RVMA windows with zero sockets-to-RDMA translation
machinery: the listener mailbox absorbs hellos at the server's pace,
each direction of each connection is one managed stream, and partial
tails flush with ``RVMA_Win_inc_epoch``.

    python examples/socket_echo_server.py
"""

from repro import Cluster, RvmaApi
from repro.network import NetworkConfig, RoutingMode
from repro.sim import spawn
from repro.sockets import RvmaListener, connect
from repro.units import fmt_time

PORT = 7  # the echo service, naturally
N_CLIENTS = 3
CHUNK = 64


def main() -> None:
    cluster = Cluster.build(
        n_nodes=N_CLIENTS + 1, topology="star", nic_type="rvma", fidelity="packet",
        net_config=NetworkConfig(routing=RoutingMode.STATIC),
    )
    server_api = RvmaApi(cluster.node(0))

    def server():
        listener = yield from RvmaListener(
            server_api, PORT, chunk_size=CHUNK, backlog=N_CLIENTS
        ).listen()
        print(f"[{fmt_time(cluster.sim.now)}] server: listening on port {PORT}")
        for _ in range(N_CLIENTS):
            conn = yield from listener.accept()
            print(f"[{fmt_time(cluster.sim.now)}] server: accepted node "
                  f"{conn.peer_node} (conn {conn.conn_id})")
            request = yield from conn.recv(CHUNK)
            yield from conn.send(request.upper())

    def client(node: int):
        yield 1_500.0 * node
        api = RvmaApi(cluster.node(node))
        conn = yield from connect(api, server_node=0, port=PORT, chunk_size=CHUNK)
        message = f"hello from node {node}: the quick brown fox".encode()
        yield from conn.send(message.ljust(CHUNK, b"."))
        reply = yield from conn.recv(CHUNK)
        print(f"[{fmt_time(cluster.sim.now)}] client {node}: "
              f"{reply.rstrip(b'.').decode()}")
        assert reply == message.ljust(CHUNK, b".").upper()

    spawn(cluster.sim, server(), "server")
    for n in range(1, N_CLIENTS + 1):
        spawn(cluster.sim, client(n), f"client{n}")
    cluster.sim.run()
    print(f"{N_CLIENTS} connections served in {fmt_time(cluster.sim.now)} "
          f"of simulated time — no registration, no rkeys, no per-client "
          f"dedicated regions.")


if __name__ == "__main__":
    main()
