#!/usr/bin/env python3
"""Receiver-Managed RVMA: sockets-style streaming (paper §IV-B).

The client writes arbitrary-sized pieces; the NIC appends bytes across
the server's chunk buffers, completing each chunk as it fills — no
offsets, no per-message coordination, and the unconsumed tail can be
flushed early.  This is the "sockets over RVMA with minimal middleware"
mode the paper describes.

    python examples/sockets_streaming.py
"""

from repro import Cluster, RvmaApi, StreamClient, StreamServer
from repro.network import NetworkConfig, RoutingMode
from repro.sim import spawn
from repro.units import fmt_time

MAILBOX = 0x50CC
CHUNK = 64

REQUEST = (
    b"GET /rvma HTTP/1.1\r\nHost: example.org\r\n"
    b"User-Agent: rvma-streaming-demo\r\nAccept: */*\r\n\r\n"
    b"And a body that spills across several chunk buffers to show the "
    b"NIC rolling the stream from one posted buffer into the next."
)


def main() -> None:
    # Streams need in-order placement: use static routing, as deployed
    # sockets-over-fabric systems do.
    cluster = Cluster.build(
        n_nodes=2, topology="star", nic_type="rvma", fidelity="packet",
        net_config=NetworkConfig(routing=RoutingMode.STATIC),
    )
    server = StreamServer(RvmaApi(cluster.node(1)), MAILBOX, chunk_size=CHUNK, n_chunks=4)
    client = StreamClient(RvmaApi(cluster.node(0)), server_node=1, mailbox=MAILBOX)

    def server_proc():
        yield from server.open()
        print(f"[{fmt_time(cluster.sim.now)}] server: listening on mailbox "
              f"{MAILBOX:#x} ({CHUNK}B chunks)")
        received = bytearray()
        full_chunks = len(REQUEST) // CHUNK
        for i in range(full_chunks):
            chunk = yield from server.recv()
            received.extend(chunk)
            print(f"[{fmt_time(cluster.sim.now)}] server: chunk {i}: "
                  f"{chunk[:24]!r}...")
        # The request does not end on a chunk boundary: flush the tail.
        yield from server.flush()
        info = yield from server.api.wait_completion(server.win)
        received.extend(info.read_data())
        print(f"[{fmt_time(cluster.sim.now)}] server: flushed tail of "
              f"{info.length} bytes")
        assert bytes(received) == REQUEST, "stream corrupted!"
        print(f"    stream of {len(received)} bytes reassembled byte-exact")

    def client_proc():
        yield 3_000.0
        # Write in awkward, unaligned pieces — like a real socket app.
        pieces = [REQUEST[:10], REQUEST[10:37], REQUEST[37:150], REQUEST[150:]]
        for piece in pieces:
            op = yield from client.send(piece)
            yield op.local_done
        print(f"[{fmt_time(cluster.sim.now)}] client: wrote "
              f"{client.bytes_sent} bytes in {len(pieces)} ragged writes")

    spawn(cluster.sim, server_proc(), "server")
    spawn(cluster.sim, client_proc(), "client")
    cluster.sim.run()
    print(f"done at {fmt_time(cluster.sim.now)}")


if __name__ == "__main__":
    main()
