#!/usr/bin/env python3
"""Why adaptive routing breaks RDMA completion — and not RVMA (§IV-D).

Three experiments on the same congested, adaptively routed fat-tree:

1. RDMA with last-byte polling: the poller fires early and the
   application reads a corrupted buffer.
2. RDMA done correctly (write + ack fence + send/recv): correct, but
   pays the extra round trips the paper's Fig 4 quantifies.
3. RVMA: threshold completion is both correct *and* fast on the very
   same reordering network.

    python examples/adaptive_routing_study.py
"""

from repro import Cluster, CompletionMode, RvmaApi, VerbsEndpoint
from repro.memory.buffer import HostBuffer
from repro.memory.mwait import POLL
from repro.network import MTU, NetworkConfig, RoutingMode
from repro.rdma import client_request_region, server_serve_region
from repro.sim import spawn
from repro.units import fmt_time

SIZE = MTU * 12


def payload() -> bytes:
    data = bytearray((i * 7 + 3) % 251 for i in range(SIZE))
    data[-1] = 0xEE
    return bytes(data)


def congest(cluster) -> None:
    """Background flows that load some up-paths (realistic traffic)."""
    for src in range(1, 5):
        cluster.fabric.send(src, 14, MTU * 8)


def rdma_last_byte() -> None:
    cluster = Cluster.build(
        n_nodes=16, topology="fattree", nic_type="rdma", fidelity="packet",
        net_config=NetworkConfig(routing=RoutingMode.ADAPTIVE),
    )
    v0, v1 = VerbsEndpoint(cluster.node(0)), VerbsEndpoint(cluster.node(15))
    data = payload()
    out = {}

    def server():
        landing, _ = yield from server_serve_region(v1, client=0)
        yield v1.node.waiter.wait_for_byte(landing.addr + SIZE - 1, 0xEE, POLL)
        out["t"] = cluster.sim.now
        out["snapshot"] = landing.read(0, SIZE)

    def client():
        hs = yield from client_request_region(v0, server=15, size=SIZE)
        congest(cluster)
        out["t0"] = cluster.sim.now
        op = yield from v0.rdma_write(
            15, hs.region, SIZE, data, mode=RoutingMode.ADAPTIVE, signaled=False
        )
        yield op.done

    spawn(cluster.sim, server(), "s")
    spawn(cluster.sim, client(), "c")
    cluster.sim.run()
    bad = sum(1 for a, b in zip(out["snapshot"], data) if a != b)
    print(f"1) RDMA last-byte poll  : 'complete' after "
          f"{fmt_time(out['t'] - out['t0'])} — but {bad} bytes WRONG "
          f"({'CORRUPTED' if bad else 'ok'})")


def rdma_send_recv() -> float:
    cluster = Cluster.build(
        n_nodes=16, topology="fattree", nic_type="rdma", fidelity="packet",
        net_config=NetworkConfig(routing=RoutingMode.ADAPTIVE),
    )
    v0, v1 = VerbsEndpoint(cluster.node(0)), VerbsEndpoint(cluster.node(15))
    data = payload()
    out = {}

    def server():
        landing, _ = yield from server_serve_region(v1, client=0)
        ctl = HostBuffer.allocate(cluster.node(15).memory, 64)
        yield from v1.post_recv(ctl, wr_id=1, tag=1)
        yield from v1.wait_write_completion(
            landing, CompletionMode.SEND_RECV, RoutingMode.ADAPTIVE, ctl, wr_id=1
        )
        out["t"] = cluster.sim.now
        out["ok"] = landing.read(0, SIZE) == data

    def client():
        hs = yield from client_request_region(v0, server=15, size=SIZE)
        congest(cluster)
        out["t0"] = cluster.sim.now
        yield from v0.write_with_completion(
            15, hs.region, SIZE, data, mode=RoutingMode.ADAPTIVE, wr_id=1
        )

    spawn(cluster.sim, server(), "s")
    spawn(cluster.sim, client(), "c")
    cluster.sim.run()
    lat = out["t"] - out["t0"]
    print(f"2) RDMA + send/recv     : complete after {fmt_time(lat)} — "
          f"data intact={out['ok']} (spec-compliant, but slow)")
    return lat


def rvma() -> float:
    cluster = Cluster.build(
        n_nodes=16, topology="fattree", nic_type="rvma", fidelity="packet",
        net_config=NetworkConfig(routing=RoutingMode.ADAPTIVE),
    )
    api0, api1 = RvmaApi(cluster.node(0)), RvmaApi(cluster.node(15))
    data = payload()
    out = {}

    def receiver():
        win = yield from api1.init_window(0x7, epoch_threshold=SIZE)
        yield from api1.post_buffer(win, size=SIZE)
        info = yield from api1.wait_completion(win)
        out["t"] = cluster.sim.now
        out["ok"] = info.read_data() == data

    def sender():
        yield 2_000.0
        congest(cluster)
        out["t0"] = cluster.sim.now
        op = yield from api0.put(15, 0x7, data=data)
        yield op.local_done

    spawn(cluster.sim, receiver(), "r")
    spawn(cluster.sim, sender(), "s")
    cluster.sim.run()
    lat = out["t"] - out["t0"]
    print(f"3) RVMA threshold       : complete after {fmt_time(lat)} — "
          f"data intact={out['ok']} (correct AND fast)")
    return lat


def main() -> None:
    print(f"48 KiB transfer over a congested adaptive fat-tree "
          f"({SIZE // MTU} packets in flight):\n")
    rdma_last_byte()
    rdma_lat = rdma_send_recv()
    rvma_lat = rvma()
    print(f"\nRVMA is {rdma_lat / rvma_lat:.2f}x faster than correct RDMA "
          f"on this network — with no corruption risk.")


if __name__ == "__main__":
    main()
