#!/usr/bin/env python3
"""Regenerate every paper figure as an SVG under docs/figures/.

    python tools/render_figures.py [--nodes N]

Runs the same experiment drivers as `rvma-experiments` and renders the
results with the dependency-free SVG chart module.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.experiments import run_fig4, run_fig5, run_fig6, run_fig7, run_fig8
from repro.experiments.svgcharts import svg_for_result

OUT_DIR = Path(__file__).resolve().parents[1] / "docs" / "figures"


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--nodes", type=int, default=64)
    args = parser.parse_args()
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    runners = {
        "fig4": lambda: run_fig4(),
        "fig5": lambda: run_fig5(),
        "fig6": lambda: run_fig6(),
        "fig7": lambda: run_fig7(n_nodes=args.nodes),
        "fig8": lambda: run_fig8(n_nodes=args.nodes),
    }
    for name, runner in runners.items():
        t0 = time.time()
        result = runner()
        svg = svg_for_result(result)
        path = OUT_DIR / f"{name}.svg"
        path.write_text(svg, encoding="utf-8")
        print(f"{path} ({time.time() - t0:.1f}s)")


if __name__ == "__main__":
    main()
