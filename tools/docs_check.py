#!/usr/bin/env python3
"""Documentation drift gate (``make docs-check``).

Seven checks, all fatal on failure:

1. **API coverage** — every public symbol exported from
   ``repro.__init__`` (its ``__all__``) and every public method of
   :class:`repro.core.api.RvmaApi` must appear by name in
   ``docs/API.md``.
2. **Metric catalog coverage** — every canonical metric declared in
   :data:`repro.observability.metrics.CATALOG` must be documented by
   name in ``docs/OBSERVABILITY.md`` (and vice versa: names in the doc's
   catalog table that the code no longer declares are flagged).
3. **Fabric metric rows** — the ``fabric.*`` rows of the
   ``docs/OBSERVABILITY.md`` catalog table must carry the same
   kind/unit the CATALOG declares (the fabric rows are the ones the
   vectorized fast path must reproduce bit-for-bit, so their documented
   shape is load-bearing for the conformance suite).
4. **Active metric rows** — same contract for the ``nic.rvma.active.*``
   rows: the active-mailbox conformance suites pin handler behaviour
   against these counters, so kind/unit drift is fatal.
5. **Workload metric rows** — same contract for the
   ``workload.trace.*`` rows: the trace-replay oracles treat these
   counters as the offered-load ground truth (rows replayed == trace
   rows, drops == 0), so kind/unit drift is fatal.
6. **Bench cell coverage** — every cell registered in
   :data:`repro.experiments.bench.SUITES` must appear in the
   ``docs/PERFORMANCE.md`` cell table, and every cell the table names
   must still exist in the registry.
7. **Live report coverage** — one small chaos run with observability on
   must produce a report whose metric groups include
   nic/transport/recovery/fabric, with >= 3 span categories, and with
   every reported metric declared in the CATALOG (hence documented, by
   check 2).

Run from the repo root:

    PYTHONPATH=src python tools/docs_check.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
API_MD = ROOT / "docs" / "API.md"
OBS_MD = ROOT / "docs" / "OBSERVABILITY.md"
PERF_MD = ROOT / "docs" / "PERFORMANCE.md"


def check_api_coverage() -> list[str]:
    import repro
    from repro.core.api import RvmaApi

    text = API_MD.read_text(encoding="utf-8")
    problems = []
    for symbol in sorted(repro.__all__):
        if symbol == "__version__":
            continue
        if not re.search(rf"`{re.escape(symbol)}[`(.]", text):
            problems.append(f"docs/API.md: missing public symbol `{symbol}`")
    for name in sorted(vars(RvmaApi)):
        if name.startswith("_") or not callable(getattr(RvmaApi, name)):
            continue
        if not re.search(rf"`{re.escape(name)}[`(]", text):
            problems.append(f"docs/API.md: missing RvmaApi method `{name}`")
    return problems


def check_metric_catalog() -> list[str]:
    from repro.observability.metrics import CATALOG

    text = OBS_MD.read_text(encoding="utf-8") if OBS_MD.exists() else ""
    problems = []
    if not text:
        return ["docs/OBSERVABILITY.md: file missing"]
    documented = set(re.findall(r"`([a-z_*.]+\.[a-z_*.]+)`", text))
    for name in sorted(CATALOG):
        if name not in documented:
            problems.append(f"docs/OBSERVABILITY.md: missing metric `{name}`")
    # Stale names: dotted metric-looking entries in the doc's catalog
    # tables that the code no longer declares.
    catalog_section = text.split("## Span categories")[0]
    for name in sorted(set(re.findall(r"\| `([a-z_*.]+\.[a-z_*.]+)` \|", catalog_section))):
        if name not in CATALOG:
            problems.append(
                f"docs/OBSERVABILITY.md: stale metric `{name}` (not in CATALOG)"
            )
    return problems


def check_fabric_metric_rows() -> list[str]:
    from repro.observability.metrics import CATALOG

    text = OBS_MD.read_text(encoding="utf-8") if OBS_MD.exists() else ""
    problems = []
    rows = {
        name: (kind, unit)
        for name, kind, unit in re.findall(
            r"\| `(fabric\.[a-z_.]+)` \| (\w+) \| (\w+) \|", text
        )
    }
    for name, spec in sorted(CATALOG.items()):
        if not name.startswith("fabric."):
            continue
        row = rows.get(name)
        if row is None:
            problems.append(
                f"docs/OBSERVABILITY.md: no catalog-table row for `{name}`"
            )
        elif row != (spec.kind, spec.unit):
            problems.append(
                f"docs/OBSERVABILITY.md: `{name}` documented as "
                f"{row[0]}/{row[1]}, CATALOG declares {spec.kind}/{spec.unit}"
            )
    return problems


def check_active_metric_rows() -> list[str]:
    """The ``nic.rvma.active.*`` rows mirror check 3: the active-mailbox
    conformance suites pin handler behaviour against these counters, so
    their documented kind/unit must match the CATALOG exactly."""
    from repro.observability.metrics import CATALOG

    text = OBS_MD.read_text(encoding="utf-8") if OBS_MD.exists() else ""
    problems = []
    rows = {
        name: (kind, unit)
        for name, kind, unit in re.findall(
            r"\| `(nic\.rvma\.active\.[a-z_.]+)` \| (\w+) \| (\w+) \|", text
        )
    }
    for name, spec in sorted(CATALOG.items()):
        if not name.startswith("nic.rvma.active."):
            continue
        row = rows.get(name)
        if row is None:
            problems.append(
                f"docs/OBSERVABILITY.md: no catalog-table row for `{name}`"
            )
        elif row != (spec.kind, spec.unit):
            problems.append(
                f"docs/OBSERVABILITY.md: `{name}` documented as "
                f"{row[0]}/{row[1]}, CATALOG declares {spec.kind}/{spec.unit}"
            )
    return problems


def check_workload_metric_rows() -> list[str]:
    """The ``workload.trace.*`` rows mirror checks 3 and 4: the
    trace-replay oracles read these counters as the offered-load ground
    truth, so their documented kind/unit must match the CATALOG."""
    from repro.observability.metrics import CATALOG

    text = OBS_MD.read_text(encoding="utf-8") if OBS_MD.exists() else ""
    problems = []
    rows = {
        name: (kind, unit)
        for name, kind, unit in re.findall(
            r"\| `(workload\.trace\.[a-z_.]+)` \| (\w+) \| (\w+) \|", text
        )
    }
    for name, spec in sorted(CATALOG.items()):
        if not name.startswith("workload.trace."):
            continue
        row = rows.get(name)
        if row is None:
            problems.append(
                f"docs/OBSERVABILITY.md: no catalog-table row for `{name}`"
            )
        elif row != (spec.kind, spec.unit):
            problems.append(
                f"docs/OBSERVABILITY.md: `{name}` documented as "
                f"{row[0]}/{row[1]}, CATALOG declares {spec.kind}/{spec.unit}"
            )
    return problems


def check_bench_cells() -> list[str]:
    from repro.experiments.bench import SUITES

    text = PERF_MD.read_text(encoding="utf-8") if PERF_MD.exists() else ""
    problems = []
    if not text:
        return ["docs/PERFORMANCE.md: file missing"]
    registry = {name for cells in SUITES.values() for name, _ in cells}
    documented = set(re.findall(r"^\| `([a-z0-9-]+)` \|", text, flags=re.M))
    for name in sorted(registry - documented):
        problems.append(
            f"docs/PERFORMANCE.md: bench cell `{name}` missing from the cell table"
        )
    for name in sorted(documented - registry):
        problems.append(
            f"docs/PERFORMANCE.md: stale bench cell `{name}` (not in SUITES)"
        )
    return problems


def check_live_report() -> list[str]:
    from repro.experiments.chaos import run_motif_under_chaos

    out = run_motif_under_chaos(
        "allreduce", seed=1, n_crashes=1, observe=True, trace=True,
        compare_clean=False,
    )
    rep = out.run_report
    problems = []
    groups = set(rep.groups())
    for required in ("nic", "transport", "recovery", "fabric"):
        if required not in groups:
            problems.append(f"live report: metric group '{required}' missing ({sorted(groups)})")
    if len(rep.span_categories) < 3:
        problems.append(
            f"live report: only {len(rep.span_categories)} span categories "
            f"({rep.span_categories}); need >= 3"
        )
    for name in rep.undocumented():
        problems.append(f"live report: metric `{name}` not declared in CATALOG")
    return problems


def main() -> int:
    problems = []
    problems += check_api_coverage()
    problems += check_metric_catalog()
    problems += check_fabric_metric_rows()
    problems += check_active_metric_rows()
    problems += check_workload_metric_rows()
    problems += check_bench_cells()
    problems += check_live_report()
    if problems:
        print(f"docs-check: {len(problems)} problem(s)")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(
        "docs-check: API.md, OBSERVABILITY.md and PERFORMANCE.md cover every "
        "public symbol, metric and bench cell"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
