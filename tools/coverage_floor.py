#!/usr/bin/env python3
"""Measure line coverage of ``src/repro`` with stdlib machinery only.

CI enforces a coverage floor through pytest-cov (see the ``test`` job in
``.github/workflows/ci.yml``), but pytest-cov is a dev extra — this tool
answers "what is coverage right now?" on a box that only has the runtime
deps, and is how the committed ``--cov-fail-under`` number was measured.

    python tools/coverage_floor.py                 # whole test suite
    python tools/coverage_floor.py tests/unit -q   # any pytest args

It installs a ``sys.settrace`` hook (threads included via
``threading.settrace``), runs pytest in-process, then reports
executed/executable lines per module.  Executable lines come from the
AST (statement line numbers, ``# pragma: no cover`` blocks excluded), so
the percentage tracks coverage.py closely but not exactly — treat small
deltas as noise and set floors conservatively.  Subprocesses (the
example smoke tests) are not traced, same as a default coverage.py run.

Tracing costs roughly an order of magnitude in wall time; use a subset
of tests for a quick look.
"""

from __future__ import annotations

import argparse
import ast
import sys
import threading
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"
PKG = SRC / "repro"

PRAGMA = "pragma: no cover"


def executable_lines(path: Path) -> set[int]:
    """Statement line numbers coverage would expect to see executed."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source)
    src_lines = source.splitlines()
    pragma_lines = {
        i + 1 for i, line in enumerate(src_lines) if PRAGMA in line
    }
    excluded: set[int] = set()
    lines: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        span = range(node.lineno, (node.end_lineno or node.lineno) + 1)
        if any(l in pragma_lines for l in range(node.lineno, node.lineno + 1)):
            excluded.update(span)
        lines.add(node.lineno)
    return {l for l in lines if l not in excluded}


class Collector:
    """Per-file executed-line sets, fed by the trace hook."""

    def __init__(self) -> None:
        self.hits: dict[str, set[int]] = {}
        self._prefix = str(PKG)

    def trace(self, frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(self._prefix):
            return None  # skip line events for non-repro frames entirely
        if event == "line":
            hits = self.hits.get(filename)
            if hits is None:
                hits = self.hits[filename] = set()
            hits.add(frame.f_lineno)
        return self.trace

    def install(self) -> None:
        threading.settrace(self.trace)
        sys.settrace(self.trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="stdlib-only line coverage for src/repro"
    )
    parser.add_argument(
        "pytest_args", nargs="*", default=[],
        help="arguments forwarded to pytest (default: the whole suite)",
    )
    parser.add_argument(
        "--per-file", action="store_true", help="print every module's number"
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(SRC))
    import pytest

    collector = Collector()
    collector.install()
    try:
        exit_code = pytest.main(args.pytest_args or ["tests/"])
    finally:
        collector.uninstall()
    if exit_code != 0:
        print(f"pytest exited {exit_code}; coverage below reflects a failed run")

    total_exec = total_hit = 0
    rows = []
    for path in sorted(PKG.rglob("*.py")):
        want = executable_lines(path)
        if not want:
            continue
        got = collector.hits.get(str(path), set()) & want
        total_exec += len(want)
        total_hit += len(got)
        rows.append((path.relative_to(SRC), len(got), len(want)))

    if args.per_file:
        for rel, hit, want in rows:
            print(f"{100.0 * hit / want:6.1f}%  {hit:5}/{want:<5}  {rel}")
    pct = 100.0 * total_hit / max(total_exec, 1)
    print(f"\nTOTAL: {total_hit}/{total_exec} lines = {pct:.2f}%")
    return 0 if exit_code == 0 else int(exit_code)


if __name__ == "__main__":
    sys.exit(main())
