# Common developer targets for the RVMA reproduction.

PYTHON ?= python3

.PHONY: install test bench figures docs docs-check examples validate clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

figures:
	$(PYTHON) -m repro.experiments.cli all --nodes 64 --out results.md

paper-scale:
	$(PYTHON) -m repro.experiments.cli fig7 --paper-scale
	$(PYTHON) -m repro.experiments.cli fig8 --paper-scale

docs:
	$(PYTHON) tools/gen_api_docs.py

docs-check:
	$(PYTHON) tools/docs_check.py

figures-svg:
	$(PYTHON) tools/render_figures.py

examples:
	@for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex || exit 1; done

validate:
	$(PYTHON) -c "from repro.timing.validation import report; print(report())"

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .benchmarks build *.egg-info src/*.egg-info
