"""Extra benches: the §I many-to-one motivation, and raw engine speed.

The incast bench quantifies the receiver-management story (shared
bucket vs per-client dedicated regions).  The engine bench tracks the
simulator's own event throughput so regressions in the substrate are
visible.
"""

import pytest

from repro.cluster import Cluster
from repro.motifs import Incast, RdmaProtocol, RvmaProtocol
from repro.sim import Simulator


def _run_incast(nic):
    cl = Cluster.build(n_nodes=17, topology="dragonfly", nic_type=nic, fidelity="flow")
    proto = RvmaProtocol() if nic == "rvma" else RdmaProtocol()
    return Incast(cl, proto, msgs_per_client=4, msg_bytes=4096).run()


@pytest.mark.benchmark(group="incast")
def test_incast_many_to_one(benchmark):
    rvma, rdma = benchmark.pedantic(
        lambda: (_run_incast("rvma"), _run_incast("rdma")), rounds=1, iterations=1
    )
    print()
    print(f"incast 16->1: rvma {rvma.elapsed:,.0f}ns (setup {rvma.setup_elapsed:,.0f}ns, "
          f"{rvma.extras['server_regions']} regions) | "
          f"rdma {rdma.elapsed:,.0f}ns (setup {rdma.setup_elapsed:,.0f}ns, "
          f"{rdma.extras['server_regions']} regions)")
    # Resource story: zero dedicated regions vs one per client.
    assert rvma.extras["server_regions"] == 0
    assert rdma.extras["server_regions"] == 16
    # Per-client handshakes dominate RDMA setup.
    assert rdma.setup_elapsed > 3 * rvma.setup_elapsed
    # And the coordinated data path is slower end to end.
    assert rdma.elapsed > rvma.elapsed


@pytest.mark.benchmark(group="engine")
def test_engine_event_throughput(benchmark):
    """Raw DES throughput: schedule+execute 100k chained events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return count[0]

    executed = benchmark(run)
    assert executed == 100_000
