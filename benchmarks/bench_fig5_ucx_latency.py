"""Fig 5 bench: RVMA vs RDMA one-way latency over UCX.

Regenerates Fig 5 (ConnectX-5 EDR / ThunderX2 model).  The paper's
observation to reproduce: the RVMA saving is real but a smaller
fraction than over raw Verbs (45.8% vs 65.8%) because UCX's software
path inflates both sides.
"""

import pytest

from repro.experiments import run_fig4, run_fig5

SIZES = [2 ** k for k in range(1, 17)]


@pytest.mark.benchmark(group="fig5")
def test_fig5_ucx_latency(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig5(sizes=SIZES), rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    print(f"paper claim: 45.8% reduction; "
          f"measured max {result.summary['max_reduction_pct']:.1f}%")

    reductions = {row[0]: row[3] for row in result.rows}
    assert all(r > 0 for r in reductions.values())
    # The paper's UCX band.
    assert 38.0 <= result.summary["max_reduction_pct"] <= 52.0
    assert reductions[2] > reductions[65536]


@pytest.mark.benchmark(group="fig5")
def test_fig5_reduction_below_fig4(benchmark):
    """Cross-figure claim: UCX reduction < Verbs reduction."""
    small = [2, 64]

    def both():
        return run_fig4(sizes=small), run_fig5(sizes=small)

    fig4, fig5 = benchmark.pedantic(both, rounds=1, iterations=1)
    assert (
        fig5.summary["max_reduction_pct"] < fig4.summary["max_reduction_pct"]
    ), "UCX reduction should be a smaller fraction than Verbs (paper §V-A2)"
