"""Fig 7 bench: RVMA vs RDMA on the Sweep3D motif.

Runs the topology x routing x link-rate grid at a benchmark-friendly
scale (the paper used 8,192 nodes; `rvma-experiments fig7
--paper-scale` reproduces that).  Shape checks against the paper:
RVMA wins everywhere, by >=2x at contemporary rates, more at 2 Tbps,
with the best case on the adaptively routed configurations.
"""

import os

import pytest

from repro.experiments import run_fig7
from repro.network.routing import RoutingMode

N_NODES = int(os.environ.get("RVMA_BENCH_NODES", "64"))


@pytest.mark.benchmark(group="fig7")
def test_fig7_sweep3d(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig7(
            n_nodes=N_NODES,
            topologies=("dragonfly", "hyperx"),
            rates=("100Gbps", "2Tbps"),
            routings=(RoutingMode.STATIC, RoutingMode.ADAPTIVE),
            kb=4,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())
    print(
        f"paper: avg 3.56x, max 4.4x (dragonfly/adaptive/2Tbps); "
        f"measured avg {result.summary['avg_speedup']:.2f}x, "
        f"max {result.summary['max_speedup']:.2f}x at {result.summary['max_at']}"
    )

    speedups = {(r[0], r[1], r[2]): r[5] for r in result.rows}
    # RVMA wins every configuration, >=2x as the paper reports.
    assert all(s >= 2.0 for s in speedups.values())
    # Average in the paper's neighbourhood.
    assert 2.5 <= result.summary["avg_speedup"] <= 5.0
    # Faster links -> bigger speedup (the 4.4x-at-2Tbps effect).
    for topo in ("dragonfly", "hyperx"):
        for routing in ("static", "adaptive"):
            assert speedups[(topo, routing, "2Tbps")] > speedups[(topo, routing, "100Gbps")]
    # Headline case: adaptive dragonfly at 2 Tbps sits near the top.
    assert result.summary["max_speedup"] >= speedups[("dragonfly", "adaptive", "2Tbps")] * 0.99
