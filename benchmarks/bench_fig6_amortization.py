"""Fig 6 bench: UCX amortization analysis.

Regenerates Fig 6: how many exchanges amortize the RDMA buffer-setup
handshake to within the 3% latency margin.  Shape checks: the count is
large (the paper's point), shrinks with message size, and the static
baseline needs more exchanges than the adaptive one (its steady-state
latency is lower, so 3% of it is a tighter bar).
"""

import pytest

from repro.experiments import run_fig6

SIZES = [16, 256, 4096, 65536]


@pytest.mark.benchmark(group="fig6")
def test_fig6_amortization(benchmark):
    result = benchmark.pedantic(lambda: run_fig6(sizes=SIZES), rounds=1, iterations=1)
    print()
    print(result.to_text())

    # rows: size, setup, static_steady, static_N, adaptive_steady, adaptive_N
    static_n = {row[0]: row[3] for row in result.rows}
    adaptive_n = {row[0]: row[5] for row in result.rows}

    # "A large number of exchanges is needed" — hundreds at small sizes.
    assert static_n[16] > 100
    # Amortization gets easier as transfers grow.
    assert static_n[16] > static_n[65536]
    # Faster steady state (static / last-byte) is harder to amortize into.
    for size in SIZES:
        assert static_n[size] >= adaptive_n[size]
    # Setup itself is microseconds-scale (handshake + registration).
    assert all(row[1] > 5000 for row in result.rows)
