"""Fig 8 bench: RVMA vs RDMA on the Halo3D motif.

Shape checks against the paper: consistent but moderate RVMA wins
(~1.5-1.9x band, average 1.57x), growing with link rate, and strictly
smaller than the Sweep3D speedups (bandwidth- vs latency-bound).
"""

import os

import pytest

from repro.experiments import run_fig7, run_fig8
from repro.network.routing import RoutingMode

N_NODES = int(os.environ.get("RVMA_BENCH_NODES", "64"))


@pytest.mark.benchmark(group="fig8")
def test_fig8_halo3d(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig8(
            n_nodes=N_NODES,
            topologies=("hyperx", "fattree"),
            rates=("100Gbps", "400Gbps", "2Tbps"),
            routings=(RoutingMode.STATIC, RoutingMode.ADAPTIVE),
            iterations=4,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.to_text())
    print(
        f"paper: avg 1.57x; HyperX DOR 1.64x @400G, 1.89x @2T; "
        f"measured avg {result.summary['avg_speedup']:.2f}x, "
        f"max {result.summary['max_speedup']:.2f}x at {result.summary['max_at']}"
    )

    speedups = {(r[0], r[1], r[2]): r[5] for r in result.rows}
    # RVMA wins consistently, in a moderate band (not sweep-like 4.4x);
    # the congested static fat-tree at 2 Tbps is the high outlier.
    assert all(1.05 <= s <= 3.3 for s in speedups.values())
    assert 1.2 <= result.summary["avg_speedup"] <= 2.3
    # The paper's HyperX-DOR trend: speedup grows with link rate.
    dor = [speedups[("hyperx", "static", r)] for r in ("100Gbps", "400Gbps", "2Tbps")]
    assert dor[2] > dor[0]


@pytest.mark.benchmark(group="fig8")
def test_halo_speedup_below_sweep_speedup(benchmark):
    """Cross-figure claim: Halo3D gains < Sweep3D gains."""

    def both():
        f7 = run_fig7(
            n_nodes=32, topologies=("dragonfly",), rates=("100Gbps",),
            routings=(RoutingMode.ADAPTIVE,), kb=4,
        )
        f8 = run_fig8(
            n_nodes=32, topologies=("dragonfly",), rates=("100Gbps",),
            routings=(RoutingMode.ADAPTIVE,), iterations=4,
        )
        return f7, f8

    f7, f8 = benchmark.pedantic(both, rounds=1, iterations=1)
    assert f8.summary["avg_speedup"] < f7.summary["avg_speedup"]
