"""Ablation benches for the design choices DESIGN.md calls out.

A1 LUT counter spill, A2 completion wakeup mechanism, A3 threshold
type parity, A4 PCIe generation sweep — each regenerating its table
and asserting the paper-implied ordering.
"""

import pytest

from repro.experiments import (
    run_ablation_completion,
    run_ablation_lut,
    run_ablation_pcie,
    run_ablation_threshold,
)


@pytest.mark.benchmark(group="ablations")
def test_ablation_lut_spill(benchmark):
    result = benchmark.pedantic(run_ablation_lut, rounds=1, iterations=1)
    print()
    print(result.to_text())
    penalties = {row[0]: row[3] for row in result.rows}
    # Spilling counters to host memory costs a PCIe round trip today...
    assert penalties["gen4"] > 300.0
    # ...but is minimal on Gen6 (the paper's §III-B forecast).
    assert penalties["gen6"] < 50.0
    assert penalties["gen6"] < penalties["gen4"]


@pytest.mark.benchmark(group="ablations")
def test_ablation_completion_mechanisms(benchmark):
    result = benchmark.pedantic(run_ablation_completion, rounds=1, iterations=1)
    print()
    print(result.to_text())
    lat = {row[0]: row[1] for row in result.rows}
    # MWait <= poll <= shared-CQ poll (paper §IV-C ordering).
    assert lat["mwait"] <= lat["poll"] <= lat["cq_poll"]
    assert lat["cq_poll"] - lat["mwait"] > 10.0


@pytest.mark.benchmark(group="ablations")
def test_ablation_threshold_type_parity(benchmark):
    result = benchmark.pedantic(run_ablation_threshold, rounds=1, iterations=1)
    print()
    print(result.to_text())
    # EPOCH_BYTES and EPOCH_OPS complete identically for single-put
    # epochs: cost difference is sub-nanosecond in the model.
    assert result.summary["bytes_vs_ops_delta_ns"] < 1.0


@pytest.mark.benchmark(group="ablations")
def test_ablation_pcie_generations(benchmark):
    result = benchmark.pedantic(run_ablation_pcie, rounds=1, iterations=1)
    print()
    print(result.to_text())
    lats = [row[2] for row in result.rows]  # gen3 .. gen6 order
    # End-to-end latency strictly improves with newer PCIe.
    assert all(a >= b for a, b in zip(lats, lats[1:]))
    # Gen3 -> Gen6 saves at least one bus traversal's worth.
    assert lats[0] - lats[-1] > 200.0


@pytest.mark.benchmark(group="ablations")
def test_ablation_write_imm_ceiling(benchmark):
    from repro.experiments import run_ablation_write_imm

    result = benchmark.pedantic(run_ablation_write_imm, rounds=1, iterations=1)
    print()
    print(result.to_text())
    by_size = {row[0]: row for row in result.rows}
    # Under the 64B ceiling, imm completion is within ~15% of RVMA...
    assert isinstance(by_size[64][2], int)
    assert by_size[64][2] < by_size[64][1] * 1.15
    # ...but cannot carry real transfers at all.
    assert by_size[256][2] == "n/a (>64B)"
    # The general mechanism (send/recv) is far slower at every size.
    assert all(row[3] > row[1] * 1.5 for row in result.rows)


@pytest.mark.benchmark(group="fault-tolerance")
def test_fault_recovery_rewind_vs_restart(benchmark):
    from repro.experiments import run_fault_recovery

    result = benchmark.pedantic(run_fault_recovery, rounds=1, iterations=1)
    print()
    print(result.to_text())
    # Rewind preserves completed epochs: fewer steps replayed, faster
    # completion, and the recovered epoch is the last consistent one.
    assert result.summary["steps_saved"] > 0
    assert result.summary["speedup_from_rewind"] > 1.2
    assert result.summary["recovered_epoch"] == 14
