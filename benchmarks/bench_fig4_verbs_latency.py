"""Fig 4 bench: RVMA vs RDMA one-way latency over Verbs.

Regenerates the paper's Fig 4 series (OmniPath/Skylake model) and
checks its shape: RVMA wins everywhere, the reduction peaks at small
messages in the paper's 55-70% band, and decays with size.
"""

import pytest

from repro.experiments import run_fig4

SIZES = [2 ** k for k in range(1, 17)]


@pytest.mark.benchmark(group="fig4")
def test_fig4_verbs_latency(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig4(sizes=SIZES), rounds=1, iterations=1
    )
    print()
    print(result.to_text())
    print(f"paper claim: up to 65.8% reduction; "
          f"measured max {result.summary['max_reduction_pct']:.1f}%")

    reductions = {row[0]: row[3] for row in result.rows}
    # RVMA wins at every size.
    assert all(r > 0 for r in reductions.values())
    # Peak reduction lands in the paper's band and at a small size.
    assert 55.0 <= result.summary["max_reduction_pct"] <= 70.0
    assert result.summary["max_reduction_at_B"] <= 64
    # Reduction decays as serialization dominates (shape of Fig 4).
    assert reductions[2] > reductions[4096] > reductions[65536]
