"""Streaming bandwidth bench (extension of the paper's latency study).

Asserts the physics the reproduction must respect: RVMA is *not* a
bandwidth trick — both protocols saturate the link for large transfers
— while at small sizes RVMA's uncoordinated puts sustain a much higher
message rate than RDMA's ready/ack/signal cycle.
"""

import pytest

from repro.timing import VERBS_OPA_SKYLAKE, rdma_bandwidth, rvma_bandwidth


@pytest.mark.benchmark(group="bandwidth")
def test_streaming_bandwidth_and_message_rate(benchmark):
    tb = VERBS_OPA_SKYLAKE

    def run():
        return {
            "rvma_small": rvma_bandwidth(tb, 64),
            "rdma_small": rdma_bandwidth(tb, 64),
            "rvma_big": rvma_bandwidth(tb, 256 * 1024),
            "rdma_big": rdma_bandwidth(tb, 256 * 1024),
        }

    pts = benchmark.pedantic(run, rounds=1, iterations=1)
    link = tb.net.link_bw
    print()
    for name, p in pts.items():
        print(f"{name:11s} {p.size:>7}B  {p.bytes_per_ns:6.2f} B/ns "
              f"({p.msgs_per_us:6.2f} msg/us, {p.link_utilisation(link):.0%} of link)")

    # Large transfers: both protocols reach >=85% of line rate.
    assert pts["rvma_big"].link_utilisation(link) > 0.85
    assert pts["rdma_big"].link_utilisation(link) > 0.85
    # ...and RVMA holds no unfair bandwidth advantage there (<15%).
    assert pts["rvma_big"].bytes_per_ns / pts["rdma_big"].bytes_per_ns < 1.15
    # Small transfers: RVMA sustains a much higher message rate.
    assert pts["rvma_small"].msgs_per_us > 3 * pts["rdma_small"].msgs_per_us
