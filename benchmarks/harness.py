"""Pytest-facing wrapper around the pinned benchmark suite.

``repro.experiments.bench`` owns the suite definitions, the
``BENCH_*.json`` artifact format and the baseline gate; this module
exposes the smoke-scale suite to ``pytest benchmarks/`` so the standard
CI test job exercises the harness end-to-end (runs every cell, writes
the artifact, gates against ``benchmarks/baseline.json``).

The gate here is deliberately forgiving (pytest hosts are noisy):
regressions are normalised by the calibration loop and tolerance is
inherited from the bench module's default (20%).  The dedicated
``bench-smoke`` CI job runs the same suite via the CLI and uploads the
JSON artifact.

Run directly::

    PYTHONPATH=src python -m pytest benchmarks/harness.py -q
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.bench import (
    DEFAULT_BASELINE,
    SUITES,
    build_document,
    calibrate,
    compare,
    run_suite,
)


def test_smoke_suite_runs_and_meets_baseline(tmp_path: Path) -> None:
    """Every smoke cell runs, emits a well-formed artifact, and no cell
    regresses >20% events/sec vs the committed baseline."""
    records = run_suite("smoke")
    # Derived from the registry (not hard-coded) so adding a cell to
    # SUITES cannot silently skip this end-to-end pass; the docs gate
    # separately pins the registry against docs/PERFORMANCE.md.  Cells
    # may emit extra sub-records (the KV cells report per-tenant
    # series), so require the registry cells as an in-order subsequence.
    produced = iter(r.name for r in records)
    missing = [cell for cell, _ in SUITES["smoke"] if cell not in produced]
    assert not missing, f"smoke run missing registry cells (in order): {missing}"
    calib = calibrate()
    doc = build_document(records, "smoke", calib)
    artifact = tmp_path / "BENCH_smoke.json"
    artifact.write_text(json.dumps(doc, indent=2), encoding="utf-8")
    loaded = json.loads(artifact.read_text(encoding="utf-8"))
    assert loaded["meta"]["suite"] == "smoke"
    assert all("wall_s" in r for r in loaded["results"])

    # Functional sanity regardless of host speed.
    by_name = {r.name: r for r in records}
    assert by_name["engine-churn"].events == 30_000
    assert by_name["chaos-crash"].extras["invariants_ok"]
    assert by_name["incast"].extras["bytes_moved"] > 0

    if os.environ.get("BENCH_SKIP_GATE"):
        return
    if not DEFAULT_BASELINE.exists():
        return
    baseline = json.loads(DEFAULT_BASELINE.read_text(encoding="utf-8"))
    regressions, _notes = compare(records, baseline, calib=calib, suite="smoke")
    assert not regressions, "\n".join(regressions)
