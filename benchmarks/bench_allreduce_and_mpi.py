"""Extension benches: allreduce motif and the MPI-RMA veneer.

Quantifies two stories the paper argues qualitatively: latency-bound
collectives benefit from RVMA like Sweep3D does, and MPI window
allocation over RVMA needs no address exchange while the RVMA fence
(hardware-threshold completion) beats the RDMA fence path.
"""

import pytest

from repro.cluster import Cluster
from repro.motifs import AllreduceMotif, RdmaProtocol, RvmaProtocol
from repro.mpi import MpiRma
from repro.sim import spawn


def _allreduce(nic):
    cl = Cluster.build(n_nodes=32, topology="dragonfly", nic_type=nic, fidelity="flow")
    proto = RvmaProtocol() if nic == "rvma" else RdmaProtocol()
    motif = AllreduceMotif(cl, proto, iterations=8)
    result = motif.run()
    assert motif.verify()
    return result


@pytest.mark.benchmark(group="extensions")
def test_allreduce_motif_speedup(benchmark):
    rvma, rdma = benchmark.pedantic(
        lambda: (_allreduce("rvma"), _allreduce("rdma")), rounds=1, iterations=1
    )
    speedup = rdma.elapsed / rvma.elapsed
    print(f"\nallreduce 32 ranks x 8 iters: rvma {rvma.elapsed:,.0f}ns "
          f"rdma {rdma.elapsed:,.0f}ns -> {speedup:.2f}x")
    assert speedup > 1.8


def _mpi_epochs(nic, epochs=4):
    cl = Cluster.build(n_nodes=16, topology="dragonfly", nic_type=nic, fidelity="flow")
    rma = MpiRma(cl, ring_depth=4)
    allocated = []

    def rank_proc(r):
        win = yield from rma.win_allocate(r, size=1024, win_id=1)
        allocated.append(cl.sim.now)
        right = (r + 1) % 16
        for _ in range(epochs):
            yield from win.put(right, size=256, disp=0)
            yield from win.fence()

    procs = [spawn(cl.sim, rank_proc(r), f"r{r}") for r in range(16)]
    cl.sim.run()
    assert all(p.finished for p in procs)
    return max(allocated), cl.sim.now


@pytest.mark.benchmark(group="extensions")
def test_mpi_rma_fence_epochs(benchmark):
    (rvma_alloc, rvma_total), (rdma_alloc, rdma_total) = benchmark.pedantic(
        lambda: (_mpi_epochs("rvma"), _mpi_epochs("rdma")), rounds=1, iterations=1
    )
    print(f"\nMPI window allocate: rvma {rvma_alloc:,.0f}ns vs rdma {rdma_alloc:,.0f}ns "
          f"(no address exchange vs (addr,len,rkey) allgather + registration)")
    print(f"4 fenced put epochs total: rvma {rvma_total:,.0f}ns vs rdma {rdma_total:,.0f}ns")
    # Allocation: RDMA pays registration + descriptor allgather.
    assert rdma_alloc > rvma_alloc
    # End-to-end epochs: RVMA's fence path wins overall.
    assert rdma_total > rvma_total


def _randompairs(nic):
    from repro.motifs import RandomPairs

    cl = Cluster.build(n_nodes=24, topology="dragonfly", nic_type=nic, fidelity="flow")
    proto = RvmaProtocol() if nic == "rvma" else RdmaProtocol()
    return RandomPairs(cl, proto, msgs_per_rank=6).run()


@pytest.mark.benchmark(group="extensions")
def test_randompairs_motif(benchmark):
    """Uniform random traffic: RVMA's anonymous mailboxes vs RDMA's
    per-pair negotiated channels."""
    rvma, rdma = benchmark.pedantic(
        lambda: (_randompairs("rvma"), _randompairs("rdma")), rounds=1, iterations=1
    )
    print(f"\nrandom pairs 24 ranks: rvma {rvma.elapsed:,.0f}ns (0 pair channels) | "
          f"rdma {rdma.elapsed:,.0f}ns ({rdma.extras['pair_channels']} pair channels, "
          f"{rdma.extras['registered_regions']} MRs)")
    assert rvma.extras["pair_channels"] == 0
    assert rdma.extras["pair_channels"] > 24
    assert rdma.elapsed > 1.5 * rvma.elapsed
    assert rdma.setup_elapsed > 5 * rvma.setup_elapsed
