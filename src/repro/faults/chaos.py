"""Chaos schedules: randomized-but-deterministic composed fault plans.

A :class:`ChaosSchedule` is a reproducible plan of scheduled fault
windows (link flaps, switch failures, partitions) plus optional
background i.i.d. loss, generated from the simulator's named RNG
streams — so a (seed, parameters) pair always produces the identical
schedule, and chaos test failures replay exactly.

Windows are bounded: every generated window is capped at
``max_window_ns`` so that a reliability transport with a sane retry
budget (backoff coverage exceeding the longest window) can always
deliver eventually.  That is the invariant the chaos harness asserts:
*no put is lost within the retry budget*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.builder import Cluster
from .injectors import FaultInjector


@dataclass(frozen=True)
class ChaosEvent:
    """One planned fault."""

    kind: str  # "link_flap" | "switch_failure" | "partition" | "crash_restart"
    start: float
    end: float  # crash_restart: the restart time
    params: tuple  # kind-specific: link (u, v), switch (id,), partition/crash (nodes...)

    def describe(self) -> str:
        if self.kind == "link_flap":
            u, v = self.params
            tgt = f"sw{u}<->sw{v}"
        elif self.kind == "switch_failure":
            tgt = f"sw{self.params[0]}"
        elif self.kind == "crash_restart":
            return (
                f"crash_restart node {self.params[0]} crash@{self.start:.0f}ns "
                f"restart@{self.end:.0f}ns"
            )
        else:
            tgt = "nodes {" + ",".join(str(p) for p in self.params) + "}"
        return f"{self.kind} {tgt} @ [{self.start:.0f}, {self.end:.0f})ns"


@dataclass
class ChaosSchedule:
    """A composed fault plan applied through one :class:`FaultInjector`."""

    events: list[ChaosEvent] = field(default_factory=list)
    drop_prob: float = 0.0

    @classmethod
    def generate(
        cls,
        cluster: Cluster,
        horizon_ns: float,
        n_events: int = 4,
        max_window_ns: float = 60_000.0,
        min_window_ns: float = 5_000.0,
        drop_prob: float = 0.0,
        kinds: tuple = ("link_flap", "switch_failure", "partition"),
        stream: str = "chaos",
        n_crashes: int = 0,
        crash_min_start_ns: float = 40_000.0,
        crash_window_ns: tuple = (15_000.0, 40_000.0),
    ) -> "ChaosSchedule":
        """Draw a random schedule from the cluster's named RNG streams.

        Deterministic per (simulator seed, stream, parameters); the
        same cluster seed always suffers the same chaos.

        ``n_crashes`` adds crash-restart events: a random node
        crash-stops no earlier than ``crash_min_start_ns`` (so recovery
        checkpoints have had time to exist) and restarts after a down
        time drawn from ``crash_window_ns``.  Down times stay inside
        the reliability layer's retry-budget coverage, like fabric
        fault windows.
        """
        if max_window_ns < min_window_ns:
            raise ValueError("max_window_ns must be >= min_window_ns")
        rng = cluster.sim.rng
        topo = cluster.topology
        links = sorted({tuple(sorted(l)) for l in topo.links()})
        events: list[ChaosEvent] = []
        for _ in range(n_crashes):
            node = rng.choice(f"{stream}.crash.node", cluster.n_nodes)
            lo, hi = crash_window_ns
            down = lo + rng.random(f"{stream}.crash.len") * (hi - lo)
            span = max(horizon_ns - crash_min_start_ns - down, 0.0)
            start = crash_min_start_ns + rng.random(f"{stream}.crash.start") * span
            events.append(
                ChaosEvent(kind="crash_restart", start=start, end=start + down, params=(node,))
            )
        for _ in range(n_events):
            kind = kinds[rng.choice(f"{stream}.kind", len(kinds))]
            span = min_window_ns + rng.random(f"{stream}.len") * (
                max_window_ns - min_window_ns
            )
            start = rng.random(f"{stream}.start") * max(horizon_ns - span, 0.0)
            if kind == "link_flap" and links:
                params = links[rng.choice(f"{stream}.link", len(links))]
            elif kind == "switch_failure" and topo.n_switches > 1:
                params = (rng.choice(f"{stream}.switch", topo.n_switches),)
            else:
                # Partition a single random node away from the rest: the
                # smallest cut that still severs real traffic.
                kind = "partition"
                params = (rng.choice(f"{stream}.node", cluster.n_nodes),)
            events.append(ChaosEvent(kind=kind, start=start, end=start + span, params=params))
        events.sort(key=lambda e: e.start)
        return cls(events=events, drop_prob=drop_prob)

    def apply(self, injector: FaultInjector) -> FaultInjector:
        """Install every planned fault on *injector* (chains with any
        faults it already carries)."""
        for ev in self.events:
            if ev.kind == "link_flap":
                injector.flap_link(ev.params[0], ev.params[1], [(ev.start, ev.end)])
            elif ev.kind == "switch_failure":
                injector.fail_switch(ev.params[0], ev.start, ev.end)
            elif ev.kind == "crash_restart":
                injector.crash_restart(ev.params[0], ev.start, ev.end)
            else:
                injector.partition(ev.params, ev.start, ev.end)
        if self.drop_prob:
            injector.drop_messages(self.drop_prob)
        return injector

    @property
    def longest_window_ns(self) -> float:
        return max((e.end - e.start for e in self.events), default=0.0)

    def describe(self) -> list[str]:
        lines = [ev.describe() for ev in self.events]
        if self.drop_prob:
            lines.append(f"background drop probability {self.drop_prob:.0%}")
        return lines
