"""Fault injection for the fault-tolerance demonstrations and tests."""

from .chaos import ChaosEvent, ChaosSchedule
from .injectors import FaultInjector, FaultLog, FaultWindow

__all__ = ["ChaosEvent", "ChaosSchedule", "FaultInjector", "FaultLog", "FaultWindow"]
