"""Fault injection for the fault-tolerance demonstrations and tests."""

from .injectors import FaultInjector, FaultLog

__all__ = ["FaultInjector", "FaultLog"]
