"""Fault injection: node failures, message loss, payload corruption.

These drive the §IV-F fault-tolerance demonstrations (mid-epoch sender
death + ``rewind`` recovery) and the robustness tests.  Injection
points: the NIC's ``failed`` flag (node death) and the fabric's
``fault_filter`` hook (loss/corruption at delivery).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..cluster.builder import Cluster
from ..network.message import Delivery


@dataclass
class FaultLog:
    """What the injector actually did (for test assertions)."""

    node_failures: list[tuple[int, float]] = field(default_factory=list)
    messages_dropped: int = 0
    payloads_corrupted: int = 0


class FaultInjector:
    """Schedules and applies faults on a cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.log = FaultLog()
        self._drop_prob = 0.0
        self._corrupt_prob = 0.0
        self._selector: Optional[Callable[[Delivery], bool]] = None
        self._dead_nodes: set[int] = set()

    # --- node death ---------------------------------------------------------------

    def fail_node_at(self, node_id: int, time: float) -> None:
        """Kill *node_id* at the given simulated time.

        Its NIC drops all subsequent traffic; in-flight messages it
        already sent still arrive (they are on the wire).
        """

        def do() -> None:
            self.cluster.node(node_id).nic.fail()
            self._dead_nodes.add(node_id)
            self.log.node_failures.append((node_id, self.sim.now))

        self.sim.schedule_at(time, do)

    def node_is_dead(self, node_id: int) -> bool:
        """Whether *node_id* has been killed by this injector."""
        return node_id in self._dead_nodes

    # --- fabric-level faults --------------------------------------------------------

    def drop_messages(
        self, probability: float, selector: Optional[Callable[[Delivery], bool]] = None
    ) -> None:
        """Drop each delivery with the given probability (optionally only
        those matching *selector*)."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self._drop_prob = probability
        self._selector = selector
        self._install()

    def corrupt_payloads(
        self, probability: float, selector: Optional[Callable[[Delivery], bool]] = None
    ) -> None:
        """Flip the first payload byte of affected deliveries.

        Corruption (unlike loss) is observable by application-level
        checksums; used by the integrity tests.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self._corrupt_prob = probability
        self._selector = selector
        self._install()

    def _install(self) -> None:
        rng = self.sim.rng

        def fault_filter(delivery: Delivery) -> bool:
            if self._selector is not None and not self._selector(delivery):
                return False
            if self._drop_prob and rng.random("faults.drop") < self._drop_prob:
                self.log.messages_dropped += 1
                return True
            if self._corrupt_prob and rng.random("faults.corrupt") < self._corrupt_prob:
                self._corrupt(delivery)
            return False

        self.cluster.fabric.fault_filter = fault_filter

    def _corrupt(self, delivery: Delivery) -> None:
        target = delivery.packet if delivery.packet is not None else delivery.message
        if target.data:
            flipped = bytes([target.data[0] ^ 0xFF]) + target.data[1:]
            target.data = flipped
            self.log.payloads_corrupted += 1

    def clear(self) -> None:
        """Remove fabric-level fault hooks (node deaths are permanent)."""
        self._drop_prob = 0.0
        self._corrupt_prob = 0.0
        self.cluster.fabric.fault_filter = None
