"""Fault injection: node failures, message loss, corruption, fault windows.

These drive the §IV-F fault-tolerance demonstrations (mid-epoch sender
death + ``rewind`` recovery) and the robustness/chaos tests.  Injection
points: the NIC's ``failed`` flag (node death) and the fabric's
``fault_filter`` hook (loss/corruption at delivery).

Two classes of fabric fault are supported:

* **i.i.d. faults** — :meth:`FaultInjector.drop_messages` /
  :meth:`FaultInjector.corrupt_payloads`, each with its *own* selector
  and probability;
* **scheduled fault windows** — :meth:`FaultInjector.drop_window`,
  :meth:`FaultInjector.flap_link`, :meth:`FaultInjector.fail_switch`,
  :meth:`FaultInjector.partition`: deterministic ``[start, end)``
  intervals during which matching traffic is dropped, modelling link
  flaps, switch failures and network partitions rather than uniform
  noise.  :class:`repro.faults.chaos.ChaosSchedule` composes them.

Multiple injectors (or any other owner of ``fabric.fault_filter``)
compose: installing chains onto whatever filter was already present,
and :meth:`FaultInjector.clear` restores the previous hook instead of
nuking it.

Link-flap and switch-failure windows match a delivery when the failed
element lies on the *static* route between the endpoints — an
approximation under adaptive routing (documented in
``docs/ARCHITECTURE.md``), chosen because deliveries do not retain
their hop-by-hop channel list at flow fidelity.  Those windows are
also mirrored into the fabric's routing state
(:meth:`repro.network.fabric.BaseFabric.set_link_state` /
``set_switch_state``) so route and scorer caches are invalidated at
each transition and *adaptive* selection stops scoring paths through
the failed element while the window is open.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..cluster.builder import Cluster
from ..network.message import Delivery

Selector = Callable[[Delivery], bool]


@dataclass
class FaultLog:
    """What the injector actually did (for test assertions)."""

    node_failures: list[tuple[int, float]] = field(default_factory=list)
    #: crash-stop events: (node, time) per crash and per restart.
    crashes: list[tuple[int, float]] = field(default_factory=list)
    restarts: list[tuple[int, float]] = field(default_factory=list)
    messages_dropped: int = 0
    payloads_corrupted: int = 0
    #: drops attributed to scheduled fault windows, by kind.
    window_drops: dict[str, int] = field(default_factory=dict)
    #: every scheduled window, as (kind, start, end, description).
    windows: list[tuple[str, float, float, str]] = field(default_factory=list)

    def count_window_drop(self, kind: str) -> None:
        self.window_drops[kind] = self.window_drops.get(kind, 0) + 1

    @property
    def total_window_drops(self) -> int:
        return sum(self.window_drops.values())


@dataclass
class FaultWindow:
    """One scheduled fault: drop matching deliveries during [start, end)."""

    kind: str  # "window" | "link_flap" | "switch_failure" | "partition"
    start: float
    end: float
    predicate: Selector
    label: str = ""

    def matches(self, now: float, delivery: Delivery) -> bool:
        return self.start <= now < self.end and self.predicate(delivery)


class FaultInjector:
    """Schedules and applies faults on a cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.log = FaultLog()
        self._drop_prob = 0.0
        self._drop_selector: Optional[Selector] = None
        self._corrupt_prob = 0.0
        self._corrupt_selector: Optional[Selector] = None
        self._windows: list[FaultWindow] = []
        self._dead_nodes: set[int] = set()
        #: recovery hooks: fired with the node id after a crash/restart
        #: takes effect (the recovery manager arms these).
        self.on_crash: list[Callable[[int], None]] = []
        self.on_restart: list[Callable[[int], None]] = []
        #: static-route cache for link/switch window matching.
        self._route_cache: dict[tuple[int, int], list[int]] = {}
        #: fabric route-state marks: (state, events, up_fn) per scheduled
        #: down/up transition, so clear() can cancel and restore.
        self._route_marks: list[tuple[dict, list, Callable[[], None]]] = []
        self._active = False
        self._installed_filter: Optional[Selector] = None
        self._prev_filter: Optional[Selector] = None

    # --- node death ---------------------------------------------------------------

    def fail_node_at(self, node_id: int, time: float) -> None:
        """Kill *node_id* at the given simulated time.

        Its NIC drops all subsequent traffic; in-flight messages it
        already sent still arrive (they are on the wire).
        """

        def do() -> None:
            self.cluster.node(node_id).nic.fail()
            self._dead_nodes.add(node_id)
            self.log.node_failures.append((node_id, self.sim.now))

        self.sim.schedule_at(time, do)

    def node_is_dead(self, node_id: int) -> bool:
        """Whether *node_id* has been killed by this injector."""
        return node_id in self._dead_nodes

    # --- crash-stop with restart ------------------------------------------------------

    def fail_node(self, node_id: int, at: Optional[float] = None) -> None:
        """Crash-stop *node_id*: atomically destroy its NIC state (LUT,
        in-flight ops, reliability flows) in addition to dropping
        traffic.  Unlike :meth:`fail_node_at` (flag-only, permanent
        fail-silent), a crash-stopped node can be brought back with
        :meth:`restart_node` — amnesiac until the recovery protocol
        rejoins it (:mod:`repro.recovery`)."""

        def do() -> None:
            self.cluster.node(node_id).nic.crash()
            self._dead_nodes.add(node_id)
            self.log.crashes.append((node_id, self.sim.now))
            self.sim.stats.counter("faults.crashes").add()
            for cb in list(self.on_crash):
                cb(node_id)

        self.sim.schedule_at(self.sim.now if at is None else at, do)

    def restart_node(self, node_id: int, at: Optional[float] = None) -> None:
        """Restart a crash-stopped node: it accepts traffic again but
        knows nothing until its recovery agent rejoins its peers."""

        def do() -> None:
            self.cluster.node(node_id).nic.restart()
            self._dead_nodes.discard(node_id)
            self.log.restarts.append((node_id, self.sim.now))
            self.sim.stats.counter("faults.restarts").add()
            for cb in list(self.on_restart):
                cb(node_id)

        self.sim.schedule_at(self.sim.now if at is None else at, do)

    def crash_restart(self, node_id: int, crash_at: float, restart_at: float) -> None:
        """Schedule a full crash-stop + restart cycle for one node."""
        if restart_at <= crash_at:
            raise ValueError("restart must come after the crash")
        self.fail_node(node_id, at=crash_at)
        self.restart_node(node_id, at=restart_at)

    # --- i.i.d. fabric faults -------------------------------------------------------

    def drop_messages(self, probability: float, selector: Optional[Selector] = None) -> None:
        """Drop each delivery with the given probability (optionally only
        those matching *selector*).  The selector applies to drops only;
        :meth:`corrupt_payloads` keeps its own."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self._drop_prob = probability
        self._drop_selector = selector
        self._install()

    def corrupt_payloads(self, probability: float, selector: Optional[Selector] = None) -> None:
        """Flip the first payload byte of affected deliveries.

        Corruption (unlike loss) is observable by application-level
        checksums; used by the integrity tests.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self._corrupt_prob = probability
        self._corrupt_selector = selector
        self._install()

    # --- scheduled fault windows ----------------------------------------------------

    def drop_window(
        self,
        start: float,
        end: float,
        selector: Optional[Selector] = None,
        kind: str = "window",
        label: str = "",
    ) -> FaultWindow:
        """Drop (matching) deliveries during the interval [start, end)."""
        if end <= start:
            raise ValueError("fault window must have end > start")
        window = FaultWindow(
            kind=kind, start=start, end=end,
            predicate=selector if selector is not None else (lambda _d: True),
            label=label or kind,
        )
        self._windows.append(window)
        self.log.windows.append((kind, start, end, window.label))
        self._install()
        return window

    def flap_link(self, u: int, v: int, windows: Iterable[tuple[float, float]]) -> None:
        """Take the switch link u<->v down for each (start, end) window.

        Deliveries whose static route crosses the link (either
        direction) are dropped while a window is open.
        """
        edge = frozenset((u, v))

        def crosses(delivery: Delivery) -> bool:
            path = self._static_route(delivery.message.src, delivery.message.dst)
            return any(frozenset(e) == edge for e in zip(path, path[1:]))

        for start, end in windows:
            self.drop_window(start, end, crosses, kind="link_flap", label=f"link sw{u}<->sw{v}")
            self._mark_route_element(
                start,
                end,
                lambda: self.cluster.fabric.set_link_state(u, v, up=False),
                lambda: self.cluster.fabric.set_link_state(u, v, up=True),
            )

    def fail_switch(self, switch_id: int, start: float, end: float = math.inf) -> None:
        """Take a whole switch down during [start, end) (default: forever).

        All traffic whose static route traverses the switch — including
        traffic of the nodes cabled to it — is dropped.
        """

        def through(delivery: Delivery) -> bool:
            return switch_id in self._static_route(delivery.message.src, delivery.message.dst)

        self.drop_window(start, end, through, kind="switch_failure", label=f"sw{switch_id}")
        self._mark_route_element(
            start,
            end,
            lambda: self.cluster.fabric.set_switch_state(switch_id, up=False),
            lambda: self.cluster.fabric.set_switch_state(switch_id, up=True),
        )

    def partition(
        self, group: Iterable[int], start: float, end: float = math.inf
    ) -> None:
        """Partition the network: nodes in *group* cannot exchange
        traffic with the rest of the cluster during [start, end)."""
        members = frozenset(group)

        def crosses_cut(delivery: Delivery) -> bool:
            return (delivery.message.src in members) != (delivery.message.dst in members)

        label = f"{{{','.join(str(n) for n in sorted(members))}}} | rest"
        self.drop_window(start, end, crosses_cut, kind="partition", label=label)

    def _static_route(self, src: int, dst: int) -> list[int]:
        """Switch sequence of the static route between two nodes (cached)."""
        key = (src, dst)
        path = self._route_cache.get(key)
        if path is None:
            topo = self.cluster.topology
            path = self._route_cache[key] = topo.static_path(
                topo.node_switch(src), topo.node_switch(dst)
            )
        return path

    def _mark_route_element(
        self,
        start: float,
        end: float,
        down_fn: Callable[[], None],
        up_fn: Callable[[], None],
    ) -> None:
        """Mirror a fault window into the fabric's routing state.

        Before this existed the fabric kept scoring (and handing out)
        paths through failed links and switches: its ``_scored_paths`` /
        route caches bake ``_free_at`` channel handles in at build time
        and nothing invalidated them across ``fail_switch`` /
        ``flap_link``.  Marking the element down via
        ``set_link_state`` / ``set_switch_state`` invalidates those
        caches and steers *adaptive* routing around the element for the
        duration of the window (static routing stays oblivious, matching
        the drop-window semantics).  No-op on fabrics without route
        state (e.g. bespoke test doubles)."""
        fabric = getattr(self.cluster, "fabric", None)
        if fabric is None or not hasattr(fabric, "set_switch_state"):
            return
        state = {"down": False, "up": False}

        def apply_down() -> None:
            state["down"] = True
            down_fn()

        def apply_up() -> None:
            state["up"] = True
            up_fn()

        sim = self.sim
        events: list = []
        if start <= sim.now:
            apply_down()
        else:
            events.append(sim.schedule_at(start, apply_down))
        if not math.isinf(end):
            events.append(sim.schedule_at(end, apply_up))
        self._route_marks.append((state, events, up_fn))

    # --- filter installation ----------------------------------------------------------

    def _apply(self, delivery: Delivery) -> bool:
        """This injector's verdict on one delivery (True = drop)."""
        now = self.sim.now
        for window in self._windows:
            if window.matches(now, delivery):
                self.log.messages_dropped += 1
                self.log.count_window_drop(window.kind)
                self.sim.stats.counter(f"faults.drops_{window.kind}").add()
                return True
        rng = self.sim.rng
        if (
            self._drop_prob
            and (self._drop_selector is None or self._drop_selector(delivery))
            and rng.random("faults.drop") < self._drop_prob
        ):
            self.log.messages_dropped += 1
            self.sim.stats.counter("faults.drops_random").add()
            return True
        if (
            self._corrupt_prob
            and (self._corrupt_selector is None or self._corrupt_selector(delivery))
            and rng.random("faults.corrupt") < self._corrupt_prob
        ):
            self._corrupt(delivery)
        return False

    def _install(self) -> None:
        """Arm this injector, chaining onto any existing fault filter.

        A second injector composes with the first (a delivery is dropped
        if *any* armed filter drops it) instead of clobbering it.
        """
        self._active = True
        if self._installed_filter is not None:
            return
        fabric = self.cluster.fabric
        prev = fabric.fault_filter

        def fault_filter(delivery: Delivery) -> bool:
            if self._active and self._apply(delivery):
                return True
            return prev(delivery) if prev is not None else False

        self._prev_filter = prev
        self._installed_filter = fault_filter
        fabric.fault_filter = fault_filter

    def _corrupt(self, delivery: Delivery) -> None:
        target = delivery.packet if delivery.packet is not None else delivery.message
        if target.data:
            flipped = bytes([target.data[0] ^ 0xFF]) + target.data[1:]
            target.data = flipped
            self.log.payloads_corrupted += 1

    def clear(self) -> None:
        """Disarm this injector's fabric-level faults (node deaths are
        permanent).  Restores the previously installed fault filter when
        this injector is at the head of the chain; when another hook was
        installed after us, we stay in place as a pass-through."""
        self._drop_prob = 0.0
        self._drop_selector = None
        self._corrupt_prob = 0.0
        self._corrupt_selector = None
        self._windows.clear()
        self._active = False
        for state, events, up_fn in self._route_marks:
            for ev in events:
                ev.cancel()
            if state["down"] and not state["up"]:
                up_fn()  # restore an element we left marked down
        self._route_marks.clear()
        fabric = self.cluster.fabric
        if self._installed_filter is not None and fabric.fault_filter is self._installed_filter:
            fabric.fault_filter = self._prev_filter
            self._installed_filter = None
            self._prev_filter = None

    # --- diagnostics -------------------------------------------------------------------

    def summary(self) -> list[str]:
        """Human-readable account of injected faults (chaos-run logs)."""
        lines = [
            f"messages dropped: {self.log.messages_dropped} "
            f"(windows: {self.log.total_window_drops})",
            f"payloads corrupted: {self.log.payloads_corrupted}",
        ]
        for node, t in self.log.node_failures:
            lines.append(f"node {node} killed at {t:.0f}ns")
        for node, t in self.log.crashes:
            lines.append(f"node {node} crash-stopped at {t:.0f}ns")
        for node, t in self.log.restarts:
            lines.append(f"node {node} restarted at {t:.0f}ns")
        for kind, start, end, label in self.log.windows:
            hits = self.log.window_drops.get(kind, 0)
            end_s = "inf" if math.isinf(end) else f"{end:.0f}"
            lines.append(f"{kind} [{label}] {start:.0f}-{end_s}ns ({hits} {kind} drops total)")
        return lines
