"""Timeout-based failure detection (heartbeat + phi-accrual-lite).

The paper's §IV-F recovery story starts *after* a failure is known; this
module supplies the missing detection step so applications get a
:class:`PeerFailed` completion instead of hanging in
``wait_completion``.  Watching a peer starts a deterministic ping loop
(probes ride the reliability transport's raw heartbeat path); every
receipt from the peer — data, ACK, or pong — is a proof of life.  A
peer is *suspected* when nothing has been heard for ``phi`` times the
smoothed inter-arrival of proofs (with a configured floor), the
"phi-accrual-lite" rule: adaptive like phi-accrual, but thresholding
the smoothed mean directly instead of a full CDF estimate.

The transport also short-circuits detection: a message that exhausts its
retry budget is immediate evidence of death, reported via
:meth:`FailureDetector.force_suspect` without waiting out the timeout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..sim.process import Future
from .transport import ReliabilityConfig, ReliableTransport


@dataclass(frozen=True)
class PeerFailed:
    """The completion an application receives when a peer is suspected."""

    peer: int
    time: float  # simulated time of suspicion
    reason: str


@dataclass
class Watch:
    """Handle for one monitored peer; cancel to stop probing."""

    peer: int
    active: bool = True
    #: resolves with the PeerFailed record when suspicion fires.
    failed: Optional[Future] = None
    deadline_timer: object = None

    def cancel(self) -> None:
        """Stop monitoring (pending ping loop unwinds at its next tick)."""
        self.active = False


class FailureDetector:
    """Per-NIC failure detector driven by the reliability transport."""

    def __init__(self, nic, transport: ReliableTransport, cfg: ReliabilityConfig) -> None:
        self.nic = nic
        self.sim = nic.sim
        self.cfg = cfg
        self.transport = transport
        self._watches: dict[int, Watch] = {}
        self._last_heard: dict[int, float] = {}
        #: smoothed inter-arrival of proofs of life, per peer (EWMA).
        self._smoothed: dict[int, float] = {}
        self.suspected: dict[int, PeerFailed] = {}
        self._callbacks: list[Callable[[PeerFailed], None]] = []
        #: open suspicion spans, peer -> Span (suspect -> reinstate).
        self._susp_spans: dict[int, object] = {}
        transport.on_heard_from = self.heard_from
        transport.on_give_up = self.force_suspect

    # ------------------------------------------------------------------ API

    def watch(self, peer: int, deadline: Optional[float] = None) -> Watch:
        """Start monitoring *peer*; returns the :class:`Watch` handle.

        The ping loop stops when suspicion fires, when the watch is
        cancelled, or after ``deadline`` ns (so a simulation whose peers
        all stay healthy still terminates).
        """
        w = self._watches.get(peer)
        if w is not None and w.active:
            return w
        w = Watch(peer=peer, failed=Future(self.sim))
        self._watches[peer] = w
        failed = self.suspected.get(peer)
        if failed is not None:
            w.active = False
            w.failed.resolve(failed)
            return w
        self._last_heard[peer] = self.sim.now
        if deadline is not None:
            w.deadline_timer = self.sim.schedule(deadline, w.cancel)
        self.transport.send_ping(peer)
        self.sim.schedule(self.cfg.heartbeat_interval, self._tick, w)
        return w

    def failure_future(self, peer: int) -> Future:
        """A future resolved with :class:`PeerFailed` (starts a watch)."""
        return self.watch(peer).failed

    def on_failure(self, cb: Callable[[PeerFailed], None]) -> None:
        """Register a callback fired once per newly suspected peer."""
        self._callbacks.append(cb)

    def is_suspected(self, peer: int) -> bool:
        return peer in self.suspected

    def suspicion_timeout(self, peer: int) -> float:
        """Current adaptive timeout for *peer* (phi-accrual-lite)."""
        mean = self._smoothed.get(peer, self.cfg.heartbeat_interval)
        return max(
            self.cfg.min_suspicion_timeout,
            self.cfg.suspicion_phi * max(mean, self.cfg.heartbeat_interval),
        )

    # ------------------------------------------------------------------ evidence

    def heard_from(self, peer: int) -> None:
        """Any receipt from *peer* is a proof of life."""
        now = self.sim.now
        prev = self._last_heard.get(peer)
        if prev is not None:
            interval = now - prev
            mean = self._smoothed.get(peer)
            self._smoothed[peer] = (
                interval if mean is None else 0.8 * mean + 0.2 * interval
            )
        self._last_heard[peer] = now

    def force_suspect(self, peer: int, reason: str) -> None:
        """Immediate suspicion (e.g. transport retry budget exhausted)."""
        self._suspect(peer, reason)

    def reinstate(self, peer: int) -> None:
        """Un-suspect *peer*: it crashed, restarted and rejoined.

        Clears the suspicion record and liveness history so a fresh
        :meth:`watch` starts from scratch.  Old watches stay resolved —
        a ``PeerFailed`` the application already consumed is history,
        not state — and a new watch must be started explicitly.
        """
        if self.suspected.pop(peer, None) is None:
            return
        self._watches.pop(peer, None)
        self._smoothed.pop(peer, None)
        self._last_heard[peer] = self.sim.now
        self.nic.stat("peers_reinstated").add()
        self.sim.stats.counter("reliability.peers_reinstated").add()
        self.sim.spans.end(self._susp_spans.pop(peer, None), outcome="reinstated")
        self.nic.trace("peer_reinstated", peer=peer)

    def shutdown(self) -> None:
        """Deactivate this detector forever (its NIC crashed): every
        watch is cancelled so pending ping loops unwind silently."""
        for w in self._watches.values():
            w.active = False
        self._watches.clear()
        self._callbacks.clear()

    # ------------------------------------------------------------------ internals

    def _tick(self, w: Watch) -> None:
        if not w.active or w.peer in self.suspected or self.nic.failed:
            return
        elapsed = self.sim.now - self._last_heard.get(w.peer, self.sim.now)
        if elapsed > self.suspicion_timeout(w.peer):
            self._suspect(w.peer, f"no proof of life for {elapsed:.0f}ns")
            return
        self.transport.send_ping(w.peer)
        self.sim.schedule(self.cfg.heartbeat_interval, self._tick, w)

    def _suspect(self, peer: int, reason: str) -> None:
        if peer in self.suspected:
            return
        record = PeerFailed(peer=peer, time=self.sim.now, reason=reason)
        self.suspected[peer] = record
        self.nic.stat("peers_suspected").add()
        self.sim.stats.counter("reliability.peers_suspected").add()
        spans = self.sim.spans
        if spans.active and spans.wants("detector"):
            self._susp_spans[peer] = spans.begin(
                "detector", "suspicion", observer=self.nic.name, peer=peer, reason=reason
            )
        self.nic.trace("peer_suspected", peer=peer, reason=reason)
        w = self._watches.get(peer)
        if w is not None:
            w.active = False
            if w.failed is not None and not w.failed.done:
                w.failed.resolve(record)
        self.nic.on_peer_suspected(record)
        for cb in list(self._callbacks):
            cb(record)
