"""Reliable delivery over a lossy fabric (ARQ with SACK + dedup).

RVMA's completion semantics assume every packet that reaches the NIC is
eventually placed; the fault hooks in :mod:`repro.faults` break that
assumption (drops, link flaps, partitions), and a single lost packet
stalls ``wait_completion`` forever under ``EPOCH_BYTES``.  This module
owns reliability in the transport — the same layering RAMC uses to run
notifiable RMA over a lossy Slingshot fabric:

* the **sender** wraps every application message in a
  :class:`~repro.nic.headers.SeqHeader` with a per-(src, dst, mailbox)
  sequence number and retransmits on timeout with exponential backoff
  and deterministic jitter (drawn from named ``sim.rng`` streams), up
  to a configurable retry budget;
* the **receiver** tracks delivered fragments per sequence number,
  suppresses duplicates *before* they reach the NIC's placement path —
  so RVMA's offset-based placement and threshold counters stay
  idempotent — and answers with cumulative+selective ACKs;
* both sides feed the :class:`~repro.reliability.detector.FailureDetector`
  (any receipt from a peer is a liveness proof; an exhausted retry
  budget is immediate evidence of death).

The transport is enabled by setting
:attr:`repro.nic.base.NicConfig.reliability`; with it unset, the NICs
behave exactly as before (happy-path modelling, zero overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..network.message import Delivery, Message, Packet
from ..nic.headers import CONTROL_BYTES, HeartbeatHeader, ReliAckHeader, SeqHeader

#: Cap on the SACK list carried by one ACK (wire-size realism; anything
#: beyond the cap is simply re-acked later or retransmitted).
MAX_SACKS = 64


@dataclass
class ReliabilityConfig:
    """Knobs of the retransmission protocol and failure detector."""

    #: Initial retransmission timeout (ns) — should exceed one RTT.
    retransmit_timeout: float = 30_000.0
    #: Multiplier applied to the timeout after every failed attempt.
    backoff_factor: float = 2.0
    #: Ceiling on the backed-off timeout (ns).
    max_backoff: float = 2_000_000.0
    #: Deterministic jitter: each timeout is stretched by up to this
    #: fraction, drawn from the named stream ``<nic>.rel.jitter`` so
    #: runs stay exactly reproducible and senders desynchronize.
    jitter_frac: float = 0.1
    #: Retransmissions per message before the transport gives up and
    #: reports the peer to the failure detector.
    max_retries: int = 8
    #: Failure-detector probe period (ns).
    heartbeat_interval: float = 50_000.0
    #: Suspicion threshold: a peer is suspected when nothing has been
    #: heard for ``phi`` times the smoothed inter-arrival of proofs of
    #: life (phi-accrual-lite).
    suspicion_phi: float = 6.0
    #: Floor on the suspicion timeout (ns) so a quiet-but-alive peer is
    #: not declared dead during normal gaps.
    min_suspicion_timeout: float = 150_000.0


@dataclass
class _TxRecord:
    """One unacknowledged message on the sender side."""

    seq: int
    dst: int
    flow: int
    size: int
    env: SeqHeader
    data: bytes
    mode: object
    timeout: float
    attempts: int = 0
    timer: object = None  # scheduled Event for the pending timeout
    span: object = None  # open observability span (send -> ack), if tracing


@dataclass
class _TxFlow:
    next_seq: int = 1
    pending: dict = field(default_factory=dict)  # seq -> _TxRecord


@dataclass
class _RxPartial:
    """A sequence number some of whose fragments have arrived."""

    inner_msg: Message
    offsets: set = field(default_factory=set)
    bytes_got: int = 0
    #: ordered flows: (offset, Delivery) withheld until dispatch time.
    frags: list = field(default_factory=list)


@dataclass
class _RxFlow:
    cum: int = 0  # every seq <= cum fully delivered
    complete: set = field(default_factory=set)  # out-of-order completed seqs
    partial: dict = field(default_factory=dict)  # seq -> _RxPartial
    #: ordered flows only: next seq the NIC may see, and fully-arrived
    #: messages held back until their turn (seq -> fragment list).
    next_dispatch: int = 1
    held: dict = field(default_factory=dict)

    def advance(self, seq: int) -> None:
        """Mark *seq* fully delivered and slide the cumulative edge."""
        self.complete.add(seq)
        while self.cum + 1 in self.complete:
            self.cum += 1
            self.complete.discard(self.cum)

    def seen(self, seq: int) -> bool:
        return seq <= self.cum or seq in self.complete


class ReliableTransport:
    """Per-NIC reliability layer (sender + receiver halves).

    Installed by :class:`repro.nic.base.BaseNic` when its config carries
    a :class:`ReliabilityConfig`; the NIC routes all application traffic
    through :meth:`send` and registers this object's handlers for the
    envelope/ACK/heartbeat headers.
    """

    def __init__(self, nic, cfg: ReliabilityConfig) -> None:
        self.nic = nic
        self.sim = nic.sim
        self.cfg = cfg
        self._tx: dict[tuple[int, int], _TxFlow] = {}
        self._rx: dict[tuple[int, int], _RxFlow] = {}
        #: per-(dst, flow) retransmit counts for hottest-flow diagnostics.
        self.flow_retransmits: dict[tuple[int, int], int] = {}
        #: invoked with (peer, reason) when a message exhausts its budget.
        self.on_give_up: Optional[Callable[[int, str], None]] = None
        #: invoked with the peer id on every receipt (liveness proof).
        self.on_heard_from: Optional[Callable[[int], None]] = None
        #: crash-restart recovery: duck-typed send journal
        #: (:class:`repro.recovery.checkpoint.SendJournal`); every
        #: :meth:`send` is recorded so a rejoin can replay it.
        self.journal = None
        self._shutdown = False
        self._hb_seq = 0
        #: canonical distribution: attempts needed per acked message.
        self._attempts_summary = self.sim.stats.summary("transport.tx_attempts")
        nic.register_handler(SeqHeader, self._on_seq)
        nic.register_handler(ReliAckHeader, self._on_ack)
        nic.register_handler(HeartbeatHeader, self._on_heartbeat)

    # ------------------------------------------------------------------ helpers

    @staticmethod
    def flow_of(header) -> int:
        """Flow discriminator: the mailbox for RVMA traffic, else 0."""
        return getattr(header, "mailbox", 0) or 0

    def wraps(self, header) -> bool:
        """Whether *header* rides inside the reliability envelope.

        The transport's own control traffic (ACKs, heartbeats) is sent
        raw: its loss is already handled by retransmission/probing, and
        wrapping it would recurse.
        """
        return not isinstance(header, (SeqHeader, ReliAckHeader, HeartbeatHeader))

    def _stat(self, suffix: str, n: int = 1) -> None:
        self.nic.stat(suffix).add(n)
        self.sim.stats.counter(f"reliability.{suffix}").add(n)

    # ------------------------------------------------------------------ sender

    def send(self, dst: int, size: int, header, data: bytes, mode) -> Message:
        """Transmit reliably: assign a sequence number, arm the timer."""
        flow = self.flow_of(header)
        fl = self._tx.setdefault((dst, flow), _TxFlow())
        seq = fl.next_seq
        fl.next_seq += 1
        env = SeqHeader(flow=flow, seq=seq, inner=header)
        rec = _TxRecord(
            seq=seq,
            dst=dst,
            flow=flow,
            size=size,
            env=env,
            data=data,
            mode=mode,
            timeout=self.cfg.retransmit_timeout,
        )
        fl.pending[seq] = rec
        if self.journal is not None:
            self.journal.note_send(dst, flow, seq, size, header, data, mode)
        self._stat("rel_tx")
        spans = self.sim.spans
        if spans.active and spans.wants("transport"):
            rec.span = spans.begin(
                "transport", "send_to_ack", dst=dst, flow=flow, seq=seq, size=size
            )
        return self._transmit(rec)

    def _transmit(self, rec: _TxRecord) -> Message:
        msg = self.nic.fabric.send(
            self.nic.node_id, rec.dst, rec.size, header=rec.env, data=rec.data, mode=rec.mode
        )
        jitter = 1.0 + self.cfg.jitter_frac * self.sim.rng.random(
            f"{self.nic.name}.rel.jitter"
        )
        rec.timer = self.sim.schedule(
            rec.timeout * jitter, self._on_timeout, rec.dst, rec.flow, rec.seq
        )
        return msg

    def _transmit_batch(self, recs: list) -> None:
        """Retransmit a burst of records, re-arming timers in batch.

        Jitter draws happen in record order (same rng stream consumption
        as one-at-a-time transmission); records whose jittered delays
        coincide — always, when ``jitter_frac`` is 0 — share a single
        bucketed heap entry via :meth:`Simulator.schedule_batch`.
        """
        sim = self.sim
        jfrac = self.cfg.jitter_frac
        stream = f"{self.nic.name}.rel.jitter"
        by_delay: dict = {}
        for rec in recs:
            self.nic.fabric.send(
                self.nic.node_id, rec.dst, rec.size,
                header=rec.env, data=rec.data, mode=rec.mode,
            )
            jitter = 1.0 + jfrac * sim.rng.random(stream)
            by_delay.setdefault(rec.timeout * jitter, []).append(rec)
        for delay, group in by_delay.items():
            events = sim.schedule_batch(
                delay, [(self._on_timeout, (r.dst, r.flow, r.seq)) for r in group]
            )
            for r, ev in zip(group, events):
                r.timer = ev

    def _on_timeout(self, dst: int, flow: int, seq: int) -> None:
        fl = self._tx.get((dst, flow))
        rec = fl.pending.get(seq) if fl is not None else None
        if rec is None:
            return  # acked in the meantime
        if self.nic.failed:
            # A dead node retransmits nothing; drop the pending state so
            # the event heap drains and the simulation terminates.
            fl.pending.pop(seq, None)
            self.sim.spans.end(rec.span, outcome="sender_failed")
            return
        rec.attempts += 1
        if rec.attempts > self.cfg.max_retries:
            fl.pending.pop(seq, None)
            self._stat("rel_gave_up")
            self.sim.spans.end(rec.span, outcome="gave_up", attempts=rec.attempts)
            self.nic.trace("rel_give_up", dst=dst, flow=flow, seq=seq)
            if self.on_give_up is not None:
                self.on_give_up(dst, f"retry budget exhausted (flow {flow:#x} seq {seq})")
            return
        rec.timeout = min(rec.timeout * self.cfg.backoff_factor, self.cfg.max_backoff)
        rec.env = SeqHeader(flow=flow, seq=seq, inner=rec.env.inner, attempt=rec.attempts)
        key = (dst, flow)
        self.flow_retransmits[key] = self.flow_retransmits.get(key, 0) + 1
        self._stat("rel_retransmits")
        self._transmit(rec)

    def _on_ack(self, delivery: Delivery) -> None:
        hdr: ReliAckHeader = delivery.message.header
        peer = delivery.message.src
        self._heard(peer)
        self._stat("rel_acks_rx")
        fl = self._tx.get((peer, hdr.flow))
        if fl is None:
            return
        sacks = set(hdr.sacks)
        spans = self.sim.spans
        attempts = self._attempts_summary
        for seq in [s for s in fl.pending if s <= hdr.cum or s in sacks]:
            rec = fl.pending.pop(seq)
            if rec.timer is not None:
                rec.timer.cancel()
            attempts.add(rec.attempts + 1)
            if rec.span is not None:
                spans.end(rec.span, outcome="acked", attempts=rec.attempts + 1)

    def unacked(self, dst: Optional[int] = None) -> int:
        """Outstanding unacknowledged messages (optionally to one peer)."""
        return sum(
            len(fl.pending)
            for (d, _f), fl in self._tx.items()
            if dst is None or d == dst
        )

    # ------------------------------------------------------------------ receiver

    def _on_seq(self, delivery: Delivery) -> None:
        msg = delivery.message
        env: SeqHeader = msg.header
        peer = msg.src
        self._heard(peer)
        rx = self._rx.setdefault((peer, env.flow), _RxFlow())
        if rx.seen(env.seq):
            # Whole-message duplicate (a retransmit raced the ACK, or the
            # ACK was lost): suppress before placement, re-ack so the
            # sender's timer dies.
            self._stat("rel_dups_suppressed")
            self._send_ack(peer, env.flow, rx)
            return
        part = rx.partial.get(env.seq)
        if part is None:
            # Rebuild the inner message once per sequence number so every
            # fragment (and every retransmission) feeds the same
            # application-level op.
            inner_msg = Message(
                src=msg.src, dst=msg.dst, size=msg.size, header=env.inner, data=msg.data
            )
            inner_msg.send_time = msg.send_time
            part = rx.partial[env.seq] = _RxPartial(inner_msg=inner_msg)
        if delivery.packet is None:
            frag_key, got, inner_pkt = 0, msg.size, None
        else:
            pkt = delivery.packet
            frag_key, got = pkt.offset, pkt.size
            if frag_key in part.offsets:
                self._stat("rel_dups_suppressed")
                return  # duplicate fragment of a still-incomplete message
            inner_pkt = Packet(
                message=part.inner_msg,
                seq=pkt.seq,
                offset=pkt.offset,
                size=pkt.size,
                data=pkt.data,
                is_last=pkt.is_last,
            )
        part.offsets.add(frag_key)
        part.bytes_got += got
        item = Delivery(part.inner_msg, delivery.info, packet=inner_pkt)
        ordered = self.nic.flow_ordered(env.flow)
        if ordered:
            # Receiver-Managed flows: appends must land in stream order,
            # so hold every fragment until the message is complete and
            # the sequence number is next in line.
            part.frags.append((frag_key, item))
        else:
            self.nic.dispatch_inner(item)
        if part.bytes_got >= part.inner_msg.size:
            del rx.partial[env.seq]
            rx.advance(env.seq)
            if ordered:
                rx.held[env.seq] = part.frags
                self._flush_ordered(peer, env.flow, rx)
            else:
                self._note_dispatched(peer, env.flow, env.seq)
            self._stat("rel_delivered")
            self._send_ack(peer, env.flow, rx)

    def _flush_ordered(self, peer: int, flow: int, rx: _RxFlow) -> None:
        """Dispatch held messages of an ordered flow, strictly in
        sequence order (and each message's fragments in offset order)."""
        room = self.nic.flow_room(flow)
        while rx.next_dispatch in rx.held:
            seq = rx.next_dispatch
            frags = rx.held[seq]
            if room is not None and frags:
                msg = frags[0][1].message
                need = getattr(msg.header, "total_size", msg.size)
                if need > room:
                    # Receiver pacing: the MANAGED bucket cannot absorb
                    # the whole message, and a partial append followed
                    # by a NACKed retry would duplicate the placed
                    # prefix mid-stream.  Keep it held — the NIC pokes
                    # us again when the application posts a buffer.
                    self._stat("rel_rx_paced")
                    break
                room -= need
            for _off, item in sorted(rx.held.pop(seq), key=lambda p: p[0]):
                self.nic.dispatch_inner(item)
            self._note_dispatched(peer, flow, seq)
            rx.next_dispatch += 1

    def on_buffer_posted(self, flow: int) -> None:
        """NIC hook: a buffer landed in *flow*'s bucket — ordered
        messages held back by receiver pacing may now fit."""
        for (peer, f), rx in list(self._rx.items()):
            if f == flow and rx.held:
                self._flush_ordered(peer, f, rx)

    def _note_dispatched(self, peer: int, flow: int, seq: int) -> None:
        aud = self.nic.auditor
        if aud is not None:
            aud.on_transport_dispatch(self.nic.node_id, peer, flow, seq)

    def _send_ack(self, peer: int, flow: int, rx: _RxFlow) -> None:
        if self.nic.failed:
            return
        sacks = tuple(sorted(rx.complete)[:MAX_SACKS])
        self._stat("rel_acks_tx")
        self.nic.fabric.send(
            self.nic.node_id,
            peer,
            CONTROL_BYTES,
            header=ReliAckHeader(flow=flow, cum=rx.cum, sacks=sacks),
        )

    # ------------------------------------------------------------------ heartbeats

    def send_ping(self, peer: int) -> None:
        """Emit one failure-detector probe (raw, unreliable by design)."""
        if self.nic.failed:
            return
        self._hb_seq += 1
        self._stat("rel_pings_tx")
        self.nic.fabric.send(
            self.nic.node_id,
            peer,
            CONTROL_BYTES,
            header=HeartbeatHeader(kind="ping", seq=self._hb_seq),
        )

    def _on_heartbeat(self, delivery: Delivery) -> None:
        hdr: HeartbeatHeader = delivery.message.header
        peer = delivery.message.src
        self._heard(peer)
        if hdr.kind == "ping" and not self.nic.failed:
            self.nic.fabric.send(
                self.nic.node_id,
                peer,
                CONTROL_BYTES,
                header=HeartbeatHeader(kind="pong", seq=hdr.seq),
            )

    def _heard(self, peer: int) -> None:
        if self.on_heard_from is not None:
            self.on_heard_from(peer)

    # ------------------------------------------------------------------ crash-restart recovery

    def shutdown(self) -> None:
        """Silence this transport forever (its NIC crashed).

        Cancels every retransmission timer and clears flow state so the
        zombie instance can neither resend with stale sequence numbers
        nor fire give-up suspicion after the node's next incarnation
        takes over.
        """
        self._shutdown = True
        for fl in self._tx.values():
            for rec in fl.pending.values():
                if rec.timer is not None:
                    rec.timer.cancel()
        self._tx.clear()
        self._rx.clear()
        self.on_give_up = None
        self.on_heard_from = None
        self.journal = None

    def quiescent_rx(self) -> bool:
        """Whether no receive flow has partially arrived or withheld
        messages.  Checkpoints require this: a cumulative edge advanced
        past data the NIC has not fully placed would, after restore,
        count bytes the LUT never saw."""
        return not any(fl.partial or fl.held for fl in self._rx.values())

    def rx_cums(self, peer: Optional[int] = None) -> dict[tuple[int, int], int]:
        """Receive-side cumulative edges per (peer, flow) — the state a
        checkpoint persists and a rejoin negotiates from."""
        return {
            (p, flow): fl.cum
            for (p, flow), fl in self._rx.items()
            if peer is None or p == peer
        }

    def tx_next_seqs(self) -> dict[tuple[int, int], int]:
        """Send-side next sequence number per (dst, flow)."""
        return {key: fl.next_seq for key, fl in self._tx.items()}

    def restore_rx_flow(self, peer: int, flow: int, cum: int) -> None:
        """Reinstate a receive flow at a checkpointed cumulative edge.

        Anything beyond ``cum`` was lost with the NIC: the peer will
        replay it, and the replay is accepted as new (out-of-order
        completions and held messages are deliberately *not* restored —
        re-dispatch of a replayed message is idempotent for steered
        windows and required for ordered ones that never dispatched)."""
        self._rx[(peer, flow)] = _RxFlow(cum=cum, next_dispatch=cum + 1)

    def seed_tx_flow(self, dst: int, flow: int, next_seq: int) -> None:
        """Continue a flow's sequence space across a crash (never rewind:
        receivers dedup by seq, so reuse would silently drop sends)."""
        fl = self._tx.setdefault((dst, flow), _TxFlow())
        fl.next_seq = max(fl.next_seq, next_seq)

    def replay_flows(self, dst: int, cums: dict, journal) -> list[str]:
        """Resend journaled messages the peer proved it never received.

        ``cums`` maps flow -> the peer's cumulative sequence edge for
        traffic from this node; every journaled send beyond it is
        retransmitted with its *original* sequence number (the peer's
        dedup state stays valid).  Returns a list of coverage holes —
        flows whose journal no longer retains a needed entry — for the
        recovery report; an empty list means full replay coverage.
        """
        holes: list[str] = []
        flows = set(cums) | set(journal.flows_for(dst))
        for flow in sorted(flows):
            cum = cums.get(flow, 0)
            fl = self._tx.setdefault((dst, flow), _TxFlow())
            for seq in [s for s in fl.pending if s <= cum]:
                rec = fl.pending.pop(seq)
                if rec.timer is not None:
                    rec.timer.cancel()
            entries, hole = journal.entries_after(dst, flow, cum)
            if hole:
                holes.append(
                    f"node{self.nic.node_id}->node{dst} flow {flow:#x}: "
                    f"journal retains from seq {hole}, peer needs {cum + 1}"
                )
            replay_recs = []
            for e in entries:
                rec = fl.pending.get(e.seq)
                if rec is None:
                    env = SeqHeader(flow=flow, seq=e.seq, inner=e.header)
                    rec = _TxRecord(
                        seq=e.seq, dst=dst, flow=flow, size=e.size, env=env,
                        data=e.data, mode=e.mode, timeout=self.cfg.retransmit_timeout,
                    )
                    fl.pending[e.seq] = rec
                elif rec.timer is not None:
                    rec.timer.cancel()
                self._stat("rel_replays")
                replay_recs.append(rec)
            self._transmit_batch(replay_recs)
            fl.next_seq = max(fl.next_seq, journal.next_seq_hint(dst, flow))
        return holes

    # ------------------------------------------------------------------ diagnostics

    def hottest_flows(self, k: int = 10) -> list[tuple[str, int]]:
        """Top-*k* flows by retransmissions — ``hottest_channels``-style
        debug output for chaos runs (which mailbox is suffering)."""
        ranked = sorted(
            self.flow_retransmits.items(), key=lambda kv: kv[1], reverse=True
        )[:k]
        return [
            (f"{self.nic.name}->node{dst}[mbox {flow:#x}]", n)
            for (dst, flow), n in ranked
        ]


def hottest_retransmit_flows(cluster, k: int = 10) -> list[tuple[str, int]]:
    """Cluster-wide hottest flows by retransmit count (diagnostics)."""
    rows: list[tuple[str, int]] = []
    for node in cluster.nodes:
        transport = getattr(node.nic, "transport", None)
        if transport is not None:
            rows.extend(transport.hottest_flows(k))
    rows.sort(key=lambda kv: kv[1], reverse=True)
    return rows[:k]
