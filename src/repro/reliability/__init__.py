"""End-to-end reliability: retransmission transport + failure detector.

Enable by passing ``reliability=ReliabilityConfig(...)`` in any NIC
config; see :mod:`repro.reliability.transport` for the protocol and
:mod:`repro.reliability.detector` for peer-death detection.
"""

from .detector import FailureDetector, PeerFailed, Watch
from .transport import ReliabilityConfig, ReliableTransport, hottest_retransmit_flows

__all__ = [
    "FailureDetector",
    "PeerFailed",
    "ReliabilityConfig",
    "ReliableTransport",
    "Watch",
    "hottest_retransmit_flows",
]
