"""Byte-accurate host memory for one node.

The simulator stores *real bytes*, not abstract tokens: data-integrity
assertions (e.g. "out-of-order packet delivery still reconstructs the
payload", "rewind recovers the previous epoch's contents") verify actual
memory contents.

Memory is organized as a bump allocator over a flat 48-bit physical
space.  Reads and writes must fall inside a single allocation —
crossing allocations is a simulated wild pointer and raises
:class:`MemoryFault`.

Write *watchpoints* let other components observe stores to an address
range; the Monitor/MWait model and last-byte pollers are built on them.
"""

from __future__ import annotations

import bisect
from typing import Callable

from .address import CACHE_LINE, align_up


class MemoryFault(RuntimeError):
    """Access outside any allocation or crossing allocation bounds."""


class Allocation:
    """One contiguous allocation: [base, base+size) backed by a bytearray.

    Backing storage materialises on first access so that size-only
    simulations (motifs at 8,192 nodes) never pay for payload bytes.
    """

    __slots__ = ("base", "size", "_data", "label")

    def __init__(self, base: int, size: int, label: str = "") -> None:
        self.base = base
        self.size = size
        self._data: bytearray | None = None
        self.label = label

    @property
    def data(self) -> bytearray:
        if self._data is None:
            self._data = bytearray(self.size)
        return self._data

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, length: int = 1) -> bool:
        """Whether [addr, addr+length) falls inside this allocation."""
        return self.base <= addr and addr + length <= self.end

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Allocation {self.label or hex(self.base)} base={self.base:#x} size={self.size}>"


class NodeMemory:
    """Physical memory of a simulated node.

    Parameters
    ----------
    base:
        First allocatable physical address (kept non-zero so that 0 can
        serve as a null pointer in completion words).
    """

    def __init__(self, base: int = 0x1000) -> None:
        self._next = base
        self._bases: list[int] = []  # sorted allocation base addresses
        self._allocs: list[Allocation] = []  # parallel to _bases
        self._watchpoints: list[tuple[int, int, Callable[[int, bytes], None]]] = []
        self.bytes_written = 0
        self.bytes_read = 0
        #: last allocation hit by find() — NIC placement streams revisit
        #: the same buffer for thousands of consecutive accesses, so this
        #: turns the bisect into a bounds check on the hot path.
        self._last_hit: Allocation | None = None

    # --- allocation -----------------------------------------------------------

    def alloc(self, size: int, align: int = CACHE_LINE, label: str = "") -> Allocation:
        """Allocate *size* bytes aligned to *align*; returns the Allocation."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        base = align_up(self._next, align)
        alloc = Allocation(base, size, label)
        self._next = base + size
        self._bases.append(base)
        self._allocs.append(alloc)
        return alloc

    def find(self, addr: int, length: int = 1) -> Allocation:
        """Allocation containing [addr, addr+length), else MemoryFault."""
        a = self._last_hit
        if a is not None and a.base <= addr and addr + length <= a.base + a.size:
            return a
        i = bisect.bisect_right(self._bases, addr) - 1
        if i >= 0:
            a = self._allocs[i]
            if a.contains(addr, length):
                self._last_hit = a
                return a
        raise MemoryFault(f"access [{addr:#x}, +{length}) hits no allocation")

    # --- access -----------------------------------------------------------------

    def write(self, addr: int, data: bytes) -> None:
        """Store *data* at *addr*; fires any overlapping watchpoints."""
        if not data:
            return
        a = self.find(addr, len(data))
        off = addr - a.base
        a.data[off : off + len(data)] = data
        self.bytes_written += len(data)
        self._fire_watchpoints(addr, data)

    def read(self, addr: int, length: int) -> bytes:
        """Load *length* bytes from *addr*."""
        if length <= 0:
            return b""
        a = self.find(addr, length)
        off = addr - a.base
        self.bytes_read += length
        return bytes(a.data[off : off + length])

    def write_u64(self, addr: int, value: int) -> None:
        """Store a little-endian 64-bit word (completion pointers/lengths)."""
        self.write(addr, int(value).to_bytes(8, "little"))

    def read_u64(self, addr: int) -> int:
        """Load a little-endian 64-bit word."""
        return int.from_bytes(self.read(addr, 8), "little")

    def fill(self, addr: int, length: int, byte: int) -> None:
        """memset-style helper used by tests and fault injection."""
        self.write(addr, bytes([byte]) * length)

    # --- watchpoints ---------------------------------------------------------------

    def add_watchpoint(
        self, addr: int, length: int, callback: Callable[[int, bytes], None]
    ) -> tuple:
        """Invoke ``callback(addr, data)`` whenever a write overlaps the range.

        Returns a token for :meth:`remove_watchpoint`.
        """
        token = (addr, length, callback)
        self._watchpoints.append(token)
        return token

    def remove_watchpoint(self, token: tuple) -> None:
        """Deregister a watchpoint token (idempotent)."""
        try:
            self._watchpoints.remove(token)
        except ValueError:
            pass

    def _fire_watchpoints(self, addr: int, data: bytes) -> None:
        if not self._watchpoints:
            return
        end = addr + len(data)
        # Copy: callbacks may deregister themselves (one-shot MWait).
        for (w_addr, w_len, cb) in list(self._watchpoints):
            if addr < w_addr + w_len and w_addr < end:
                cb(addr, data)
