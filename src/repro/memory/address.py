"""Address arithmetic helpers for the host memory model."""

from __future__ import annotations

#: Host cache line size in bytes.  Completion pointers are cache-line
#: aligned (paper §III-A) so a Monitor/MWait armed on the line wakes on
#: exactly the NIC's completion write.
CACHE_LINE = 64

#: Width of the RVMA virtual (mailbox) address space.  The paper assumes
#: 64-bit mailbox addresses — the same width RDMA needs for raw pointers.
RVMA_ADDR_BITS = 64
RVMA_ADDR_MASK = (1 << RVMA_ADDR_BITS) - 1


def align_up(addr: int, alignment: int) -> int:
    """Smallest address >= *addr* that is a multiple of *alignment*."""
    if alignment <= 0 or (alignment & (alignment - 1)) != 0:
        raise ValueError(f"alignment must be a positive power of two, got {alignment}")
    return (addr + alignment - 1) & ~(alignment - 1)


def align_down(addr: int, alignment: int) -> int:
    """Largest address <= *addr* that is a multiple of *alignment*."""
    if alignment <= 0 or (alignment & (alignment - 1)) != 0:
        raise ValueError(f"alignment must be a positive power of two, got {alignment}")
    return addr & ~(alignment - 1)


def is_aligned(addr: int, alignment: int) -> bool:
    return addr == align_down(addr, alignment)


def cache_line_of(addr: int) -> int:
    """Base address of the cache line containing *addr*."""
    return align_down(addr, CACHE_LINE)


def same_cache_line(a: int, b: int) -> bool:
    return cache_line_of(a) == cache_line_of(b)
