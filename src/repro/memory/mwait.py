"""Monitor/MWait and polling wakeup models (paper §IV-C).

RVMA's completion pointer is a single, caller-known cache line, so a
thread can arm Monitor/MWait on it and wake within ~a clock cycle of
the NIC's completion store.  Polling achieves similar latency at higher
energy, paying on average half the poll interval.  A shared completion
queue (the RDMA baseline) additionally pays a queue-poll overhead per
inspection because entries must be demultiplexed.

These waiters return :class:`repro.sim.process.Future` objects so motif
and microbenchmark processes can ``yield`` on them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.engine import Simulator
from ..sim.process import Future
from .address import CACHE_LINE, cache_line_of
from .memory import NodeMemory

#: Wakeup latency for Monitor/MWait: one to several clock cycles
#: (paper §II); 2 GHz cycle ~ 0.5 ns, we charge 2 ns.
MWAIT_WAKE_NS = 2.0
#: Default busy-poll loop interval on a cached line (L1 hit + compare).
POLL_INTERVAL_NS = 4.0
#: Extra per-inspection cost of demultiplexing a shared completion queue.
CQ_POLL_OVERHEAD_NS = 30.0


@dataclass(frozen=True)
class WakeupModel:
    """How a host thread learns that a memory word changed."""

    name: str
    #: Fixed latency from the triggering store to the thread running again.
    wake_latency: float
    #: Mean waiting overhead added by the mechanism while idle (0 for MWait).
    poll_interval: float = 0.0

    def delay_after_store(self) -> float:
        """Expected ns between the NIC's store and the thread observing it."""
        return self.wake_latency + self.poll_interval / 2.0


MWAIT = WakeupModel("mwait", MWAIT_WAKE_NS)
POLL = WakeupModel("poll", 0.0, POLL_INTERVAL_NS)
CQ_POLL = WakeupModel("cq_poll", CQ_POLL_OVERHEAD_NS, POLL_INTERVAL_NS)


class MemoryWaiter:
    """Arms wakeups on cache lines of a :class:`NodeMemory`.

    ``wait_for_write`` resolves its future one ``delay_after_store()``
    after the first store that touches the watched cache line.
    """

    def __init__(self, sim: Simulator, memory: NodeMemory) -> None:
        self.sim = sim
        self.memory = memory

    def wait_for_write(self, addr: int, model: WakeupModel = MWAIT) -> Future:
        """Future resolving with the store's address once the line is written."""
        fut = Future(self.sim)
        line = cache_line_of(addr)
        token_box: list = []

        def on_write(w_addr: int, _data: bytes) -> None:
            self.memory.remove_watchpoint(token_box[0])
            self.sim.post(model.delay_after_store(), fut.resolve, w_addr)

        token_box.append(self.memory.add_watchpoint(line, CACHE_LINE, on_write))
        return fut

    def wait_for_byte(self, addr: int, expected: int, model: WakeupModel = POLL) -> Future:
        """Future resolving once the byte at *addr* equals *expected*.

        This is the last-byte polling idiom statically routed RDMA uses
        for completion: the sender encodes a per-iteration sentinel in
        the final byte and the receiver spins on it.
        """
        fut = Future(self.sim)
        if self.memory.read(addr, 1)[0] == expected:
            self.sim.post(model.delay_after_store(), fut.resolve, expected)
            return fut
        line = cache_line_of(addr)
        token_box: list = []

        def on_write(_w_addr: int, _data: bytes) -> None:
            if self.memory.read(addr, 1)[0] != expected:
                return
            self.memory.remove_watchpoint(token_box[0])
            self.sim.post(model.delay_after_store(), fut.resolve, expected)

        token_box.append(self.memory.add_watchpoint(line, CACHE_LINE, on_write))
        return fut

    def wait_for_nonzero_u64(self, addr: int, model: WakeupModel = MWAIT) -> Future:
        """Future resolving with the u64 at *addr* once it becomes non-zero.

        This is exactly how an application waits on an RVMA completion
        pointer: the NIC stores the completed buffer's head address
        (never zero) into the notification word.
        """
        fut = Future(self.sim)
        if self.memory.read_u64(addr) != 0:
            self.sim.post(model.delay_after_store(), fut.resolve, self.memory.read_u64(addr))
            return fut
        line = cache_line_of(addr)
        token_box: list = []

        def on_write(_w_addr: int, _data: bytes) -> None:
            value = self.memory.read_u64(addr)
            if value == 0:
                return  # unrelated store to the same line
            self.memory.remove_watchpoint(token_box[0])
            self.sim.post(model.delay_after_store(), fut.resolve, value)

        token_box.append(self.memory.add_watchpoint(line, CACHE_LINE, on_write))
        return fut
