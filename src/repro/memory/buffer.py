"""Typed views over node memory: receive buffers and RDMA memory regions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .memory import Allocation, NodeMemory


class HostBuffer:
    """A user buffer living in a node's memory.

    Wraps an :class:`Allocation` with convenience read/write that is
    bounds-checked against the buffer, not just the allocation.
    """

    __slots__ = ("memory", "alloc",)

    def __init__(self, memory: NodeMemory, alloc: Allocation) -> None:
        self.memory = memory
        self.alloc = alloc

    @classmethod
    def allocate(cls, memory: NodeMemory, size: int, label: str = "buf") -> "HostBuffer":
        return cls(memory, memory.alloc(size, label=label))

    @property
    def addr(self) -> int:
        return self.alloc.base

    @property
    def size(self) -> int:
        return self.alloc.size

    def write(self, offset: int, data: bytes) -> None:
        """Store *data* at *offset*; bounds-checked against the buffer."""
        if offset < 0 or offset + len(data) > self.size:
            raise ValueError(
                f"write [{offset}, +{len(data)}) exceeds buffer of {self.size} bytes"
            )
        self.memory.write(self.addr + offset, data)

    def read(self, offset: int = 0, length: Optional[int] = None) -> bytes:
        """Load *length* bytes from *offset* (defaults to the rest)."""
        if length is None:
            length = self.size - offset
        if offset < 0 or offset + length > self.size:
            raise ValueError(
                f"read [{offset}, +{length}) exceeds buffer of {self.size} bytes"
            )
        return self.memory.read(self.addr + offset, length)

    def contents(self) -> bytes:
        """The whole buffer as bytes."""
        return self.read(0, self.size)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<HostBuffer addr={self.addr:#x} size={self.size}>"


@dataclass(frozen=True)
class MemoryRegion:
    """An RDMA-registered memory region (the thing RVMA hides).

    In RDMA, the *initiator* holds ``(addr, length, rkey)`` for the
    target's memory and embeds the raw address in every operation —
    exactly the exposure RVMA's mailbox indirection removes.
    """

    addr: int
    length: int
    rkey: int
    node_id: int
    lkey: int = 0

    def contains(self, addr: int, length: int) -> bool:
        """Whether [addr, addr+length) falls inside this region."""
        return self.addr <= addr and addr + length <= self.addr + self.length


@dataclass
class PostedBuffer:
    """A receive buffer as posted to an RVMA mailbox (paper §III-B).

    Carries everything ``RVMA_Post_buffer`` hands the NIC: where the
    data goes, how completion is detected, and where the two completion
    words (head pointer, then length) are written.
    """

    buffer: HostBuffer
    #: Address the NIC writes the completed buffer's head pointer to.
    notification_addr: int
    #: Address the NIC writes the completed byte count to (typically
    #: notification_addr + 8, same cache line — paper §III-B).
    length_addr: int
    #: EPOCH_BYTES => count of payload bytes; EPOCH_OPS => count of puts.
    threshold: int
    #: Running counter maintained by the NIC's completion unit.
    counter: int = 0
    #: Highest byte offset written + 1 (reported length for op-counted buffers).
    bytes_received: int = 0
    #: Epoch number assigned when the buffer became the active head.
    epoch: int = -1
    completed: bool = False
