"""PCIe host-bus latency model.

The paper's simulations charge a 150 ns PCIe latency "meant to balance
bus latencies between PCIe Gen 4 and Gen 5" and note Gen 6 brings this
to tens of nanoseconds, which also makes host-memory counter spill
cheap (§III-B, §V-B).  We expose those generations so the LUT-spill
ablation (A1 in DESIGN.md) can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import gbps


@dataclass(frozen=True)
class PcieGen:
    """One PCIe generation: one-way latency and x16 bandwidth."""

    name: str
    #: One-way host<->NIC traversal latency in ns.
    latency: float
    #: Effective x16 data bandwidth in bytes/ns.
    bandwidth: float


#: "~200 ns today" (paper §III-B) — Gen3/4-class hardware.
GEN3 = PcieGen("gen3", 250.0, gbps(126.0))
GEN4 = PcieGen("gen4", 200.0, gbps(252.0))
GEN5 = PcieGen("gen5", 110.0, gbps(504.0))
#: "tens of ns" round trip for Gen 6+ (paper §III-B) => ~10 ns one way.
GEN6 = PcieGen("gen6", 10.0, gbps(1008.0))

#: The paper's simulation setting: 150 ns balancing Gen4 and Gen5 (§V-B).
PAPER_SIM = PcieGen("paper-sim", 150.0, gbps(504.0))

GENERATIONS = {g.name: g for g in (GEN3, GEN4, GEN5, GEN6, PAPER_SIM)}


class PcieBus:
    """Serializing host bus between CPU/memory and the NIC.

    For the experiments, PCIe matters as a per-transaction latency
    (doorbells, DMA setup, completion stores); the paper sizes host-bus
    bandwidth so it "is always sufficient to keep the NIC/link supplied
    with data at line rate" (§V-B), so we model bandwidth but default it
    high enough never to throttle.
    """

    def __init__(self, gen: PcieGen = PAPER_SIM) -> None:
        self.gen = gen
        self.transactions = 0

    @property
    def latency(self) -> float:
        return self.gen.latency

    def transaction_time(self, size_bytes: int = 0) -> float:
        """One-way time for a transaction carrying *size_bytes*."""
        self.transactions += 1
        return self.gen.latency + (size_bytes / self.gen.bandwidth if size_bytes else 0.0)

    def round_trip(self, size_bytes: int = 0) -> float:
        """Posted request + completion, e.g. a host-memory counter update."""
        return 2.0 * self.gen.latency + (
            size_bytes / self.gen.bandwidth if size_bytes else 0.0
        )
