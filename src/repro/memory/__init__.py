"""Host-side memory substrate: byte-accurate memory, buffers, MWait, PCIe."""

from .address import (
    CACHE_LINE,
    RVMA_ADDR_BITS,
    RVMA_ADDR_MASK,
    align_down,
    align_up,
    cache_line_of,
    is_aligned,
    same_cache_line,
)
from .buffer import HostBuffer, MemoryRegion, PostedBuffer
from .memory import Allocation, MemoryFault, NodeMemory
from .mwait import (
    CQ_POLL,
    CQ_POLL_OVERHEAD_NS,
    MWAIT,
    MWAIT_WAKE_NS,
    POLL,
    POLL_INTERVAL_NS,
    MemoryWaiter,
    WakeupModel,
)
from .pcie import GEN3, GEN4, GEN5, GEN6, GENERATIONS, PAPER_SIM, PcieBus, PcieGen

__all__ = [
    "Allocation",
    "CACHE_LINE",
    "CQ_POLL",
    "CQ_POLL_OVERHEAD_NS",
    "GEN3",
    "GEN4",
    "GEN5",
    "GEN6",
    "GENERATIONS",
    "HostBuffer",
    "MemoryFault",
    "MemoryRegion",
    "MemoryWaiter",
    "MWAIT",
    "MWAIT_WAKE_NS",
    "NodeMemory",
    "PAPER_SIM",
    "PcieBus",
    "PcieGen",
    "POLL",
    "POLL_INTERVAL_NS",
    "PostedBuffer",
    "RVMA_ADDR_BITS",
    "RVMA_ADDR_MASK",
    "WakeupModel",
    "align_down",
    "align_up",
    "cache_line_of",
    "is_aligned",
    "same_cache_line",
]
