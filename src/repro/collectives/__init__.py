"""Collectives built from real channel traffic (barrier, allreduce, bcast)."""

from .tree import TreeComm

__all__ = ["TreeComm"]
