"""Tree-based collectives over the transfer-protocol channels.

Real collectives built from the same RVMA/RDMA channel adapters the
motifs use — every barrier and allreduce is actual simulated traffic,
not a charged constant.  A binary reduction tree carries values up to
rank 0 and the combined result back down: O(n) messages, O(log n)
depth, identical structure on both protocols so MPI-style fences cost
what the underlying transport makes them cost.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Generator, Optional

from ..cluster.builder import Cluster
from ..motifs.transfer import RecvEndpoint, SendEndpoint, TransferProtocol

#: Channel tag namespace for collective traffic (up- and down-edges).
TAG_UP = 900
TAG_DOWN = 901

_U64 = struct.Struct("<Q")


def _parent(rank: int) -> Optional[int]:
    return None if rank == 0 else (rank - 1) // 2


def _children(rank: int, n: int) -> list[int]:
    return [c for c in (2 * rank + 1, 2 * rank + 2) if c < n]


@dataclass
class _RankComm:
    """Per-rank channel endpoints for the reduction tree."""

    rank: int
    from_children: dict = field(default_factory=dict)  # child -> RecvEndpoint
    to_children: dict = field(default_factory=dict)  # child -> SendEndpoint
    from_parent: Optional[RecvEndpoint] = None
    to_parent: Optional[SendEndpoint] = None


class TreeComm:
    """A communicator over all ranks of a cluster.

    Usage: every rank process calls ``setup(rank)`` once (collectively),
    then ``barrier``/``allreduce_sum`` in lockstep, like MPI.
    """

    def __init__(
        self,
        cluster: Cluster,
        protocol: TransferProtocol,
        vector_slots: int = 8,
    ) -> None:
        self.cluster = cluster
        self.protocol = protocol
        self.n = cluster.n_nodes
        self.vector_slots = vector_slots
        #: payload capacity per collective message.
        self.payload_bytes = max(8, 8 * vector_slots)
        self.barriers_done = 0

    # ------------------------------------------------------------------ setup

    def setup(self, rank: int) -> Generator:
        """Create the tree channels for *rank*; returns the comm state."""
        node = self.cluster.node(rank)
        comm = _RankComm(rank)
        parent = _parent(rank)
        if parent is not None:
            comm.to_parent = yield from self.protocol.send_setup(
                node, parent, TAG_UP, self.payload_bytes
            )
            comm.from_parent = yield from self.protocol.recv_setup(
                node, parent, TAG_DOWN, self.payload_bytes, slots=2
            )
        for child in _children(rank, self.n):
            comm.from_children[child] = yield from self.protocol.recv_setup(
                node, child, TAG_UP, self.payload_bytes, slots=2
            )
            comm.to_children[child] = yield from self.protocol.send_setup(
                node, child, TAG_DOWN, self.payload_bytes
            )
        return comm

    # ------------------------------------------------------------------ collectives

    def _pack(self, values: list[int]) -> bytes:
        if len(values) > self.vector_slots:
            raise ValueError(
                f"vector of {len(values)} exceeds comm capacity {self.vector_slots}"
            )
        return b"".join(_U64.pack(v & (2**64 - 1)) for v in values)

    def _unpack(self, data: bytes, count: int) -> list[int]:
        return [_U64.unpack_from(data, 8 * i)[0] for i in range(count)]

    def allreduce_sum(self, comm: _RankComm, values: list[int]) -> Generator:
        """Element-wise sum of *values* across all ranks (collective)."""
        count = len(values)
        totals = list(values)
        # Reduce up: absorb children, forward partial to the parent.
        for child, recv_ep in comm.from_children.items():
            data = yield from recv_ep.recv_data(8 * count)
            for i, v in enumerate(self._unpack(data, count)):
                totals[i] += v
        if comm.to_parent is not None:
            payload = self._pack(totals)
            yield from comm.to_parent.send(len(payload), payload)
            data = yield from comm.from_parent.recv_data(8 * count)
            totals = self._unpack(data, count)
        # Broadcast down.
        payload = self._pack(totals)
        for child, send_ep in comm.to_children.items():
            yield from send_ep.send(len(payload), payload)
        return totals

    def barrier(self, comm: _RankComm) -> Generator:
        """All ranks reach this point before any returns (collective)."""
        yield from self.allreduce_sum(comm, [1])
        self.barriers_done += 1
        return None

    def broadcast(self, comm: _RankComm, values: Optional[list[int]], count: int) -> Generator:
        """Root (rank 0) broadcasts *values*; all ranks return them."""
        if comm.rank == 0:
            if values is None or len(values) != count:
                raise ValueError("root must supply `count` values")
            out = list(values)
        else:
            data = yield from comm.from_parent.recv_data(8 * count)
            out = self._unpack(data, count)
        payload = self._pack(out)
        for child, send_ep in comm.to_children.items():
            yield from send_ep.send(len(payload), payload)
        return out
