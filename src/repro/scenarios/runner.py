"""Scenario runner: bit-identical replay plus failure fingerprints.

One scenario document in, one :class:`ScenarioOutcome` out.  The runner
owns the oracle adapters:

* **motif scenarios** route through the chaos harness
  (:func:`repro.experiments.chaos.run_motif_under_chaos`) with the
  scenario's pinned :class:`~repro.faults.chaos.ChaosSchedule`, routing
  mode and workload shape — completion, exactness, auditor and
  replay-hole invariants all apply;
* **kv scenarios** replay the pinned per-client op scripts against the
  sharded service and check per-key linearizability exactly (keys are
  partitioned per client, so each script's local model is the single
  valid linearization);
* **differential scenarios** drive the pinned channel matrix through
  every compared protocol backend and demand byte-identical delivery.

Failures collapse to a :class:`FailureFingerprint` — a sorted tuple of
*coarse* component strings (exception type, invariant name, auditor
violation kind, differential divergence digest).  Coarseness is load
bearing: the auto-shrinker must be able to shrink a scenario without
the fingerprint drifting, so fingerprints never include payload bytes,
node ids or timestamps.

Replay determinism: the runner pins the engine mode per scenario and
scrubs wall-clock fields from the attached RunReport, so replaying the
same document twice produces **byte-identical** report JSON.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..cluster.builder import Cluster
from ..core.api import RvmaApi
from ..faults.chaos import ChaosEvent, ChaosSchedule
from ..faults.injectors import FaultInjector
from ..network.config import NetworkConfig
from ..network.routing import RoutingMode
from ..nic.rvma import RvmaNicConfig
from ..observability import RunReport
from ..nic.active import AtomicWordHandler
from ..services import KvClient, KvServer, KvServerConfig, ShardMap
from ..services.wire import STATUS_NOT_FOUND, STATUS_OK
from ..sim.process import AllOf, spawn
from .schema import Scenario

#: Engine-run ceilings: a stalled scenario must terminate, not spin.
MOTIF_DEADLINE_NS = 50_000_000.0
KV_DEADLINE_NS = 80_000_000.0
DIFF_DEADLINE_NS = 50_000_000.0

_ROUTING = {"static": RoutingMode.STATIC, "adaptive": RoutingMode.ADAPTIVE}


@dataclass(frozen=True)
class FailureFingerprint:
    """Coarse, shrink-stable identity of a scenario failure."""

    components: tuple = ()

    def __bool__(self) -> bool:
        return bool(self.components)

    @property
    def digest(self) -> str:
        return hashlib.blake2s(
            "|".join(self.components).encode("utf-8"), digest_size=6
        ).hexdigest()

    def describe(self) -> str:
        if not self.components:
            return "pass"
        return f"{self.digest}: " + " + ".join(self.components)

    @classmethod
    def collect(cls, components) -> "FailureFingerprint":
        return cls(components=tuple(sorted(set(components))))


@dataclass
class ScenarioOutcome:
    """One scenario execution: verdict, fingerprint, evidence."""

    scenario: Scenario
    failed: bool
    fingerprint: FailureFingerprint
    details: dict = field(default_factory=dict)
    run_report: Optional[RunReport] = None

    def report_dict(self) -> Optional[dict]:
        """Deterministic (wall-clock-scrubbed) report dictionary."""
        if self.run_report is None:
            return None
        return scrub_report(self.run_report.to_dict())

    def report_json(self) -> Optional[str]:
        import json

        doc = self.report_dict()
        if doc is None:
            return None
        return json.dumps(doc, indent=2, sort_keys=True) + "\n"

    def describe(self) -> str:
        verdict = "FAILED" if self.failed else "ok"
        return f"{self.scenario.describe()} -> {verdict} [{self.fingerprint.describe()}]"


@contextmanager
def engine_mode(mode: str) -> Iterator[None]:
    """Pin the simulator engine mode (fast/plain) for one scenario."""
    import repro.sim.engine as engine

    saved = engine.DEFAULT_FAST
    engine.DEFAULT_FAST = mode == "fast"
    try:
        yield
    finally:
        engine.DEFAULT_FAST = saved


def scrub_report(doc: dict) -> dict:
    """Zero every wall-clock field so replayed reports are byte-identical.

    Simulated time is deterministic; host wall time is not.  Spans carry
    both, and the hottest-by-wall-time ranking is ordered by wall time,
    so it is dropped entirely rather than re-sorted.
    """

    def walk(obj):
        if isinstance(obj, dict):
            out = {}
            for key, value in obj.items():
                if key == "hottest_by_wall_time":
                    out[key] = []
                elif key in ("wall_s", "wall_time", "wall_start", "wall_end"):
                    out[key] = 0.0
                else:
                    out[key] = walk(value)
            return out
        if isinstance(obj, list):
            return [walk(v) for v in obj]
        return obj

    return walk(doc)


def _chaos_schedule(scenario: Scenario) -> ChaosSchedule:
    """The scenario's pinned fault plan as an applicable schedule."""
    return ChaosSchedule(
        events=[
            ChaosEvent(kind=ev.kind, start=ev.start, end=ev.end, params=tuple(ev.params))
            for ev in scenario.fault_events
        ],
        drop_prob=scenario.drop_prob,
    )


def _stamp_scenario_stats(cluster: Cluster, scenario: Scenario, failed: bool) -> None:
    stats = cluster.sim.stats
    stats.counter("scenario.runs").add()
    stats.counter("scenario.faults_scheduled").add(len(scenario.fault_events))
    stats.counter("scenario.workload_ops").add(scenario.workload_size())
    if failed:
        stats.counter("scenario.failures").add()


def _audit_kinds(audit_report: Optional[dict]) -> list:
    """Violation kinds out of the auditor's describe() strings."""
    kinds = []
    for line in (audit_report or {}).get("violations", ()):
        if line.startswith("["):
            kinds.append(f"audit:{line[1:line.index(']')]}")
        else:  # pragma: no cover - defensive against format drift
            kinds.append("audit:unknown")
    return kinds


# ------------------------------------------------------------------ motif oracle


def _run_motif(scenario: Scenario, trace: bool) -> ScenarioOutcome:
    from ..experiments.chaos import run_motif_under_chaos

    schedule = _chaos_schedule(scenario)
    try:
        out = run_motif_under_chaos(
            scenario.workload_kind,
            seed=scenario.cluster_seed,
            n_nodes=scenario.n_nodes,
            topology=scenario.topology,
            reliability=scenario.reliability,
            drop_prob=scenario.drop_prob,
            compare_clean=scenario.compare_clean,
            n_crashes=scenario.crash_count,
            audit=scenario.audit,
            observe=True,
            trace=trace,
            schedule=schedule,
            routing=_ROUTING[scenario.routing],
            motif_params=dict(scenario.workload),
            scenario_meta={
                "id": scenario.scenario_id,
                "workload": scenario.workload_kind,
                "workload_ops": scenario.workload_size(),
            },
        )
    except Exception as exc:
        return ScenarioOutcome(
            scenario=scenario,
            failed=True,
            fingerprint=FailureFingerprint.collect([f"exception:{type(exc).__name__}"]),
            details={"error": str(exc)},
        )

    components = []
    if out.error is not None:
        components.append("exception:RuntimeError")
    if not out.completed and out.error is None:
        components.append("invariant:incomplete")
    if out.gave_up:
        components.append("invariant:gave_up")
    if out.identical_to_clean is False:
        components.append("invariant:not_identical")
    if out.replay_holes:
        components.append("invariant:replay_holes")
    if out.put_window_evictions or out.put_giveups:
        components.append("invariant:giveups")
    components.extend(_audit_kinds(out.audit_report))
    fp = FailureFingerprint.collect(components)
    report = out.run_report
    if report is not None:
        # The chaos harness collects its report before the verdict is
        # known; fold the failure counter in post hoc so campaign
        # rollups carry scenario.failures.
        if fp:
            group = report.metrics.setdefault("scenario", {})
            group["scenario.failures"] = group.get("scenario.failures", 0) + 1
        report.meta.update(
            scenario_id=scenario.scenario_id,
            scenario_seed=scenario.seed,
            fingerprint=fp.describe(),
        )
    return ScenarioOutcome(
        scenario=scenario,
        failed=bool(fp),
        fingerprint=fp,
        details={
            "error": out.error,
            "retransmits": out.retransmits,
            "gave_up": out.gave_up,
            "identical_to_clean": out.identical_to_clean,
            "audit_violations": out.audit_violations,
            "crash_restarts": out.crash_restarts,
        },
        run_report=report,
    )


# --------------------------------------------------------------------- kv oracle

#: Per-op deadline budget for tenant-mix (qos) scenarios — generous
#: against the fault horizon so a deadline miss means a genuinely lost
#: request (quota reject), not a slow one.
KV_OP_DEADLINE_NS = 8_000_000.0

#: Possible-state sentinel for "key not stored".
_ABSENT = None


def _apply_kv_step(op: str, status: int, value, new_value, possible: set) -> Optional[str]:
    """Advance one key's possible-state set through one scripted op.

    Exact linearizability generalised to lossy outcomes: receiver-
    managed streams keep each client's ops in program order, so the only
    ambiguity is whether a request *executed at all*.  ``RC_OVERLOAD``
    is a definitive not-executed (the server refused before touching the
    store); ``STATUS_DEADLINE_EXCEEDED`` is ambiguous (the frame may be
    quota-rejected at the NIC or may have executed unanswered), so the
    set forks.  A successful GET observes the store and collapses the
    set back to a singleton.  Returns a failure string or None.
    """
    from ..services.wire import STATUS_DEADLINE_EXCEEDED, STATUS_OVERLOAD

    if status == STATUS_OVERLOAD:
        return None  # refused before execution: state unchanged
    if op == "put":
        if status == STATUS_OK:
            possible.clear()
            possible.add(new_value)
        elif status == STATUS_DEADLINE_EXCEEDED:
            possible.add(new_value)
        else:
            return f"put -> {status}"
    elif op == "delete":
        if status == STATUS_OK:
            if not any(v is not _ABSENT for v in possible):
                return "delete -> OK on a surely-absent key"
            possible.clear()
            possible.add(_ABSENT)
        elif status == STATUS_NOT_FOUND:
            if _ABSENT not in possible:
                return "delete -> NOT_FOUND on a surely-present key"
            possible.clear()
            possible.add(_ABSENT)
        elif status == STATUS_DEADLINE_EXCEEDED:
            possible.add(_ABSENT)
        else:
            return f"delete -> {status}"
    else:  # get: read-only, so an unanswered one never forks the set
        if status == STATUS_OK:
            if value not in possible:
                return f"get observed a value outside the possible set (len {len(value or b'')})"
            possible.clear()
            possible.add(value)
        elif status == STATUS_NOT_FOUND:
            if _ABSENT not in possible:
                return "ghost get -> NOT_FOUND on a surely-present key"
            possible.clear()
            possible.add(_ABSENT)
        elif status != STATUS_DEADLINE_EXCEEDED:
            return f"get -> {status}"
    return None


def _kv_tenancy(scenario: Scenario):
    """(TenantDirectory, client_tenants) for a qos scenario, else (None, ...)."""
    from ..services import TenantDirectory, TenantSpec

    workload = scenario.workload
    if not workload.get("qos"):
        return None, [0] * len(workload["scripts"])
    specs = tuple(
        TenantSpec(
            tenant_id=int(tid),
            weight=float(weight),
            admit_rate_bytes_per_us=float(admit),
            nic_quota_bytes_per_us=float(quota),
        )
        for tid, weight, admit, quota in workload["tenant_specs"]
    )
    return TenantDirectory(specs), [int(t) for t in workload["client_tenants"]]


def _run_kv(scenario: Scenario, trace: bool) -> ScenarioOutcome:
    from ..experiments.chaos import CHAOS_RELIABILITY
    from ..services import ClientRobustnessConfig, install_placement_quota
    from ..services.kv import REPLY_MAILBOX_BASE, REQUEST_MAILBOX_BASE
    from ..services.qos import QosConfig

    scripts = scenario.workload["scripts"]
    shards_per_node = int(scenario.workload.get("shards_per_node", 2))
    value_scale = int(scenario.workload.get("value_scale", 24))
    # Active-handler dimension (schema v3): derive the hot-key set
    # deterministically from the document — the first
    # ceil(fraction * keyspace) indices of every client's namespace.
    hot_keys: tuple = ()
    if scenario.workload.get("active"):
        n_keys = 1 + max(
            (int(key_i) for script in scripts for _op, key_i, _f in script), default=0
        )
        fraction = float(scenario.workload.get("hot_key_fraction", 0.5))
        n_hot = max(1, int(n_keys * fraction))
        hot_keys = tuple(
            b"c%d-k%d" % (rank, k)
            for rank in range(len(scripts))
            for k in range(n_hot)
        )
    server_config = KvServerConfig(hot_keys=hot_keys)
    attach_word = bool(scenario.workload.get("handler_word"))
    directory, client_tenants = _kv_tenancy(scenario)
    cluster = Cluster.build(
        n_nodes=scenario.n_nodes,
        topology=scenario.topology,
        nic_type="rvma",
        fidelity="flow",
        seed=scenario.cluster_seed,
        nic_config=RvmaNicConfig(
            reliability=CHAOS_RELIABILITY if scenario.reliability else None
        ),
        net_config=NetworkConfig(routing=_ROUTING[scenario.routing]),
    )
    _chaos_schedule(scenario).apply(FaultInjector(cluster))
    if trace:
        cluster.sim.spans.enable()
    scenario_span = cluster.sim.spans.begin("scenario", "kv", id=scenario.scenario_id)

    shard_map = ShardMap([0], shards_per_node=shards_per_node)
    if directory is not None:
        for rank, tenant in enumerate(client_tenants):
            directory.assign_node(1 + rank, tenant)
        server = KvServer(
            cluster.nodes[0], shard_map, config=server_config,
            qos=QosConfig(), tenants=directory,
        ).start()
        install_placement_quota(
            cluster.nodes[0], directory,
            mailbox_lo=REQUEST_MAILBOX_BASE, mailbox_hi=REPLY_MAILBOX_BASE,
        )
        # max_retries=0: each frame is sent exactly once, so a request
        # either executed once or not at all — the precise ambiguity the
        # possible-state oracle models.  Retries would add duplicate-
        # execution ambiguity without widening coverage.
        robustness = ClientRobustnessConfig(
            max_retries=0, default_deadline_ns=KV_OP_DEADLINE_NS
        )
    else:
        server = KvServer(cluster.nodes[0], shard_map, config=server_config).start()
        robustness = None
    failures: list = []

    def client_proc(rank: int, script):
        client = KvClient(
            RvmaApi(cluster.nodes[1 + rank]),
            shard_map,
            index=rank,
            tenant_id=client_tenants[rank],
            robustness=robustness,
        )
        yield from client.open()
        if attach_word:
            # Handler-mix dimension: an atomic word on the reply mailbox
            # counts reply epochs NIC-side; losing the binding (or the
            # word) under faults is a fingerprinted failure.
            yield from client.api.attach_handler(
                client.reply_win, AtomicWordHandler(op="add")
            )
        # Keys partitioned per client: each key's possible-state set is
        # the exact linearization envelope for this client's namespace.
        model: dict = {}
        for step, (op, key_i, fill) in enumerate(script):
            key = b"c%d-k%d" % (rank, key_i)
            possible = model.setdefault(key, {_ABSENT})
            new_value = None
            if op == "put":
                new_value = bytes([fill]) * (1 + fill % max(1, value_scale))
                status = yield from client.put(key, new_value)
                value = None
            elif op == "delete":
                status = yield from client.delete(key)
                value = None
            else:
                status, value = yield from client.get(key)
            problem = _apply_kv_step(op, status, value, new_value, possible)
            if problem is not None:
                failures.append(f"rank{rank} step{step}: {problem}")
        if attach_word:
            word = yield from client.api.active_word(client.reply_win)
            if word is None:
                handler_failures.append(f"rank{rank}: reply-mailbox word handler lost")

    handler_failures: list = []
    procs = [
        spawn(cluster.sim, client_proc(rank, script), f"fuzz-kv-{rank}")
        for rank, script in enumerate(scripts)
    ]

    def stopper():
        yield AllOf([p.done_future for p in procs])
        server.stop()

    stop = spawn(cluster.sim, stopper(), "fuzz-kv-stop")
    error: Optional[str] = None
    try:
        cluster.sim.run(until=KV_DEADLINE_NS)
    except Exception as exc:
        error = f"exception:{type(exc).__name__}"

    components = []
    if error is not None:
        components.append(error)
    elif not all(p.finished for p in [*procs, stop]):
        components.append("stall")
    if failures:
        components.append("kv:linearizability")
    if handler_failures:
        components.append("active:word_lost")
    # Canonical (aggregated) names: the per-component flat counters are
    # rvma<N>.puts_lost / rel<N>.rel_gave_up, so integrity must read
    # through the registry, not sim.stats directly.
    from ..observability import MetricsRegistry

    counters = MetricsRegistry.collect(cluster.sim).counters
    if counters.get("transport.gave_up", 0):
        components.append("invariant:gave_up")
    lost = counters.get("nic.rvma.puts_lost", 0)
    # Quota rejects are reject-into-counter by design (terminal at the
    # sender NIC, client deadline is the recovery path) — only losses
    # beyond them indicate the transport actually dropped data.
    if lost - counters.get("nic.rvma.puts_lost_quota", 0) > 0 and scenario.reliability:
        components.append("invariant:puts_lost")
    fp = FailureFingerprint.collect(components)
    cluster.sim.spans.end(scenario_span, completed=not fp)
    _stamp_scenario_stats(cluster, scenario, bool(fp))
    report = RunReport.collect(
        cluster,
        meta={
            "harness": "scenario-fuzz",
            "scenario_id": scenario.scenario_id,
            "scenario_seed": scenario.seed,
            "workload": "kv",
            "fingerprint": fp.describe(),
        },
    )
    return ScenarioOutcome(
        scenario=scenario,
        failed=bool(fp),
        fingerprint=fp,
        details={"kv_failures": failures[:10], "clients": len(scripts)},
        run_report=report,
    )


# ------------------------------------------------------------- differential oracle


def _diff_payload(seed: int, src: int, dst: int, i: int, max_msg: int) -> bytes:
    size = 64 + ((src * 13 + dst * 7 + i * 29 + seed) % max(1, max_msg - 64))
    base = src * 31 + dst * 17 + i * 3 + seed
    return bytes((base + j) % 256 for j in range(size))


def _run_diff_backend(scenario: Scenario, backend: str):
    """One backend over the pinned channel matrix.

    Returns ``(delivered, counts, stalled, cluster)``; *cluster* lets the
    caller collect the primary backend's observability report.
    """
    from ..motifs import RdmaProtocol, RvmaProtocol, UcxProtocol

    factories = {
        "rvma": lambda: RvmaProtocol(mode=RoutingMode.STATIC),
        "verbs": lambda: RdmaProtocol(mode=RoutingMode.STATIC),
        "ucx": lambda: UcxProtocol(mode=RoutingMode.STATIC),
    }
    proto = factories[backend]()
    max_msg = int(scenario.workload.get("max_msg", 512))
    channels = [(int(s), int(d), int(n)) for s, d, n in scenario.workload["channels"]]
    cluster = Cluster.build(
        n_nodes=scenario.n_nodes,
        topology=scenario.topology,
        nic_type=proto.nic_type,
        fidelity="flow",
        seed=scenario.cluster_seed,
    )
    delivered: dict = {}
    counts: dict = {}
    seed = scenario.cluster_seed
    tags = {(s, d): 100 + k for k, (s, d, _n) in enumerate(sorted(channels))}

    def receiver(src, dst, tag, n_msgs):
        ep = yield from proto.recv_setup(cluster.nodes[dst], src, tag, max_msg, slots=n_msgs)
        for i in range(n_msgs):
            want = len(_diff_payload(seed, src, dst, i, max_msg))
            delivered[(src, dst, i)] = (yield from ep.recv_data(want))
        counts[(src, dst)] = ep.received

    def sender(src, dst, tag, n_msgs):
        ep = yield from proto.send_setup(cluster.nodes[src], dst, tag, max_msg)
        for i in range(n_msgs):
            payload = _diff_payload(seed, src, dst, i, max_msg)
            yield from ep.send(len(payload), payload)

    procs = []
    for src, dst, n_msgs in sorted(channels):
        tag = tags[(src, dst)]
        procs.append(spawn(cluster.sim, receiver(src, dst, tag, n_msgs), f"r{src}-{dst}"))
        procs.append(spawn(cluster.sim, sender(src, dst, tag, n_msgs), f"s{src}-{dst}"))
    cluster.sim.run(until=DIFF_DEADLINE_NS)
    stalled = not all(p.finished for p in procs)
    return delivered, counts, stalled, cluster


def _run_differential(scenario: Scenario, trace: bool) -> ScenarioOutcome:
    results = {}
    primary_cluster = None
    components = []
    try:
        for backend in scenario.compare:
            delivered, counts, stalled, cluster = _run_diff_backend(scenario, backend)
            results[backend] = (delivered, counts)
            if stalled:
                components.append("stall")
            if backend == scenario.compare[0]:
                primary_cluster = cluster
    except Exception as exc:
        return ScenarioOutcome(
            scenario=scenario,
            failed=True,
            fingerprint=FailureFingerprint.collect([f"exception:{type(exc).__name__}"]),
            details={"error": str(exc)},
        )

    base_name = scenario.compare[0]
    base_delivered, base_counts = results[base_name]
    divergences = []
    for name in scenario.compare[1:]:
        got_delivered, got_counts = results[name]
        if got_delivered != base_delivered:
            divergences.append(("bytes", name))
        if got_counts != base_counts:
            divergences.append(("counts", name))
    if divergences:
        # Digest over the *shape* of the divergence (which backend,
        # bytes vs counts) — stable while the shrinker trims channels.
        digest = hashlib.blake2s(
            "|".join(f"{k}:{n}" for k, n in sorted(divergences)).encode("utf-8"),
            digest_size=4,
        ).hexdigest()
        components.append(f"diff:{digest}")
    fp = FailureFingerprint.collect(components)

    report = None
    if primary_cluster is not None:
        _stamp_scenario_stats(primary_cluster, scenario, bool(fp))
        report = RunReport.collect(
            primary_cluster,
            meta={
                "harness": "scenario-fuzz",
                "scenario_id": scenario.scenario_id,
                "scenario_seed": scenario.seed,
                "workload": "differential",
                "backends": list(scenario.compare),
                "fingerprint": fp.describe(),
            },
        )
    return ScenarioOutcome(
        scenario=scenario,
        failed=bool(fp),
        fingerprint=fp,
        details={
            "backends": list(scenario.compare),
            "divergences": [f"{k}:{n}" for k, n in sorted(divergences)],
        },
        run_report=report,
    )


# ------------------------------------------------------------------ trace oracle


def _run_trace(scenario: Scenario, trace: bool) -> ScenarioOutcome:
    """Replay a committed exemplar trace (schema v4 workload kind).

    The offered load is pinned by the trace file, so the oracles here
    are pure outcome checks: per-key replay safety (linearizability over
    the recorded op streams), op-stream liveness, transport/NIC
    integrity counters, and the invariant auditor.
    """
    from ..experiments.trace_replay import replay_trace
    from ..workloads import load_exemplar

    workload = scenario.workload
    try:
        exemplar = load_exemplar(workload["trace_ref"])
        cell = replay_trace(
            exemplar,
            seed=scenario.cluster_seed,
            qos=bool(workload.get("qos", False)),
            active=bool(workload.get("active", False)),
            audit=scenario.audit,
            observe=trace,
            topology=scenario.topology,
        )
    except Exception as exc:
        return ScenarioOutcome(
            scenario=scenario,
            failed=True,
            fingerprint=FailureFingerprint.collect([f"exception:{type(exc).__name__}"]),
            details={"error": str(exc)},
        )

    components = []
    if cell.error is not None:
        if "did not finish" in cell.error:
            components.append("stall")
        else:
            components.append(f"exception:{cell.error.split(':', 1)[0]}")
    if not cell.stats.all_resolved():
        components.append("stall")
    if cell.safety_failures:
        components.append("kv:linearizability")
    if cell.gave_up:
        components.append("invariant:gave_up")
    if cell.puts_lost - cell.puts_lost_quota:
        components.append("invariant:puts_lost")
    if not cell.audit_ok:
        components.append("audit:violations")
    fp = FailureFingerprint.collect(components)

    report = None
    if cell.cluster is not None:
        _stamp_scenario_stats(cell.cluster, scenario, bool(fp))
        report = RunReport.collect(
            cell.cluster,
            meta={
                "harness": "scenario-fuzz",
                "scenario_id": scenario.scenario_id,
                "scenario_seed": scenario.seed,
                "workload": "trace",
                "trace_ref": workload["trace_ref"],
                "trace_id": exemplar.trace_id,
                "fingerprint": fp.describe(),
            },
        )
    return ScenarioOutcome(
        scenario=scenario,
        failed=bool(fp),
        fingerprint=fp,
        details={
            "error": cell.error,
            "trace_ref": workload["trace_ref"],
            "outcome_digest": cell.outcome_digest,
            "safety_failures": cell.safety_failures[:5],
            "gave_up": cell.gave_up,
            "audit_violations": cell.audit_violations,
        },
        run_report=report,
    )


# -------------------------------------------------------------------- entry point


def run_scenario(scenario: Scenario, trace: bool = False) -> ScenarioOutcome:
    """Execute *scenario* under its pinned engine mode and oracles."""
    scenario.validate()
    with engine_mode(scenario.engine):
        if scenario.workload_kind == "kv":
            return _run_kv(scenario, trace)
        if scenario.workload_kind == "differential":
            return _run_differential(scenario, trace)
        if scenario.workload_kind == "trace":
            return _run_trace(scenario, trace)
        return _run_motif(scenario, trace)
