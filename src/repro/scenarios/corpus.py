"""The scenario corpus: shrunk survivors pinned as regressions.

Every corpus entry is a plain scenario document (loadable by
``Scenario.load`` / ``fuzz replay``) with two extra keys the schema
loader ignores:

* ``x_fingerprint`` — the failure-fingerprint components the entry is
  expected to reproduce (``[]`` for pinned *passing* scenarios);
* ``x_note`` — one line of provenance (what campaign minted it, why it
  is pinned).

``replay_corpus`` re-runs every entry and demands the outcome match the
recorded expectation exactly: a pinned-pass entry must pass, a
pinned-failure entry must fail with the identical fingerprint.  The
test suite folds this in (``tests/integration/test_scenario_corpus.py``),
so the corpus is a live regression gate, not a graveyard.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from .runner import FailureFingerprint, ScenarioOutcome, run_scenario
from .schema import Scenario, ScenarioError

#: Repo-level corpus directory (checked in; see docs/FUZZING.md).
CORPUS_DIR = Path(__file__).resolve().parents[3] / "corpus"


@dataclass
class CorpusEntry:
    """One pinned scenario with its expected outcome."""

    path: Path
    scenario: Scenario
    expected: FailureFingerprint
    note: str = ""

    def describe(self) -> str:
        want = self.expected.describe() if self.expected else "pass"
        return f"{self.path.name}: {self.scenario.workload_kind}, expect {want}"


@dataclass
class ReplayVerdict:
    """Replaying one corpus entry against its recorded expectation."""

    entry: CorpusEntry
    outcome: ScenarioOutcome
    ok: bool

    def describe(self) -> str:
        status = "ok" if self.ok else "DIVERGED"
        return (
            f"{self.entry.path.name}: {status} "
            f"(expected {self.entry.expected.describe()}, "
            f"got {self.outcome.fingerprint.describe()})"
        )


def save_entry(
    scenario: Scenario,
    fingerprint: FailureFingerprint,
    note: str = "",
    corpus_dir: Optional[Path] = None,
) -> Path:
    """Pin *scenario* into the corpus, named by its scenario id."""
    corpus_dir = Path(corpus_dir or CORPUS_DIR)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    doc = scenario.to_dict()
    doc["x_fingerprint"] = list(fingerprint.components)
    doc["x_note"] = note
    path = corpus_dir / f"{scenario.scenario_id}.json"
    path.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n", encoding="utf-8")
    return path


def load_entry(path) -> CorpusEntry:
    path = Path(path)
    doc = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(doc, dict):
        raise ScenarioError(f"{path}: corpus entry must be a JSON object")
    scenario = Scenario.from_dict(doc)
    expected = FailureFingerprint.collect(doc.get("x_fingerprint", ()))
    return CorpusEntry(
        path=path, scenario=scenario, expected=expected,
        note=str(doc.get("x_note", "")),
    )


def list_entries(corpus_dir: Optional[Path] = None) -> list:
    corpus_dir = Path(corpus_dir or CORPUS_DIR)
    if not corpus_dir.is_dir():
        return []
    return [load_entry(p) for p in sorted(corpus_dir.glob("*.json"))]


def replay_entry(entry: CorpusEntry) -> ReplayVerdict:
    outcome = run_scenario(entry.scenario)
    return ReplayVerdict(
        entry=entry, outcome=outcome, ok=outcome.fingerprint == entry.expected
    )


def replay_corpus(corpus_dir: Optional[Path] = None) -> list:
    """Replay every corpus entry; returns one verdict per entry."""
    return [replay_entry(e) for e in list_entries(corpus_dir)]
