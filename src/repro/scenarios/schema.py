"""Self-describing scenario documents: the fuzzer's unit of replay.

A :class:`Scenario` pins *everything* a run needs — topology, routing
mode, engine mode, protocol backend(s), the full fault plan as explicit
events (not a seed that regenerates them), the workload shape, and
every nested seed — into one schema-versioned JSON document.  Two
properties follow:

* **bit-identical replay** — the runner rebuilds the run from the
  document alone, so a scenario file reproduces its failure exactly on
  any machine (``fuzz replay scenario.json``);
* **shrinkability** — because faults and workload steps are explicit
  lists, the auto-shrinker (:mod:`repro.scenarios.shrink`) can drop
  them one at a time and re-check the failure fingerprint.

The canonical serialized form (sorted keys, fixed separators) is the
identity: :attr:`Scenario.scenario_id` is a digest of it, and corpus
files are named after it.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, replace
from typing import Any, Optional

#: Bump when the document layout changes; the loader accepts every
#: version in :data:`SUPPORTED_SCHEMAS` and preserves the document's
#: own version on round-trip (so v1 corpus entries keep their identity).
#: v2 added the optional tenant-mix dimension to kv workloads
#: (``qos`` / ``tenant_specs`` / ``client_tenants``).
#: v3 added the optional active-handler dimension to kv workloads
#: (``active`` / ``hot_key_fraction`` / ``handler_word``).
#: v4 added the ``trace`` workload kind: replay a committed exemplar
#: trace (``trace_ref``) through the KV harness with qos/active toggles.
SCHEMA_VERSION = 4
SUPPORTED_SCHEMAS = (1, 2, 3, 4)

#: Workload kinds the runner knows how to drive.
MOTIF_KINDS = ("allreduce", "incast", "halo3d")
WORKLOAD_KINDS = MOTIF_KINDS + ("kv", "differential", "trace")

#: Protocol backends the differential oracle can compare.
BACKENDS = ("rvma", "verbs", "ucx")

ENGINE_MODES = ("fast", "plain")
ROUTING_MODES = ("static", "adaptive")

#: KV script op codes (scripts are [op, key_index, fill] triples).
KV_OPS = ("put", "get", "delete")


class ScenarioError(ValueError):
    """A scenario document failed validation."""


@dataclass(frozen=True)
class FaultEvent:
    """One pinned fault: a window, or a crash/restart pair.

    ``kind`` matches :class:`repro.faults.chaos.ChaosEvent`; ``params``
    are kind-specific (link endpoints, switch id, node ids).
    """

    kind: str  # "link_flap" | "switch_failure" | "partition" | "crash_restart"
    start: float
    end: float
    params: tuple

    def to_list(self) -> list:
        return [self.kind, self.start, self.end, list(self.params)]

    @classmethod
    def from_list(cls, row: list) -> "FaultEvent":
        if not isinstance(row, (list, tuple)) or len(row) != 4:
            raise ScenarioError(f"malformed fault event {row!r}")
        kind, start, end, params = row
        return cls(kind=str(kind), start=float(start), end=float(end), params=tuple(params))


@dataclass(frozen=True)
class Scenario:
    """One fully pinned run of the system under test."""

    seed: int                      # master generator seed (provenance)
    workload_kind: str             # one of WORKLOAD_KINDS
    workload: dict                 # kind-specific parameters
    topology: str                  # dragonfly | fattree | hyperx | torus3d | star
    n_nodes: int
    routing: str = "adaptive"      # static | adaptive
    engine: str = "fast"           # fast | plain
    backend: str = "rvma"          # protocol under test (motif/kv scenarios)
    compare: tuple = ()            # backends the differential oracle compares
    reliability: bool = True       # ARQ transport armed (False = known-bad)
    cluster_seed: int = 1          # simulator/RNG seed for the run itself
    fault_events: tuple = ()       # tuple[FaultEvent, ...]
    drop_prob: float = 0.0         # background i.i.d. loss
    audit: bool = True             # attach the InvariantAuditor
    compare_clean: bool = True     # diff against a fault-free reference run
    schema: int = SCHEMA_VERSION

    # ------------------------------------------------------------- identity

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "seed": self.seed,
            "workload_kind": self.workload_kind,
            "workload": _jsonable(self.workload),
            "topology": self.topology,
            "n_nodes": self.n_nodes,
            "routing": self.routing,
            "engine": self.engine,
            "backend": self.backend,
            "compare": list(self.compare),
            "reliability": self.reliability,
            "cluster_seed": self.cluster_seed,
            "fault_events": [ev.to_list() for ev in self.fault_events],
            "drop_prob": self.drop_prob,
            "audit": self.audit,
            "compare_clean": self.compare_clean,
        }

    def to_json(self) -> str:
        """Canonical serialized form (the identity basis)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @property
    def scenario_id(self) -> str:
        """Stable short id: digest of the canonical serialization."""
        return hashlib.blake2s(self.to_json().encode("utf-8"), digest_size=6).hexdigest()

    # ------------------------------------------------------------- loading

    @classmethod
    def from_dict(cls, doc: dict) -> "Scenario":
        if not isinstance(doc, dict):
            raise ScenarioError("scenario document must be a JSON object")
        schema = doc.get("schema")
        if schema not in SUPPORTED_SCHEMAS:
            raise ScenarioError(
                f"unsupported scenario schema {schema!r} (runner speaks {SUPPORTED_SCHEMAS})"
            )
        try:
            scenario = cls(
                schema=int(schema),
                seed=int(doc["seed"]),
                workload_kind=str(doc["workload_kind"]),
                workload=dict(doc["workload"]),
                topology=str(doc["topology"]),
                n_nodes=int(doc["n_nodes"]),
                routing=str(doc.get("routing", "adaptive")),
                engine=str(doc.get("engine", "fast")),
                backend=str(doc.get("backend", "rvma")),
                compare=tuple(doc.get("compare", ())),
                reliability=bool(doc.get("reliability", True)),
                cluster_seed=int(doc.get("cluster_seed", 1)),
                fault_events=tuple(
                    FaultEvent.from_list(row) for row in doc.get("fault_events", ())
                ),
                drop_prob=float(doc.get("drop_prob", 0.0)),
                audit=bool(doc.get("audit", True)),
                compare_clean=bool(doc.get("compare_clean", True)),
            )
        except (KeyError, TypeError) as exc:
            raise ScenarioError(f"malformed scenario document: {exc!r}") from exc
        scenario.validate()
        return scenario

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"scenario is not valid JSON: {exc}") from exc
        return cls.from_dict(doc)

    @classmethod
    def load(cls, path: str) -> "Scenario":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def save(self, path: str) -> str:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self.to_dict(), sort_keys=True, indent=2))
            fh.write("\n")
        return path

    # ------------------------------------------------------------- checks

    def validate(self) -> None:
        if self.workload_kind not in WORKLOAD_KINDS:
            raise ScenarioError(f"unknown workload kind {self.workload_kind!r}")
        if self.topology not in ("dragonfly", "fattree", "hyperx", "torus3d", "star"):
            raise ScenarioError(f"unknown topology {self.topology!r}")
        if self.routing not in ROUTING_MODES:
            raise ScenarioError(f"unknown routing mode {self.routing!r}")
        if self.engine not in ENGINE_MODES:
            raise ScenarioError(f"unknown engine mode {self.engine!r}")
        if self.backend not in BACKENDS:
            raise ScenarioError(f"unknown backend {self.backend!r}")
        if self.n_nodes < 2:
            raise ScenarioError("scenarios need at least 2 nodes")
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ScenarioError("drop_prob must be in [0, 1]")
        if self.workload_kind == "differential":
            unknown = [b for b in self.compare if b not in BACKENDS]
            if unknown:
                raise ScenarioError(f"unknown differential backends {unknown}")
            if len(self.compare) < 2:
                raise ScenarioError("differential scenarios compare >= 2 backends")
            channels = self.workload.get("channels") or ()
            if not channels:
                raise ScenarioError("differential scenarios need channels")
            for row in channels:
                src, dst, n_msgs = row
                if src == dst:
                    raise ScenarioError("differential channel src == dst")
                if not (0 <= src < self.n_nodes and 0 <= dst < self.n_nodes):
                    raise ScenarioError(f"channel {row} outside the {self.n_nodes}-node cluster")
                if n_msgs < 1:
                    raise ScenarioError("differential channels need >= 1 message")
        if self.workload_kind == "kv":
            scripts = self.workload.get("scripts") or ()
            if not scripts:
                raise ScenarioError("kv scenarios need at least one client script")
            if len(scripts) + 1 > self.n_nodes:
                raise ScenarioError("kv scenarios need a node per client plus the server")
            for script in scripts:
                for step in script:
                    op, key_i, fill = step
                    if op not in KV_OPS:
                        raise ScenarioError(f"unknown kv op {op!r}")
                    if key_i < 0 or not 0 <= fill <= 255:
                        raise ScenarioError(f"malformed kv step {step!r}")
            self._validate_kv_tenancy(scripts)
            self._validate_kv_active()
        if self.workload_kind == "trace":
            self._validate_trace()
        for ev in self.fault_events:
            if ev.kind not in ("link_flap", "switch_failure", "partition", "crash_restart"):
                raise ScenarioError(f"unknown fault kind {ev.kind!r}")
            if ev.end <= ev.start:
                raise ScenarioError(f"fault event {ev.kind} has end <= start")

    def _validate_kv_tenancy(self, scripts) -> None:
        """The v2 tenant-mix keys (all optional, but consistent when used).

        ``qos`` arms admission + weighted-fair service on the scenario's
        KV server; ``tenant_specs`` rows are ``[tenant_id, weight,
        admit_rate_bytes_per_us, nic_quota_bytes_per_us]``;
        ``client_tenants`` assigns each script a tenant id.
        """
        qos = self.workload.get("qos", False)
        specs = self.workload.get("tenant_specs")
        client_tenants = self.workload.get("client_tenants")
        if not (qos or specs is not None or client_tenants is not None):
            return
        if self.schema < 2:
            raise ScenarioError("kv tenant-mix keys need scenario schema >= 2")
        if not isinstance(qos, bool):
            raise ScenarioError("kv workload 'qos' must be a boolean")
        known = set()
        for row in specs or ():
            if not isinstance(row, (list, tuple)) or len(row) != 4:
                raise ScenarioError(f"malformed tenant spec {row!r}")
            tid, weight, admit_rate, nic_rate = row
            if not 0 <= int(tid) <= 0xFFFF:
                raise ScenarioError(f"tenant id {tid!r} does not fit the wire field")
            if float(weight) <= 0:
                raise ScenarioError(f"tenant {tid} needs a positive weight")
            if float(admit_rate) < 0 or float(nic_rate) < 0:
                raise ScenarioError(f"tenant {tid} rates must be >= 0")
            known.add(int(tid))
        if client_tenants is not None:
            if len(client_tenants) != len(scripts):
                raise ScenarioError("client_tenants must assign every kv script")
            for tid in client_tenants:
                if int(tid) not in known:
                    raise ScenarioError(f"client tenant {tid} has no tenant spec")
        if qos and not known:
            raise ScenarioError("qos kv scenarios need tenant_specs")

    def _validate_kv_active(self) -> None:
        """The v3 active-handler keys (all optional, strict when used).

        ``active`` arms the NIC-side GET short-circuit on the scenario's
        KV server; ``hot_key_fraction`` picks the slice of each client's
        keyspace registered hot (the runner derives the concrete key set
        deterministically); ``handler_word`` mixes in an atomic word
        handler on each client's reply mailbox.
        """
        active = self.workload.get("active", False)
        fraction = self.workload.get("hot_key_fraction")
        word = self.workload.get("handler_word", False)
        if not (active or fraction is not None or word):
            return
        if self.schema < 3:
            raise ScenarioError("kv active-handler keys need scenario schema >= 3")
        if not isinstance(active, bool):
            raise ScenarioError("kv workload 'active' must be a boolean")
        if not isinstance(word, bool):
            raise ScenarioError("kv workload 'handler_word' must be a boolean")
        if fraction is not None:
            if not active:
                raise ScenarioError("hot_key_fraction is meaningless without active=true")
            if not 0.0 < float(fraction) <= 1.0:
                raise ScenarioError("hot_key_fraction must be in (0, 1]")

    def _validate_trace(self) -> None:
        """The v4 trace-replay workload: a committed exemplar + toggles.

        ``trace_ref`` names an entry in the exemplar registry
        (:data:`repro.workloads.EXEMPLARS`) — replay is only meaningful
        against a pinned trace identity, so arbitrary paths are not a
        scenario dimension.  ``qos`` / ``active`` arm the server-side
        feature toggles the replay A/B harness compares.
        """
        from ..workloads.exemplars import EXEMPLARS

        if self.schema < 4:
            raise ScenarioError("trace scenarios need scenario schema >= 4")
        ref = self.workload.get("trace_ref")
        info = EXEMPLARS.get(ref) if isinstance(ref, str) else None
        if info is None:
            raise ScenarioError(
                f"trace_ref {ref!r} is not a committed exemplar "
                f"(have {tuple(sorted(EXEMPLARS))})"
            )
        for key in ("qos", "active"):
            if not isinstance(self.workload.get(key, False), bool):
                raise ScenarioError(f"trace workload {key!r} must be a boolean")
        if self.n_nodes < 1 + info.clients:
            raise ScenarioError(
                f"trace scenarios need a node per trace client plus the "
                f"server ({1 + info.clients} for {ref!r}, got {self.n_nodes})"
            )

    # ------------------------------------------------------------- shrinking aids

    @property
    def crash_count(self) -> int:
        return sum(1 for ev in self.fault_events if ev.kind == "crash_restart")

    def workload_size(self) -> int:
        """Abstract workload weight (steps/messages), for shrink ordering."""
        w = self.workload
        if self.workload_kind == "allreduce":
            return int(w["iterations"]) * int(w["vector_len"])
        if self.workload_kind == "incast":
            return int(w["msgs_per_client"]) * max(1, int(w["msg_bytes"]) // 256)
        if self.workload_kind == "halo3d":
            return int(w["iterations"]) * max(1, int(w["msg_bytes"]) // 256)
        if self.workload_kind == "kv":
            return sum(len(s) for s in w["scripts"])
        if self.workload_kind == "trace":
            from ..workloads.exemplars import EXEMPLARS

            rows = EXEMPLARS[w["trace_ref"]].rows
            # Toggles add weight so the shrinker can strictly shrink by
            # disarming them before giving up on the (fixed-size) trace.
            return rows + (1 if w.get("qos") else 0) + (1 if w.get("active") else 0)
        return sum(int(n) for _s, _d, n in w["channels"]) * max(1, len(self.compare) - 1)

    def size(self) -> int:
        """Total shrink-ordering weight: strictly decreasing under every
        transformation the shrinker applies."""
        return (
            self.n_nodes
            + len(self.fault_events)
            + (1 if self.drop_prob > 0 else 0)
            + (1 if self.routing == "adaptive" else 0)
            + self.workload_size()
        )

    def with_changes(self, **kw: Any) -> "Scenario":
        return replace(self, **kw)

    def describe(self) -> str:
        return (
            f"scenario {self.scenario_id}: {self.workload_kind} on "
            f"{self.topology}/{self.n_nodes}n ({self.routing} routing, "
            f"{self.engine} engine, backend {self.backend}"
            + (f" vs {','.join(b for b in self.compare if b != self.backend)}"
               if self.compare else "")
            + f"), {len(self.fault_events)} fault event(s), "
            f"drop_prob {self.drop_prob:.2f}, cluster_seed {self.cluster_seed}"
            + ("" if self.reliability else ", RELIABILITY OFF")
        )


def _jsonable(value: Any) -> Any:
    """Deep-convert tuples to lists so canonical JSON is stable."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value
