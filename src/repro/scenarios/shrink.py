"""Greedy scenario minimization that preserves the failure fingerprint.

Given a failing scenario, the shrinker walks a candidate ladder —
drop fault events, zero the background drop probability, simplify
routing, halve the workload, shrink the node count — accepting any
candidate that (a) is **strictly smaller** under
:meth:`~repro.scenarios.schema.Scenario.size` and (b) still fails with
the **identical** :class:`~repro.scenarios.runner.FailureFingerprint`.
Every acceptance restarts the ladder from the new smaller scenario
(classic greedy delta debugging), so the result is a local minimum: no
single remaining transformation can be applied without losing the bug.

Because fault events are explicit rows in the document (not a seed that
regenerates them), dropping one is a pure document edit — the shrinker
never needs to re-sample anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..network.topology import make_topology
from .runner import FailureFingerprint, ScenarioOutcome, run_scenario
from .schema import Scenario, ScenarioError

#: Candidate-evaluation budget: each attempt is a full scenario run.
DEFAULT_MAX_ATTEMPTS = 200

#: Node-count ladder the shrinker descends through.
_NODE_LADDER = (2, 3, 4, 6, 8, 9, 12)


class ShrinkError(ValueError):
    """Shrinking was asked of a scenario that does not fail."""


@dataclass
class ShrinkResult:
    """Outcome of one shrink session."""

    original: Scenario
    shrunk: Scenario
    fingerprint: FailureFingerprint
    attempts: int = 0
    accepted: int = 0
    trail: list = field(default_factory=list)

    @property
    def reduced(self) -> bool:
        return self.shrunk.size() < self.original.size()

    def describe(self) -> str:
        return (
            f"shrink {self.original.scenario_id} -> {self.shrunk.scenario_id}: "
            f"size {self.original.size()} -> {self.shrunk.size()} "
            f"({self.accepted} accepted / {self.attempts} attempts), "
            f"fingerprint {self.fingerprint.describe()}"
        )


def _events_valid_for(scenario: Scenario, n_nodes: int) -> tuple:
    """The scenario's fault events that remain meaningful at *n_nodes*."""
    topo = make_topology(scenario.topology, n_nodes)
    links = {tuple(sorted(l)) for l in topo.links()}
    keep = []
    for ev in scenario.fault_events:
        if ev.kind == "link_flap":
            if tuple(sorted(ev.params)) in links:
                keep.append(ev)
        elif ev.kind == "switch_failure":
            if ev.params[0] < topo.n_switches:
                keep.append(ev)
        else:  # partition / crash_restart reference node ids
            if all(p < n_nodes for p in ev.params):
                keep.append(ev)
    return tuple(keep)


def _workload_candidates(scenario: Scenario) -> Iterator[tuple]:
    """(workload-dict, label) candidates with a smaller workload_size."""
    w = dict(scenario.workload)
    kind = scenario.workload_kind
    if kind == "allreduce":
        if w["iterations"] > 1:
            yield {**w, "iterations": w["iterations"] // 2 or 1}, "halve iterations"
        if w["vector_len"] > 1:
            yield {**w, "vector_len": w["vector_len"] // 2 or 1}, "halve vector"
    elif kind == "incast":
        if w["msgs_per_client"] > 1:
            yield {**w, "msgs_per_client": w["msgs_per_client"] // 2 or 1}, "halve msgs"
        if w["msg_bytes"] > 512:
            yield {**w, "msg_bytes": w["msg_bytes"] // 2}, "halve msg bytes"
    elif kind == "halo3d":
        if w["iterations"] > 1:
            yield {**w, "iterations": w["iterations"] // 2 or 1}, "halve iterations"
        if w["msg_bytes"] > 1024:
            yield {**w, "msg_bytes": w["msg_bytes"] // 2}, "halve msg bytes"
    elif kind == "kv":
        scripts = [list(s) for s in w["scripts"]]
        if len(scripts) > 1:
            dropped = {**w, "scripts": scripts[:-1]}
            if "client_tenants" in w:
                # Tenant assignments are positional per client (schema
                # v2): keep them aligned with the surviving scripts.
                dropped["client_tenants"] = list(w["client_tenants"])[:-1]
            yield dropped, "drop last client"
        longest = max(range(len(scripts)), key=lambda i: len(scripts[i]))
        if len(scripts[longest]) > 1:
            trimmed = [list(s) for s in scripts]
            trimmed[longest] = trimmed[longest][: max(1, len(trimmed[longest]) // 2)]
            yield {**w, "scripts": trimmed}, f"trim client {longest} script"
    elif kind == "trace":
        # The trace itself is pinned (fixed rows); the only strictly
        # smaller variants disarm the feature toggles one at a time.
        if w.get("active"):
            yield {**w, "active": False}, "disarm active"
        if w.get("qos"):
            yield {**w, "qos": False}, "disarm qos"
    else:  # differential
        channels = [list(c) for c in w["channels"]]
        if len(channels) > 1:
            for i in range(len(channels)):
                yield (
                    {**w, "channels": channels[:i] + channels[i + 1:]},
                    f"drop channel {i}",
                )
        heaviest = max(range(len(channels)), key=lambda i: channels[i][2])
        if channels[heaviest][2] > 1:
            lighter = [list(c) for c in channels]
            lighter[heaviest][2] = max(1, lighter[heaviest][2] // 2)
            yield {**w, "channels": lighter}, f"halve channel {heaviest}"


def _candidates(scenario: Scenario) -> Iterator[tuple]:
    """Strictly smaller candidate scenarios, cheapest edits first."""
    # 1. Drop the whole fault plan, then individual events.
    if scenario.fault_events:
        yield scenario.with_changes(fault_events=()), "drop all faults"
        for i in range(len(scenario.fault_events)):
            rest = scenario.fault_events[:i] + scenario.fault_events[i + 1:]
            yield (
                scenario.with_changes(fault_events=rest),
                f"drop fault {i} ({scenario.fault_events[i].kind})",
            )
    # 2. Background loss off.
    if scenario.drop_prob > 0:
        yield scenario.with_changes(drop_prob=0.0), "zero drop_prob"
    # 3. Deterministic routing.
    if scenario.routing == "adaptive":
        yield scenario.with_changes(routing="static"), "static routing"
    # 4. Smaller workload.
    for workload, label in _workload_candidates(scenario):
        yield scenario.with_changes(workload=workload), label
    # 5. Fewer compared backends (differential only).
    if scenario.workload_kind == "differential" and len(scenario.compare) > 2:
        for i in range(1, len(scenario.compare)):
            compare = scenario.compare[:i] + scenario.compare[i + 1:]
            yield (
                scenario.with_changes(compare=compare),
                f"drop backend {scenario.compare[i]}",
            )
    # 6. Fewer nodes (events that stop making sense are dropped with it).
    floor = 2
    if scenario.workload_kind == "kv":
        floor = 1 + len(scenario.workload["scripts"])
    elif scenario.workload_kind == "differential":
        floor = 1 + max(
            max(int(s), int(d)) for s, d, _n in scenario.workload["channels"]
        )
    elif scenario.workload_kind == "trace":
        # Node count is already the floor (server + one node per trace
        # client), so the ladder never applies.
        floor = scenario.n_nodes
    for n in _NODE_LADDER:
        if floor <= n < scenario.n_nodes:
            yield (
                scenario.with_changes(
                    n_nodes=n, fault_events=_events_valid_for(scenario, n)
                ),
                f"shrink to {n} nodes",
            )


def shrink(
    scenario: Scenario,
    expect: Optional[FailureFingerprint] = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    verbose: bool = False,
) -> ShrinkResult:
    """Minimize *scenario* while preserving its failure fingerprint.

    ``expect`` pins the fingerprint to preserve; by default the scenario
    is run once and its own fingerprint is the target.  Raises
    :class:`ShrinkError` if the scenario does not fail (or fails with a
    different fingerprint than ``expect``).
    """
    base: ScenarioOutcome = run_scenario(scenario)
    if not base.failed:
        raise ShrinkError(f"scenario {scenario.scenario_id} passes; nothing to shrink")
    target = expect or base.fingerprint
    if base.fingerprint != target:
        raise ShrinkError(
            f"scenario {scenario.scenario_id} fails with "
            f"{base.fingerprint.describe()}, not the expected {target.describe()}"
        )

    result = ShrinkResult(original=scenario, shrunk=scenario, fingerprint=target)
    current = scenario
    improved = True
    while improved and result.attempts < max_attempts:
        improved = False
        for candidate, label in _candidates(current):
            if candidate.size() >= current.size():
                continue
            try:
                candidate.validate()
            except ScenarioError:
                continue
            if result.attempts >= max_attempts:
                break
            result.attempts += 1
            try:
                out = run_scenario(candidate)
            except Exception:
                continue  # a candidate that breaks differently is not the bug
            if out.failed and out.fingerprint == target:
                if verbose:
                    print(
                        f"[shrink] {label}: size {current.size()} -> "
                        f"{candidate.size()}"
                    )
                current = candidate
                result.accepted += 1
                result.trail.append(label)
                improved = True
                break  # greedy restart from the smaller scenario

    # Normalization epilogue: a canonical cluster seed (same size, so it
    # is attempted once, after minimization, and kept only if the
    # fingerprint survives).
    if current.cluster_seed != 1:
        candidate = current.with_changes(cluster_seed=1)
        result.attempts += 1
        try:
            out = run_scenario(candidate)
            if out.failed and out.fingerprint == target:
                current = candidate
                result.trail.append("normalize cluster_seed")
        except Exception:
            pass

    result.shrunk = current
    return result
