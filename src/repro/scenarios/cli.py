"""``rvma-experiments fuzz``: campaigns, replay, shrink, corpus.

Four subcommands::

    fuzz run --seed-start 1 --count 20 [--time-budget-s 300] [--shrink]
    fuzz replay <scenario.json | seed> [--report-out rep.json]
    fuzz shrink <scenario.json | seed> [--known-bad] [--out small.json]
    fuzz corpus [--dir corpus/] [--add failing.json --note "..."]

``run`` samples scenarios from consecutive master seeds and executes
each under its pinned engine mode; failures are written (and optionally
auto-shrunk) into ``--fail-dir`` as replayable scenario documents, and
the campaign's merged observability RunReport lands at ``--report-out``.

``replay`` accepts either a scenario file or a bare master seed — the
generator is deterministic, so the seed alone reconstructs the document
bit-for-bit.  Replay reports are wall-clock-scrubbed: replaying the
same scenario twice produces byte-identical JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Optional

from ..observability import RunReport
from .corpus import CORPUS_DIR, list_entries, load_entry, replay_entry, save_entry
from .generator import generate
from .runner import ScenarioOutcome, run_scenario
from .schema import Scenario
from .shrink import ShrinkError, shrink


def _load_scenario(ref: str, known_bad: bool = False) -> Scenario:
    """A scenario from a document path, or from a bare master seed."""
    path = Path(ref)
    if path.exists():
        return Scenario.load(str(path))
    try:
        seed = int(ref)
    except ValueError:
        raise SystemExit(f"fuzz: {ref!r} is neither a scenario file nor a seed")
    return generate(seed, known_bad=known_bad)


def _save_report(outcomes: list, path: str, meta: dict, shrink_stats=None) -> None:
    reports = [o.run_report for o in outcomes if o.run_report is not None]
    if not reports:
        return
    merged = RunReport.merge(reports, meta=meta)
    from .runner import scrub_report

    doc = scrub_report(merged.to_dict())
    if shrink_stats is not None:
        # Shrinking happens outside any one simulator, so its counters
        # are folded into the campaign rollup rather than a cluster's.
        group = doc.setdefault("metrics", {}).setdefault("scenario", {})
        group["scenario.shrink_attempts"] = shrink_stats[0]
        group["scenario.shrink_accepted"] = shrink_stats[1]
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"[fuzz] campaign report: {path}")


def _cmd_run(args) -> int:
    t0 = time.monotonic()
    outcomes: list[ScenarioOutcome] = []
    failures: list[ScenarioOutcome] = []
    shrink_attempts = shrink_accepted = 0
    fail_dir = Path(args.fail_dir) if args.fail_dir else None
    seed = args.seed_start
    last = args.seed_start + args.count - 1
    while seed <= last:
        if args.time_budget_s and time.monotonic() - t0 > args.time_budget_s:
            print(
                f"[fuzz] time budget {args.time_budget_s}s exhausted after "
                f"{len(outcomes)} scenario(s); stopping at seed {seed}"
            )
            break
        scenario = generate(seed, known_bad=args.known_bad)
        out = run_scenario(scenario, trace=args.trace)
        outcomes.append(out)
        marker = "FAIL" if out.failed else "ok"
        print(f"[fuzz] seed {seed}: {marker:4s} {scenario.describe()}")
        if out.failed:
            print(f"[fuzz]   fingerprint {out.fingerprint.describe()}")
            failures.append(out)
            if fail_dir is not None:
                fail_dir.mkdir(parents=True, exist_ok=True)
                raw = fail_dir / f"seed{seed}-{scenario.scenario_id}.json"
                scenario.save(str(raw))
                print(f"[fuzz]   saved {raw}")
                if args.shrink:
                    try:
                        res = shrink(scenario, expect=out.fingerprint)
                    except ShrinkError as exc:
                        print(f"[fuzz]   shrink skipped: {exc}")
                    else:
                        shrink_attempts += res.attempts
                        shrink_accepted += res.accepted
                        small = fail_dir / (
                            f"seed{seed}-{res.shrunk.scenario_id}-shrunk.json"
                        )
                        res.shrunk.save(str(small))
                        print(f"[fuzz]   {res.describe()}")
                        print(f"[fuzz]   saved {small}")
        seed += 1
    print(
        f"[fuzz] campaign: {len(outcomes)} scenario(s), "
        f"{len(failures)} failure(s), {time.monotonic() - t0:.1f}s"
    )
    if args.report_out:
        _save_report(
            outcomes,
            args.report_out,
            meta={
                "harness": "scenario-fuzz",
                "seed_start": args.seed_start,
                "scenarios": len(outcomes),
                "failures": len(failures),
                "known_bad": args.known_bad,
            },
            shrink_stats=(shrink_attempts, shrink_accepted) if args.shrink else None,
        )
    if args.known_bad:
        return 0  # failures are the point; the campaign exercised them
    return 1 if failures else 0


def _cmd_replay(args) -> int:
    scenario = _load_scenario(args.scenario, known_bad=args.known_bad)
    out = run_scenario(scenario, trace=args.trace)
    print(f"[fuzz] {out.describe()}")
    for key, value in sorted(out.details.items()):
        print(f"[fuzz]   {key}: {value}")
    if args.report_out:
        text = out.report_json()
        if text is not None:
            report_path = Path(args.report_out)
            report_path.parent.mkdir(parents=True, exist_ok=True)
            report_path.write_text(text, encoding="utf-8")
            print(f"[fuzz] replay report: {args.report_out}")
    if args.expect_fail:
        return 0 if out.failed else 2
    return 2 if out.failed else 0


def _cmd_shrink(args) -> int:
    scenario = _load_scenario(args.scenario, known_bad=args.known_bad)
    try:
        res = shrink(scenario, max_attempts=args.max_attempts, verbose=args.verbose)
    except ShrinkError as exc:
        print(f"[fuzz] {exc}")
        return 2
    print(f"[fuzz] {res.describe()}")
    for step in res.trail:
        print(f"[fuzz]   - {step}")
    if args.out:
        res.shrunk.save(args.out)
        print(f"[fuzz] shrunk scenario: {args.out}")
    return 0


def _cmd_corpus(args) -> int:
    corpus_dir = Path(args.dir) if args.dir else CORPUS_DIR
    if args.add:
        entry_scenario = Scenario.load(args.add)
        out = run_scenario(entry_scenario)
        scenario = entry_scenario
        if out.failed and args.shrink:
            res = shrink(scenario, expect=out.fingerprint)
            scenario = res.shrunk
            print(f"[fuzz] {res.describe()}")
        path = save_entry(scenario, out.fingerprint, note=args.note, corpus_dir=corpus_dir)
        print(f"[fuzz] pinned {path} (expect {out.fingerprint.describe()})")
        return 0
    entries = list_entries(corpus_dir)
    if not entries:
        print(f"[fuzz] corpus {corpus_dir}: empty")
        return 0
    bad = 0
    for entry in entries:
        verdict = replay_entry(entry)
        print(f"[fuzz] {verdict.describe()}")
        if not verdict.ok:
            bad += 1
    print(f"[fuzz] corpus {corpus_dir}: {len(entries)} entries, {bad} diverged")
    return 1 if bad else 0


def fuzz_main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rvma-experiments fuzz",
        description="Seeded scenario fuzzer: campaigns, replay, shrink, corpus",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a fuzz campaign over a seed range")
    p_run.add_argument("--seed-start", type=int, default=1)
    p_run.add_argument("--count", type=int, default=10)
    p_run.add_argument(
        "--time-budget-s", type=float, default=0.0,
        help="stop sampling when the budget is exhausted (0 = no budget)",
    )
    p_run.add_argument(
        "--known-bad", action="store_true",
        help="sample deliberately failing scenarios (reliability disarmed)",
    )
    p_run.add_argument(
        "--shrink", action="store_true",
        help="auto-shrink every failure before saving it",
    )
    p_run.add_argument(
        "--fail-dir", type=str, default="",
        help="write failing (and shrunk) scenario documents here",
    )
    p_run.add_argument(
        "--report-out", type=str, default="",
        help="write the campaign's merged observability report (JSON) here",
    )
    p_run.add_argument("--trace", action="store_true", help="enable span tracing")
    p_run.set_defaults(func=_cmd_run)

    p_replay = sub.add_parser(
        "replay", help="replay one scenario from its file or master seed"
    )
    p_replay.add_argument("scenario", help="scenario JSON path, or a master seed")
    p_replay.add_argument("--known-bad", action="store_true")
    p_replay.add_argument(
        "--report-out", type=str, default="",
        help="write the deterministic (wall-scrubbed) replay report here",
    )
    p_replay.add_argument(
        "--expect-fail", action="store_true",
        help="exit 0 when the scenario fails (regression-pin mode)",
    )
    p_replay.add_argument("--trace", action="store_true")
    p_replay.set_defaults(func=_cmd_replay)

    p_shrink = sub.add_parser("shrink", help="minimize a failing scenario")
    p_shrink.add_argument("scenario", help="scenario JSON path, or a master seed")
    p_shrink.add_argument("--known-bad", action="store_true")
    p_shrink.add_argument("--out", type=str, default="", help="write the shrunk document here")
    p_shrink.add_argument("--max-attempts", type=int, default=200)
    p_shrink.add_argument("--verbose", action="store_true")
    p_shrink.set_defaults(func=_cmd_shrink)

    p_corpus = sub.add_parser(
        "corpus", help="replay the pinned corpus (or --add a new entry)"
    )
    p_corpus.add_argument("--dir", type=str, default="", help="corpus directory")
    p_corpus.add_argument("--add", type=str, default="", help="scenario JSON to pin")
    p_corpus.add_argument("--note", type=str, default="", help="provenance note for --add")
    p_corpus.add_argument(
        "--shrink", action="store_true", help="shrink a failing entry before pinning"
    )
    p_corpus.set_defaults(func=_cmd_corpus)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(fuzz_main())
