"""Seeded scenario fuzzing: generate → run → shrink → pin.

The robustness subsystem the ROADMAP's "as many scenarios as you can
imagine" item asks for.  One master seed samples a fully pinned,
schema-versioned scenario document (:mod:`.generator` / :mod:`.schema`);
the runner replays any document bit-identically through the existing
oracles — chaos invariants, the invariant auditor, KV linearizability,
differential backend parity (:mod:`.runner`); failing scenarios
greedily minimize while preserving their failure fingerprint
(:mod:`.shrink`); and shrunk survivors pin into a replayed regression
corpus (:mod:`.corpus`).  ``rvma-experiments fuzz`` is the front end
(:mod:`.cli`).
"""

from .corpus import (
    CORPUS_DIR,
    CorpusEntry,
    ReplayVerdict,
    list_entries,
    load_entry,
    replay_corpus,
    replay_entry,
    save_entry,
)
from .generator import generate, generate_many, regenerate
from .runner import (
    FailureFingerprint,
    ScenarioOutcome,
    engine_mode,
    run_scenario,
    scrub_report,
)
from .schema import (
    BACKENDS,
    MOTIF_KINDS,
    SCHEMA_VERSION,
    WORKLOAD_KINDS,
    FaultEvent,
    Scenario,
    ScenarioError,
)
from .shrink import ShrinkError, ShrinkResult, shrink

__all__ = [
    "BACKENDS",
    "CORPUS_DIR",
    "CorpusEntry",
    "FailureFingerprint",
    "FaultEvent",
    "MOTIF_KINDS",
    "ReplayVerdict",
    "SCHEMA_VERSION",
    "Scenario",
    "ScenarioError",
    "ScenarioOutcome",
    "ShrinkError",
    "ShrinkResult",
    "WORKLOAD_KINDS",
    "engine_mode",
    "generate",
    "generate_many",
    "list_entries",
    "load_entry",
    "regenerate",
    "replay_corpus",
    "replay_entry",
    "run_scenario",
    "save_entry",
    "scrub_report",
    "shrink",
]
