"""Scenario sampling: one master seed → one fully pinned scenario.

Samples the cross-product the ROADMAP asks for — **topology × routing ×
fault/chaos schedule × workload (motif or KV load or differential
channel matrix) × backend × engine mode** — from the repo's named RNG
streams (:class:`repro.sim.rng.RngRegistry`), so the same master seed
always yields the byte-identical scenario document.  Every nested seed
(cluster/simulator seed, workload scripts, fault windows) is *recorded*
in the document rather than re-derived at run time: the generator is
the only consumer of the master seed.

Fault windows are drawn against the actual topology (links and switch
counts come from :func:`repro.network.topology.make_topology`), mirroring
:meth:`repro.faults.chaos.ChaosSchedule.generate` but emitting explicit
:class:`~repro.scenarios.schema.FaultEvent` rows the shrinker can drop
one at a time.
"""

from __future__ import annotations

from typing import Optional

from ..network.topology import make_topology
from ..sim.rng import RngRegistry
from .schema import BACKENDS, KV_OPS, MOTIF_KINDS, FaultEvent, Scenario

#: Time horizons per workload kind (ns) — sized like the chaos/churn
#: harnesses so retry budgets cover the longest schedulable window.
HORIZONS = {
    "allreduce": 400_000.0,
    "incast": 400_000.0,
    "halo3d": 400_000.0,
    "kv": 600_000.0,
}

MAX_WINDOW_NS = 50_000.0
MIN_WINDOW_NS = 5_000.0
CRASH_MIN_START_NS = 40_000.0
CRASH_WINDOW_NS = (15_000.0, 40_000.0)

#: Workload mix: motifs dominate (they exercise recovery), KV and the
#: differential matrix keep the service and protocol-parity oracles hot.
_KIND_WEIGHTS = [
    ("allreduce", 3), ("incast", 3), ("halo3d", 2), ("kv", 4), ("differential", 4),
]

_TOPOLOGIES = ("dragonfly", "fattree", "hyperx", "torus3d", "star")
_NODE_CHOICES = (6, 8, 9, 12, 16)
_DROP_PROBS = (0.0, 0.02, 0.05, 0.10)


def _weighted(rng: RngRegistry, stream: str, table) -> str:
    total = sum(w for _, w in table)
    pick = rng.randint(stream, 0, total)
    for value, weight in table:
        if pick < weight:
            return value
        pick -= weight
    return table[-1][0]  # pragma: no cover - arithmetic guard


def _sample_faults(
    rng: RngRegistry,
    topology: str,
    n_nodes: int,
    kinds: tuple,
    horizon_ns: float,
    n_events: int,
    n_crashes: int,
) -> tuple:
    """Explicit fault-event rows against the real topology graph."""
    topo = make_topology(topology, n_nodes)
    links = sorted({tuple(sorted(l)) for l in topo.links()})
    events = []
    for _ in range(n_crashes):
        node = rng.choice("gen.crash.node", n_nodes)
        lo, hi = CRASH_WINDOW_NS
        down = lo + rng.random("gen.crash.len") * (hi - lo)
        span = max(horizon_ns - CRASH_MIN_START_NS - down, 0.0)
        start = CRASH_MIN_START_NS + rng.random("gen.crash.start") * span
        events.append(
            FaultEvent(kind="crash_restart", start=start, end=start + down, params=(node,))
        )
    for _ in range(n_events):
        kind = kinds[rng.choice("gen.fault.kind", len(kinds))]
        span = MIN_WINDOW_NS + rng.random("gen.fault.len") * (MAX_WINDOW_NS - MIN_WINDOW_NS)
        start = rng.random("gen.fault.start") * max(horizon_ns - span, 0.0)
        if kind == "link_flap" and links:
            params = links[rng.choice("gen.fault.link", len(links))]
        elif kind == "switch_failure" and topo.n_switches > 1:
            params = (rng.choice("gen.fault.switch", topo.n_switches),)
        else:
            kind = "partition"
            params = (rng.choice("gen.fault.node", n_nodes),)
        events.append(FaultEvent(kind=kind, start=start, end=start + span, params=params))
    return tuple(sorted(events, key=lambda e: (e.start, e.kind, e.params)))


def _sample_kv_scripts(rng: RngRegistry, n_clients: int) -> list:
    """Per-client op scripts: (op, key_index, fill) triples.

    Keys are partitioned per client by the runner, so each script's
    local replay of its own ops is the exact linearization to check
    GETs against.
    """
    scripts = []
    for _ in range(n_clients):
        n_ops = 4 + rng.choice("gen.kv.len", 9)  # 4..12 steps
        script = []
        for _ in range(n_ops):
            op = KV_OPS[rng.choice("gen.kv.op", len(KV_OPS))]
            key_i = rng.choice("gen.kv.key", 4)
            fill = rng.choice("gen.kv.fill", 256)
            script.append([op, key_i, fill])
        scripts.append(script)
    return scripts


def _sample_channels(rng: RngRegistry, n_nodes: int) -> list:
    """Differential channel matrix: (src, dst, n_msgs) rows.

    Mixes a deterministic incast core (many→0) with random pairs so
    both the shared-bucket path and the pairwise paths are compared.
    """
    channels: dict = {}
    for src in range(1, min(n_nodes, 4)):
        channels[(src, 0)] = 1 + rng.choice("gen.diff.incast", 2)
    for _ in range(rng.choice("gen.diff.extra", 4)):
        src = rng.choice("gen.diff.src", n_nodes)
        dst = rng.choice("gen.diff.dst", n_nodes)
        if src == dst:
            continue
        channels[(src, dst)] = channels.get((src, dst), 0) + 1 + rng.choice("gen.diff.n", 2)
    return [[s, d, n] for (s, d), n in sorted(channels.items())]


def generate(seed: int, known_bad: bool = False) -> Scenario:
    """Sample the scenario for *seed* (deterministic, stateless).

    ``known_bad=True`` disarms the reliability transport on a fault-laden
    motif scenario — the documented way to mint a scenario that *must*
    fail (faults with no ARQ lose data or stall), used to exercise the
    shrinker and the failure-fingerprint plumbing end to end.
    """
    rng = RngRegistry(int(seed))
    kind = _weighted(rng, "gen.workload", _KIND_WEIGHTS)
    if known_bad:
        # Deterministically failing shape: a motif that must cross the
        # fabric, under hard loss, with the transport disarmed.
        kind = MOTIF_KINDS[rng.choice("gen.badkind", len(MOTIF_KINDS))]
    engine = "fast" if rng.choice("gen.engine", 2) == 0 else "plain"
    cluster_seed = 1 + rng.randint("gen.cluster_seed", 0, 1_000_000)

    if kind == "differential":
        # Cross-backend byte comparison needs ordered delivery and a
        # clean fabric: STATIC routing, no faults (the chaos oracles own
        # fault coverage; this oracle owns protocol parity).
        n_nodes = 4 + rng.choice("gen.diff.nodes", 3)  # 4..6
        others = [b for b in BACKENDS if b != "rvma"]
        picked = [b for b in others if rng.choice("gen.diff.pick", 2) == 1] or others
        return Scenario(
            seed=seed,
            workload_kind="differential",
            workload={
                "channels": _sample_channels(rng, n_nodes),
                "max_msg": 128 + rng.choice("gen.diff.maxmsg", 3) * 128,  # 128..384
            },
            topology="star",
            n_nodes=n_nodes,
            routing="static",
            engine=engine,
            backend="rvma",
            compare=tuple(["rvma"] + picked),
            reliability=False,  # parity is checked without ARQ, like the suite
            cluster_seed=cluster_seed,
            fault_events=(),
            drop_prob=0.0,
            audit=False,
            compare_clean=False,
        )

    topology = _TOPOLOGIES[rng.choice("gen.topology", len(_TOPOLOGIES))]
    routing = "static" if rng.choice("gen.routing", 2) == 0 else "adaptive"

    if kind == "kv":
        n_clients = 1 + rng.choice("gen.kv.clients", 3)  # 1..3
        n_nodes = 1 + n_clients + rng.choice("gen.kv.spare", 2)
        faults = _sample_faults(
            rng, topology, n_nodes, ("link_flap",), HORIZONS["kv"],
            n_events=rng.choice("gen.kv.events", 4), n_crashes=0,
        )
        workload = {
            "scripts": _sample_kv_scripts(rng, n_clients),
            "shards_per_node": 1 + rng.choice("gen.kv.shards", 2),
            "value_scale": 1 + rng.choice("gen.kv.vscale", 24),
        }
        if rng.choice("gen.kv.qos", 2) == 1:
            # Tenant-mix dimension (schema v2): arm QoS and spread the
            # clients across two tenants with sampled weights/rates, so
            # the fuzzer sweeps admission, DRR and deadline paths too.
            workload["qos"] = True
            workload["tenant_specs"] = [
                [
                    tid,
                    float(1 << rng.choice("gen.kv.weight", 3)),   # 1/2/4
                    float(64 * rng.choice("gen.kv.admit", 4)),    # 0..192 B/us
                    float(256 * rng.choice("gen.kv.quota", 2)),   # 0 or 256 B/us
                ]
                for tid in (1, 2)
            ]
            workload["client_tenants"] = [
                1 + rng.choice("gen.kv.tenant", 2) for _ in range(n_clients)
            ]
        if rng.choice("gen.kv.active", 2) == 1:
            # Active-handler dimension (schema v3): arm the NIC-side GET
            # short-circuit on a sampled slice of each client's keyspace
            # and, half the time, mix in an atomic word handler on the
            # reply mailboxes.  New named streams only, so pre-v3 seeds
            # regenerate their other fields byte-identically.
            workload["active"] = True
            workload["hot_key_fraction"] = 0.25 * (1 + rng.choice("gen.kv.hotfrac", 3))
            if rng.choice("gen.kv.word", 2) == 1:
                workload["handler_word"] = True
        if rng.choice("gen.kv.trace", 4) == 0:
            # Trace-replay dimension (schema v4): a quarter of the kv
            # budget replays a committed exemplar trace instead of the
            # sampled scripts, sweeping the qos/active toggles over
            # identical offered load.  New named streams drawn after
            # every v3 stream, so pre-v4 seeds regenerate their other
            # fields byte-identically.
            from ..workloads.exemplars import EXEMPLAR_NAMES, EXEMPLARS

            ref = EXEMPLAR_NAMES[rng.choice("gen.kv.tracepick", len(EXEMPLAR_NAMES))]
            return Scenario(
                seed=seed,
                workload_kind="trace",
                workload={
                    "trace_ref": ref,
                    "qos": rng.choice("gen.kv.traceqos", 2) == 1,
                    "active": rng.choice("gen.kv.traceactive", 2) == 1,
                },
                topology=topology,
                n_nodes=1 + EXEMPLARS[ref].clients,
                routing=routing,
                engine=engine,
                backend="rvma",
                reliability=True,
                cluster_seed=cluster_seed,
                fault_events=(),        # replay compares variants on a
                drop_prob=0.0,          # clean fabric; chaos owns faults
                audit=True,
                compare_clean=False,
            )
        return Scenario(
            seed=seed,
            workload_kind="kv",
            workload=workload,
            topology=topology,
            n_nodes=n_nodes,
            routing=routing,
            engine=engine,
            backend="rvma",
            reliability=True,
            cluster_seed=cluster_seed,
            fault_events=faults,
            drop_prob=_DROP_PROBS[rng.choice("gen.kv.drop", len(_DROP_PROBS))],
            audit=False,            # the auditor shadows motif placement; the
            compare_clean=False,    # KV oracle is the linearizability check
        )

    # Motif scenario (allreduce / incast / halo3d).
    n_nodes = _NODE_CHOICES[rng.choice("gen.nodes", len(_NODE_CHOICES))]
    reliability = not known_bad
    n_crashes = rng.choice("gen.crashes", 2) if reliability else 0
    faults = _sample_faults(
        rng, topology, n_nodes,
        ("link_flap", "switch_failure", "partition"),
        HORIZONS[kind],
        n_events=1 + rng.choice("gen.events", 4),
        n_crashes=n_crashes,
    )
    drop = _DROP_PROBS[rng.choice("gen.drop", len(_DROP_PROBS))]
    if known_bad:
        drop = max(drop, 0.35)  # hard loss with no ARQ: guaranteed failure
    if kind == "allreduce":
        workload = {
            "iterations": 2 + rng.choice("gen.ar.iters", 4),
            "vector_len": 2 + rng.choice("gen.ar.vec", 7),
        }
    elif kind == "incast":
        workload = {
            "msgs_per_client": 2 + rng.choice("gen.in.msgs", 3),
            "msg_bytes": 512 * (1 + rng.choice("gen.in.bytes", 6)),
        }
    else:
        workload = {
            "iterations": 1 + rng.choice("gen.h3.iters", 3),
            "msg_bytes": 1024 * (1 + rng.choice("gen.h3.bytes", 6)),
        }
    return Scenario(
        seed=seed,
        workload_kind=kind,
        workload=workload,
        topology=topology,
        n_nodes=n_nodes,
        routing=routing,
        engine=engine,
        backend="rvma",
        reliability=reliability,
        cluster_seed=cluster_seed,
        fault_events=faults,
        drop_prob=drop,
        audit=n_crashes > 0,
        compare_clean=True,
    )


def generate_many(seed_start: int, count: int, known_bad: bool = False) -> list:
    """Scenarios for the seed range ``[seed_start, seed_start+count)``."""
    return [generate(seed_start + i, known_bad=known_bad) for i in range(count)]


def regenerate(scenario_or_seed, known_bad: bool = False) -> Scenario:
    """Replay aid: a scenario from its master seed alone."""
    seed = getattr(scenario_or_seed, "seed", scenario_or_seed)
    return generate(int(seed), known_bad=known_bad)
