"""The RVMA window object (the paper's ``RVMA_win``).

A window binds one mailbox virtual address on one node to a bucket of
posted buffers plus their completion notification slots.  Notification
slots are 16 bytes (head pointer + length), cache-line aligned so that
both words land in one NIC store and one MWait wake (paper §III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..memory.address import CACHE_LINE
from ..memory.buffer import HostBuffer, PostedBuffer
from ..nic.lut import BufferMode, EpochType


@dataclass
class PostedRecord:
    """Software-side record of one posted buffer and its slots."""

    buffer: HostBuffer
    posted: PostedBuffer
    notification_addr: int
    length_addr: int


@dataclass
class CompletionInfo:
    """What ``wait_completion`` returns: the completed buffer's identity."""

    head_addr: int
    length: int
    record: PostedRecord

    def read_data(self) -> bytes:
        """Contents of the completed buffer (up to the reported length)."""
        return self.record.buffer.memory.read(self.head_addr, self.length)


@dataclass
class Window:
    """User handle for one RVMA mailbox on one node."""

    node: "object"  # repro.cluster.node.Node (kept loose to avoid cycles)
    virtual_addr: int
    key: int
    epoch_threshold: int
    epoch_type: EpochType
    mode: BufferMode = BufferMode.STEERED
    posted: list[PostedRecord] = field(default_factory=list)
    #: Number of completions already consumed via wait_completion.
    consumed: int = 0
    closed: bool = False

    def next_unconsumed(self) -> PostedRecord:
        """The oldest posted buffer not yet consumed by wait_completion."""
        if self.consumed >= len(self.posted):
            raise IndexError(
                f"window {self.virtual_addr:#x}: no posted buffer left to wait on "
                f"(posted={len(self.posted)}, consumed={self.consumed})"
            )
        return self.posted[self.consumed]

    @property
    def buffers_outstanding(self) -> int:
        """Posted buffers not yet consumed by the application."""
        return len(self.posted) - self.consumed


def alloc_notification_slot(memory) -> tuple[int, int]:
    """Allocate a zeroed cache-line slot; returns (notify_addr, length_addr)."""
    alloc = memory.alloc(CACHE_LINE, align=CACHE_LINE, label="rvma-notify")
    memory.write(alloc.base, b"\x00" * 16)
    return alloc.base, alloc.base + 8
