"""Receiver-Managed RVMA: sockets-style streaming (paper §IV-B).

In Receiver-Managed mode the NIC ignores offsets and appends incoming
bytes consecutively into the active buffer, so unmodified stream-style
code maps onto RVMA with "very minimal middleware support".  This
module is that minimal middleware: a server-side stream endpoint that
surfaces completed chunks, and a client-side writer.

Stream placement follows arrival order, so the transport must deliver
in order (use static routing, as sockets-over-fabric deployments do).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..memory.mwait import MWAIT, WakeupModel
from ..nic.lut import BufferMode, EpochType
from ..network.routing import RoutingMode
from .api import RvmaApi
from .status import RvmaApiError, RvmaStatus
from .window import Window


class StreamServer:
    """Receiving end of a receiver-managed byte stream."""

    def __init__(self, api: RvmaApi, mailbox: int, chunk_size: int, n_chunks: int = 4) -> None:
        if chunk_size <= 0 or n_chunks <= 0:
            raise RvmaApiError(RvmaStatus.ERR_INVALID, "chunk sizing must be positive")
        self.api = api
        self.mailbox = mailbox
        self.chunk_size = chunk_size
        self.n_chunks = n_chunks
        self.win: Optional[Window] = None

    def open(self) -> Generator:
        """Create the managed-mode window and arm its chunk buffers."""
        self.win = yield from self.api.init_window(
            self.mailbox,
            epoch_threshold=self.chunk_size,
            epoch_type=EpochType.EPOCH_BYTES,
            mode=BufferMode.MANAGED,
        )
        for _ in range(self.n_chunks):
            yield from self.api.post_buffer(self.win, size=self.chunk_size)
        return self.win

    def recv(self, wakeup: WakeupModel = MWAIT) -> Generator:
        """Block until the next chunk completes; returns its bytes.

        Re-arms a replacement buffer so the stream never starves —
        receiver-side resource management in action.
        """
        info = yield from self.api.wait_completion(self.win, wakeup)
        data = info.read_data()
        yield from self.api.post_buffer(self.win, size=self.chunk_size)
        return data

    def flush(self) -> Generator:
        """Surface a partially filled chunk now (``RVMA_Win_inc_epoch``)."""
        status = yield from self.api.win_inc_epoch(self.win)
        return status

    def poll_ready(self) -> bool:
        """True when a completed chunk is waiting (non-blocking check:
        one host-memory read of the next notification word)."""
        try:
            record = self.win.next_unconsumed()
        except IndexError:
            return False
        return self.api.node.memory.read_u64(record.notification_addr) != 0

    def close(self) -> Generator:
        """Close the stream's window; later writes are discarded."""
        status = yield from self.api.close_win(self.win)
        return status


class StreamClient:
    """Sending end: write bytes to the server's mailbox like a socket."""

    def __init__(
        self,
        api: RvmaApi,
        server_node: int,
        mailbox: int,
        mode: RoutingMode = RoutingMode.STATIC,
    ) -> None:
        self.api = api
        self.server_node = server_node
        self.mailbox = mailbox
        self.mode = mode
        self.bytes_sent = 0

    def send(self, data: bytes) -> Generator:
        """Stream *data*; returns the PutOp (local completion handle)."""
        op = yield from self.api.put(
            self.server_node, self.mailbox, data=data, mode=self.mode
        )
        self.bytes_sent += len(data)
        return op
