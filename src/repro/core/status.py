"""RVMA status codes (the paper's ``RVMA_Status``)."""

from __future__ import annotations

from enum import Enum


class RvmaStatus(Enum):
    SUCCESS = "success"
    ERR_NO_WINDOW = "no_window"  # mailbox was never initialised
    ERR_CLOSED = "closed"  # window closed; op discarded
    ERR_NO_RESOURCES = "no_resources"  # LUT/counter exhaustion
    ERR_NO_BUFFER = "no_buffer"  # bucket empty, no catch-all
    ERR_OUT_OF_BOUNDS = "out_of_bounds"  # offset+len beyond active buffer
    ERR_INVALID = "invalid"  # malformed arguments

    @property
    def ok(self) -> bool:
        return self is RvmaStatus.SUCCESS


class RvmaApiError(RuntimeError):
    """Raised for local misuse of the API (not for remote NACKs)."""

    def __init__(self, status: RvmaStatus, message: str = "") -> None:
        super().__init__(f"{status.value}: {message}" if message else status.value)
        self.status = status
