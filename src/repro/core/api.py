"""The RVMA application programming interface (paper §III-C).

Method-per-call mapping to the paper:

=====================  =================================
Paper                   This module
=====================  =================================
``RVMA_Init_window``    :meth:`RvmaApi.init_window`
``RVMA_Post_buffer``    :meth:`RvmaApi.post_buffer`
``RVMA_Close_Win``      :meth:`RvmaApi.close_win`
``RVMA_Win_inc_epoch``  :meth:`RvmaApi.win_inc_epoch`
``RVMA_Win_get_epoch``  :meth:`RvmaApi.win_get_epoch`
``RVMA_Win_get_buf_ptrs`` :meth:`RvmaApi.win_get_buf_ptrs`
``RVMA_Put``            :meth:`RvmaApi.put`
(comprehensive spec)    :meth:`RvmaApi.get`, catch-all, rewind
=====================  =================================

All time-consuming calls are generator functions to be driven inside a
:class:`repro.sim.process.SimProcess`::

    def app(api, peer):
        win = yield from api.init_window(0xBEEF, epoch_threshold=1024)
        yield from api.post_buffer(win, size=1024)
        ...

``execute(sim, gen)`` runs one such generator to completion for tests
and scripts.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..memory.buffer import HostBuffer
from ..memory.mwait import MWAIT, WakeupModel
from ..nic.lut import BufferMode, EpochType, LutError, RetiredBuffer
from ..nic.rvma import GetOp, PutOp, RvmaNic
from ..network.routing import RoutingMode
from ..sim.engine import Simulator
from ..sim.process import SimProcess
from .addressing import RvmaAddress, resolve_destination
from .status import RvmaApiError, RvmaStatus
from .window import CompletionInfo, PostedRecord, Window, alloc_notification_slot


class RvmaApi:
    """Per-node RVMA software endpoint.

    Parameters
    ----------
    node:
        A :class:`repro.cluster.node.Node` whose NIC is an RVMA NIC.
    sw_overhead:
        Host software time (ns) charged per API call, letting the
        calibrated microbenchmarks model verbs/UCX-class library costs.
    pid:
        Process id of this endpoint on its node (paper §III-C NID/PID
        addressing).  Non-zero PIDs carve a private slice of the node's
        mailbox space, so co-located processes may reuse mailbox
        numbers; initiators target them via :class:`RvmaAddress`.
    """

    def __init__(self, node, sw_overhead: float = 0.0, pid: int = 0) -> None:
        if not isinstance(node.nic, RvmaNic):
            raise TypeError("RvmaApi requires a node with an RVMA NIC")
        self.node = node
        self.nic: RvmaNic = node.nic
        self.sim = node.sim
        self.sw_overhead = sw_overhead
        self.pid = pid
        self.address = RvmaAddress(node.node_id, pid)
        self._next_key = 0x5EED

    def _own_mailbox(self, virtual_addr: int) -> int:
        # PID 0 keeps the full 64-bit mailbox space (backwards
        # compatible); non-zero PIDs live in their qualified slice.
        return self.address.qualify(virtual_addr) if self.pid else virtual_addr

    def _overhead(self):
        if self.sw_overhead > 0:
            yield self.sw_overhead

    # ------------------------------------------------------------------ windows

    def init_window(
        self,
        virtual_addr: int,
        epoch_threshold: int,
        epoch_type: EpochType = EpochType.EPOCH_BYTES,
        mode: BufferMode = BufferMode.STEERED,
    ) -> Generator:
        """Create a window on *virtual_addr* (a mailbox, not a pointer)."""
        if epoch_threshold <= 0:
            raise RvmaApiError(RvmaStatus.ERR_INVALID, "epoch_threshold must be > 0")
        yield from self._overhead()
        virtual_addr = self._own_mailbox(virtual_addr)
        res = yield self.nic.hw_init_window(virtual_addr, epoch_type, mode)
        if isinstance(res, LutError):
            raise RvmaApiError(RvmaStatus.ERR_NO_RESOURCES, str(res))
        self._next_key += 1
        return Window(
            node=self.node,
            virtual_addr=virtual_addr,
            key=self._next_key,
            epoch_threshold=epoch_threshold,
            epoch_type=epoch_type,
            mode=mode,
        )

    def post_buffer(
        self,
        win: Window,
        size: Optional[int] = None,
        buffer: Optional[HostBuffer] = None,
        threshold: Optional[int] = None,
    ) -> Generator:
        """Attach a buffer to the window's bucket.

        Pass either *size* (a fresh buffer is allocated) or an existing
        *buffer*.  Returns the :class:`PostedRecord`, whose
        ``notification_addr`` is the paper's ``notification_ptr``.
        """
        if (size is None) == (buffer is None):
            raise RvmaApiError(RvmaStatus.ERR_INVALID, "pass exactly one of size/buffer")
        if buffer is None:
            buffer = HostBuffer.allocate(self.node.memory, int(size), label="rvma-buf")
        thr = threshold if threshold is not None else win.epoch_threshold
        if win.epoch_type is EpochType.EPOCH_BYTES and thr > buffer.size:
            raise RvmaApiError(
                RvmaStatus.ERR_INVALID,
                f"byte threshold {thr} exceeds buffer size {buffer.size}",
            )
        yield from self._overhead()
        notify, length_addr = alloc_notification_slot(self.node.memory)
        res = yield self.nic.hw_post_buffer(
            win.virtual_addr, buffer, thr, notify, length_addr
        )
        if isinstance(res, LutError):
            raise RvmaApiError(RvmaStatus.ERR_NO_WINDOW, str(res))
        record = PostedRecord(
            buffer=buffer, posted=res, notification_addr=notify, length_addr=length_addr
        )
        win.posted.append(record)
        return record

    def close_win(self, win: Window) -> Generator:
        """Close the window; further remote ops are discarded (and may NACK)."""
        yield from self._overhead()
        found = yield self.nic.hw_close(win.virtual_addr)
        win.closed = True
        return RvmaStatus.SUCCESS if found else RvmaStatus.ERR_NO_WINDOW

    def win_inc_epoch(self, win: Window) -> Generator:
        """Hand the active buffer to software before its threshold is met."""
        yield from self._overhead()
        record = yield self.nic.hw_inc_epoch(win.virtual_addr)
        return RvmaStatus.SUCCESS if record is not None else RvmaStatus.ERR_NO_BUFFER

    def win_get_epoch(self, win: Window) -> Generator:
        """Current epoch (count of completed buffers) of the window."""
        yield from self._overhead()
        epoch = yield self.nic.hw_get_epoch(win.virtual_addr)
        return int(epoch)

    def win_get_buf_ptrs(self, win: Window, count: int) -> list[int]:
        """Harvest up to *count* completed-buffer head pointers.

        Pure host-memory reads (no simulated delay): exactly the cheap
        polling loop the paper intends.  Returns valid pointers only.
        """
        out: list[int] = []
        for record in win.posted:
            if len(out) >= count:
                break
            value = self.node.memory.read_u64(record.notification_addr)
            if value != 0:
                out.append(value)
        return out

    # ------------------------------------------------------------------ transfers

    def put(
        self,
        dst: int,
        virtual_addr: int,
        data: bytes = b"",
        size: Optional[int] = None,
        offset: int = 0,
        mode: Optional[RoutingMode] = None,
    ) -> Generator:
        """Initiate a put; returns the :class:`PutOp` handle.

        Note there is no rkey and no raw remote address: the initiator
        needs only the target node and mailbox — RVMA's headline
        usability win over RDMA's Figure-1 handshake.
        """
        nbytes = size if size is not None else len(data)
        if nbytes < 0 or offset < 0:
            raise RvmaApiError(RvmaStatus.ERR_INVALID, "negative size/offset")
        spans = self.nic.sim.spans
        sp = None
        if spans.active and spans.wants("api"):
            sp = spans.begin(
                "api", "put", node=self.node.node_id, dst=dst, size=nbytes
            )
        yield from self._overhead()
        dst_node, mailbox = resolve_destination(dst, virtual_addr)
        op = self.nic.hw_put(dst_node, mailbox, nbytes, data, offset, mode)
        if sp is not None:
            op.local_done.add_callback(lambda _op: spans.end(sp))
        return op

    def get(
        self,
        dst: int,
        virtual_addr: int,
        length: int,
        dest_buffer: Optional[HostBuffer] = None,
        offset: int = 0,
        mode: Optional[RoutingMode] = None,
    ) -> Generator:
        """Initiate a get from the target's active buffer; returns GetOp."""
        if dest_buffer is None:
            dest_buffer = HostBuffer.allocate(self.node.memory, length, label="rvma-get")
        yield from self._overhead()
        dst_node, mailbox = resolve_destination(dst, virtual_addr)
        return self.nic.hw_get(dst_node, mailbox, length, dest_buffer, offset, mode)

    # ------------------------------------------------------------------ completion

    def wait_completion(self, win: Window, wakeup: WakeupModel = MWAIT) -> Generator:
        """Block until the next posted buffer completes its epoch.

        Waits on that buffer's own notification cache line (MWait by
        default), then reads the (head, length) pair the NIC stored.
        """
        record = win.next_unconsumed()
        spans = self.nic.sim.spans
        sp = None
        if spans.active and spans.wants("api"):
            sp = spans.begin(
                "api",
                "wait_completion",
                node=self.node.node_id,
                mailbox=win.virtual_addr,
            )
        head = yield self.node.waiter.wait_for_nonzero_u64(record.notification_addr, wakeup)
        yield from self._overhead()  # library wrapper around the check
        length = self.node.memory.read_u64(record.length_addr)
        win.consumed += 1
        if sp is not None:
            spans.end(sp, length=int(length))
        return CompletionInfo(head_addr=int(head), length=int(length), record=record)

    # ------------------------------------------------------------------ failures

    def _require_detector(self):
        detector = self.nic.detector
        if detector is None:
            raise RvmaApiError(
                RvmaStatus.ERR_INVALID,
                "failure detection requires reliability: build the cluster with "
                "nic_config=RvmaNicConfig(reliability=ReliabilityConfig(...))",
            )
        return detector

    def watch_peer(self, peer: int, deadline: Optional[float] = None):
        """Start failure-detector monitoring of *peer* (heartbeat pings).

        Returns the :class:`repro.reliability.detector.Watch` handle;
        cancel it (or pass *deadline*) so a run whose peers stay healthy
        still drains its event heap and terminates.
        """
        return self._require_detector().watch(peer, deadline=deadline)

    def peer_failure(self, peer: int):
        """Future resolved with :class:`~repro.reliability.detector.PeerFailed`
        when *peer* is suspected dead (starts a watch)."""
        return self._require_detector().failure_future(peer)

    def wait_peer_failure(self, peer: int) -> Generator:
        """Block until the failure detector suspects *peer*.

        The application-facing alternative to hanging in
        ``wait_completion`` on traffic a dead peer will never finish.
        """
        record = yield self.peer_failure(peer)
        return record

    def peer_suspected(self, peer: int) -> bool:
        """Whether the failure detector currently suspects *peer*."""
        detector = self.nic.detector
        return detector is not None and detector.is_suspected(peer)

    def reinstate_peer(self, peer: int) -> None:
        """Clear suspicion of *peer* after it crash-restarted and
        rejoined (no-op when not suspected or no detector).

        The recovery stack (:mod:`repro.recovery`) does this
        automatically when it services the peer's rejoin hello; this is
        the manual escape hatch for applications running their own
        membership protocol.
        """
        detector = self.nic.detector
        if detector is not None:
            detector.reinstate(peer)

    # ------------------------------------------------------------------ observability

    def metrics(self, prefix: str = ""):
        """Federated hierarchical metrics for this node's simulation.

        Returns a :class:`repro.observability.MetricsRegistry` snapshot
        aggregating every component's flat counters/summaries/histograms
        under canonical names (``nic.rvma.bytes_placed``,
        ``transport.retransmits``, …).  Filter with *prefix*
        (e.g. ``api.metrics("transport").flat()``) — the registry itself
        always holds everything; *prefix* applies to :meth:`flat`-style
        reads, so it is accepted here for convenience and forwarded.
        """
        from repro.observability import MetricsRegistry

        registry = MetricsRegistry.collect(self.nic.sim)
        if prefix:
            return registry.flat(prefix)
        return registry

    def trace_spans(self, category: str = ""):
        """Recorded observability spans (optionally one *category*).

        Spans are collected only after ``sim.spans.enable(...)``; see
        ``docs/OBSERVABILITY.md`` for the category catalog.
        """
        return self.nic.sim.spans.spans(category)

    # ------------------------------------------------------------------ extensions

    def set_catch_all(self, win: Window) -> Generator:
        """Make *win*'s bucket the catch-all for unmatched mailboxes."""
        yield from self._overhead()
        ok = yield self.nic.hw_set_catch_all(win.virtual_addr)
        return RvmaStatus.SUCCESS if ok else RvmaStatus.ERR_NO_WINDOW

    def rewind(self, win: Window, epochs_back: int = 1) -> Generator:
        """Fetch the buffer of a previous epoch (fault tolerance, §IV-F).

        Returns the :class:`~repro.nic.lut.RetiredBuffer` or None.
        """
        yield from self._overhead()
        record = yield self.nic.hw_rewind(win.virtual_addr, epochs_back)
        return record

    def attach_handler(self, win: Window, handler) -> Generator:
        """Bind an active-mailbox handler (:mod:`repro.nic.active`) to
        *win*: the NIC completion unit then executes it whenever a
        buffer crosses its threshold.  Returns the
        :class:`~repro.nic.active.ActiveBinding`.
        """
        yield from self._overhead()
        res = yield self.nic.hw_attach_handler(win.virtual_addr, handler)
        if isinstance(res, LutError):
            raise RvmaApiError(RvmaStatus.ERR_INVALID, str(res))
        return res

    def active_word(self, win: Window) -> Generator:
        """Read the window's NIC-resident handler word (PCIe round trip);
        None when no :class:`~repro.nic.active.AtomicWordHandler` is bound."""
        yield from self._overhead()
        value = yield self.nic.hw_active_word(win.virtual_addr)
        return value

    def kv_sync(
        self,
        win: Window,
        key: bytes,
        value: Optional[bytes] = None,
        delete: bool = False,
        executed: bool = True,
    ) -> Generator:
        """Sync the window's hot-key view after executing (or shedding,
        ``executed=False``) a write on *key*; True when a KV handler is
        bound (see :meth:`repro.nic.rvma.RvmaNic.hw_kv_sync`)."""
        yield from self._overhead()
        ok = yield self.nic.hw_kv_sync(win.virtual_addr, key, value, delete, executed)
        return bool(ok)


def execute(sim: Simulator, gen: Generator, name: str = "api"):
    """Drive one API generator to completion; returns its value.

    Convenience for tests/examples: spawns a process and drains the
    event loop.
    """
    proc = SimProcess(sim, gen, name)
    sim.run()
    if not proc.finished:
        raise RuntimeError(f"process {name} deadlocked (pending events drained)")
    return proc.result
