"""RVMA core: the paper's contribution as a user-facing API."""

from ..nic.lut import BufferMode, EpochType, RetiredBuffer
from .addressing import PID_SHIFT, RvmaAddress, resolve_destination
from .api import RvmaApi, execute
from .fault_tolerance import (
    CoordinatedRewind,
    EpochJournal,
    RecoveryResult,
    RewindResult,
    coordinated_rewind,
    latest_consistent_epoch,
    mpix_rewind,
    negotiate_consistent_epoch,
    recover_on_failure,
)
from .receiver_managed import StreamClient, StreamServer
from .status import RvmaApiError, RvmaStatus
from .window import CompletionInfo, PostedRecord, Window, alloc_notification_slot

__all__ = [
    "BufferMode",
    "PID_SHIFT",
    "RvmaAddress",
    "resolve_destination",
    "CompletionInfo",
    "CoordinatedRewind",
    "EpochJournal",
    "EpochType",
    "PostedRecord",
    "RecoveryResult",
    "RetiredBuffer",
    "RewindResult",
    "recover_on_failure",
    "RvmaApi",
    "RvmaApiError",
    "RvmaStatus",
    "StreamClient",
    "StreamServer",
    "Window",
    "alloc_notification_slot",
    "coordinated_rewind",
    "execute",
    "latest_consistent_epoch",
    "mpix_rewind",
    "negotiate_consistent_epoch",
]
