"""RVMA destination addressing (paper §III-C, initiator-side API).

``RVMA_Put`` sends "to a physical or logical network address for a node
and a virtual address (mailbox) on said node.  Physical and/or logical
addresses may include a network ID (NID) and process ID (PID) pair, if
remote process space targeting is desirable."

We model that: an :class:`RvmaAddress` names (nid, pid); the PID selects
a per-process slice of the node's 64-bit mailbox space, so co-located
processes can use identical application-level mailbox numbers without
colliding.  A bare ``int`` destination keeps meaning "node, PID 0".
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: Bits of the mailbox space reserved for the PID prefix.
PID_SHIFT = 48
PID_MASK = 0xFFFF


def stable_hash64(data: bytes | str) -> int:
    """A stable 64-bit hash for mailbox selection (keys → shards).

    Services that spread a keyspace across mailboxes need a hash that
    is identical across processes and Python versions — ``hash()`` is
    salted per interpreter, so this uses blake2b.  The result indexes
    the mailbox space deterministically for any (key, shard count).
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


@dataclass(frozen=True)
class RvmaAddress:
    """A (network id, process id) destination for RVMA operations."""

    nid: int
    pid: int = 0

    def __post_init__(self) -> None:
        if self.nid < 0:
            raise ValueError("nid must be non-negative")
        if not 0 <= self.pid <= PID_MASK:
            raise ValueError(f"pid must fit in 16 bits, got {self.pid}")

    def qualify(self, mailbox: int) -> int:
        """The node-global mailbox this (pid, mailbox) pair names."""
        return ((self.pid & PID_MASK) << PID_SHIFT) | (mailbox & ((1 << PID_SHIFT) - 1))


def resolve_destination(dst, mailbox: int) -> tuple[int, int]:
    """Normalise a destination into (node id, node-global mailbox).

    Accepts a bare node id (PID 0) or an :class:`RvmaAddress`.
    """
    if isinstance(dst, RvmaAddress):
        return dst.nid, dst.qualify(mailbox)
    return int(dst), mailbox & ((1 << 64) - 1)
