"""Hardware-level fault tolerance via multi-epoch rewind (paper §IV-F).

RVMA retains retired (completed-epoch) buffers on the NIC, so after a
failure the application can retrieve the address of the last *complete*
communication epoch and roll back to it — the paper's proposed
``MPIX_Rewind(MPI_Win)``.  The caveat the paper states applies here
too: if the application overwrote a retired buffer, the rollback
returns the modified bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..nic.lut import RetiredBuffer
from ..reliability.detector import PeerFailed
from .api import RvmaApi
from .window import Window


@dataclass
class RewindResult:
    """A recovered communication epoch."""

    epoch: int
    head_addr: int
    length: int
    data: bytes


@dataclass
class RecoveryResult:
    """Outcome of an automatic failure-triggered rewind."""

    failure: PeerFailed
    #: last epoch that completed in hardware (safe rollback point).
    consistent_epoch: int
    rewound: Optional[RewindResult]
    #: simulated ns from suspicion to recovered state in hand.
    recovery_ns: float


def mpix_rewind(api: RvmaApi, win: Window, epochs_back: int = 1) -> Generator:
    """Return the window to a previously known state (paper §IV-F).

    Generator (drive in a SimProcess): resolves to a
    :class:`RewindResult` for the epoch ``epochs_back`` completions ago,
    or ``None`` when the NIC no longer retains that epoch.
    """
    record: Optional[RetiredBuffer] = yield from api.rewind(win, epochs_back)
    if record is None:
        return None
    data = api.node.memory.read(record.head_addr, record.length) if record.length else b""
    return RewindResult(
        epoch=record.epoch, head_addr=record.head_addr, length=record.length, data=data
    )


def latest_consistent_epoch(api: RvmaApi, win: Window) -> Generator:
    """The newest epoch that completed in hardware (safe rollback point).

    For a timestep code this is "the last completed timestep": the
    in-progress epoch is by definition inconsistent after a failure.
    """
    epoch = yield from api.win_get_epoch(win)
    return epoch - 1  # epochs are counted from 0; `epoch` is in progress


def recover_on_failure(
    api: RvmaApi, win: Window, peer: int, epochs_back: int = 1
) -> Generator:
    """Watch *peer* and, when the failure detector suspects it, run the
    full §IV-F recovery automatically: fetch the last hardware-complete
    epoch and ``mpix_rewind`` to it.

    Drive in a SimProcess; resolves to a :class:`RecoveryResult`.  This
    replaces the fixed sleep-then-hope detection the examples used to
    hand-roll: suspicion is raised by heartbeat timeout *or* by the
    reliability transport exhausting a retry budget, whichever is first.
    """
    failure: PeerFailed = yield from api.wait_peer_failure(peer)
    t_suspect = api.sim.now
    consistent = yield from latest_consistent_epoch(api, win)
    rewound: Optional[RewindResult] = yield from mpix_rewind(api, win, epochs_back)
    return RecoveryResult(
        failure=failure,
        consistent_epoch=consistent,
        rewound=rewound,
        recovery_ns=api.sim.now - t_suspect,
    )


@dataclass
class CoordinatedRewind:
    """Outcome of a multi-party rewind after a crash-restart."""

    #: newest epoch every participant completed (the agreed target).
    target_epoch: int
    #: this rank's newest locally completed epoch before rewinding.
    local_epoch: int
    #: how many completions back the target lies from here.
    epochs_back: int
    #: the recovered buffer, or None when the NIC no longer retains the
    #: target epoch (out of ``retain_epochs`` — unrecoverable by rewind).
    rewound: Optional[RewindResult]

    @property
    def ok(self) -> bool:
        """Recovered (or nothing had completed anywhere, so nothing to)."""
        return self.target_epoch < 0 or self.rewound is not None


def negotiate_consistent_epoch(epoch_views) -> int:
    """The globally consistent epoch from every participant's view.

    Each view is a rank's newest *locally completed* epoch (e.g. its own
    :func:`latest_consistent_epoch`, or the epochs a restarted peer
    advertised in its :class:`~repro.nic.headers.RejoinHello`).  No
    participant can roll *forward*, so the group state every rank can
    reach is the minimum — the classic recovery-line argument.
    """
    views = list(epoch_views)
    if not views:
        raise ValueError("need at least one epoch view to negotiate")
    return min(int(v) for v in views)


def coordinated_rewind(api: RvmaApi, win: Window, peer_epochs) -> Generator:
    """Rewind *win* to the epoch consistent with *peer_epochs*.

    *peer_epochs* are the peers' newest-completed-epoch views (typically
    harvested from rejoin hellos via
    :meth:`repro.recovery.rejoin.RecoveryReport`).  Negotiates
    ``target = min(local, peers)`` and fetches that epoch's buffer; a
    rank already at the target performs a 1-back rewind's worth of
    bookkeeping but no data fetch (``epochs_back == 0``).

    Drive in a SimProcess; resolves to :class:`CoordinatedRewind`.
    """
    local = yield from latest_consistent_epoch(api, win)
    target = negotiate_consistent_epoch([local, *peer_epochs])
    back = local - target
    rewound: Optional[RewindResult] = None
    if back >= 0 and target >= 0:
        # retired[-1] is epoch ``local``; the target is ``back + 1``
        # completions before the in-progress epoch.
        rewound = yield from mpix_rewind(api, win, epochs_back=back + 1)
    return CoordinatedRewind(
        target_epoch=target,
        local_epoch=local,
        epochs_back=max(back, 0),
        rewound=rewound,
    )


class EpochJournal:
    """Host-side journal mapping application steps to window epochs.

    A thin recovery-bookkeeping layer a timestep simulation would keep:
    ``commit(step, epoch)`` after each step; after a failure,
    ``rollback_target(completed_epoch)`` names the last committed step
    whose epoch completed in hardware.
    """

    def __init__(self) -> None:
        self._steps: list[tuple[int, int]] = []  # (step, epoch at completion)

    def commit(self, step: int, epoch: int) -> None:
        """Record that *step* completed while the window was at *epoch*."""
        if self._steps and step <= self._steps[-1][0]:
            raise ValueError("steps must be committed in increasing order")
        self._steps.append((step, epoch))

    def rollback_target(self, completed_epoch: int) -> Optional[int]:
        """Latest committed step whose epoch is <= *completed_epoch*."""
        best = None
        for step, epoch in self._steps:
            if epoch <= completed_epoch:
                best = step
        return best

    def __len__(self) -> int:
        return len(self._steps)
