"""Component and port abstractions (the SST component model).

A :class:`Component` owns named :class:`Port` objects.  Ports are wired
together through links (:mod:`repro.sim.link`); delivering to a port
invokes the handler its component installed.  This mirrors how SST
elements exchange events and keeps NICs, switches and hosts decoupled.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Simulator
    from .link import Link


class Port:
    """A named attachment point on a component.

    A port has at most one outgoing link and one receive handler.
    ``send`` pushes a payload onto the link; the link later calls the
    peer port's ``deliver``.
    """

    __slots__ = ("component", "name", "link", "handler")

    def __init__(self, component: "Component", name: str) -> None:
        self.component = component
        self.name = name
        self.link: Optional["Link"] = None
        self.handler: Optional[Callable[[Any], None]] = None

    @property
    def full_name(self) -> str:
        return f"{self.component.name}.{self.name}"

    def set_handler(self, handler: Callable[[Any], None]) -> None:
        self.handler = handler

    def connect(self, link: "Link") -> None:
        if self.link is not None:
            raise ValueError(f"port {self.full_name} already connected")
        self.link = link

    def send(self, payload: Any, size_bytes: int = 0) -> None:
        """Transmit *payload* over the attached link."""
        if self.link is None:
            raise ValueError(f"port {self.full_name} is not connected")
        self.link.transmit(self, payload, size_bytes)

    def deliver(self, payload: Any) -> None:
        """Called by the link when a payload arrives at this port."""
        if self.handler is None:
            raise ValueError(f"port {self.full_name} has no handler")
        self.handler(payload)


class Component:
    """Base class for all simulated hardware/software elements.

    Subclasses create ports with :meth:`add_port` and schedule work via
    ``self.sim.schedule``.  Registration with the simulator enables
    post-run introspection.
    """

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: dict[str, Port] = {}
        #: suffix -> Counter; avoids the f-string + registry lookup on
        #: every stat() call (NIC fast paths bump several per packet).
        self._stat_cache: dict[str, Any] = {}
        sim.register_component(self)

    def add_port(self, name: str, handler: Optional[Callable[[Any], None]] = None) -> Port:
        if name in self.ports:
            raise ValueError(f"duplicate port {name} on {self.name}")
        port = Port(self, name)
        if handler is not None:
            port.set_handler(handler)
        self.ports[name] = port
        return port

    def port(self, name: str) -> Port:
        return self.ports[name]

    def stat(self, suffix: str):
        """Component-scoped counter, e.g. ``nic0.packets_rx``."""
        c = self._stat_cache.get(suffix)
        if c is None:
            c = self.sim.stats.counter(f"{self.name}.{suffix}")
            self._stat_cache[suffix] = c
        return c

    def trace(self, message: str, **fields: Any) -> None:
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.record(self.name, message, **fields)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}>"
