"""The discrete-event simulation engine.

This is the stand-in for SST's core: a deterministic event heap with a
current simulated time, plus registries for components, statistics and
tracing.  Everything else in the reproduction (links, NICs, switches,
motifs) is built from callbacks scheduled here.

Determinism: events at equal times run in (priority, insertion-order),
and all randomness flows through :class:`repro.sim.rng.RngRegistry`,
so a simulation with a fixed seed is exactly reproducible.

Hot-path machinery (all invisible to scheduling semantics — the
conformance suite in ``tests/unit/test_engine_conformance.py`` pins
this engine event-for-event to the reference pure-heap implementation):

* ``post``/``post_at`` — kwargs-free fire-and-forget scheduling.  No
  handle escapes, so no :class:`Event` object exists at all: the heap
  payload is a plain ``(fn, args)`` tuple, uncancellable by
  construction, with nothing to allocate or bookkeep per event.
* **Bucketed batches** — ``post_batch_at``/``schedule_batch`` queue a
  homogeneous same-(time, priority) storm (fabric flight fan-out,
  retransmit-timer re-arming) as ONE heap entry holding the member
  list, turning k pushes into one push + k appends.  Buckets drain in
  global (time, priority, seq) order: before each member runs, the
  drain compares against the current heap top and re-queues the
  remainder if anything (e.g. a just-posted delay-0 event or a
  higher-priority tie) must run first.  Fire-and-forget bucket
  members are pooled Event objects recycled through a free list.
* **O(1) ``pending_events``** — derived as created − executed −
  cancelled from three monotonic counters, so the post/run hot paths
  carry no extra bookkeeping (leased events carry an ``owner`` backref
  for the cancel path).
* **Heap compaction** — lazy cancellation used to leave dead entries in
  the heap forever; chaos schedules (thousands of ACK-cancelled
  retransmit timers) grew it unboundedly.  The engine now physically
  rebuilds the heap in place once cancelled entries outnumber live
  ones (past a small floor), keeping ``len(_heap)`` bounded.
* **GC pause during drain** — ``run()``'s full-drain fast path disables
  the cyclic collector (per-event tuples are acyclic, so gen-0 sweeps
  are pure overhead) and restores it on exit.

``Simulator(fast=False)`` (or ``DEFAULT_FAST = False``) disables the
event pool and bucket path while keeping identical semantics — the
integration suite runs in both modes via a conftest fixture.

Components may also key off :attr:`Simulator.fast` to pick a batched
execution strategy: the packet fabric
(:class:`repro.network.switch.PacketFabric`) runs its vectorized
one-event-per-link-timestep path when ``sim.fast`` is set and the
reference per-packet event chain otherwise.  Such callers must keep
every *observable* (timing, metrics, delivered bytes, spans) identical
between modes — only ``events_executed`` may differ — and pin that
contract with a conformance suite
(``tests/properties/test_fabric_determinism.py``).
"""

from __future__ import annotations

import gc
import heapq
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.observability.spans import SpanTracer

from .event import Event, PRIORITY_NORMAL
from .rng import RngRegistry
from .stats import StatsRegistry
from .trace import Tracer

#: Engine mode for newly built simulators: True enables the pooled /
#: bucketed fast path.  Tests flip this (via the ``engine_mode``
#: fixture) to run the whole suite against the plain-heap mode.
DEFAULT_FAST = True

#: Upper bound on recycled Event objects kept per simulator.
_POOL_CAP = 8192

#: Compaction trigger floor: don't bother rebuilding tiny heaps.
_COMPACT_MIN_GARBAGE = 64


class SimulationError(RuntimeError):
    """Raised for engine-level misuse (negative delays, time travel...)."""


class _Bucket:
    """A batch of same-(time, priority) events behind one heap entry.

    ``items[pos:]`` are the members not yet executed.  The heap entry's
    seq is the first pending member's seq, so bucket-vs-single ordering
    reduces to the ordinary tuple comparison.
    """

    __slots__ = ("time", "priority", "items", "pos")

    def __init__(self, time: float, priority: int, items: list) -> None:
        self.time = time
        self.priority = priority
        self.items = items
        self.pos = 0


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all random streams drawn via :attr:`rng`.
    trace:
        When true, the :attr:`tracer` records every traced event
        (components call ``sim.tracer.record(...)``).
    fast:
        Engine mode; ``None`` reads :data:`DEFAULT_FAST`.  Both modes
        are observably identical — ``fast=True`` adds event pooling,
        the bucketed batch path, and lets batch-aware components (the
        packet fabric) coalesce same-instant work into one event.

    Examples
    --------
    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(5.0, out.append, "hello")
    >>> sim.run()
    >>> (sim.now, out)
    (5.0, ['hello'])
    """

    __slots__ = (
        "now",
        "_heap",
        "_seq",
        "_running",
        "events_executed",
        "fast",
        "_cancelled",
        "_garbage",
        "_pool",
        "rng",
        "stats",
        "tracer",
        "spans",
        "_components",
    )

    def __init__(
        self, seed: int = 0xC0FFEE, trace: bool = False, fast: Optional[bool] = None
    ) -> None:
        self.now: float = 0.0
        #: heap of (time, priority, seq, Event-or-_Bucket) tuples.
        self._heap: list[tuple] = []
        self._seq = 0
        self._running = False
        self.events_executed = 0
        self.fast = DEFAULT_FAST if fast is None else bool(fast)
        #: total queued events ever cancelled; pending count is derived
        #: (created - executed - cancelled) so the post/run hot paths
        #: carry no extra counter updates.
        self._cancelled = 0
        #: cancelled events still physically queued (compaction trigger).
        self._garbage = 0
        #: recycled poolable events (fast mode only).
        self._pool: list[Event] = []
        self.rng = RngRegistry(seed)
        self.stats = StatsRegistry()
        self.tracer = Tracer(enabled=trace, clock=lambda: self.now)
        self.spans = SpanTracer(clock=lambda: self.now, tracer=self.tracer)
        self._components: list[Any] = []

    # --- scheduling ----------------------------------------------------------

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``fn(*args, **kwargs)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, fn, *args, priority=priority, **kwargs)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``fn`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} < now {self.now}")
        self._seq += 1
        ev = Event(time, priority, self._seq, fn, args, kwargs)
        ev.owner = self
        # Heap entries are plain tuples: C-speed comparisons instead of
        # Event.__lt__ (the single hottest call in large motif runs).
        heapq.heappush(self._heap, (time, priority, self._seq, ev))
        return ev

    def schedule_batch(
        self,
        delay: float,
        calls: Sequence[tuple],
        priority: int = PRIORITY_NORMAL,
    ) -> list[Event]:
        """Schedule a homogeneous batch of ``(fn, args)`` pairs, leased.

        All members run ``delay`` ns from now at the same priority, in
        list order (they receive consecutive seqs).  Returns one
        cancellable :class:`Event` per member.  Batches of two or more
        share a single heap entry (the timer-wheel bucket path); the
        retransmit layer uses this to re-arm many timers at once.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        events = []
        seq = self._seq
        for fn, args in calls:
            seq += 1
            ev = Event(time, priority, seq, fn, args)
            ev.owner = self
            events.append(ev)
        self._seq = seq
        n = len(events)
        if n == 0:
            return events
        if n == 1 or not self.fast:
            for ev in events:
                heapq.heappush(self._heap, (time, priority, ev.seq, ev))
        else:
            bucket = _Bucket(time, priority, events)
            heapq.heappush(self._heap, (time, priority, events[0].seq, bucket))
        return events

    def post(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget ``fn(*args)`` in ``delay`` ns (normal priority).

        The fast-scheduling hot path: kwargs-free and handle-free.  The
        heap payload is a plain ``(fn, args)`` tuple — no Event object
        exists, so there is nothing to allocate, recycle, or cancel.
        Use for the overwhelmingly common schedule-and-never-cancel
        case; use :meth:`schedule` when a cancellation handle is needed.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        seq = self._seq = self._seq + 1
        heapq.heappush(
            self._heap, (self.now + delay, PRIORITY_NORMAL, seq, (fn, args))
        )

    def post_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Fire-and-forget ``fn(*args)`` at an absolute time."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} < now {self.now}")
        seq = self._seq = self._seq + 1
        heapq.heappush(self._heap, (time, priority, seq, (fn, args)))

    def post_batch_at(
        self,
        time: float,
        calls: Iterable[tuple],
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Fire-and-forget a same-(time, priority) batch of ``(fn, args)``.

        One heap entry regardless of batch size (two or more members
        share a bucket); members run in list order.  This is the fabric
        flight path: a send's delivery and its span-end land at the
        same arrival time.
        """
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} < now {self.now}")
        items = calls if isinstance(calls, (list, tuple)) else list(calls)
        seq = self._seq
        if len(items) < 2 or not self.fast:
            for fn, args in items:
                seq += 1
                heapq.heappush(self._heap, (time, priority, seq, (fn, args)))
            self._seq = seq
            return
        pool = self._pool
        events = []
        for fn, args in items:
            seq += 1
            if pool:
                ev = pool.pop()
                ev.time = time
                ev.priority = priority
                ev.seq = seq
                ev.fn = fn
                ev.args = args
            else:
                ev = Event(time, priority, seq, fn, args)
                ev.poolable = True
            events.append(ev)
        self._seq = seq
        bucket = _Bucket(time, priority, events)
        heapq.heappush(self._heap, (time, priority, events[0].seq, bucket))

    def post_batch(
        self,
        delay: float,
        calls: Iterable[tuple],
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Fire-and-forget a same-delay batch of ``(fn, args)`` pairs."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.post_batch_at(self.now + delay, calls, priority=priority)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        event.cancel()

    # --- live/garbage accounting ---------------------------------------------

    def _note_cancel(self) -> None:
        """A queued event was cancelled: update counters, maybe compact."""
        self._cancelled += 1
        g = self._garbage + 1
        self._garbage = g
        if g >= _COMPACT_MIN_GARBAGE and g > self._seq - self.events_executed - self._cancelled:
            self._compact()

    def _drop_garbage(self) -> None:
        """A cancelled entry was physically removed from a queue."""
        if self._garbage > 0:
            self._garbage -= 1

    def _compact(self) -> None:
        """Physically remove cancelled entries; rebuild the heap in place.

        In place matters: ``run()``/``step()`` hold local aliases of
        ``self._heap``, so the list object must survive.  Buckets are
        trimmed (and dropped when empty); surviving bucket entries are
        re-keyed to their first live member's seq.
        """
        survivors = []
        for entry in self._heap:
            payload = entry[3]
            if type(payload) is _Bucket:
                items = [e for e in payload.items[payload.pos :] if not e.cancelled]
                if not items:
                    continue
                payload.items = items
                payload.pos = 0
                survivors.append((entry[0], entry[1], items[0].seq, payload))
            elif type(payload) is tuple or not payload.cancelled:
                survivors.append(entry)
        self._heap[:] = survivors
        heapq.heapify(self._heap)
        self._garbage = 0

    def _recycle(self, ev: Event) -> None:
        pool = self._pool
        if len(pool) < _POOL_CAP:
            ev.fn = None
            ev.args = ()
            pool.append(ev)

    # --- component registry ----------------------------------------------------

    def register_component(self, comp: Any) -> None:
        """Track a component for introspection/finalization."""
        self._components.append(comp)
        # A tracer swapped in standalone (its default clock stamps 0.0)
        # picks up simulated time the moment real components attach.
        self.tracer.bind_clock(lambda: self.now)

    @property
    def components(self) -> tuple:
        return tuple(self._components)

    # --- execution ----------------------------------------------------------

    def peek_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        heap = self._heap
        while heap:
            payload = heap[0][3]
            if type(payload) is tuple:
                return heap[0][0]
            if type(payload) is _Bucket:
                items, pos, n = payload.items, payload.pos, len(payload.items)
                while pos < n and items[pos].cancelled:
                    pos += 1
                    self._drop_garbage()
                payload.pos = pos
                if pos >= n:
                    heapq.heappop(heap)
                    continue
                return heap[0][0]
            if payload.cancelled:
                heapq.heappop(heap)
                self._drop_garbage()
                continue
            return heap[0][0]
        return None

    def _execute(self, time: float, ev: Event) -> None:
        self.now = time
        self.events_executed += 1
        fn, args, kw = ev.fn, ev.args, ev.kwargs
        if ev.poolable:
            self._recycle(ev)
        else:
            ev.owner = None
        if kw:
            fn(*args, **kw)
        else:
            fn(*args)

    def step(self) -> bool:
        """Execute the next event.  Returns False when the heap is empty."""
        heap = self._heap
        while heap:
            time, prio, _seq, payload = heapq.heappop(heap)
            if type(payload) is tuple:
                self.now = time
                self.events_executed += 1
                fn, args = payload
                fn(*args)
                return True
            if type(payload) is _Bucket:
                items, pos, n = payload.items, payload.pos, len(payload.items)
                while pos < n and items[pos].cancelled:
                    pos += 1
                    self._drop_garbage()
                if pos >= n:
                    continue
                ev = items[pos]
                # Anything queued between the bucket's (possibly stale)
                # key and this member must run first: re-key and retry.
                if heap and heap[0] < (time, prio, ev.seq):
                    payload.pos = pos
                    heapq.heappush(heap, (time, prio, ev.seq, payload))
                    continue
                pos += 1
                if pos < n:
                    payload.pos = pos
                    heapq.heappush(heap, (time, prio, items[pos].seq, payload))
                self._execute(time, ev)
                return True
            if payload.cancelled:
                self._drop_garbage()
                continue
            self._execute(time, payload)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the heap drains, ``until`` is reached, or ``max_events``.

        Returns the simulated time at which execution stopped.  When
        ``until`` is given and events remain beyond it, ``now`` is advanced
        to exactly ``until`` (SST-style run-window semantics).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        gc_was_enabled = False
        try:
            if until is None and max_events is None:
                # Fast path (the common case): drain without the
                # peek-then-step double heap access.  Event recycling is
                # inlined (locals are captured before fn runs, so the
                # callback may immediately reuse the pooled object).
                # Cyclic GC is paused for the drain: per-event
                # allocations (heap tuples, arg tuples) are acyclic, and
                # generation-0 sweeps otherwise trigger every ~700
                # events; re-enabled on exit, so callers see no change.
                gc_was_enabled = gc.isenabled()
                if gc_was_enabled:
                    gc.disable()
                heap = self._heap
                pool = self._pool
                pop = heapq.heappop
                push = heapq.heappush
                while heap:
                    time, prio, _seq, ev = pop(heap)
                    cls = type(ev)
                    if cls is tuple:
                        # Fire-and-forget single: uncancellable by
                        # construction, nothing to bookkeep.
                        self.now = time
                        self.events_executed += 1
                        fn, args = ev
                        fn(*args)
                        continue
                    if cls is _Bucket:
                        bucket = ev
                        items, pos, n = bucket.items, bucket.pos, len(bucket.items)
                        while pos < n:
                            ev = items[pos]
                            pos += 1
                            if ev.cancelled:
                                self._drop_garbage()
                                continue
                            if heap and heap[0] < (time, prio, ev.seq):
                                bucket.pos = pos - 1
                                push(heap, (time, prio, ev.seq, bucket))
                                break
                            self.now = time
                            self.events_executed += 1
                            fn, args, kw = ev.fn, ev.args, ev.kwargs
                            if ev.poolable:
                                if len(pool) < _POOL_CAP:
                                    ev.fn = None
                                    ev.args = ()
                                    pool.append(ev)
                            else:
                                ev.owner = None
                            if kw:
                                fn(*args, **kw)
                            else:
                                fn(*args)
                        continue
                    if ev.cancelled:
                        self._drop_garbage()
                        continue
                    self.now = time
                    self.events_executed += 1
                    fn, args, kw = ev.fn, ev.args, ev.kwargs
                    ev.owner = None
                    if kw:
                        fn(*args, **kw)
                    else:
                        fn(*args)
                return self.now
            executed = 0
            while True:
                nxt = self.peek_time()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    self.now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()
        return self.now

    def run_until_idle(self) -> float:
        """Drain every pending event; returns the final simulated time."""
        return self.run()

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._seq - self.events_executed - self._cancelled

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Simulator now={self.now:.1f}ns pending={self.pending_events} "
            f"executed={self.events_executed}>"
        )
