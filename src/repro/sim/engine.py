"""The discrete-event simulation engine.

This is the stand-in for SST's core: a deterministic event heap with a
current simulated time, plus registries for components, statistics and
tracing.  Everything else in the reproduction (links, NICs, switches,
motifs) is built from callbacks scheduled here.

Determinism: events at equal times run in (priority, insertion-order),
and all randomness flows through :class:`repro.sim.rng.RngRegistry`,
so a simulation with a fixed seed is exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.observability.spans import SpanTracer

from .event import Event, PRIORITY_NORMAL
from .rng import RngRegistry
from .stats import StatsRegistry
from .trace import Tracer


class SimulationError(RuntimeError):
    """Raised for engine-level misuse (negative delays, time travel...)."""


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all random streams drawn via :attr:`rng`.
    trace:
        When true, the :attr:`tracer` records every traced event
        (components call ``sim.tracer.record(...)``).

    Examples
    --------
    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(5.0, out.append, "hello")
    >>> sim.run()
    >>> (sim.now, out)
    (5.0, ['hello'])
    """

    def __init__(self, seed: int = 0xC0FFEE, trace: bool = False) -> None:
        self.now: float = 0.0
        #: heap of (time, priority, seq, Event) tuples.
        self._heap: list[tuple] = []
        self._seq = 0
        self._running = False
        self.events_executed = 0
        self.rng = RngRegistry(seed)
        self.stats = StatsRegistry()
        self.tracer = Tracer(enabled=trace, clock=lambda: self.now)
        self.spans = SpanTracer(clock=lambda: self.now, tracer=self.tracer)
        self._components: list[Any] = []

    # --- scheduling ----------------------------------------------------------

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``fn(*args, **kwargs)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self.now + delay, fn, *args, priority=priority, **kwargs)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        **kwargs: Any,
    ) -> Event:
        """Schedule ``fn`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(f"cannot schedule at {time} < now {self.now}")
        self._seq += 1
        ev = Event(time, priority, self._seq, fn, args, kwargs)
        # Heap entries are plain tuples: C-speed comparisons instead of
        # Event.__lt__ (the single hottest call in large motif runs).
        heapq.heappush(self._heap, (time, priority, self._seq, ev))
        return ev

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        event.cancel()

    # --- component registry ----------------------------------------------------

    def register_component(self, comp: Any) -> None:
        """Track a component for introspection/finalization."""
        self._components.append(comp)
        # A tracer swapped in standalone (its default clock stamps 0.0)
        # picks up simulated time the moment real components attach.
        self.tracer.bind_clock(lambda: self.now)

    @property
    def components(self) -> tuple:
        return tuple(self._components)

    # --- execution ----------------------------------------------------------

    def peek_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Execute the next event.  Returns False when the heap is empty."""
        heap = self._heap
        while heap:
            time, _prio, _seq, ev = heapq.heappop(heap)
            if ev.cancelled:
                continue
            self.now = time
            self.events_executed += 1
            ev.fn(*ev.args, **ev.kwargs)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the heap drains, ``until`` is reached, or ``max_events``.

        Returns the simulated time at which execution stopped.  When
        ``until`` is given and events remain beyond it, ``now`` is advanced
        to exactly ``until`` (SST-style run-window semantics).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            if until is None and max_events is None:
                # Fast path (the common case): drain without the
                # peek-then-step double heap access.
                heap = self._heap
                pop = heapq.heappop
                while heap:
                    time, _prio, _seq, ev = pop(heap)
                    if ev.cancelled:
                        continue
                    self.now = time
                    self.events_executed += 1
                    ev.fn(*ev.args, **ev.kwargs)
                return self.now
            executed = 0
            while True:
                nxt = self.peek_time()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    self.now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        return self.now

    def run_until_idle(self) -> float:
        """Drain every pending event; returns the final simulated time."""
        return self.run()

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for entry in self._heap if not entry[3].cancelled)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Simulator now={self.now:.1f}ns pending={self.pending_events} "
            f"executed={self.events_executed}>"
        )
