"""Coroutine-style processes over the event engine (simpy-flavoured).

Motif ranks and protocol state machines read far more naturally as
sequential code than as callback chains.  A :class:`SimProcess` drives a
generator; the generator yields one of:

* ``float`` — sleep that many nanoseconds;
* :class:`Future` — suspend until it resolves, receiving its value;
* :class:`AllOf` — suspend until every contained future resolves,
  receiving the list of values.

A process is itself awaitable via its :attr:`done_future`.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Simulator


class Future:
    """A one-shot value that processes may wait on.

    NIC completion pointers, message arrivals and process termination
    are all surfaced to process code as futures.
    """

    __slots__ = ("sim", "done", "value", "_waiters")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.done = False
        self.value: Any = None
        self._waiters: list = []

    def resolve(self, value: Any = None) -> None:
        """Mark done and wake every waiter (in registration order)."""
        if self.done:
            raise RuntimeError("future already resolved")
        self.done = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        n = len(waiters)
        if n == 1:
            self.sim.post(0.0, waiters[0], value)
        elif n:
            # Simultaneous wakeups (barrier releases, threshold
            # completions) share one bucketed heap entry.
            self.sim.post_batch(0.0, [(cb, (value,)) for cb in waiters])

    def add_callback(self, cb) -> None:
        """Invoke ``cb(value)`` once resolved (immediately if already done)."""
        if self.done:
            self.sim.post(0.0, cb, self.value)
        else:
            self._waiters.append(cb)


class AllOf:
    """Barrier over several futures; yields the list of their values."""

    __slots__ = ("futures",)

    def __init__(self, futures: Iterable[Future]) -> None:
        self.futures = list(futures)


class SimProcess:
    """Drives a generator as a simulated process.

    Exceptions raised inside the generator propagate out of the event
    loop (they indicate simulation bugs, not modelled behaviour).
    """

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "proc") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.done_future = Future(sim)
        self.result: Any = None
        sim.post(0.0, self._advance, None)

    @property
    def finished(self) -> bool:
        return self.done_future.done

    def _advance(self, send_value: Any) -> None:
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self.result = stop.value
            self.done_future.resolve(stop.value)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            self.sim.post(float(yielded), self._advance, None)
        elif isinstance(yielded, Future):
            yielded.add_callback(self._advance)
        elif isinstance(yielded, AllOf):
            self._wait_all(yielded.futures)
        elif isinstance(yielded, SimProcess):
            yielded.done_future.add_callback(self._advance)
        else:
            raise TypeError(
                f"process {self.name} yielded unsupported {type(yielded).__name__}"
            )

    def _wait_all(self, futures: list[Future]) -> None:
        if not futures:
            self.sim.post(0.0, self._advance, [])
            return
        remaining = [len(futures)]
        values: list[Any] = [None] * len(futures)

        def make_cb(i: int):
            def cb(value: Any) -> None:
                values[i] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    self._advance(values)

            return cb

        for i, f in enumerate(futures):
            f.add_callback(make_cb(i))


def spawn(sim: "Simulator", gen: Generator, name: str = "proc") -> SimProcess:
    """Start *gen* as a process on *sim* (convenience constructor)."""
    return SimProcess(sim, gen, name)
