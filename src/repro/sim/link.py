"""Links: the wires between ports.

Two flavours:

* :class:`Link` — pure-latency pipe (control wires, on-die paths).
* :class:`SerializingLink` — latency plus bandwidth: payloads occupy the
  channel for ``size/bandwidth`` ns and are delivered FIFO.  This models
  a physical cable or PCIe lane where back-to-back messages queue.

Both are full-duplex: each direction serializes independently, like a
real network cable with separate TX/RX lanes.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from .event import PRIORITY_HIGH

if TYPE_CHECKING:  # pragma: no cover
    from .component import Port
    from .engine import Simulator


class Link:
    """Bidirectional fixed-latency link between two ports."""

    def __init__(self, sim: "Simulator", a: "Port", b: "Port", latency: float) -> None:
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.sim = sim
        self.latency = latency
        self.a = a
        self.b = b
        a.connect(self)
        b.connect(self)

    def _peer(self, port: "Port") -> "Port":
        if port is self.a:
            return self.b
        if port is self.b:
            return self.a
        raise ValueError("port is not an endpoint of this link")

    def transmit(self, src: "Port", payload: Any, size_bytes: int = 0) -> None:
        dst = self._peer(src)
        self.sim.post(self.latency, dst.deliver, payload)


class SerializingLink(Link):
    """Latency + bandwidth link: each direction is a FIFO channel.

    The head of a payload leaves after any queued predecessors finish
    serializing; delivery happens one propagation latency after the
    payload's *tail* has been clocked out (store-and-forward at the
    granularity the caller chose — callers doing cut-through pass packet
    sized payloads).
    """

    def __init__(
        self,
        sim: "Simulator",
        a: "Port",
        b: "Port",
        latency: float,
        bandwidth: float,
    ) -> None:
        super().__init__(sim, a, b, latency)
        if bandwidth <= 0:
            raise ValueError("bandwidth must be > 0")
        self.bandwidth = bandwidth
        self._inv_bw = 1.0 / bandwidth
        # Independent busy-until horizon per direction.
        self._free_at = {id(self.a): 0.0, id(self.b): 0.0}
        self.bytes_carried = 0

    def transmit(self, src: "Port", payload: Any, size_bytes: int = 0) -> None:
        dst = self._peer(src)
        now = self.sim.now
        sid = id(src)
        free_at = self._free_at
        start = free_at[sid]
        if now > start:
            start = now
        tail_out = start + size_bytes * self._inv_bw
        free_at[sid] = tail_out
        self.bytes_carried += size_bytes
        # PRIORITY_HIGH so arrivals at time T are visible to computations
        # scheduled at T with normal priority.
        self.sim.post_at(tail_out + self.latency, dst.deliver, payload, priority=PRIORITY_HIGH)

    def busy_until(self, src: "Port") -> float:
        """When the TX channel out of *src* becomes free (for tests)."""
        return self._free_at[id(src)]
