"""Statistics collection for simulator components.

Mirrors SST's statistics subsystem at the level this reproduction
needs: counters, streaming summaries (Welford), and histograms that
components update during the run and experiments read afterwards.
"""

from __future__ import annotations

import math


class Counter:
    """A monotonically updated named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name}={self.value})"


class Summary:
    """Streaming min/max/mean/variance via Welford's algorithm."""

    __slots__ = ("name", "n", "_mean", "_m2", "min", "max", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, x: float) -> None:
        self.n += 1
        self.total += x
        d = x - self._mean
        self._mean += d / self.n
        self._m2 += d * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "Summary") -> "Summary":
        """Fold *other*'s samples into this summary (Chan's parallel
        variance combine); the observability layer uses this to federate
        per-component summaries into one cluster-wide metric."""
        if other.n == 0:
            return self
        if self.n == 0:
            self.n = other.n
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            return self
        n = self.n + other.n
        delta = other._mean - self._mean
        self._m2 = self._m2 + other._m2 + delta * delta * self.n * other.n / n
        self._mean = (self._mean * self.n + other._mean * other.n) / n
        self.n = n
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Summary({self.name} n={self.n} mean={self.mean:.2f} "
            f"min={self.min:.2f} max={self.max:.2f})"
        )


class Histogram:
    """Fixed-width histogram with overflow/underflow buckets."""

    def __init__(self, name: str, lo: float, hi: float, nbins: int = 32) -> None:
        if hi <= lo or nbins < 1:
            raise ValueError("histogram requires hi > lo and nbins >= 1")
        self.name = name
        self.lo = lo
        self.hi = hi
        self.nbins = nbins
        self.width = (hi - lo) / nbins
        self.bins = [0] * nbins
        self.underflow = 0
        self.overflow = 0
        self.count = 0

    def add(self, x: float) -> None:
        self.count += 1
        if x < self.lo:
            self.underflow += 1
        elif x >= self.hi:
            self.overflow += 1
        else:
            self.bins[int((x - self.lo) / self.width)] += 1

    def bin_edges(self) -> list[float]:
        return [self.lo + i * self.width for i in range(self.nbins + 1)]

    def percentile(self, q: float) -> float:
        """Approximate *q*-quantile (``0 <= q <= 1``) of the samples.

        Linear interpolation within the fixed-width bins; the underflow
        mass is pinned at ``lo`` and the overflow mass at ``hi`` (the
        histogram does not retain where out-of-range samples fell).
        Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cum = self.underflow
        if target <= cum:
            return self.lo
        for i, n in enumerate(self.bins):
            if n and target <= cum + n:
                frac = (target - cum) / n
                return self.lo + (i + frac) * self.width
            cum += n
        return self.hi

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other* into this histogram.  Both must share the exact
        same binning — histograms with different shapes measure
        different things and summing their bins would be meaningless."""
        if (other.lo, other.hi, other.nbins) != (self.lo, self.hi, self.nbins):
            raise ValueError(
                f"cannot merge histogram {other.name} "
                f"[{other.lo}, {other.hi})x{other.nbins} into {self.name} "
                f"[{self.lo}, {self.hi})x{self.nbins}"
            )
        for i, n in enumerate(other.bins):
            self.bins[i] += n
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.count += other.count
        return self


class StatsRegistry:
    """Flat namespace of statistics owned by a simulator instance."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._summaries: dict[str, Summary] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def summary(self, name: str) -> Summary:
        s = self._summaries.get(name)
        if s is None:
            s = self._summaries[name] = Summary(name)
        return s

    def histogram(self, name: str, lo: float = 0.0, hi: float = 1e6, nbins: int = 32) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, lo, hi, nbins)
        return h

    def counters(self, prefix: str = "") -> dict[str, int]:
        return {k: c.value for k, c in self._counters.items() if k.startswith(prefix)}

    def counter_items(self) -> list[tuple[str, Counter]]:
        return list(self._counters.items())

    def summary_items(self) -> list[tuple[str, Summary]]:
        return list(self._summaries.items())

    def histogram_items(self) -> list[tuple[str, Histogram]]:
        return list(self._histograms.items())

    def report(self, prefix: str = "") -> str:
        """Plain-text dump of all stats under *prefix* (for experiment logs)."""
        lines = []
        for k in sorted(self._counters):
            if k.startswith(prefix):
                lines.append(f"{k}: {self._counters[k].value}")
        for k in sorted(self._summaries):
            if k.startswith(prefix):
                s = self._summaries[k]
                lines.append(
                    f"{k}: n={s.n} mean={s.mean:.3f} min={s.min:.3f} max={s.max:.3f} sd={s.stddev:.3f}"
                )
        return "\n".join(lines)
