"""Event objects for the discrete-event engine.

An :class:`Event` is a scheduled callback.  Events order by
``(time, priority, seq)`` so simultaneous events execute in a
deterministic order: lower priority value first, then insertion order.

Two kinds of events exist at runtime, distinguished by :attr:`poolable`:

* **Leased** events are returned from ``Simulator.schedule*`` to the
  caller, who may hold the handle and :meth:`cancel` it later.  They
  carry an :attr:`owner` backref so the engine's live/garbage counters
  stay O(1)-exact under lazy cancellation.
* **Pooled** events back the fire-and-forget ``Simulator.post*`` fast
  path.  No handle ever escapes the engine, so they can never be
  cancelled, and after execution the engine recycles the object into a
  free pool instead of leaving it for the allocator.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class Event:
    """A single scheduled occurrence in simulated time.

    Events are created by :meth:`repro.sim.engine.Simulator.schedule`;
    user code normally never constructs one directly.  Holding on to the
    returned event allows cancellation via :meth:`cancel` or
    :meth:`repro.sim.engine.Simulator.cancel`.
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "fn",
        "args",
        "kwargs",
        "cancelled",
        "owner",
        "poolable",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple = (),
        kwargs: Optional[dict] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.kwargs = kwargs or None
        self.cancelled = False
        #: engine backref while the event sits in a queue; the engine
        #: clears it once the event executes, so late cancels of an
        #: already-fired handle (common in the ARQ transport) are no-ops
        #: for the live/garbage accounting.
        self.owner = None
        #: True for engine-internal fire-and-forget events (no handle
        #: escapes => safe to recycle after execution).
        self.poolable = False

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine will skip it."""
        if not self.cancelled:
            self.cancelled = True
            owner = self.owner
            if owner is not None:
                owner._note_cancel()

    # Heap ordering ---------------------------------------------------------

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        flag = " CANCELLED" if self.cancelled else ""
        return f"<Event t={self.time:.1f} p={self.priority} #{self.seq} {name}{flag}>"


#: Priority used for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for events that must run before normal events at the same time
#: (e.g. link frees before new arbitration).
PRIORITY_HIGH = -10
#: Priority for bookkeeping that must run after everything else at a time.
PRIORITY_LOW = 10
