"""Lightweight event tracing.

Components record structured trace entries; tests and experiments can
filter them to assert on protocol behaviour (e.g. "the RDMA completion
send was issued after the last data packet ack").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class TraceEntry:
    """One recorded occurrence: when, which subsystem, what, details."""

    time: float
    category: str
    message: str
    fields: dict = field(default_factory=dict)


class Tracer:
    """Collects :class:`TraceEntry` records when enabled.

    Disabled tracers drop records with near-zero overhead so production
    (benchmark) runs are unaffected.
    """

    def __init__(self, enabled: bool = False, clock: Callable[[], float] = lambda: 0.0) -> None:
        self.enabled = enabled
        self._clock = clock
        self.entries: list[TraceEntry] = []

    def record(self, category: str, message: str, **fields: Any) -> None:
        if not self.enabled:
            return
        self.entries.append(TraceEntry(self._clock(), category, message, fields))

    def filter(self, category: str = "", contains: str = "") -> list[TraceEntry]:
        """Entries whose category starts with *category* and message contains *contains*."""
        return [
            e
            for e in self.entries
            if e.category.startswith(category) and contains in e.message
        ]

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def dump(self) -> str:
        """Readable multi-line rendering, mostly for debugging tests."""
        return "\n".join(
            f"[{e.time:12.1f}] {e.category:<24} {e.message} {e.fields if e.fields else ''}"
            for e in self.entries
        )

    def to_chrome_trace(self) -> list[dict]:
        """Entries as Chrome Trace Event Format instant events.

        Load the JSON in ``chrome://tracing`` or Perfetto to see the
        protocol timeline per component (one track per category).
        Timestamps convert from simulated ns to the format's us.
        """
        return [
            {
                "name": e.message,
                "ph": "i",
                "s": "t",
                "ts": e.time / 1000.0,
                "pid": 0,
                "tid": e.category,
                "args": dict(e.fields),
            }
            for e in self.entries
        ]

    def save_chrome_trace(self, path: str) -> int:
        """Write the Chrome-format trace to *path*; returns entry count."""
        events = self.to_chrome_trace()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": events}, fh)
        return len(events)
