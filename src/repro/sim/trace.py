"""Lightweight event tracing.

Components record structured trace entries; tests and experiments can
filter them to assert on protocol behaviour (e.g. "the RDMA completion
send was issued after the last data packet ack").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceEntry:
    """One recorded occurrence: when, which subsystem, what, details."""

    time: float
    category: str
    message: str
    fields: dict = field(default_factory=dict)


def _unbound_clock() -> float:
    """Placeholder clock for tracers built before an engine exists.

    Entries recorded through it carry time 0.0; the engine replaces it
    via :meth:`Tracer.bind_clock` the first time a component registers,
    so standalone tracers pick up real simulated time as soon as they
    are attached to a run.
    """
    return 0.0


class Tracer:
    """Collects :class:`TraceEntry` records when enabled.

    Disabled tracers drop records with near-zero overhead so production
    (benchmark) runs are unaffected.
    """

    def __init__(self, enabled: bool = False, clock: Optional[Callable[[], float]] = None) -> None:
        self.enabled = enabled
        self._clock = clock if clock is not None else _unbound_clock
        self.entries: list[TraceEntry] = []

    @property
    def clock_bound(self) -> bool:
        """Whether a real time source has been installed."""
        return self._clock is not _unbound_clock

    def bind_clock(self, clock: Callable[[], float], force: bool = False) -> None:
        """Install *clock* as the time source (no-op when already bound).

        The engine calls this at component registration so a tracer
        constructed standalone (default clock) starts stamping entries
        with simulated time instead of a constant 0.0.
        """
        if force or not self.clock_bound:
            self._clock = clock

    def record(self, category: str, message: str, **fields: Any) -> None:
        if not self.enabled:
            return
        self.entries.append(TraceEntry(self._clock(), category, message, fields))

    def filter(self, category: str = "", contains: str = "") -> list[TraceEntry]:
        """Entries whose category starts with *category* and message contains *contains*."""
        return [
            e
            for e in self.entries
            if e.category.startswith(category) and contains in e.message
        ]

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def dump(self) -> str:
        """Readable multi-line rendering, mostly for debugging tests."""
        return "\n".join(
            f"[{e.time:12.1f}] {e.category:<24} {e.message} {e.fields if e.fields else ''}"
            for e in self.entries
        )

    def to_chrome_trace(self) -> list[dict]:
        """Entries as Chrome Trace Event Format instant events.

        Load the JSON in ``chrome://tracing`` or Perfetto to see the
        protocol timeline per component (one track per category).
        Timestamps convert from simulated ns to the format's us.
        """
        return [
            {
                "name": e.message,
                "ph": "i",
                "s": "t",
                "ts": e.time / 1000.0,
                "pid": 0,
                "tid": e.category,
                "args": dict(e.fields),
            }
            for e in self.entries
        ]

    def save_chrome_trace(self, path: str) -> int:
        """Write the Chrome-format trace to *path*; returns entry count."""
        events = self.to_chrome_trace()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": events}, fh)
        return len(events)
