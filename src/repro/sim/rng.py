"""Deterministic named random-number streams.

Every stochastic decision in the simulator (adaptive route choice,
jitter, fault injection) draws from a *named* stream so that adding a
new consumer of randomness never perturbs existing streams — a property
SST also provides and which makes A/B comparisons (RDMA vs RVMA on the
same network) exact.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """Registry of independent, reproducible ``numpy`` generators.

    Streams are keyed by string; the same (seed, name) pair always
    yields an identical sequence.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for *name*."""
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed from the master seed and the stream name
            # deterministically (crc32 is stable across platforms/runs).
            child = zlib.crc32(name.encode("utf-8"))
            gen = np.random.Generator(np.random.PCG64(np.random.SeedSequence([self.seed, child])))
            self._streams[name] = gen
        return gen

    def randint(self, name: str, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)`` from the named stream."""
        return int(self.stream(name).integers(low, high))

    def random(self, name: str) -> float:
        """Uniform float in ``[0, 1)`` from the named stream."""
        return float(self.stream(name).random())

    def choice(self, name: str, n: int) -> int:
        """Uniform index in ``[0, n)`` — handy for route selection."""
        if n <= 0:
            raise ValueError("choice requires n >= 1")
        if n == 1:
            return 0
        return int(self.stream(name).integers(0, n))

    def shuffled(self, name: str, items: list) -> list:
        """Return a new list with *items* in a random order."""
        idx = self.stream(name).permutation(len(items))
        return [items[i] for i in idx]
