"""Discrete-event simulation kernel (the SST stand-in).

Public surface::

    from repro.sim import Simulator, Component, Link, SerializingLink
    from repro.sim import Future, AllOf, SimProcess, spawn
"""

from .component import Component, Port
from .engine import SimulationError, Simulator
from .event import Event, PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL
from .link import Link, SerializingLink
from .process import AllOf, Future, SimProcess, spawn
from .rng import RngRegistry
from .stats import Counter, Histogram, StatsRegistry, Summary
from .trace import TraceEntry, Tracer

__all__ = [
    "AllOf",
    "Component",
    "Counter",
    "Event",
    "Future",
    "Histogram",
    "Link",
    "Port",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "RngRegistry",
    "SerializingLink",
    "SimProcess",
    "SimulationError",
    "Simulator",
    "StatsRegistry",
    "Summary",
    "TraceEntry",
    "Tracer",
    "spawn",
]
