"""The RVMA NIC model — the paper's proposed hardware (Figs 2 and 3).

Receive path (paper Fig 3): lookup the mailbox in the LUT, steer the
payload into the active posted buffer (offset-addressed, so packet
arrival order is irrelevant), update the threshold counter, and on
threshold crossing write ``(head pointer, length)`` to the buffer's
completion address, retire the buffer and activate the next one in the
bucket.  The host never sees a buffer until its epoch completes.

Initiator path: a put carries only (mailbox, offset); local completion
means the payload has left the NIC (send-buffer reuse), not that the
target acted on it — RVMA needs no remote acknowledgement for its
completion semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..memory.address import RVMA_ADDR_MASK
from ..memory.buffer import HostBuffer, PostedBuffer
from ..memory.memory import NodeMemory
from ..network.fabric import BaseFabric
from ..network.message import Delivery
from ..network.routing import RoutingMode
from ..sim.engine import Simulator
from ..sim.process import Future
from .base import BaseNic, NicConfig
from .headers import (
    NackReason,
    RvmaGetHeader,
    RvmaGetReply,
    RvmaNackHeader,
    RvmaPutHeader,
)
from .lut import BufferMode, EpochType, LutError, MailboxEntry, MailboxLUT, RetiredBuffer


@dataclass
class RvmaNicConfig(NicConfig):
    """RVMA-specific sizing on top of the common NIC cost model."""

    lut_entries: int = 4096
    #: On-NIC threshold counters; active buffers beyond this spill to
    #: host memory (completion checks then pay a PCIe round trip).
    nic_counters: int = 1024
    #: Retired (completed-epoch) buffers retained per mailbox for rewind.
    retain_epochs: int = 8
    #: Whether discarded operations generate NACKs (disable under DoS).
    send_nacks: bool = True
    #: Initiator-side retry of NO_BUFFER/NO_MAILBOX-NACKed puts (bucket
    #: momentarily empty under incast, or the peer's window still being
    #: initialised) — analogous to IB RNR retry.
    retry_no_buffer: bool = True
    put_retry_timeout: float = 2000.0
    put_retries: int = 64
    #: Outstanding put handles kept for NACK matching; older ops are
    #: evicted (a NACK for an evicted op can no longer be retried).
    #: Bounds initiator memory in million-put motif runs.
    put_window: int = 65536


@dataclass
class PutOp:
    """Initiator-side handle for an RVMA put."""

    op_id: int
    dst: int
    mailbox: int
    size: int
    local_done: Future
    nacked: Optional[NackReason] = None
    #: retry state: (data, offset, mode, retries_left)
    retry: Optional[tuple] = None


@dataclass
class GetOp:
    """Initiator-side handle for an RVMA get."""

    op_id: int
    dst: int
    mailbox: int
    length: int
    done: Future  # resolves True (data placed) or False (NACK/out of bounds)


class RvmaNic(BaseNic):
    """RVMA-capable NIC bound to one node."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        memory: NodeMemory,
        fabric: BaseFabric,
        config: Optional[RvmaNicConfig] = None,
        name: str = "",
    ) -> None:
        config = config or RvmaNicConfig()
        super().__init__(sim, node_id, memory, fabric, config, name or f"rvma{node_id}")
        self.cfg: RvmaNicConfig = config
        self.lut = MailboxLUT(
            max_entries=config.lut_entries,
            max_counters=config.nic_counters,
            retain_epochs=config.retain_epochs,
        )
        #: bytes received so far per in-flight multi-packet op (op counting).
        self._op_bytes: dict[int, int] = {}
        self._gets: dict[int, GetOp] = {}
        self._puts: dict[int, PutOp] = {}
        from collections import deque as _deque

        self._put_order: "_deque[int]" = _deque()
        self.nacks_received: list[RvmaNackHeader] = []
        #: crash-restart recovery: duck-typed host-side journal of
        #: window-structure commands (:class:`repro.recovery.checkpoint.OpJournal`).
        #: None (the default) costs one attribute check per command.
        self.op_journal = None
        #: active-mailbox handler registry (:class:`repro.nic.active.ActiveRegistry`),
        #: created lazily on the first ``hw_attach_handler``.  None (the
        #: default) costs one attribute check per admit/completion.
        self.active = None
        #: puts admitted by the transport/fabric but whose DMA placement
        #: is still in the PCIe pipeline; checkpoints must not land in
        #: that gap (the rx cum would count bytes the LUT hasn't seen).
        self._inflight_admits = 0
        #: per-mailbox bytes in that same gap for MANAGED flows, so
        #: :meth:`flow_room` does not double-count room the pipeline
        #: has already promised to in-flight appends.
        self._inflight_flow_bytes: dict[int, int] = {}
        #: canonical distribution: bytes accumulated per retired epoch.
        self._epoch_hist = sim.stats.histogram(
            "nic.rvma.epoch_bytes", 0.0, float(1 << 20), 64
        )
        self.register_handler(RvmaPutHeader, self._on_put)
        self.register_handler(RvmaGetHeader, self._on_get)
        self.register_handler(RvmaGetReply, self._on_get_reply)
        self.register_handler(RvmaNackHeader, self._on_nack)

    # ------------------------------------------------------------------ crash-restart

    def _destroy_volatile_state(self) -> None:
        """Crash-stop: everything NIC-resident is gone.

        The LUT (mailboxes, buckets, retained epochs), in-flight op
        tracking and retry state all die with the hardware; outstanding
        gets resolve False so host software blocks on a completion, not
        forever.  Host memory and host-side journals survive — that is
        what the recovery protocol rebuilds from.
        """
        for op in list(self._gets.values()):
            if not op.done.done:
                op.done.resolve(False)
        self._gets.clear()
        self._puts.clear()
        self._put_order.clear()
        self._op_bytes.clear()
        self.nacks_received.clear()
        self.lut = MailboxLUT(
            max_entries=self.cfg.lut_entries,
            max_counters=self.cfg.nic_counters,
            retain_epochs=self.cfg.retain_epochs,
        )
        if self.active is not None:
            # Handler bindings (and their words/views) are NIC SRAM:
            # they die too, and rejoin re-attaches them from the journal.
            self.active.crash_reset()

    def flow_ordered(self, flow: int) -> bool:
        # Peek the table directly: this is transport bookkeeping, not an
        # RVMA probe, so it must not perturb the LUT lookup counters.
        entry = self.lut.entries.get(flow & RVMA_ADDR_MASK)
        return entry is not None and entry.mode is BufferMode.MANAGED

    def flow_room(self, flow: int) -> Optional[int]:
        """Free append room in a MANAGED flow's bucket (``None`` when the
        flow is not receiver-paced).

        The transport holds an ordered message until the whole thing
        fits: a partial append followed by a NO_BUFFER NACK would leave
        the placed prefix behind, and the initiator's retry would then
        duplicate those bytes at a later stream position.  Capacity is
        clamped to the journaled replay boundary during rejoin replay,
        and bytes still in the PCIe admit gap are already spoken for.
        """
        entry = self.lut.entries.get(flow & RVMA_ADDR_MASK)
        if entry is None or entry.mode is not BufferMode.MANAGED:
            return None
        room = 0
        for buf in entry.queue:
            cap = buf.buffer.size
            if (
                getattr(buf, "replay_boundary", False)
                and entry.threshold_type is EpochType.EPOCH_BYTES
            ):
                cap = min(cap, buf.threshold)
            room += max(cap - buf.bytes_received, 0)
        return max(room - self._inflight_flow_bytes.get(entry.mailbox, 0), 0)

    # ------------------------------------------------------------------ host API
    # All host-initiated commands return Futures resolved after the
    # modelled PCIe/descriptor costs, so software layers just `yield`.

    def hw_init_window(
        self,
        mailbox: int,
        threshold_type: EpochType = EpochType.EPOCH_BYTES,
        mode: BufferMode = BufferMode.STEERED,
    ) -> Future:
        """Create the LUT entry for a mailbox.  Resolves with the entry."""
        fut = self.future()

        def do() -> None:
            try:
                entry = self.lut.init_entry(mailbox, threshold_type, mode)
            except LutError as exc:
                fut.resolve(exc)
                return
            if self.op_journal is not None:
                self.op_journal.note_init(entry.mailbox, threshold_type, mode)
            self.trace("init_window", mailbox=mailbox)
            fut.resolve(entry)

        self.sim.post(self.cfg.issue_latency(), do)
        return fut

    def hw_post_buffer(
        self,
        mailbox: int,
        buffer: HostBuffer,
        threshold: int,
        notification_addr: int,
        length_addr: int,
    ) -> Future:
        """Attach a buffer to a mailbox's bucket.  Resolves with the
        :class:`PostedBuffer` (or an exception object on error)."""
        fut = self.future()

        def do() -> None:
            entry = self.lut.lookup(mailbox)
            if entry is None:
                fut.resolve(LutError(f"mailbox {mailbox:#x} not initialised"))
                return
            pb = PostedBuffer(
                buffer=buffer,
                notification_addr=notification_addr,
                length_addr=length_addr,
                threshold=threshold,
            )
            self.lut.post(entry, pb)
            if self.op_journal is not None:
                self.op_journal.note_post(entry.mailbox, pb)
            self.stat("buffers_posted").add()
            if self.transport is not None:
                self.transport.on_buffer_posted(entry.mailbox)
            fut.resolve(pb)

        self.sim.post(self.cfg.issue_latency(), do)
        return fut

    def hw_close(self, mailbox: int) -> Future:
        """Close the window: subsequent ops are discarded (maybe NACKed)."""
        fut = self.future()

        def do() -> None:
            entry = self.lut.lookup(mailbox)
            if entry is not None:
                entry.closed = True
                if self.op_journal is not None:
                    self.op_journal.note_close(entry.mailbox)
            fut.resolve(entry is not None)

        self.sim.post(self.cfg.issue_latency(), do)
        return fut

    def hw_inc_epoch(self, mailbox: int) -> Future:
        """Pre-empt hardware completion: hand the active buffer to software
        now (paper's ``RVMA_Win_inc_epoch``).  Resolves with the
        :class:`RetiredBuffer` record or None if nothing was active."""
        fut = self.future()

        def do() -> None:
            entry = self.lut.lookup(mailbox)
            if entry is None or entry.active is None:
                fut.resolve(None)
                return
            if getattr(entry.active, "replay_boundary", False):
                # Rejoin replay in progress: the active buffer must close
                # at its journaled boundary, not wherever this flush
                # happens to land.  The caller's wait_completion blocks
                # until replay re-creates the epoch it is waiting for.
                fut.resolve(None)
                return
            record = self._complete_active(entry)
            fut.resolve(record)

        self.sim.post(self.cfg.issue_latency(), do)
        return fut

    def hw_set_threshold(self, mailbox: int, threshold: int) -> Future:
        """Retarget the active buffer's completion threshold.

        Covers the paper's "completion criteria is definable for most
        codes" escape hatch: when the expected operation/byte count only
        becomes known later (e.g. at an MPI fence after a count
        exchange), software installs it and hardware completes the
        epoch as soon as the counter reaches it — possibly immediately.
        Resolves True if a window with an active buffer was found.
        """
        fut = self.future()

        def do() -> None:
            entry = self.lut.lookup(mailbox)
            buf = entry.active if entry is not None else None
            if buf is None:
                fut.resolve(False)
                return
            buf.threshold = threshold
            if buf.counter >= buf.threshold > 0:
                self._complete_active(entry)
            fut.resolve(True)

        self.sim.post(self.cfg.issue_latency(), do)
        return fut

    def hw_get_epoch(self, mailbox: int) -> Future:
        """Read the mailbox's current epoch (a PCIe round trip)."""
        fut = self.future()

        def do() -> None:
            entry = self.lut.lookup(mailbox)
            fut.resolve(entry.epoch if entry is not None else -1)

        self.sim.post(self.pcie.round_trip(), do)
        return fut

    def hw_rewind(self, mailbox: int, epochs_back: int = 1) -> Future:
        """Fetch a prior epoch's buffer record for fault recovery
        (paper §IV-F).  Resolves with :class:`RetiredBuffer` or None."""
        fut = self.future()

        def do() -> None:
            entry = self.lut.lookup(mailbox)
            fut.resolve(None if entry is None else self.lut.rewind(entry, epochs_back))

        self.sim.post(self.pcie.round_trip(), do)
        return fut

    def hw_set_catch_all(self, mailbox: int) -> Future:
        """Designate an initialised mailbox as the catch-all bucket."""
        fut = self.future()

        def do() -> None:
            entry = self.lut.lookup(mailbox)
            self.lut.set_catch_all(entry)
            if entry is not None and self.op_journal is not None:
                self.op_journal.note_catch_all(entry.mailbox)
            fut.resolve(entry is not None)

        self.sim.post(self.cfg.issue_latency(), do)
        return fut

    def _active_registry(self):
        if self.active is None:
            from .active import ActiveRegistry

            self.active = ActiveRegistry(self)
        return self.active

    def hw_attach_handler(self, mailbox: int, handler) -> Future:
        """Bind an active-mailbox handler (:mod:`repro.nic.active`) so
        the completion unit executes it at threshold time.  Resolves
        with the :class:`~repro.nic.active.ActiveBinding` (or an
        exception object on error)."""
        fut = self.future()

        def do() -> None:
            try:
                binding = self._active_registry().attach(mailbox, handler)
            except LutError as exc:
                fut.resolve(exc)
                return
            if self.op_journal is not None:
                self.op_journal.note_attach(binding.mailbox, handler)
            self.trace("attach_handler", mailbox=mailbox, kind=handler.kind)
            fut.resolve(binding)

        self.sim.post(self.cfg.issue_latency(), do)
        return fut

    def hw_active_word(self, mailbox: int) -> Future:
        """Read a word handler's NIC-resident word (a PCIe round trip).
        Resolves with the int, or None when no word handler is bound."""
        fut = self.future()

        def do() -> None:
            reg = self.active
            fut.resolve(None if reg is None else reg.word_value(mailbox & RVMA_ADDR_MASK))

        self.sim.post(self.pcie.round_trip(), do)
        return fut

    def hw_kv_sync(
        self,
        mailbox: int,
        key: bytes,
        value: Optional[bytes] = None,
        delete: bool = False,
        executed: bool = True,
    ) -> Future:
        """Host → NIC hot-key view sync after executing (``executed=True``,
        with the new *value* or ``delete``) or shedding (``executed=False``)
        a write on a hot key.  Resolves True when a KV handler is bound."""
        fut = self.future()

        def do() -> None:
            reg = self.active
            fut.resolve(
                False
                if reg is None
                else reg.kv_sync(mailbox & RVMA_ADDR_MASK, key, value, delete, executed)
            )

        self.sim.post(self.cfg.issue_latency(), do)
        return fut

    def hw_put(
        self,
        dst: int,
        mailbox: int,
        size: int,
        data: bytes = b"",
        offset: int = 0,
        mode: Optional[RoutingMode] = None,
    ) -> PutOp:
        """Initiate an RVMA put.  ``local_done`` resolves when the payload
        has fully left this NIC (send buffer reusable)."""
        hdr = RvmaPutHeader(mailbox=mailbox, offset=offset, total_size=size)
        op = PutOp(
            op_id=hdr.op_id,
            dst=dst,
            mailbox=mailbox,
            size=size,
            local_done=self.future(),
            retry=(data, offset, mode, self.cfg.put_retries),
        )
        self._puts[hdr.op_id] = op
        self._put_order.append(hdr.op_id)
        while len(self._put_order) > self.cfg.put_window:
            evicted = self._puts.pop(self._put_order.popleft(), None)
            if evicted is not None:
                # The op can no longer be matched to a late NACK: its
                # retry state is gone.  Silent before; now accounted so
                # the chaos audit can flag undersized put windows.
                self.stat("put_window_evictions").add()

        def issue() -> None:
            self._inject_now(dst, size, hdr, data, mode)
            self.resolve_at(op.local_done, self.local_injection_done(), op)

        self.sim.post(self.cfg.issue_latency(), issue)
        return op

    def hw_get(
        self,
        dst: int,
        mailbox: int,
        length: int,
        dest_buffer: HostBuffer,
        offset: int = 0,
        mode: Optional[RoutingMode] = None,
    ) -> GetOp:
        """Initiate an RVMA get from the target's *active* buffer."""
        if length > dest_buffer.size:
            raise ValueError("destination buffer too small for get")
        hdr = RvmaGetHeader(mailbox=mailbox, offset=offset, length=length)
        op = GetOp(op_id=hdr.op_id, dst=dst, mailbox=mailbox, length=length, done=self.future())
        op._dest = dest_buffer  # type: ignore[attr-defined]
        op._mode = mode  # type: ignore[attr-defined]
        self._gets[hdr.op_id] = op
        self.sim.post(
            self.cfg.issue_latency(), self.send_control, dst, hdr, mode
        )
        return op

    # ------------------------------------------------------------------ failures

    def on_peer_suspected(self, record) -> None:
        """Fail outstanding ops targeting a suspected-dead peer.

        Gets would otherwise hang forever waiting for a reply that can
        never come; put retry state is dropped so NACK-driven resends to
        a corpse stop.  The application-level signal is the
        ``PeerFailed`` completion surfaced through the API/detector.
        """
        super().on_peer_suspected(record)
        peer = record.peer
        for op_id in [i for i, g in self._gets.items() if g.dst == peer]:
            op = self._gets.pop(op_id)
            self._op_bytes.pop(-op_id, None)
            self.stat("gets_failed_peer_death").add()
            op.done.resolve(False)
        for op in self._puts.values():
            if op.dst == peer and op.retry is not None:
                op.retry = None

    # ------------------------------------------------------------------ receive path

    def _resolve_target(self, hdr: RvmaPutHeader | RvmaGetHeader, src: int):
        """LUT lookup with catch-all fallback; emits NACKs on failure.

        Returns (entry, buffer) or (None, None) when the op is discarded.
        """
        entry = self.lut.lookup(hdr.mailbox)
        if entry is None:
            if self.lut.catch_all is not None and self.lut.catch_all.active is not None:
                self.stat("catch_all_hits").add()
                return self.lut.catch_all, self.lut.catch_all.active
            self._nack(src, hdr, NackReason.NO_MAILBOX)
            return None, None
        if entry.closed:
            self._nack(src, hdr, NackReason.CLOSED)
            return None, None
        buf = entry.active
        if buf is None:
            if self.lut.catch_all is not None and self.lut.catch_all.active is not None:
                self.stat("catch_all_hits").add()
                return self.lut.catch_all, self.lut.catch_all.active
            self._nack(src, hdr, NackReason.NO_BUFFER)
            return None, None
        return entry, buf

    def _on_put(self, delivery: Delivery) -> None:
        msg = delivery.message
        hdr: RvmaPutHeader = msg.header
        if delivery.packet is None:
            frag_off, nbytes, data = 0, msg.size, msg.data
        else:
            frag_off = delivery.packet.offset
            nbytes = delivery.packet.size
            data = delivery.packet.data
        # The DMA placement lands one PCIe traversal after NIC processing;
        # LUT resolution happens atomically with placement so an epoch
        # completing in the gap steers this data to the *new* active
        # buffer (as the hardware pipeline would).
        self._inflight_admits += 1
        mailbox = hdr.mailbox & RVMA_ADDR_MASK
        peek = self.lut.entries.get(mailbox)
        if peek is not None and peek.mode is BufferMode.MANAGED:
            self._inflight_flow_bytes[mailbox] = (
                self._inflight_flow_bytes.get(mailbox, 0) + nbytes
            )
        self.sim.post(
            self.pcie.latency, self._admit_put, hdr, msg.src, frag_off, nbytes, data
        )

    def pipeline_quiescent(self) -> bool:
        """No placement is between fabric admission and DMA landing."""
        return self._inflight_admits == 0

    def _admit_put(
        self, hdr: RvmaPutHeader, src: int, frag_off: int, nbytes: int, data: bytes
    ) -> None:
        self._inflight_admits -= 1
        mailbox = hdr.mailbox & RVMA_ADDR_MASK
        if mailbox in self._inflight_flow_bytes:
            left = self._inflight_flow_bytes[mailbox] - nbytes
            if left > 0:
                self._inflight_flow_bytes[mailbox] = left
            else:
                del self._inflight_flow_bytes[mailbox]
        if self.failed:
            # The NIC crashed in the pipeline gap between arrival and
            # DMA placement: the data dies with it (the reliability
            # layer will retransmit into the next incarnation).
            self.stat("rx_dropped_failed").add()
            return
        quota = self.placement_quota
        if quota is not None and not quota.admit(src, mailbox, nbytes, self.sim.now):
            # Tenant over its placement quota: reject the whole put
            # before any bytes land (a partial append rejected mid-put
            # would duplicate its prefix on a client retry).
            self.stat("quota_rejects").add()
            self.stat("puts_discarded").add()
            self._nack(src, hdr, NackReason.QUOTA)
            return
        if self.active is not None:
            # Active-mailbox predicate filter: reject non-matching
            # payloads before any bytes land.  A passing put pays the
            # predicate-evaluation cost before placement.
            verdict = self.active.filter_put(hdr, src, frag_off, nbytes, data)
            if verdict is None:
                self.stat("puts_discarded").add()
                return
            if verdict > 0.0:
                self._inflight_admits += 1
                self.sim.post(verdict, self._place_filtered, hdr, src, frag_off, nbytes, data)
                return
        self._place_admitted(hdr, src, frag_off, nbytes, data)

    def _place_filtered(
        self, hdr: RvmaPutHeader, src: int, frag_off: int, nbytes: int, data: bytes
    ) -> None:
        """Placement after a passing predicate evaluation (filter cost)."""
        self._inflight_admits -= 1
        if self.failed:
            self.stat("rx_dropped_failed").add()
            return
        self._place_admitted(hdr, src, frag_off, nbytes, data)

    def _place_admitted(
        self, hdr: RvmaPutHeader, src: int, frag_off: int, nbytes: int, data: bytes
    ) -> None:
        entry, buf = self._resolve_target(hdr, src)
        if entry is None:
            self.stat("puts_discarded").add()
            return
        if entry.mode is BufferMode.MANAGED:
            # Stream append (paper §IV-B): bytes flow across chunk
            # buffers, so no single-buffer bounds check applies here.
            self._place_managed(entry, hdr, src, nbytes, data)
            return
        place_off = hdr.offset + frag_off
        if place_off + nbytes > buf.buffer.size:
            self._nack(src, hdr, NackReason.OUT_OF_BOUNDS)
            self.stat("puts_discarded").add()
            return
        self._place(entry, buf, hdr, place_off, nbytes, data)

    def _place(
        self,
        entry: MailboxEntry,
        buf: PostedBuffer,
        hdr: RvmaPutHeader,
        place_off: int,
        nbytes: int,
        data: bytes,
    ) -> None:
        if data:
            buf.buffer.write(place_off, data)
        buf.bytes_received = max(buf.bytes_received, place_off + nbytes)
        self.stat("bytes_placed").add(nbytes)
        spans = self.sim.spans
        if spans.active and getattr(buf, "_obs_span", None) is None and spans.wants("nic"):
            buf._obs_span = spans.begin(
                "nic", "epoch_fill", nic=self.name, mailbox=entry.mailbox
            )
        self.trace("put_placed", mailbox=entry.mailbox, off=place_off, n=nbytes)

        if entry.threshold_type is EpochType.EPOCH_BYTES:
            buf.counter += nbytes
        else:
            got = self._op_bytes.get(hdr.op_id, 0) + nbytes
            if got >= hdr.total_size:
                self._op_bytes.pop(hdr.op_id, None)
                buf.counter += 1
            else:
                self._op_bytes[hdr.op_id] = got
        aud = self.auditor
        if aud is not None:
            aud.on_place(self, entry, buf, place_off, nbytes, data)
        if buf.counter >= buf.threshold > 0:
            self._complete_active(entry)

    def _place_managed(
        self, entry: MailboxEntry, hdr: RvmaPutHeader, src: int, nbytes: int, data: bytes
    ) -> None:
        """Receiver-Managed placement: append bytes into the active
        buffer, rolling across chunk boundaries; each filled chunk
        completes its epoch and the stream continues in the next buffer
        of the bucket (paper §IV-B sockets semantics)."""
        if nbytes == 0:
            # Zero-byte put: no stream bytes, but it is still one
            # operation (same doorbell semantics as steered windows).
            buf = entry.active
            if buf is None:
                self.stat("puts_discarded").add()
                self._nack(src, hdr, NackReason.NO_BUFFER)
                return
            if entry.threshold_type is EpochType.EPOCH_OPS and hdr.total_size == 0:
                buf.counter += 1
                if buf.counter >= buf.threshold > 0:
                    self._complete_active(entry)
            return
        consumed = 0
        while nbytes > 0:
            buf = entry.active
            if buf is None:
                # Stream overran the posted bucket: remainder is lost.
                self.stat("puts_discarded").add()
                self._nack(src, hdr, NackReason.NO_BUFFER)
                return
            room = buf.buffer.size - buf.bytes_received
            if (
                getattr(buf, "replay_boundary", False)
                and entry.threshold_type is EpochType.EPOCH_BYTES
            ):
                # Rejoin replay: this buffer's epoch originally closed at
                # a journaled byte boundary (possibly a flush mid-chunk);
                # stop the append there so the rebuilt stream tiles the
                # buckets exactly as the first run did.
                room = min(room, max(buf.threshold - buf.counter, 0))
            take = min(room, nbytes)
            if take > 0:
                append_at = buf.bytes_received
                if data:
                    buf.buffer.write(append_at, data[consumed : consumed + take])
                buf.bytes_received += take
                self.stat("bytes_placed").add(take)
                spans = self.sim.spans
                if (
                    spans.active
                    and getattr(buf, "_obs_span", None) is None
                    and spans.wants("nic")
                ):
                    buf._obs_span = spans.begin(
                        "nic", "epoch_fill", nic=self.name, mailbox=entry.mailbox
                    )
                if entry.threshold_type is EpochType.EPOCH_BYTES:
                    buf.counter += take
                aud = self.auditor
                if aud is not None:
                    aud.on_place(
                        self, entry, buf, append_at, take,
                        data[consumed : consumed + take] if data else b"",
                    )
                consumed += take
                nbytes -= take
            if entry.threshold_type is EpochType.EPOCH_OPS and nbytes == 0:
                got = self._op_bytes.get(hdr.op_id, 0) + consumed
                if got >= hdr.total_size:
                    self._op_bytes.pop(hdr.op_id, None)
                    buf.counter += 1
                else:
                    self._op_bytes[hdr.op_id] = got
            if (
                buf.counter >= buf.threshold > 0
                or (take == 0 and buf.bytes_received >= buf.buffer.size)
                or (
                    getattr(buf, "replay_boundary", False)
                    and buf.counter >= buf.threshold
                )
            ):
                self._complete_active(entry)

    def _complete_active(self, entry: MailboxEntry) -> RetiredBuffer:
        """Threshold reached (or epoch pre-empted): retire and notify."""
        handler_cost = 0.0
        if self.active is not None:
            # Active-mailbox handlers run in the completion unit before
            # the buffer retires, so served-frame rewrites land in the
            # bytes the host recv()s (and the auditor digests).
            handler_cost = self.active.on_epoch_complete(entry)
        spill_penalty = self.pcie.round_trip() if entry.counter_spilled else 0.0
        record = self.lut.retire_active(entry)
        self.stat("epochs_completed").add()
        if self.op_journal is not None:
            self.op_journal.note_retire(
                entry.mailbox, record.epoch, record.buffer.counter, record.length
            )
        aud = self.auditor
        if aud is not None:
            aud.on_epoch_complete(self, entry, record)
        if entry.counter_spilled:
            self.stat("spilled_completions").add()
        pb = record.buffer
        self._epoch_hist.add(record.length)
        sp = getattr(pb, "_obs_span", None)
        if sp is not None:
            self.sim.spans.end(sp, bytes=record.length, epoch=record.epoch)
            pb._obs_span = None
        # One cache-line store carries both the head pointer and length;
        # it pipelines behind the data DMA (posted writes), so it costs
        # only the pipeline gap — plus a full host round trip when the
        # threshold counter spilled to host memory.
        self.sim.post(
            self.cfg.completion_pipeline_gap + spill_penalty + handler_cost,
            self._write_completion,
            pb,
            record,
        )
        self.trace("epoch_complete", mailbox=entry.mailbox, epoch=record.epoch)
        # Replay cascade: a restored successor pinned at an
        # already-satisfied boundary (e.g. a zero-length flush epoch)
        # retires the moment it becomes active, keeping the rebuilt
        # epoch numbering aligned with the original run.
        nxt = entry.active
        if nxt is not None and getattr(nxt, "replay_boundary", False) and nxt.counter >= nxt.threshold:
            self._complete_active(entry)
        return record

    def _write_completion(self, pb: PostedBuffer, record: RetiredBuffer) -> None:
        self.trace("completion_written", epoch=record.epoch, length=record.length)
        self.memory.write_u64(pb.notification_addr, record.head_addr)
        self.memory.write_u64(pb.length_addr, record.length)

    # --- get servicing -------------------------------------------------------------

    def _on_get(self, delivery: Delivery) -> None:
        msg = delivery.message
        hdr: RvmaGetHeader = msg.header
        entry, buf = self._resolve_target(hdr, msg.src)
        if entry is None or hdr.offset + hdr.length > buf.buffer.size:
            if entry is not None:
                self._nack(msg.src, hdr, NackReason.OUT_OF_BOUNDS)
            self.send_control(msg.src, RvmaGetReply(op_id=hdr.op_id, ok=False))
            return

        def reply() -> None:
            data = buf.buffer.read(hdr.offset, hdr.length)
            self._inject_now(
                msg.src, hdr.length, RvmaGetReply(op_id=hdr.op_id, ok=True), data, None
            )

        self.sim.post(self.pcie.latency, reply)  # DMA read of host memory

    def _on_get_reply(self, delivery: Delivery) -> None:
        msg = delivery.message
        hdr: RvmaGetReply = msg.header
        op = self._gets.get(hdr.op_id)
        if op is None:
            return
        if not hdr.ok:
            self._gets.pop(hdr.op_id)
            op.done.resolve(False)
            return
        if delivery.packet is None:
            frag_off, data, nbytes = 0, msg.data, msg.size
        else:
            frag_off = delivery.packet.offset
            data = delivery.packet.data
            nbytes = delivery.packet.size
        dest: HostBuffer = op._dest  # type: ignore[attr-defined]
        got = self._op_bytes.get(-hdr.op_id, 0) + nbytes

        def place() -> None:
            if data:
                dest.write(frag_off, data)
            if got >= op.length:
                self._op_bytes.pop(-hdr.op_id, None)
                self._gets.pop(hdr.op_id, None)
                op.done.resolve(True)

        self._op_bytes[-hdr.op_id] = got
        self.sim.post(self.pcie.latency, place)

    # --- NACKs -----------------------------------------------------------------------

    def _nack(self, src: int, hdr, reason: NackReason) -> None:
        self.stat(f"nacks_{reason.value}").add()
        if self.cfg.send_nacks and src != self.node_id:
            self.send_control(src, RvmaNackHeader(op_id=hdr.op_id, mailbox=hdr.mailbox, reason=reason))

    def _on_nack(self, delivery: Delivery) -> None:
        hdr: RvmaNackHeader = delivery.message.header
        self.nacks_received.append(hdr)
        self.stat("nacks_received").add()
        op = self._puts.get(hdr.op_id)
        if op is None:
            return
        op.nacked = hdr.reason
        if (
            hdr.reason in (NackReason.NO_BUFFER, NackReason.NO_MAILBOX)
            and self.cfg.retry_no_buffer
            and op.retry
            and op.retry[3] > 0
        ):
            data, offset, mode, left = op.retry
            op.retry = (data, offset, mode, left - 1)
            self.stat("put_retries").add()
            resend = RvmaPutHeader(
                mailbox=op.mailbox, offset=offset, total_size=op.size, op_id=op.op_id
            )
            self.inject(
                op.dst, op.size, resend, data, mode, after=self.cfg.put_retry_timeout
            )
            return
        if (
            hdr.reason in (NackReason.NO_BUFFER, NackReason.NO_MAILBOX)
            and self.cfg.retry_no_buffer
            and op.retry
        ):
            # Retryable reason, but the retry budget is spent: a give-up,
            # distinct from non-retryable losses (CLOSED/OUT_OF_BOUNDS).
            self.stat("put_giveups").add()
        if hdr.reason is NackReason.QUOTA:
            # Shed by the receiver's tenant quota — an accounted QoS
            # outcome, not silent loss; oracles subtract this from
            # puts_lost when judging integrity under QoS scenarios.
            self.stat("puts_lost_quota").add()
        self.stat("puts_lost").add()
