"""NIC hardware models: the RDMA baseline and the RVMA proposal."""

from .base import BaseNic, NicConfig
from .cq import CompletionQueue, CqEntry, CqKind
from .headers import (
    CONTROL_BYTES,
    AckHeader,
    NackReason,
    RdmaReadHeader,
    RdmaReadReply,
    RdmaSendHeader,
    RdmaWriteHeader,
    RvmaGetHeader,
    RvmaGetReply,
    RvmaNackHeader,
    RvmaPutHeader,
)
from .lut import (
    BufferMode,
    EpochType,
    LutError,
    MailboxEntry,
    MailboxLUT,
    RetiredBuffer,
)
from .rdma import MAX_IMM_PAYLOAD, RdmaError, RdmaNic, RdmaNicConfig, RdmaOp
from .rvma import GetOp, PutOp, RvmaNic, RvmaNicConfig

__all__ = [
    "AckHeader",
    "BaseNic",
    "BufferMode",
    "CompletionQueue",
    "CONTROL_BYTES",
    "CqEntry",
    "CqKind",
    "EpochType",
    "GetOp",
    "LutError",
    "MailboxEntry",
    "MailboxLUT",
    "MAX_IMM_PAYLOAD",
    "NackReason",
    "NicConfig",
    "PutOp",
    "RdmaError",
    "RdmaNic",
    "RdmaNicConfig",
    "RdmaOp",
    "RdmaReadHeader",
    "RdmaReadReply",
    "RdmaSendHeader",
    "RdmaWriteHeader",
    "RetiredBuffer",
    "RvmaGetHeader",
    "RvmaGetReply",
    "RvmaNackHeader",
    "RvmaNic",
    "RvmaNicConfig",
    "RvmaPutHeader",
]
