"""The RVMA mailbox lookup table (paper Fig 2, §IV-A).

A bounded, wildcard-free table mapping 64-bit mailbox virtual addresses
to buckets of receiver-posted buffers.  Unlike Portals matching, a
lookup resolves to at most one entry in a single probe — the property
that keeps the hardware simple.

Counter pool: the NIC holds a finite number of threshold counters (one
per *active* buffer).  When the pool is exhausted, counters spill to
host memory and each completion check pays a PCIe round trip
(paper §III-B) — exercised by ablation A1.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from ..memory.address import RVMA_ADDR_MASK
from ..memory.buffer import PostedBuffer


class EpochType(Enum):
    """Interpretation of a window's epoch threshold (paper §III-C)."""

    EPOCH_BYTES = "bytes"
    EPOCH_OPS = "ops"


class BufferMode(Enum):
    """Receiver-Steered (HPC offsets) vs Receiver-Managed (stream append),
    paper §IV-B."""

    STEERED = "steered"
    MANAGED = "managed"


class LutError(RuntimeError):
    """Raised when the table or counter pool cannot satisfy a request."""


@dataclass
class RetiredBuffer:
    """Completed-epoch record kept for rewind (paper §IV-F)."""

    head_addr: int
    length: int
    epoch: int
    buffer: PostedBuffer


@dataclass
class MailboxEntry:
    """State for one mailbox: its bucket of buffers and epoch history."""

    mailbox: int
    threshold_type: EpochType
    mode: BufferMode
    queue: deque = field(default_factory=deque)  # deque[PostedBuffer]; [0] is active
    retired: deque = field(default_factory=deque)  # deque[RetiredBuffer]
    epoch: int = 0  # completed-buffer count == current epoch number
    closed: bool = False
    #: True while the active buffer's counter lives in host memory.
    counter_spilled: bool = False

    @property
    def active(self) -> Optional[PostedBuffer]:
        return self.queue[0] if self.queue else None


class MailboxLUT:
    """Bounded mailbox table plus the NIC threshold-counter pool."""

    def __init__(
        self,
        max_entries: int = 4096,
        max_counters: int = 1024,
        retain_epochs: int = 8,
    ) -> None:
        if max_entries < 1 or max_counters < 0 or retain_epochs < 0:
            raise ValueError("invalid LUT sizing")
        self.max_entries = max_entries
        self.max_counters = max_counters
        self.retain_epochs = retain_epochs
        self.entries: dict[int, MailboxEntry] = {}
        self.counters_in_use = 0
        self.spill_events = 0
        self.lookups = 0
        self.catch_all: Optional[MailboxEntry] = None

    # --- entry management ------------------------------------------------------

    def init_entry(
        self, mailbox: int, threshold_type: EpochType, mode: BufferMode = BufferMode.STEERED
    ) -> MailboxEntry:
        mailbox &= RVMA_ADDR_MASK
        existing = self.entries.get(mailbox)
        if existing is not None:
            if existing.closed:
                # Re-opening a closed window reuses the slot with fresh
                # state: the previous incarnation's bucket, counters and
                # epoch history do not leak into the new window.
                if existing.active is not None and not existing.counter_spilled:
                    self.counters_in_use -= 1
                existing.queue.clear()
                existing.retired.clear()
                existing.epoch = 0
                existing.counter_spilled = False
                existing.closed = False
                existing.threshold_type = threshold_type
                existing.mode = mode
                return existing
            raise LutError(f"mailbox {mailbox:#x} already initialised")
        if len(self.entries) >= self.max_entries:
            raise LutError(f"LUT full ({self.max_entries} entries)")
        entry = MailboxEntry(mailbox=mailbox, threshold_type=threshold_type, mode=mode)
        self.entries[mailbox] = entry
        return entry

    def lookup(self, mailbox: int) -> Optional[MailboxEntry]:
        """Single-probe lookup: found or not found, never multiple."""
        self.lookups += 1
        return self.entries.get(mailbox & RVMA_ADDR_MASK)

    def remove(self, mailbox: int) -> None:
        entry = self.entries.pop(mailbox & RVMA_ADDR_MASK, None)
        if entry is not None and entry.active is not None and not entry.counter_spilled:
            self.counters_in_use -= 1

    def set_catch_all(self, entry: Optional[MailboxEntry]) -> None:
        """Install a catch-all bucket for unmatched mailboxes (paper §III-C)."""
        self.catch_all = entry

    # --- buffer/bucket management ---------------------------------------------------

    def post(self, entry: MailboxEntry, buffer: PostedBuffer) -> None:
        """Append a buffer to the bucket; activates it if the bucket was empty."""
        was_empty = not entry.queue
        entry.queue.append(buffer)
        if was_empty:
            self._activate(entry, buffer)

    def _activate(self, entry: MailboxEntry, buffer: PostedBuffer) -> None:
        buffer.epoch = entry.epoch
        if self.counters_in_use < self.max_counters:
            self.counters_in_use += 1
            entry.counter_spilled = False
        else:
            entry.counter_spilled = True
            self.spill_events += 1

    def retire_active(self, entry: MailboxEntry) -> RetiredBuffer:
        """Complete the active buffer: record it, advance the epoch,
        activate the next buffer in the bucket."""
        buf = entry.queue.popleft()
        buf.completed = True
        if not entry.counter_spilled:
            self.counters_in_use -= 1
        record = RetiredBuffer(
            head_addr=buf.buffer.addr,
            length=buf.bytes_received,
            epoch=entry.epoch,
            buffer=buf,
        )
        entry.retired.append(record)
        while len(entry.retired) > self.retain_epochs:
            entry.retired.popleft()
        entry.epoch += 1
        if entry.queue:
            self._activate(entry, entry.queue[0])
        return record

    def rewind(self, entry: MailboxEntry, epochs_back: int = 1) -> Optional[RetiredBuffer]:
        """Fetch the retired-buffer record *epochs_back* completions ago."""
        if epochs_back < 1 or epochs_back > len(entry.retired):
            return None
        return entry.retired[-epochs_back]

    # --- accounting ---------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self.entries)

    def memory_bytes(self) -> int:
        """On-NIC table footprint: 24 B/entry (mailbox, head, completion
        pointer — paper §IV-A) plus 8 B per live counter."""
        return 24 * len(self.entries) + 8 * self.counters_in_use
