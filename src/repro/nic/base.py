"""Base NIC: fabric attachment, op timing, delivery dispatch.

Concrete NICs (:mod:`repro.nic.rdma`, :mod:`repro.nic.rvma`) register a
handler per header type.  The base class charges the common hardware
costs — NIC packet processing and PCIe/DMA traversals — so both models
pay identical prices for identical work, which is the paper's
methodology ("identical timing for non-RDMA related traffic", §V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..memory.memory import NodeMemory
from ..memory.pcie import PAPER_SIM, PcieBus, PcieGen
from ..network.fabric import BaseFabric
from ..network.message import Delivery, Message
from ..network.routing import RoutingMode
from ..reliability.detector import FailureDetector, PeerFailed
from ..reliability.transport import ReliabilityConfig, ReliableTransport
from ..sim.component import Component
from ..sim.engine import Simulator
from ..sim.process import Future
from .headers import CONTROL_BYTES


@dataclass
class NicConfig:
    """Hardware cost model shared by the RDMA and RVMA NICs."""

    #: PCIe generation for host<->NIC traversals.
    pcie: PcieGen = PAPER_SIM
    #: NIC pipeline time to parse/act on one arriving message/packet (ns).
    nic_proc: float = 25.0
    #: Host doorbell -> NIC descriptor fetch -> first byte on the wire (ns),
    #: *excluding* the PCIe traversal itself (added from ``pcie``).
    issue_overhead: float = 40.0
    #: Gap between a DMA data store and the completion/CQE store that
    #: follows it: PCIe posted writes pipeline, so the notification does
    #: not pay a second full bus traversal (it lands just behind the data).
    completion_pipeline_gap: float = 25.0
    #: When set, all application traffic rides the reliability transport
    #: (retransmission + dedup) and a failure detector is attached; when
    #: None (the default), the NIC models the lossless happy path.
    reliability: Optional[ReliabilityConfig] = None

    def issue_latency(self) -> float:
        """Host posting an operation until the NIC starts injecting."""
        return self.issue_overhead + self.pcie.latency


class BaseNic(Component):
    """A NIC attached to one node's memory and to the fabric."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        memory: NodeMemory,
        fabric: BaseFabric,
        config: Optional[NicConfig] = None,
        name: str = "",
    ) -> None:
        super().__init__(sim, name or f"nic{node_id}")
        self.node_id = node_id
        self.memory = memory
        self.fabric = fabric
        self.config = config or NicConfig()
        self.pcie = PcieBus(self.config.pcie)
        self._dispatch: dict[type, Callable[[Delivery], None]] = {}
        #: Set by fault injection: a failed NIC drops all traffic and
        #: refuses host commands.
        self.failed = False
        #: Count of crash-restarts survived (stamps rejoin handshakes so
        #: stale pre-crash state is never mistaken for the new life).
        self.incarnation = 0
        #: Opt-in runtime invariant auditor
        #: (:class:`repro.recovery.auditor.InvariantAuditor`).  None by
        #: default: the hot paths only pay an attribute check.
        self.auditor = None
        #: Opt-in placement quota hook (duck-typed so this layer never
        #: imports services): an object with ``admit(src, mailbox,
        #: nbytes, now) -> bool`` consulted before inbound payload is
        #: placed.  A False verdict is reject-into-counter semantics —
        #: the concrete NIC NACKs and counts, it does not drop silently.
        #: See :class:`repro.services.tenancy.PlacementQuota`.
        self.placement_quota = None
        #: Reliability layer (None when running the lossless happy path).
        self.transport: Optional[ReliableTransport] = None
        self.detector: Optional[FailureDetector] = None
        if self.config.reliability is not None:
            self.transport = ReliableTransport(self, self.config.reliability)
            self.detector = FailureDetector(self, self.transport, self.config.reliability)
        fabric.attach(node_id, self._on_delivery)

    # --- receive path ------------------------------------------------------------

    def register_handler(self, header_type: type, fn: Callable[[Delivery], None]) -> None:
        self._dispatch[header_type] = fn

    def fail(self) -> None:
        """Simulate node death: all subsequent traffic is dropped."""
        self.failed = True
        self.stat("failed").add()

    def crash(self) -> None:
        """Crash-stop: drop traffic *and* atomically destroy the NIC's
        volatile state (LUT, in-flight ops, reliability flows).

        Unlike :meth:`fail`, a crashed NIC can come back via
        :meth:`restart` — but it comes back empty: everything it knew
        must be rebuilt by the recovery protocol
        (:mod:`repro.recovery`).  Host memory survives (it is host
        memory), as do host-side journals/checkpoints.
        """
        self.failed = True
        self.incarnation += 1
        self.stat("crashes").add()
        self._destroy_volatile_state()
        if self.transport is not None:
            # The old flows died with the NIC: silence their timers so
            # a zombie transport cannot retransmit or raise suspicion
            # after the node comes back.
            self.transport.shutdown()
            self.detector.shutdown()
            # A fresh transport takes over immediately so host sends
            # issued while the node is down are still sequenced and
            # journaled (the recovery agent re-seeds sequence numbers).
            self.transport = ReliableTransport(self, self.config.reliability)
            self.detector = FailureDetector(self, self.transport, self.config.reliability)

    def restart(self) -> None:
        """Bring a crashed node back (still amnesiac until rejoined)."""
        if not self.failed:
            return
        self.failed = False
        self.stat("restarts").add()

    def _destroy_volatile_state(self) -> None:
        """Subclass hook: wipe NIC-resident state lost in a crash."""

    def _on_delivery(self, delivery: Delivery) -> None:
        if self.failed:
            self.stat("rx_dropped_failed").add()
            return
        # NIC pipeline processes each arrival (packet or whole message).
        self.sim.post(self.config.nic_proc, self._handle, delivery)

    def _handle(self, delivery: Delivery) -> None:
        fn = self._dispatch.get(type(delivery.message.header))
        if fn is None:
            self.stat("rx_unknown_header").add()
            return
        fn(delivery)

    def dispatch_inner(self, delivery: Delivery) -> None:
        """Dispatch a delivery the reliability transport has unwrapped.

        The NIC pipeline cost was already charged on arrival of the
        enveloped traffic, so this is a plain handler lookup.
        """
        self._handle(delivery)

    def flow_ordered(self, flow: int) -> bool:
        """Whether the reliability transport must deliver *flow* in
        strict sequence order.  Receiver-Managed (stream-append) windows
        need it — append order is the data; Receiver-Steered windows are
        offset-addressed and tolerant of reordering (paper §IV-B)."""
        return False

    def flow_room(self, flow: int) -> Optional[int]:
        """Free receive room for *flow* in bytes, or ``None`` when the
        flow is not receiver-paced.  Ordered (Receiver-Managed) flows
        report their bucket's remaining append capacity so the
        reliability transport can hold a message that would not fit
        whole — a partial append NACKed mid-message would otherwise
        duplicate its placed prefix on retry."""
        return None

    def pipeline_quiescent(self) -> bool:
        """Whether no received data is still in flight inside the NIC's
        DMA pipeline (checkpoints only snapshot quiescent pipelines)."""
        return True

    def on_peer_suspected(self, record: PeerFailed) -> None:
        """Failure-detector hook: *record.peer* is presumed dead.

        Subclasses fail outstanding operations targeting the peer so
        software blocks on a completion, not forever.
        """
        self.stat("peer_failures_seen").add()

    # --- transmit path -------------------------------------------------------------

    def inject(
        self,
        dst: int,
        size: int,
        header: Any,
        data: bytes = b"",
        mode: Optional[RoutingMode] = None,
        after: float = 0.0,
    ) -> None:
        """Put a message on the fabric ``after`` ns from now."""
        self.sim.post(after, self._inject_now, dst, size, header, data, mode)

    def _inject_now(self, dst: int, size: int, header: Any, data: bytes, mode) -> Message:
        self.stat("tx_messages").add()
        if (
            self.transport is not None
            and dst != self.node_id
            and self.transport.wraps(header)
        ):
            return self.transport.send(dst, size, header, data, mode)
        return self.fabric.send(self.node_id, dst, size, header=header, data=data, mode=mode)

    def send_control(self, dst: int, header: Any, mode: Optional[RoutingMode] = None) -> None:
        """Emit a small control message (ack/NACK/read request)."""
        self.stat("tx_control").add()
        if (
            self.transport is not None
            and dst != self.node_id
            and self.transport.wraps(header)
        ):
            self.transport.send(dst, CONTROL_BYTES, header, b"", mode)
            return
        self.fabric.send(self.node_id, dst, CONTROL_BYTES, header=header, mode=mode)

    def local_injection_done(self) -> float:
        """Absolute time the injection channel finishes the last send."""
        return max(self.fabric.injection_busy_until(self.node_id), self.sim.now)

    # --- host-side futures -----------------------------------------------------------

    def future(self) -> Future:
        return Future(self.sim)

    def resolve_at(self, fut: Future, time: float, value: Any = None) -> None:
        self.sim.post_at(max(time, self.sim.now), fut.resolve, value)
