"""The RDMA baseline NIC (the hardware RVMA is compared against).

Implements the RDMA semantics the paper describes in §II / Fig 1:

* memory regions must be registered and their raw ``(addr, len, rkey)``
  shipped to initiators out of band (see :mod:`repro.rdma.handshake`);
* writes target raw remote addresses; the *target* gets no completion
  signal (except write-with-immediate, whose notification-carrying
  payloads are small);
* the initiator learns of completion via transport acks surfacing as
  CQ entries on a *shared* completion queue;
* two-sided send/recv consumes pre-posted receive buffers and does
  generate target-side CQ entries — which is why spec-compliant RDMA on
  adaptive networks appends a send/recv to signal completion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..memory.buffer import HostBuffer, MemoryRegion
from ..memory.memory import NodeMemory
from ..network.fabric import BaseFabric
from ..network.message import Delivery
from ..network.routing import RoutingMode
from ..sim.engine import Simulator
from ..sim.process import Future
from .base import BaseNic, NicConfig
from .cq import CompletionQueue, CqEntry, CqKind
from .headers import (
    AckHeader,
    RdmaReadHeader,
    RdmaReadReply,
    RdmaSendHeader,
    RdmaWriteHeader,
)

#: Write-with-immediate payload ceiling: the paper notes completion-
#: carrying RDMA commands support only small payloads (< 64 B).
MAX_IMM_PAYLOAD = 64


@dataclass
class RdmaNicConfig(NicConfig):
    cq_capacity: int = 4096
    max_memory_regions: int = 4096
    #: Receiver-not-ready retry behaviour (IB RNR NAK semantics).
    rnr_timeout: float = 2000.0
    rnr_retries: int = 64


@dataclass
class RdmaOp:
    """Initiator-side handle; ``done`` resolves with the CqEntry."""

    op_id: int
    kind: CqKind
    dst: int
    size: int
    done: Future
    wr_id: int = 0
    #: RNR-retry state for sends: (data, tag, mode, retries_left).
    retry: Optional[tuple] = None
    #: Unsignaled ops resolve ``done`` but post no initiator CQ entry
    #: (standard verbs practice for control traffic).
    signaled: bool = True


class RdmaError(RuntimeError):
    pass


class RdmaNic(BaseNic):
    """RDMA-capable NIC bound to one node."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        memory: NodeMemory,
        fabric: BaseFabric,
        config: Optional[RdmaNicConfig] = None,
        name: str = "",
    ) -> None:
        config = config or RdmaNicConfig()
        super().__init__(sim, node_id, memory, fabric, config, name or f"rdma{node_id}")
        self.cfg: RdmaNicConfig = config
        self.cq = CompletionQueue(sim, config.cq_capacity)
        self.mr_table: dict[int, MemoryRegion] = {}
        self._next_rkey = 0x1000
        # Posted receives: (buffer, wr_id, tag).  ``tag=None`` matches any
        # send; tagged entries model per-connection (QP) receive queues.
        self.recv_queue: deque[tuple[HostBuffer, int, Optional[int]]] = deque()
        #: op_id -> (buffer, wr_id) for sends mid-placement (multi-packet).
        self._recv_claims: dict[int, tuple[HostBuffer, int]] = {}
        self._pending: dict[int, RdmaOp] = {}
        self._op_bytes: dict[int, int] = {}
        self._read_dest: dict[int, HostBuffer] = {}
        self.register_handler(RdmaWriteHeader, self._on_write)
        self.register_handler(RdmaSendHeader, self._on_send)
        self.register_handler(RdmaReadHeader, self._on_read)
        self.register_handler(RdmaReadReply, self._on_read_reply)
        self.register_handler(AckHeader, self._on_ack)

    # ------------------------------------------------------------------ host API

    def hw_reg_mr(self, buffer: HostBuffer) -> Future:
        """Register a memory region; resolves with the MemoryRegion."""
        fut = self.future()

        def do() -> None:
            if len(self.mr_table) >= self.cfg.max_memory_regions:
                fut.resolve(RdmaError("MR table full"))
                return
            self._next_rkey += 1
            mr = MemoryRegion(
                addr=buffer.addr,
                length=buffer.size,
                rkey=self._next_rkey,
                node_id=self.node_id,
            )
            self.mr_table[mr.rkey] = mr
            self.stat("mrs_registered").add()
            fut.resolve(mr)

        self.sim.post(self.cfg.issue_latency(), do)
        return fut

    def hw_dereg_mr(self, rkey: int) -> Future:
        fut = self.future()

        def do() -> None:
            fut.resolve(self.mr_table.pop(rkey, None) is not None)

        self.sim.post(self.cfg.issue_latency(), do)
        return fut

    def hw_post_recv(
        self, buffer: HostBuffer, wr_id: int = 0, tag: Optional[int] = None
    ) -> Future:
        """Post a receive for two-sided traffic; resolves when armed."""
        fut = self.future()

        def do() -> None:
            self.recv_queue.append((buffer, wr_id, tag))
            fut.resolve(True)

        self.sim.post(self.cfg.issue_latency(), do)
        return fut

    def hw_write(
        self,
        dst: int,
        raddr: int,
        rkey: int,
        size: int,
        data: bytes = b"",
        imm: Optional[int] = None,
        mode: Optional[RoutingMode] = None,
        wr_id: int = 0,
        signaled: bool = True,
    ) -> RdmaOp:
        """RDMA write/put to a raw remote address.

        ``done`` resolves with the initiator CQ entry once the transport
        ack returns (RC semantics) — the paper's "fence" an initiator
        must wait on before a trailing completion send is safe.
        """
        if imm is not None and size > MAX_IMM_PAYLOAD:
            raise RdmaError(
                f"write-with-immediate payloads are limited to {MAX_IMM_PAYLOAD}B "
                f"(paper §I); got {size}"
            )
        hdr = RdmaWriteHeader(raddr=raddr, rkey=rkey, total_size=size, imm=imm)
        op = RdmaOp(
            hdr.op_id, CqKind.WRITE_DONE, dst, size, self.future(), wr_id, signaled=signaled
        )
        self._pending[hdr.op_id] = op
        self.inject(dst, size, hdr, data, mode, after=self.cfg.issue_latency())
        return op

    def hw_send(
        self,
        dst: int,
        size: int,
        data: bytes = b"",
        tag: int = 0,
        mode: Optional[RoutingMode] = None,
        wr_id: int = 0,
        signaled: bool = True,
    ) -> RdmaOp:
        """Two-sided send; consumes a posted recv at the target."""
        self.trace("send_posted", size=size, tag=tag)
        hdr = RdmaSendHeader(total_size=size, tag=tag)
        op = RdmaOp(
            hdr.op_id,
            CqKind.SEND_DONE,
            dst,
            size,
            self.future(),
            wr_id,
            retry=(data, tag, mode, self.cfg.rnr_retries),
            signaled=signaled,
        )
        self._pending[hdr.op_id] = op
        self.inject(dst, size, hdr, data, mode, after=self.cfg.issue_latency())
        return op

    def hw_read(
        self,
        dst: int,
        raddr: int,
        rkey: int,
        length: int,
        dest_buffer: HostBuffer,
        mode: Optional[RoutingMode] = None,
        wr_id: int = 0,
    ) -> RdmaOp:
        """RDMA read/get from a raw remote address into a local buffer."""
        if length > dest_buffer.size:
            raise RdmaError("destination buffer too small for read")
        hdr = RdmaReadHeader(raddr=raddr, rkey=rkey, length=length)
        op = RdmaOp(hdr.op_id, CqKind.READ_DONE, dst, length, self.future(), wr_id)
        self._pending[hdr.op_id] = op
        self._read_dest[hdr.op_id] = dest_buffer
        self.sim.post(self.cfg.issue_latency(), self.send_control, dst, hdr, mode)
        return op

    # ------------------------------------------------------------------ failures

    def on_peer_suspected(self, record) -> None:
        """Flush pending ops to a dead peer as ERROR CQ entries.

        Matches RC QP error semantics: outstanding work requests on a
        broken connection complete in error rather than hanging the CQ.
        """
        super().on_peer_suspected(record)
        peer = record.peer
        for op_id in [i for i, op in self._pending.items() if op.dst == peer]:
            op = self._pending.pop(op_id)
            self._op_bytes.pop(op_id, None)
            self._read_dest.pop(op_id, None)
            self.stat("ops_failed_peer_death").add()
            entry = CqEntry(
                CqKind.ERROR, op.op_id, size=op.size, wr_id=op.wr_id,
                time=self.sim.now, ok=False,
            )
            if op.signaled:
                self.cq.push(entry)
            op.done.resolve(entry)

    # ------------------------------------------------------------------ receive path

    def _mr_for(self, rkey: int, addr: int, length: int) -> Optional[MemoryRegion]:
        mr = self.mr_table.get(rkey)
        if mr is None or not mr.contains(addr, length):
            return None
        return mr

    def _on_write(self, delivery: Delivery) -> None:
        msg = delivery.message
        hdr: RdmaWriteHeader = msg.header
        if delivery.packet is None:
            frag_off, nbytes, data = 0, msg.size, msg.data
        else:
            frag_off = delivery.packet.offset
            nbytes = delivery.packet.size
            data = delivery.packet.data
        mr = self._mr_for(hdr.rkey, hdr.raddr, hdr.total_size)
        if mr is None:
            self.stat("writes_rejected").add()
            self.send_control(msg.src, AckHeader(op_id=hdr.op_id, ok=False))
            return
        self.sim.post(
            self.pcie.latency, self._place_write, msg.src, hdr, frag_off, nbytes, data
        )

    def _place_write(
        self, src: int, hdr: RdmaWriteHeader, frag_off: int, nbytes: int, data: bytes
    ) -> None:
        if data:
            self.memory.write(hdr.raddr + frag_off, data)
        self.stat("bytes_placed").add(nbytes)
        got = self._op_bytes.get(hdr.op_id, 0) + nbytes
        if got < hdr.total_size:
            self._op_bytes[hdr.op_id] = got
            return
        self._op_bytes.pop(hdr.op_id, None)
        # Whole op placed: coalesced transport ack back to the initiator.
        self.trace("write_placed", op=hdr.op_id, n=hdr.total_size)
        self.trace("ack_sent", op=hdr.op_id)
        self.send_control(src, AckHeader(op_id=hdr.op_id))
        if hdr.imm is not None:
            # Immediate data produces a *target-side* CQ entry; it
            # pipelines behind the payload DMA (posted writes).
            self.sim.post(
                self.cfg.completion_pipeline_gap,
                self.cq.push,
                CqEntry(
                    CqKind.WRITE_IMM,
                    hdr.op_id,
                    size=hdr.total_size,
                    imm=hdr.imm,
                    time=self.sim.now,
                ),
            )

    def _claim_recv(self, hdr: RdmaSendHeader) -> Optional[tuple[HostBuffer, int]]:
        """Match a posted receive for this send: first claim wins; later
        packets of the same op reuse the claim."""
        claim = self._recv_claims.get(hdr.op_id)
        if claim is not None:
            return claim
        for i, (buffer, wr_id, tag) in enumerate(self.recv_queue):
            if tag is None or tag == hdr.tag:
                del self.recv_queue[i]
                claim = (buffer, wr_id)
                self._recv_claims[hdr.op_id] = claim
                return claim
        return None

    def _on_send(self, delivery: Delivery) -> None:
        msg = delivery.message
        hdr: RdmaSendHeader = msg.header
        claim = self._claim_recv(hdr)
        if claim is None:
            # Receiver-not-ready: the flood-vulnerability RVMA's receiver
            # management addresses; NAK back, the initiator RNR-retries.
            self.stat("rnr_drops").add()
            self.send_control(msg.src, AckHeader(op_id=hdr.op_id, ok=False))
            return
        buffer, wr_id = claim
        if delivery.packet is None:
            frag_off, nbytes, data = 0, msg.size, msg.data
        else:
            frag_off = delivery.packet.offset
            nbytes = delivery.packet.size
            data = delivery.packet.data
        if hdr.total_size > buffer.size:
            self.stat("recv_too_small").add()
            self._recv_claims.pop(hdr.op_id, None)
            self.send_control(msg.src, AckHeader(op_id=hdr.op_id, ok=False))
            return
        self.sim.post(
            self.pcie.latency,
            self._place_send,
            msg.src,
            hdr,
            buffer,
            wr_id,
            frag_off,
            nbytes,
            data,
        )

    def _place_send(
        self,
        src: int,
        hdr: RdmaSendHeader,
        buffer: HostBuffer,
        wr_id: int,
        frag_off: int,
        nbytes: int,
        data: bytes,
    ) -> None:
        if data:
            buffer.write(frag_off, data)
        got = self._op_bytes.get(hdr.op_id, 0) + nbytes
        if got < hdr.total_size:
            self._op_bytes[hdr.op_id] = got
            return
        self._op_bytes.pop(hdr.op_id, None)
        self._recv_claims.pop(hdr.op_id, None)
        self.send_control(src, AckHeader(op_id=hdr.op_id))
        # The recv CQE pipelines behind the payload DMA (posted writes).
        self.sim.post(
            self.cfg.completion_pipeline_gap,
            self.cq.push,
            CqEntry(
                CqKind.RECV, hdr.op_id, size=hdr.total_size, wr_id=wr_id, time=self.sim.now
            ),
        )

    def _on_read(self, delivery: Delivery) -> None:
        msg = delivery.message
        hdr: RdmaReadHeader = msg.header
        mr = self._mr_for(hdr.rkey, hdr.raddr, hdr.length)
        if mr is None:
            self.stat("reads_rejected").add()
            self.send_control(msg.src, RdmaReadReply(op_id=hdr.op_id, ok=False))
            return

        def reply() -> None:
            data = self.memory.read(hdr.raddr, hdr.length)
            self._inject_now(msg.src, hdr.length, RdmaReadReply(op_id=hdr.op_id, ok=True), data, None)

        self.sim.post(self.pcie.latency, reply)

    def _on_read_reply(self, delivery: Delivery) -> None:
        msg = delivery.message
        hdr: RdmaReadReply = msg.header
        op = self._pending.get(hdr.op_id)
        if op is None:
            return
        if not hdr.ok:
            self._pending.pop(hdr.op_id)
            self._read_dest.pop(hdr.op_id, None)
            entry = CqEntry(CqKind.ERROR, hdr.op_id, ok=False, time=self.sim.now)
            self.cq.push(entry)
            op.done.resolve(entry)
            return
        if delivery.packet is None:
            frag_off, nbytes, data = 0, msg.size, msg.data
        else:
            frag_off = delivery.packet.offset
            nbytes = delivery.packet.size
            data = delivery.packet.data
        dest = self._read_dest[hdr.op_id]
        got = self._op_bytes.get(hdr.op_id, 0) + nbytes

        def place() -> None:
            if data:
                dest.write(frag_off, data)
            if got >= op.size:
                self._op_bytes.pop(hdr.op_id, None)
                self._pending.pop(hdr.op_id, None)
                self._read_dest.pop(hdr.op_id, None)
                entry = CqEntry(
                    CqKind.READ_DONE, hdr.op_id, size=op.size, wr_id=op.wr_id, time=self.sim.now
                )
                self.cq.push(entry)
                op.done.resolve(entry)

        self._op_bytes[hdr.op_id] = got
        self.sim.post(self.pcie.latency, place)

    def _on_ack(self, delivery: Delivery) -> None:
        hdr: AckHeader = delivery.message.header
        op = self._pending.get(hdr.op_id)
        if op is None:
            return
        if not hdr.ok and op.kind is CqKind.SEND_DONE and op.retry and op.retry[3] > 0:
            # RNR NAK: back off and resend the same op (IB RC behaviour).
            data, tag, mode, left = op.retry
            op.retry = (data, tag, mode, left - 1)
            self.stat("rnr_retries").add()
            resend = RdmaSendHeader(total_size=op.size, tag=tag, op_id=op.op_id)
            self.inject(op.dst, op.size, resend, data, mode, after=self.cfg.rnr_timeout)
            return
        self._pending.pop(hdr.op_id, None)
        kind = op.kind if hdr.ok else CqKind.ERROR
        entry = CqEntry(
            kind, op.op_id, size=op.size, wr_id=op.wr_id, time=self.sim.now, ok=hdr.ok
        )
        # CQ entry is DMAed to host memory before software can observe it.
        def finish() -> None:
            if op.signaled:
                self.cq.push(entry)
            op.done.resolve(entry)

        self.sim.post(self.pcie.latency, finish)
