"""Wire-protocol headers interpreted by the NIC models.

Headers ride in :attr:`repro.network.message.Message.header` and tell
the receiving NIC what to do with the payload.  The split mirrors the
paper's Figure 1 vs Figure 3: RDMA headers carry raw remote addresses
and rkeys; RVMA headers carry only a mailbox virtual address and an
offset.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

_op_ids = itertools.count(1)


def next_op_id() -> int:
    return next(_op_ids)


# --- RVMA -------------------------------------------------------------------


@dataclass(frozen=True)
class RvmaPutHeader:
    """RVMA put: mailbox address + offset into the *active* buffer.

    No physical address, no rkey — the defining property of RVMA.
    """

    mailbox: int
    offset: int
    total_size: int
    op_id: int = field(default_factory=next_op_id)


@dataclass(frozen=True)
class RvmaGetHeader:
    """RVMA get: read ``length`` bytes at ``offset`` of the active buffer."""

    mailbox: int
    offset: int
    length: int
    op_id: int = field(default_factory=next_op_id)


@dataclass(frozen=True)
class RvmaGetReply:
    op_id: int
    ok: bool


class NackReason(Enum):
    CLOSED = "closed"  # window closed (RVMA_Close_Win)
    NO_MAILBOX = "no_mailbox"  # mailbox never initialised
    NO_BUFFER = "no_buffer"  # bucket empty and no catch-all
    OUT_OF_BOUNDS = "out_of_bounds"  # offset+len exceeds active buffer
    # Tenant placement quota rejected the put.  Deliberately NOT in the
    # NIC's auto-retry set: hammering a metered mailbox on the NACK
    # timer is exactly the behaviour quotas exist to stop — recovery is
    # the client's backoff/deadline loop (services QoS layer).
    QUOTA = "quota"
    # An active-mailbox predicate filter (repro.nic.active) rejected the
    # payload.  Also not auto-retried: the same bytes would fail the
    # same predicate forever.
    FILTERED = "filtered"


@dataclass(frozen=True)
class RvmaNackHeader:
    """Negative acknowledgement for a discarded RVMA operation.

    The paper allows NACKs to be disabled wholesale to resist DoS
    (§III-C); :class:`repro.nic.rvma.RvmaNicConfig.send_nacks` models that.
    """

    op_id: int
    mailbox: int
    reason: NackReason


# --- reliability envelope -----------------------------------------------------
#
# The reliability transport (:mod:`repro.reliability.transport`) wraps
# application headers in a sequence-numbered envelope so a lossy fabric
# (fault injection: drops, flaps, partitions) can be survived by
# timeout-driven retransmission.  The envelope is protocol-agnostic: it
# carries RVMA and RDMA headers alike.


@dataclass(frozen=True)
class SeqHeader:
    """Reliable-delivery envelope around an application header.

    ``flow`` discriminates independent sequence spaces between one
    (src, dst) NIC pair — the target mailbox for RVMA traffic, 0 for
    everything else — so per-(src, dst, mailbox) ordering/dedup state
    stays small and a hot mailbox cannot head-of-line-block another.
    """

    flow: int
    seq: int  # per-(src, dst, flow), starting at 1
    inner: object  # the wrapped application header
    attempt: int = 0  # retransmission attempt (0 = first transmission)


@dataclass(frozen=True)
class ReliAckHeader:
    """Cumulative + selective acknowledgement for one flow.

    ``cum`` acknowledges every sequence number <= cum; ``sacks`` lists
    out-of-order sequence numbers received beyond it (capped), so a
    single lost message does not force retransmission of its successors.
    """

    flow: int
    cum: int
    sacks: tuple = ()


@dataclass(frozen=True)
class HeartbeatHeader:
    """Failure-detector probe.  ``ping`` requests an immediate ``pong``."""

    kind: str  # "ping" | "pong"
    seq: int


# --- crash-restart rejoin ------------------------------------------------------
#
# After a crash-restart (:meth:`repro.nic.base.BaseNic.crash` +
# ``restart``) the node's recovery agent re-registers its mailboxes from
# the host-side journal/checkpoint and then negotiates a consistent
# resume point with every peer.  Both headers ride *inside* the
# reliability envelope, so the rejoin handshake itself survives a lossy
# fabric.


@dataclass(frozen=True)
class RejoinHello:
    """Restarted node -> peer: "here is what I still know".

    ``rx_cums`` maps this node's receive flows *from the peer* to the
    restored cumulative sequence number — the peer must replay its send
    journal beyond each.  ``epochs`` maps restored mailbox -> epoch (the
    globally consistent epoch negotiation input; diagnostics/rewind).
    """

    node: int
    incarnation: int
    rx_cums: tuple  # ((flow, cum), ...) for flows peer -> this node
    epochs: tuple = ()  # ((mailbox, epoch), ...) restored local windows


@dataclass(frozen=True)
class RejoinReply:
    """Peer -> restarted node: "here is what I have from you".

    ``rx_cums`` maps the peer's receive flows *from the restarted node*
    to its cumulative sequence number; the restarted node replays its
    own journal beyond each so nothing it sent pre-crash is lost.
    """

    node: int
    incarnation: int
    rx_cums: tuple  # ((flow, cum), ...) for flows this node -> peer


# --- RDMA --------------------------------------------------------------------


@dataclass(frozen=True)
class RdmaWriteHeader:
    """RDMA write/put: raw target virtual address + protection key."""

    raddr: int
    rkey: int
    total_size: int
    imm: int | None = None  # write-with-immediate payload (target CQE)
    op_id: int = field(default_factory=next_op_id)


@dataclass(frozen=True)
class RdmaReadHeader:
    """RDMA read/get request."""

    raddr: int
    rkey: int
    length: int
    op_id: int = field(default_factory=next_op_id)


@dataclass(frozen=True)
class RdmaReadReply:
    op_id: int
    ok: bool


@dataclass(frozen=True)
class RdmaSendHeader:
    """Two-sided send; consumes a posted receive at the target."""

    total_size: int
    tag: int = 0
    op_id: int = field(default_factory=next_op_id)


@dataclass(frozen=True)
class AckHeader:
    """Transport-level acknowledgement (RC semantics, coalesced per op)."""

    op_id: int
    ok: bool = True


#: Wire size of control-only messages (acks, NACKs, read requests).
CONTROL_BYTES = 16
