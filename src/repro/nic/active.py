"""Active mailboxes: NIC-side compute-on-arrival (Active Access idiom).

The RVMA completion unit already observes every placed byte; this module
lets software attach small user-defined handlers to a mailbox so the NIC
executes them *at threshold time* instead of round-tripping through the
host sweep loop.  Three built-in handler kinds ship:

* :class:`AtomicWordHandler` — an atomic increment / compare-and-swap on
  a per-mailbox word maintained by the completion unit;
* :class:`PredicateFilter` — drops (or NACKs ``FILTERED``) puts whose
  payload fails a predicate, before any bytes land;
* :class:`KvServeHandler` — a GET-hot-key short-circuit for the KV
  service: the completion unit scans each completed request chunk and
  serves GETs on server-registered hot keys straight from a read-only
  view, rewriting the served frame's op byte to the ``OP_SERVED``
  tombstone so the host sweep never dispatches it.

Every handler-visible behaviour has a host-dispatch twin it must match
byte-for-byte: the word update is the pure :func:`apply_word_op` both
paths share, the filter is the pure :meth:`PredicateFilter.matches`, and
a handler-served KV reply must be byte-identical (above the
``STATUS_HANDLER_FLAG`` marker) to what the sweep loop would have sent.
The conformance suites under ``tests/`` pin all three.

Consistency protocol for the KV view (why served GETs match FIFO
host dispatch): the scanner counts every write frame it sees on a hot
key into a *pending* counter; the host decrements it (``hw_kv_sync``)
only after executing the write — or after shedding it, so the key does
not wedge.  A GET is served only when its key has no pending writes,
i.e. the view provably equals the store at that stream position.  Under
the QoS sweep the host executes out of stream order, so byte-identity
is only guaranteed for FIFO servers; served replies remain linearizable
and correctly accounted either way (docs/QOS.md).

Crash-restart: bindings are NIC-resident and die with the hardware.
The host-side op journal records each attach and, per completed epoch,
the handler *effects* (word value, served-frame offsets).  Rejoin
re-attaches handlers cold and replayed epochs re-apply the journaled
effects verbatim — same bytes, same word, no duplicate replies — so the
invariant auditor's epoch digests match the original run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..network.routing import RoutingMode
# repro.services.wire is dependency-free (pure structs), so reaching up
# the layer diagram for the KV framing cannot create an import cycle.
from ..services.wire import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    OP_SERVED,
    REQ_HEADER_BYTES,
    STATUS_HANDLER_FLAG,
    STATUS_OK,
    encode_reply,
    peek_request_header,
)
from .headers import NackReason, RvmaPutHeader
from .lut import BufferMode, LutError, MailboxEntry


@dataclass
class ActiveCostConfig:
    """Deterministic cost model for completion-unit handler execution."""

    #: Fixed activation cost per handler invocation at threshold time.
    invoke_ns: float = 10.0
    #: One atomic word op (fetch-add / compare-and-swap) on NIC SRAM.
    word_op_ns: float = 8.0
    #: Predicate evaluation per admitted put (header + prefix compare).
    filter_ns: float = 12.0
    #: Streaming scan of a completed chunk (frame walk, no payload copy).
    scan_ns_per_byte: float = 0.05
    #: Building + injecting one served reply (doorbell, header).
    serve_ns: float = 60.0
    #: DMA read of the hot view per served payload byte.
    serve_ns_per_byte: float = 0.1


# --- handler kinds --------------------------------------------------------------


@dataclass(frozen=True)
class AtomicWordHandler:
    """Atomic op on a NIC-resident per-mailbox word at each epoch close.

    ``op`` is one of ``"add"`` (word += operand), ``"add_bytes"``
    (word += completed-epoch length) or ``"cas"`` (word = update iff
    word == expect).  The word is completion-unit state: reads from the
    host cost a PCIe round trip (:meth:`RvmaNic.hw_active_word`).
    """

    kind = "word"
    op: str = "add"
    operand: int = 1
    expect: int = 0
    update: int = 0
    initial: int = 0

    def __post_init__(self) -> None:
        if self.op not in ("add", "add_bytes", "cas"):
            raise ValueError(f"unknown word op {self.op!r}")


def apply_word_op(word: int, handler: AtomicWordHandler, epoch_len: int) -> tuple[int, bool]:
    """Pure word-update rule shared by the NIC path and the host oracle.

    Returns ``(new_word, applied)`` — ``applied`` is False only for a
    failed compare-and-swap.
    """
    if handler.op == "add":
        return word + handler.operand, True
    if handler.op == "add_bytes":
        return word + epoch_len, True
    if word == handler.expect:
        return handler.update, True
    return word, False


@dataclass(frozen=True)
class PredicateFilter:
    """Payload predicate evaluated before placement: pass, drop or NACK.

    Only whole-message puts are evaluable (a fragment does not carry the
    prefix); fragmented puts bypass the filter and are counted, so the
    packet-fidelity fabric degrades visibly rather than silently.
    """

    kind = "filter"
    prefix: bytes = b""
    #: Drop puts that *match* instead of puts that do not.
    invert: bool = False
    #: NACK ``FILTERED`` (initiator sees the loss) vs silent drop.
    nack: bool = True

    def matches(self, data: bytes) -> bool:
        """Pure predicate shared by the NIC path and the host oracle."""
        return data.startswith(self.prefix) ^ self.invert


@dataclass(frozen=True)
class KvServeHandler:
    """GET-hot-key short-circuit over a shard's managed request stream.

    The server registers the hot-key set at attach time and keeps the
    read-only view current with ``hw_kv_sync`` after executing (or
    shedding) each write on a hot key.  Reply routing reuses the KV
    convention: ``client_id = (node << 8) | index`` and the reply
    mailbox is ``reply_mailbox_base + client_id``.
    """

    kind = "kv"
    hot_keys: tuple[bytes, ...] = ()
    reply_mailbox_base: int = 0


@dataclass
class ActiveEffect:
    """Journaled handler effects of one completed epoch (rewind unit)."""

    word: Optional[int] = None
    served: tuple[int, ...] = ()


class _KvScanState:
    """Volatile scanner state for one mailbox's request stream."""

    __slots__ = ("view", "pending", "skip", "carry")

    def __init__(self) -> None:
        #: key -> value: server-synced read-only view of hot keys.
        self.view: dict[bytes, bytes] = {}
        #: key -> count of scanned-but-not-yet-synced writes.
        self.pending: dict[bytes, int] = {}
        #: body bytes of an already-classified frame straddling chunks.
        self.skip: int = 0
        #: partial header+key of a not-yet-classified straddling frame.
        self.carry: bytearray = bytearray()


@dataclass
class ActiveBinding:
    """All handlers attached to one mailbox plus their NIC-resident state."""

    mailbox: int
    word_handler: Optional[AtomicWordHandler] = None
    filter: Optional[PredicateFilter] = None
    kv: Optional[KvServeHandler] = None
    word: int = 0
    kv_state: _KvScanState = field(default_factory=_KvScanState)

    @property
    def handlers(self) -> list:
        return [h for h in (self.word_handler, self.filter, self.kv) if h is not None]


class ActiveRegistry:
    """Per-NIC table of mailbox -> :class:`ActiveBinding`.

    Owned by :class:`repro.nic.rvma.RvmaNic` (duck-typed ``nic.active``
    attribute, the placement-quota idiom): the NIC consults
    :meth:`filter_put` on the admit path and :meth:`on_epoch_complete`
    at threshold time; both are no-ops for unbound mailboxes.
    """

    def __init__(self, nic, costs: Optional[ActiveCostConfig] = None) -> None:
        self.nic = nic
        self.costs = costs or ActiveCostConfig()
        self.bindings: dict[int, ActiveBinding] = {}

    # ------------------------------------------------------------------ lifecycle

    def attach(self, mailbox: int, handler) -> ActiveBinding:
        """Bind *handler* to *mailbox* (one handler per kind per mailbox)."""
        entry = self.nic.lut.lookup(mailbox)
        if entry is None:
            raise LutError(f"mailbox {mailbox:#x} not initialised")
        binding = self.bindings.get(entry.mailbox)
        if binding is None:
            binding = self.bindings[entry.mailbox] = ActiveBinding(mailbox=entry.mailbox)
        if isinstance(handler, AtomicWordHandler):
            if binding.word_handler is not None:
                raise LutError(f"mailbox {mailbox:#x} already has a word handler")
            binding.word_handler = handler
            binding.word = handler.initial
        elif isinstance(handler, PredicateFilter):
            if binding.filter is not None:
                raise LutError(f"mailbox {mailbox:#x} already has a filter")
            binding.filter = handler
        elif isinstance(handler, KvServeHandler):
            if binding.kv is not None:
                raise LutError(f"mailbox {mailbox:#x} already has a KV handler")
            if entry.mode is not BufferMode.MANAGED:
                raise LutError("KvServeHandler requires a receiver-managed stream")
            binding.kv = handler
            binding.kv_state = _KvScanState()
        else:
            raise LutError(f"unknown handler type {type(handler).__name__}")
        self.nic.stat("active.attached").add()
        return binding

    def restore(self, mailbox: int, handler, window_log) -> None:
        """Journal-driven cold re-attach after crash-restart.

        The word is rebuilt from the newest journaled effect (replayed
        epochs re-assert their own values on re-completion, so any
        starting point at or before the replay window is consistent).
        KV view/pending state is *not* journaled — it is host-owned soft
        state the server re-seeds via ``hw_kv_sync``; until then GETs
        fall through to the host, which is always safe.
        """
        binding = self.attach(mailbox, handler)
        if isinstance(handler, AtomicWordHandler):
            effects = getattr(window_log, "active_effects", {})
            for epoch in sorted(effects):
                if effects[epoch].word is not None:
                    binding.word = effects[epoch].word

    def crash_reset(self) -> None:
        """Crash-stop: bindings and all handler state die with the NIC."""
        self.bindings.clear()

    def word_value(self, mailbox: int) -> Optional[int]:
        binding = self.bindings.get(mailbox)
        return binding.word if binding is not None and binding.word_handler else None

    # ------------------------------------------------------------------ admit path

    def filter_put(self, hdr: RvmaPutHeader, src: int, frag_off: int, nbytes: int, data: bytes):
        """Admit-path predicate check.

        Returns ``None`` when the put was dropped (stats and NACK
        already emitted) or the filter cost in ns to charge the
        placement (0.0 for unbound/unfiltered mailboxes).
        """
        binding = self.bindings.get(hdr.mailbox)
        if binding is None or binding.filter is None:
            return 0.0
        flt = binding.filter
        if frag_off != 0 or nbytes != hdr.total_size:
            # Fragment: predicate not evaluable on a partial payload.
            self.nic.stat("active.filter_bypass").add()
            return 0.0
        if flt.matches(bytes(data)):
            self.nic.stat("active.filter_passed").add()
            return self.costs.filter_ns
        self.nic.stat("active.filtered_puts").add()
        spans = self.nic.sim.spans
        if spans.active and spans.wants("active"):
            spans.end(
                spans.begin("active", "filter_drop", nic=self.nic.name, mailbox=hdr.mailbox),
                bytes=nbytes,
            )
        if flt.nack:
            self.nic._nack(src, hdr, NackReason.FILTERED)
        return None

    # ------------------------------------------------------------------ completion path

    def on_epoch_complete(self, entry: MailboxEntry) -> float:
        """Run the mailbox's handlers against the about-to-retire buffer.

        Called by the NIC *before* ``lut.retire_active`` so served-frame
        rewrites land in the bytes the auditor digests and the host
        recv()s.  Returns the extra completion-pipeline delay.
        """
        binding = self.bindings.get(entry.mailbox)
        if binding is None or (binding.word_handler is None and binding.kv is None):
            return 0.0
        nic = self.nic
        buf = entry.active
        epoch = entry.epoch
        chunk_len = buf.bytes_received
        nic.stat("active.invocations").add()
        cost = self.costs.invoke_ns

        journal = nic.op_journal
        replay = journal.active_effect(entry.mailbox, epoch) if journal is not None else None
        if replay is not None:
            # Rejoin replay: re-assert the journaled effects verbatim.
            # No re-serve, no duplicate replies — the original injections
            # live in the send journal and retransmit on their own.
            if replay.word is not None:
                binding.word = replay.word
            for off in replay.served:
                buf.buffer.write(off, bytes((OP_SERVED,)))
            if binding.kv is not None and chunk_len > 0:
                # Parse-only walk: keep the straddle state (skip/carry)
                # stream-aligned so the first post-replay chunk parses
                # correctly.  Pending counts are NOT rebuilt — writes in
                # replayed chunks were host-consumed pre-crash and their
                # syncs will never come; kv_sync floors at zero instead.
                self._scan_and_serve(binding, buf, chunk_len, [], cost, serve=False)
            nic.stat("active.replayed").add()
            return cost

        spans = nic.sim.spans
        sp = None
        if spans.active and spans.wants("active"):
            sp = spans.begin("active", "epoch_handlers", nic=nic.name, mailbox=entry.mailbox)

        effect = ActiveEffect()
        if binding.word_handler is not None:
            binding.word, applied = apply_word_op(binding.word, binding.word_handler, chunk_len)
            nic.stat("active.word_ops").add()
            if not applied:
                nic.stat("active.cas_failures").add()
            cost += self.costs.word_op_ns
            effect.word = binding.word
        served: list[int] = []
        if binding.kv is not None and chunk_len > 0:
            cost += self._scan_and_serve(binding, buf, chunk_len, served, cost)
            effect.served = tuple(served)
        if journal is not None:
            journal.note_active_effect(entry.mailbox, epoch, effect)
        if sp is not None:
            spans.end(sp, epoch=epoch, served=len(served), word=binding.word)
        return cost

    def _scan_and_serve(
        self,
        binding: ActiveBinding,
        buf,
        chunk_len: int,
        served: list[int],
        base_cost: float,
        serve: bool = True,
    ) -> float:
        """Walk one completed chunk; serve eligible GETs; return scan cost.

        Frame walk is resumable across chunk boundaries: ``skip`` carries
        the body remainder of an already-classified straddling frame,
        ``carry`` the partial header+key of one not yet classifiable.
        Straddling frames are classified (for write pending-counting) as
        soon as header+key become visible — at the start of the next
        chunk's scan, i.e. still in stream order — but are never served.
        """
        nic = self.nic
        handler = binding.kv
        st = binding.kv_state
        hot = handler.hot_keys
        chunk = bytes(buf.buffer.read(0, chunk_len))
        cost = self.costs.scan_ns_per_byte * chunk_len
        pos, n = 0, chunk_len
        while pos < n:
            if st.skip:
                take = min(st.skip, n - pos)
                st.skip -= take
                pos += take
                continue
            if st.carry:
                need = REQ_HEADER_BYTES
                if len(st.carry) >= REQ_HEADER_BYTES:
                    need = REQ_HEADER_BYTES + peek_request_header(st.carry)[4]
                take = min(need - len(st.carry), n - pos)
                st.carry += chunk[pos : pos + take]
                pos += take
                if len(st.carry) < REQ_HEADER_BYTES:
                    continue
                op, _tenant, _client, _req, key_len, val_len = peek_request_header(st.carry)
                need = REQ_HEADER_BYTES + key_len
                if len(st.carry) < need:
                    continue
                key = bytes(st.carry[REQ_HEADER_BYTES:need])
                st.skip = (need + val_len) - len(st.carry)
                st.carry = bytearray()
                if serve:
                    self._classify(st, hot, op, key)
                continue
            if n - pos < REQ_HEADER_BYTES:
                st.carry = bytearray(chunk[pos:n])
                break
            op, _tenant, client_id, req_id, key_len, val_len = peek_request_header(chunk, pos)
            total = REQ_HEADER_BYTES + key_len + val_len
            key_end = pos + REQ_HEADER_BYTES + key_len
            if pos + total > n:
                if key_end <= n:
                    # Header+key visible: classify now, skip the body
                    # remainder when the next chunk completes.
                    if serve:
                        self._classify(st, hot, op, bytes(chunk[pos + REQ_HEADER_BYTES : key_end]))
                    st.skip = total - (n - pos)
                    pos = n
                else:
                    st.carry = bytearray(chunk[pos:n])
                break
            key = bytes(chunk[pos + REQ_HEADER_BYTES : key_end])
            if not serve:
                pass
            elif op == OP_GET and key in hot:
                if not st.pending.get(key) and key in st.view:
                    value = st.view[key]
                    reply = encode_reply(STATUS_OK | STATUS_HANDLER_FLAG, req_id, value)
                    serve_cost = self.costs.serve_ns + self.costs.serve_ns_per_byte * len(reply)
                    cost += serve_cost
                    buf.buffer.write(pos, bytes((OP_SERVED,)))
                    served.append(pos)
                    nic.stat("active.served").add()
                    nic.stat("active.served_bytes").add(len(reply))
                    # client_id = (node << 8) | index — the KV service's
                    # registry-free reply-routing convention.
                    nic.inject(
                        client_id >> 8,
                        len(reply),
                        RvmaPutHeader(
                            mailbox=handler.reply_mailbox_base + client_id,
                            offset=0,
                            total_size=len(reply),
                        ),
                        reply,
                        RoutingMode.STATIC,
                        after=base_cost + cost,
                    )
                elif st.pending.get(key):
                    nic.stat("active.passed_dirty").add()
                else:
                    nic.stat("active.passed_cold").add()
            else:
                self._classify(st, hot, op, key)
            pos += total
        return cost

    @staticmethod
    def _classify(st: _KvScanState, hot: tuple[bytes, ...], op: int, key: bytes) -> None:
        """Pending-count a write frame on a hot key (GETs fall through)."""
        if op in (OP_PUT, OP_DELETE) and key in hot:
            st.pending[key] = st.pending.get(key, 0) + 1

    # ------------------------------------------------------------------ host sync

    def kv_sync(
        self,
        mailbox: int,
        key: bytes,
        value: Optional[bytes] = None,
        delete: bool = False,
        executed: bool = True,
    ) -> bool:
        """Host -> NIC view sync after executing (or shedding) a write.

        Decrements the key's pending-write counter (floored at zero:
        writes executed from chunks consumed before a crash have no
        live counter) and, when the write actually *executed*, folds it
        into the view.  ``executed=False`` is the shed path — decrement
        only, so an RC_OVERLOAD-refused write cannot wedge its key.
        """
        binding = self.bindings.get(mailbox)
        if binding is None or binding.kv is None:
            return False
        st = binding.kv_state
        if st.pending.get(key):
            st.pending[key] -= 1
            if not st.pending[key]:
                del st.pending[key]
        if executed:
            if delete:
                st.view.pop(key, None)
            elif value is not None:
                st.view[key] = bytes(value)
        self.nic.stat("active.kv_syncs").add()
        return True
