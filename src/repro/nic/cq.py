"""Completion queue model for the RDMA baseline NIC.

RDMA surfaces *all* completions through shared CQs; the paper contrasts
this with RVMA's per-buffer completion pointers (a known location per
transfer, MWait-able, no demultiplexing).  Entries are DMAed into host
memory by the NIC (a PCIe traversal) before software can poll them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..sim.engine import Simulator
from ..sim.process import Future


class CqKind(Enum):
    WRITE_DONE = "write_done"  # initiator: RDMA write acked
    SEND_DONE = "send_done"  # initiator: send acked
    RECV = "recv"  # target: send landed in a posted recv
    WRITE_IMM = "write_imm"  # target: write-with-immediate arrived
    READ_DONE = "read_done"  # initiator: read data placed locally
    ERROR = "error"


@dataclass(frozen=True)
class CqEntry:
    kind: CqKind
    op_id: int
    size: int = 0
    imm: Optional[int] = None
    wr_id: int = 0
    time: float = 0.0
    ok: bool = True


class CompletionQueue:
    """FIFO of completion entries with future-based waiting."""

    def __init__(self, sim: Simulator, capacity: int = 4096) -> None:
        self.sim = sim
        self.capacity = capacity
        self.entries: deque[CqEntry] = deque()
        self._waiters: deque[Future] = deque()
        self.overflows = 0
        self.total_entries = 0

    def push(self, entry: CqEntry) -> None:
        """NIC-side: deposit an entry (drops + counts on overflow,
        the classic 'ran out of CQ contexts' failure the paper cites)."""
        self.total_entries += 1
        if self._waiters:
            self._waiters.popleft().resolve(entry)
            return
        if len(self.entries) >= self.capacity:
            self.overflows += 1
            return
        self.entries.append(entry)

    def poll(self, max_entries: int = 1) -> list[CqEntry]:
        """Software-side: harvest up to *max_entries* without blocking."""
        out = []
        while self.entries and len(out) < max_entries:
            out.append(self.entries.popleft())
        return out

    def wait(self) -> Future:
        """Future resolving with the next entry (drains backlog first)."""
        fut = Future(self.sim)
        if self.entries:
            fut.resolve(self.entries.popleft())
        else:
            self._waiters.append(fut)
        return fut

    def __len__(self) -> int:
        return len(self.entries)
