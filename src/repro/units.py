"""Unit helpers used throughout the simulator.

Conventions (chosen once, used everywhere):

* **Time** is measured in *nanoseconds* and carried as ``float``.
* **Data sizes** are measured in *bytes* and carried as ``int``.
* **Bandwidth** is measured in *bytes per nanosecond* (``float``), which
  conveniently equals gigabytes per second (1 B/ns == 1e9 B/s ~ 0.93 GiB/s).

These helpers exist so that call sites read like the paper: the paper
speaks in Gbps link rates, microsecond latencies and KiB message sizes.
"""

from __future__ import annotations

# --- time -----------------------------------------------------------------

NS = 1.0
US = 1_000.0
MS = 1_000_000.0
S = 1_000_000_000.0


def ns(x: float) -> float:
    """Return *x* nanoseconds as simulator time units (identity)."""
    return x * NS


def us(x: float) -> float:
    """Return *x* microseconds in nanoseconds."""
    return x * US


def ms(x: float) -> float:
    """Return *x* milliseconds in nanoseconds."""
    return x * MS


def seconds(x: float) -> float:
    """Return *x* seconds in nanoseconds."""
    return x * S


# --- data size --------------------------------------------------------------

KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024


def kib(x: float) -> int:
    """Return *x* KiB in bytes."""
    return int(x * KiB)


def mib(x: float) -> int:
    """Return *x* MiB in bytes."""
    return int(x * MiB)


# --- bandwidth ----------------------------------------------------------------


def gbps(x: float) -> float:
    """Convert a link rate in gigabits/second to bytes/nanosecond.

    100 Gbps == 12.5 B/ns.  This is the unit used by every link,
    crossbar and DMA engine in the simulator.
    """
    return x / 8.0


def gBps(x: float) -> float:
    """Convert gigabytes/second to bytes/nanosecond (identity by design)."""
    return float(x)


def serialization_ns(size_bytes: int, bw_bytes_per_ns: float) -> float:
    """Time to clock *size_bytes* onto a channel of the given bandwidth."""
    if bw_bytes_per_ns <= 0:
        raise ValueError(f"bandwidth must be positive, got {bw_bytes_per_ns}")
    return size_bytes / bw_bytes_per_ns


# --- formatting ---------------------------------------------------------------


def fmt_time(t_ns: float) -> str:
    """Human-readable time: picks ns/us/ms/s as appropriate."""
    a = abs(t_ns)
    if a < 1e3:
        return f"{t_ns:.1f}ns"
    if a < 1e6:
        return f"{t_ns / 1e3:.3f}us"
    if a < 1e9:
        return f"{t_ns / 1e6:.3f}ms"
    return f"{t_ns / 1e9:.3f}s"


def fmt_bytes(n: int) -> str:
    """Human-readable byte count (B / KiB / MiB / GiB)."""
    a = abs(n)
    if a < KiB:
        return f"{n}B"
    if a < MiB:
        return f"{n / KiB:.1f}KiB"
    if a < GiB:
        return f"{n / MiB:.1f}MiB"
    return f"{n / GiB:.2f}GiB"


def fmt_gbps(bw_bytes_per_ns: float) -> str:
    """Render a bytes/ns bandwidth as the Gbps figure the paper uses."""
    g = bw_bytes_per_ns * 8.0
    if g >= 1000:
        return f"{g / 1000:g}Tbps"
    return f"{g:g}Gbps"
