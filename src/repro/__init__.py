"""repro — a full reproduction of "RVMA: Remote Virtual Memory Access"
(Grant, Levenhagen, Dosanjh, Widener; IPDPS 2021).

The package builds the paper's whole evaluation stack in Python: a
deterministic discrete-event simulator (the SST stand-in), a network
substrate with the paper's topologies and routing modes, byte-accurate
host memory with Monitor/MWait and PCIe models, an RDMA baseline NIC +
Verbs/UCX software layers, the proposed RVMA NIC + API, application
motifs, fault injection, and drivers that regenerate every figure in
the paper's evaluation (Figs 4-8).

Quick start::

    from repro import Cluster, RvmaApi
    from repro.sim import spawn

    cluster = Cluster.build(n_nodes=2, topology="star", nic_type="rvma",
                            fidelity="packet")
    api = RvmaApi(cluster.node(1))
    # see examples/quickstart.py for the full two-process flow
"""

from ._version import __version__
from .cluster import Cluster, Node
from .collectives import TreeComm
from .core import (
    BufferMode,
    EpochType,
    RvmaApi,
    RvmaApiError,
    RvmaStatus,
    StreamClient,
    StreamServer,
    Window,
    execute,
    mpix_rewind,
)
from .faults import ChaosSchedule, FaultInjector
from .motifs import AllreduceMotif, Halo3D, Incast, RdmaProtocol, RvmaProtocol, Sweep3D
from .observability import MetricsRegistry, RunReport, SpanTracer
from .recovery import InvariantAuditor, RecoveryConfig, RecoveryManager
from .reliability import FailureDetector, PeerFailed, ReliabilityConfig
from .services import KvClient, KvServer, KvServerConfig, LoadGenerator, ShardMap, WorkloadConfig
from .mpi import MpiRma, RankWindow, RewindUnsupportedError
from .network import NetworkConfig, RoutingMode, make_topology
from .rdma import CompletionMode, UcpEndpoint, VerbsEndpoint
from .sockets import Connection, RvmaListener, connect
from .sim import Simulator, spawn
from .workloads import Trace, TraceRecorder, TraceReplayer

__all__ = [
    "AllreduceMotif",
    "ChaosSchedule",
    "BufferMode",
    "Cluster",
    "CompletionMode",
    "Connection",
    "EpochType",
    "FailureDetector",
    "FaultInjector",
    "Halo3D",
    "Incast",
    "InvariantAuditor",
    "KvClient",
    "KvServer",
    "KvServerConfig",
    "LoadGenerator",
    "MetricsRegistry",
    "MpiRma",
    "NetworkConfig",
    "Node",
    "PeerFailed",
    "RankWindow",
    "RdmaProtocol",
    "RecoveryConfig",
    "RecoveryManager",
    "ReliabilityConfig",
    "RewindUnsupportedError",
    "RoutingMode",
    "RunReport",
    "RvmaApi",
    "RvmaListener",
    "RvmaApiError",
    "RvmaProtocol",
    "RvmaStatus",
    "ShardMap",
    "Simulator",
    "SpanTracer",
    "StreamClient",
    "StreamServer",
    "Sweep3D",
    "Trace",
    "TraceRecorder",
    "TraceReplayer",
    "TreeComm",
    "UcpEndpoint",
    "VerbsEndpoint",
    "Window",
    "WorkloadConfig",
    "__version__",
    "connect",
    "execute",
    "make_topology",
    "mpix_rewind",
    "spawn",
]
