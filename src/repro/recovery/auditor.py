"""Runtime invariant auditor for RVMA placement and recovery.

Opt-in shadow checker wired into the hot paths of
:class:`~repro.nic.rvma.RvmaNic` and
:class:`~repro.reliability.transport.ReliableTransport` via the
``nic.auditor`` attribute (None by default — disabled costs one
attribute check per placement).  It maintains an independent shadow of
what correct hardware would do and reports divergence as structured
:class:`Violation` records instead of letting a buggy recovery silently
corrupt application results.

Invariants checked:

* **no-double-placement** — one (mailbox, epoch, offset-range) is
  written at most once; after a crash-restart the replay window may
  legally re-place, but only with *byte-identical* data;
* **byte conservation** — under ``EPOCH_BYTES`` the threshold counter
  equals the shadow sum of placed bytes, exactly;
* **monotone counters** — a threshold counter never decreases within
  an epoch;
* **epoch consistency** — completions advance the epoch by exactly one;
  a replayed completion must reproduce the recorded (length, digest);
* **no transport double-dispatch** — the reliability layer never hands
  the same (peer, flow, seq) to the NIC twice (modulo sanctioned
  post-restore replay).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional


def _digest(data: bytes) -> str:
    return hashlib.blake2s(data, digest_size=8).hexdigest()


@dataclass(frozen=True)
class Violation:
    """One detected invariant breach (structured, test-friendly)."""

    kind: str
    node: int
    mailbox: int
    epoch: int
    time: float
    detail: str

    def describe(self) -> str:
        return (
            f"[{self.kind}] node {self.node} mailbox {self.mailbox:#x} "
            f"epoch {self.epoch} @ {self.time:.0f}ns: {self.detail}"
        )


class AuditError(RuntimeError):
    """Raised on the first violation when the auditor is fail-fast."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(violation.describe())
        self.violation = violation


@dataclass
class _MailboxShadow:
    """Independent shadow of one mailbox's active-epoch accounting."""

    epoch: int = 0  # active epoch being shadowed
    last_counter: int = 0
    placed_bytes: int = 0  # shadow byte sum for the active epoch
    #: counter value at the start of shadowing this epoch (None until
    #: the first placement is observed; nonzero on mid-epoch attach).
    baseline: Optional[int] = None
    last_completed: int = -1  # newest epoch seen completing
    #: sanctioned replay ceiling: epochs < this may legally re-complete
    #: and re-place after a crash-restart (byte-identical only).
    replay_below: int = 0
    #: (epoch, place_off, nbytes) -> digest of the placed bytes.
    placements: dict = field(default_factory=dict)
    #: epoch -> (length, digest) recorded at first completion.
    completions: dict = field(default_factory=dict)


class InvariantAuditor:
    """Cluster-wide shadow checker; attach with :meth:`attach`.

    ``fail_fast=True`` raises :class:`AuditError` on the first breach
    (unit tests); the default collects every violation for the chaos
    harness's post-run audit.
    """

    def __init__(self, fail_fast: bool = False) -> None:
        self.fail_fast = fail_fast
        self.violations: list[Violation] = []
        self.places_checked = 0
        self.completions_checked = 0
        self.dispatches_checked = 0
        self._mail: dict[tuple[int, int], _MailboxShadow] = {}
        #: transport dedup shadow: (node, peer, flow) -> set of seqs.
        self._dispatched: dict[tuple[int, int, int], set] = {}

    # ------------------------------------------------------------------ attach

    def attach(self, cluster) -> "InvariantAuditor":
        for node in cluster.nodes:
            node.nic.auditor = self
        return self

    # ------------------------------------------------------------------ verdicts

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> dict:
        """Structured violation report (chaos harness / CI output)."""
        return {
            "ok": self.ok,
            "violations": [v.describe() for v in self.violations],
            "checked": {
                "placements": self.places_checked,
                "completions": self.completions_checked,
                "dispatches": self.dispatches_checked,
            },
        }

    def _flag(self, kind: str, nic, mailbox: int, epoch: int, detail: str) -> None:
        v = Violation(
            kind=kind, node=nic.node_id, mailbox=mailbox, epoch=epoch,
            time=nic.sim.now, detail=detail,
        )
        self.violations.append(v)
        nic.stat("audit_violations").add()
        nic.sim.stats.counter("recovery.audit_violations").add()
        if self.fail_fast:
            raise AuditError(v)

    # ------------------------------------------------------------------ NIC hooks

    def _shadow(self, nic, entry) -> _MailboxShadow:
        sh = self._mail.get((nic.node_id, entry.mailbox))
        if sh is None:
            sh = self._mail[(nic.node_id, entry.mailbox)] = _MailboxShadow(
                epoch=entry.epoch, last_completed=entry.epoch - 1
            )
        return sh

    def on_place(self, nic, entry, buf, place_off: int, nbytes: int, data: bytes) -> None:
        """RvmaNic hook: *nbytes* were just placed at *place_off* of the
        active buffer and the threshold counter updated."""
        from ..nic.lut import EpochType

        self.places_checked += 1
        sh = self._shadow(nic, entry)
        mailbox, epoch = entry.mailbox, entry.epoch
        if epoch != sh.epoch:
            # New active epoch observed without a completion hook (e.g.
            # the auditor was attached mid-run): reset the accumulators.
            sh.epoch = epoch
            sh.baseline = None
            sh.last_counter = 0
            sh.placed_bytes = 0
        key = (epoch, place_off, nbytes)
        dig = _digest(data)
        prev = sh.placements.get(key)
        if prev is not None:
            if epoch < sh.replay_below:
                if prev != dig:
                    self._flag(
                        "replay-divergence", nic, mailbox, epoch,
                        f"replayed placement [{place_off}, +{nbytes}) digest {dig} "
                        f"!= original {prev}",
                    )
            else:
                self._flag(
                    "double-placement", nic, mailbox, epoch,
                    f"[{place_off}, +{nbytes}) placed twice "
                    + ("with identical bytes" if prev == dig else
                       f"with divergent bytes ({prev} then {dig})"),
                )
        else:
            sh.placements[key] = dig
        if buf.counter < sh.last_counter:
            self._flag(
                "counter-regression", nic, mailbox, epoch,
                f"threshold counter went {sh.last_counter} -> {buf.counter}",
            )
        sh.last_counter = buf.counter
        if entry.threshold_type is EpochType.EPOCH_BYTES:
            if sh.baseline is None:
                # First observed placement of this epoch: the counter
                # already includes it.  A nonzero remainder means the
                # shadow attached mid-epoch and adopts it as baseline.
                sh.baseline = buf.counter - nbytes
            sh.placed_bytes += nbytes
            if epoch >= sh.replay_below and buf.counter != sh.baseline + sh.placed_bytes:
                self._flag(
                    "byte-conservation", nic, mailbox, epoch,
                    f"counter {buf.counter} != baseline {sh.baseline} "
                    f"+ shadow byte sum {sh.placed_bytes}",
                )

    def on_epoch_complete(self, nic, entry, record) -> None:
        """RvmaNic hook: the active buffer just retired as *record*
        (``entry.epoch`` has already advanced past ``record.epoch``)."""
        self.completions_checked += 1
        sh = self._shadow(nic, entry)
        mailbox, epoch = entry.mailbox, record.epoch
        length = record.length
        dig = _digest(record.buffer.buffer.read(0, length)) if length else _digest(b"")
        recorded = sh.completions.get(epoch)
        if recorded is not None:
            if epoch >= sh.replay_below:
                self._flag(
                    "epoch-consistency", nic, mailbox, epoch,
                    "epoch completed twice outside a sanctioned replay window",
                )
            elif recorded != (length, dig):
                self._flag(
                    "replay-divergence", nic, mailbox, epoch,
                    f"re-completion produced (len {length}, {dig}), originally "
                    f"(len {recorded[0]}, {recorded[1]})",
                )
        else:
            if sh.last_completed >= 0 and epoch > sh.last_completed + 1:
                self._flag(
                    "epoch-consistency", nic, mailbox, epoch,
                    f"completion jumped {sh.last_completed} -> {epoch}",
                )
            sh.completions[epoch] = (length, dig)
        sh.last_completed = max(sh.last_completed, epoch)
        # The next epoch starts a fresh shadow accumulation.
        sh.epoch = entry.epoch
        sh.baseline = 0
        sh.last_counter = 0
        sh.placed_bytes = 0

    # ------------------------------------------------------------------ transport hook

    def on_transport_dispatch(self, node: int, peer: int, flow: int, seq: int) -> None:
        """ReliableTransport hook: message (peer, flow, seq) was handed
        to the NIC (exactly-once modulo sanctioned restore replay)."""
        self.dispatches_checked += 1
        seen = self._dispatched.setdefault((node, peer, flow), set())
        if seq in seen:
            v = Violation(
                kind="double-dispatch", node=node, mailbox=flow, epoch=-1,
                time=-1.0, detail=f"transport dispatched seq {seq} from node {peer} twice",
            )
            self.violations.append(v)
            if self.fail_fast:
                raise AuditError(v)
        seen.add(seq)

    # ------------------------------------------------------------------ restore sanction

    def note_restore(self, nic, mailbox_epochs: dict, rx_cums: dict) -> None:
        """Recovery hook: *nic*'s node restored to the given per-mailbox
        epochs; peers will replay, so re-placement/re-completion up to
        the epoch that was active at the crash is sanctioned — but must
        be byte-identical (checked against the recorded digests)."""
        for mailbox, restored_epoch in mailbox_epochs.items():
            sh = self._mail.get((nic.node_id, mailbox))
            if sh is None:
                continue
            # sh.epoch is the epoch active at crash time: it saw partial
            # placements, so replay may legally re-place through it.
            sh.replay_below = max(sh.replay_below, sh.epoch + 1)
            sh.epoch = restored_epoch
            sh.baseline = None
            sh.last_counter = 0
            sh.placed_bytes = 0
        for (peer, flow), cum in rx_cums.items():
            seen = self._dispatched.get((nic.node_id, peer, flow))
            if seen is not None:
                # Sequences beyond the restored edge may legally be
                # re-dispatched by peer replay.
                seen.difference_update({s for s in seen if s > cum})
