"""Host-side journals and periodic checkpoints of NIC-resident state.

A crash (:meth:`repro.nic.base.BaseNic.crash`) destroys everything the
NIC knows: the mailbox LUT, posted-buffer buckets, retained-epoch
records and the reliability layer's sequence state.  Host memory
survives — so recovery keeps *host-side* shadows of exactly that state:

* :class:`OpJournal` — a continuous write-ahead log of window-structure
  commands (init/post/close/catch-all).  Journaling is continuous, not
  periodic, because the LUT's *structure* must be reproducible exactly:
  a buffer posted after the last checkpoint would otherwise be
  unknowable after a crash.
* :class:`SendJournal` — a bounded log of sent messages per (dst, flow)
  keyed by reliability sequence number.  Unlike the transport's pending
  set it is *not* pruned on ACK: an acknowledged message may still need
  replay when the **receiver** crashes and rewinds its cumulative edge.
* :class:`CheckpointDaemon` — periodic lightweight snapshots of the
  mutable counters (mailbox epochs, threshold counters, received-byte
  marks, receive-flow cumulative edges).  Cheap enough to take often;
  anything past the snapshot is reconstructed by peer replay.

Restore = journal (structure) + latest checkpoint (counters) + replay
(data), performed by :class:`repro.recovery.rejoin.RecoveryManager`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..memory.buffer import PostedBuffer
from ..nic.lut import BufferMode, EpochType, RetiredBuffer


@dataclass
class SendEntry:
    """One journaled reliable send (enough to rebuild the envelope)."""

    seq: int
    size: int
    header: object  # the inner application header
    data: bytes
    mode: object


class SendJournal:
    """Bounded per-flow log of reliable sends, for rejoin replay.

    ``retain`` bounds memory per flow; when the peer's cumulative edge
    falls behind the oldest retained entry, the replay reports a
    coverage hole instead of silently resuming with a gap.
    """

    def __init__(self, retain: int = 4096) -> None:
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self.retain = retain
        self._flows: dict[tuple[int, int], deque] = {}

    def note_send(self, dst: int, flow: int, seq: int, size: int, header, data: bytes, mode) -> None:
        q = self._flows.setdefault((dst, flow), deque(maxlen=self.retain))
        q.append(SendEntry(seq=seq, size=size, header=header, data=data, mode=mode))

    def flows_for(self, dst: int) -> list[int]:
        return [flow for (d, flow) in self._flows if d == dst]

    def peers(self) -> set:
        return {d for (d, _flow) in self._flows}

    def entries_after(self, dst: int, flow: int, cum: int):
        """Journaled sends with seq > *cum*, ascending; plus the oldest
        retained seq when it exceeds ``cum + 1`` (a coverage hole)."""
        q = self._flows.get((dst, flow))
        if not q:
            return [], None
        entries = sorted((e for e in q if e.seq > cum), key=lambda e: e.seq)
        oldest = min(e.seq for e in q)
        hole = oldest if oldest > cum + 1 else None
        return entries, hole

    def next_seq_hint(self, dst: int, flow: int) -> int:
        """1 + the highest journaled seq (continue, never reuse)."""
        q = self._flows.get((dst, flow))
        return (max(e.seq for e in q) + 1) if q else 1

    def next_seqs(self) -> dict[tuple[int, int], int]:
        return {key: self.next_seq_hint(*key) for key in self._flows}


@dataclass
class PostRecord:
    """One journaled ``hw_post_buffer`` (the PostedBuffer carries the
    notification/length addresses and threshold; all host-side)."""

    posted: PostedBuffer


@dataclass
class _WindowLog:
    threshold_type: EpochType
    mode: BufferMode
    posts: list = field(default_factory=list)  # [PostRecord] in post order
    #: epoch -> (counter at retire, bytes in the epoch).  Epoch boundaries
    #: are receiver-timed (``RVMA_Win_inc_epoch`` can cut one anywhere),
    #: so replay cannot re-derive them from the put stream alone — the
    #: journal pins each completed epoch to its exact counter value.
    retires: dict = field(default_factory=dict)
    closed: bool = False
    #: attached active-mailbox handlers, in attach order (NIC-resident
    #: bindings die with the hardware; restore re-attaches them cold).
    handlers: list = field(default_factory=list)
    #: epoch -> :class:`repro.nic.active.ActiveEffect`.  Handler effects
    #: (word value, served-frame offsets) are receiver-timed like epoch
    #: boundaries, so replay re-asserts them from the journal instead of
    #: re-running handlers against rebuilt (cold) handler state.
    active_effects: dict = field(default_factory=dict)


class OpJournal:
    """Write-ahead log of window-structure commands for one node.

    Installed as ``nic.op_journal`` by the recovery agent; the NIC
    notes every successful init/post/close/catch-all.  Post order is
    load-bearing: post *i* of a window serves epoch *i*, which is what
    lets restore rebuild buckets positionally from a checkpoint epoch.
    """

    def __init__(self) -> None:
        self.windows: dict[int, _WindowLog] = {}
        self.catch_all: Optional[int] = None

    def note_init(self, mailbox: int, threshold_type: EpochType, mode: BufferMode) -> None:
        # Re-init of a closed window starts a fresh incarnation (the
        # LUT clears the old bucket; so does the journal).
        self.windows[mailbox] = _WindowLog(threshold_type=threshold_type, mode=mode)

    def note_post(self, mailbox: int, posted: PostedBuffer) -> None:
        log = self.windows.get(mailbox)
        if log is not None:
            log.posts.append(PostRecord(posted=posted))

    def note_retire(self, mailbox: int, epoch: int, counter: int, nbytes: int) -> None:
        log = self.windows.get(mailbox)
        if log is not None:
            log.retires[epoch] = (counter, nbytes)

    def note_close(self, mailbox: int) -> None:
        log = self.windows.get(mailbox)
        if log is not None:
            log.closed = True

    def note_attach(self, mailbox: int, handler) -> None:
        log = self.windows.get(mailbox)
        if log is not None:
            log.handlers.append(handler)

    def note_active_effect(self, mailbox: int, epoch: int, effect) -> None:
        log = self.windows.get(mailbox)
        if log is not None:
            log.active_effects[epoch] = effect

    def active_effect(self, mailbox: int, epoch: int):
        """The journaled handler effect of (*mailbox*, *epoch*), or None
        when that epoch has not completed before — the NIC's replay
        discriminator: a hit means re-assert, a miss means fresh run."""
        log = self.windows.get(mailbox)
        return log.active_effects.get(epoch) if log is not None else None

    def note_catch_all(self, mailbox: int) -> None:
        self.catch_all = mailbox


@dataclass
class BufferSnapshot:
    """Mutable counters of the active buffer at checkpoint time."""

    post_index: int  # position in the OpJournal's post order (== epoch)
    counter: int
    bytes_received: int


@dataclass
class MailboxSnapshot:
    """One mailbox's mutable state at checkpoint time."""

    mailbox: int
    epoch: int
    closed: bool
    active: Optional[BufferSnapshot]
    #: retained completed-epoch records (rewind history survives).
    retired: tuple = ()


@dataclass
class NodeCheckpoint:
    """A lightweight snapshot of one node's NIC-resident state."""

    node_id: int
    time: float
    seq: int
    mailboxes: dict[int, MailboxSnapshot] = field(default_factory=dict)
    #: receive-flow cumulative edges: (peer, flow) -> cum.
    rx_cums: dict = field(default_factory=dict)


class CheckpointDaemon:
    """Periodically snapshots a node's NIC state into host memory.

    The tick loop is bounded by ``horizon_ns`` so the simulator's event
    heap still drains (the engine runs to exhaustion); the horizon
    should comfortably exceed the workload's runtime.
    """

    def __init__(self, node, interval_ns: float, horizon_ns: float) -> None:
        if interval_ns <= 0:
            raise ValueError("checkpoint interval must be > 0")
        self.node = node
        self.sim = node.sim
        self.interval_ns = interval_ns
        self.horizon_ns = horizon_ns
        self.latest: Optional[NodeCheckpoint] = None
        self.taken = 0
        self._seq = 0
        self._started = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.schedule(self.interval_ns, self._tick)

    def _tick(self) -> None:
        if not self.node.nic.failed:
            self.take()
        if self.sim.now + self.interval_ns <= self.horizon_ns:
            self.sim.schedule(self.interval_ns, self._tick)

    def take(self) -> Optional[NodeCheckpoint]:
        """Snapshot now (no-op while crashed; stale state is the point
        of checkpoints, but a dead NIC has nothing to read).

        Also a no-op while the NIC is mid-placement: the transport
        advances a flow's cumulative edge at dispatch time, but the DMA
        store lands a PCIe traversal later.  A snapshot taken in that
        gap would pair an advanced edge with a counter that has not
        seen the bytes — restore would then tell the peer "received"
        about data the LUT lost.  Skipping the tick is safe; the next
        quiescent instant produces a consistent pair.
        """
        nic = self.node.nic
        if nic.failed:
            return None
        if not nic.pipeline_quiescent():
            nic.stat("checkpoints_deferred").add()
            return None
        if nic.transport is not None and not nic.transport.quiescent_rx():
            nic.stat("checkpoints_deferred").add()
            return None
        self._seq += 1
        ckpt = NodeCheckpoint(node_id=self.node.node_id, time=self.sim.now, seq=self._seq)
        lut = getattr(nic, "lut", None)
        if lut is not None:
            for mailbox, entry in lut.entries.items():
                active = None
                buf = entry.active
                if buf is not None:
                    active = BufferSnapshot(
                        post_index=entry.epoch,
                        counter=buf.counter,
                        bytes_received=buf.bytes_received,
                    )
                ckpt.mailboxes[mailbox] = MailboxSnapshot(
                    mailbox=mailbox,
                    epoch=entry.epoch,
                    closed=entry.closed,
                    active=active,
                    retired=tuple(entry.retired),
                )
        if nic.transport is not None:
            ckpt.rx_cums = dict(nic.transport.rx_cums())
        self.latest = ckpt
        self.taken += 1
        nic.stat("checkpoints_taken").add()
        self.sim.stats.summary("recovery.checkpoint_mailboxes").add(len(ckpt.mailboxes))
        return ckpt
