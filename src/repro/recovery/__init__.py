"""Crash-restart recovery: checkpoints, rejoin protocol, invariant audit.

Three pieces, composable but independent:

* :mod:`repro.recovery.checkpoint` — host-side journals (window
  structure, reliable sends) and periodic NIC-state snapshots;
* :mod:`repro.recovery.rejoin` — the restore + rejoin + replay protocol
  that brings a crash-stopped node back into a consistent cluster;
* :mod:`repro.recovery.auditor` — an opt-in runtime shadow checker for
  the placement/recovery invariants (byte conservation, no double
  placement, monotone counters, epoch consistency).
"""

from .auditor import AuditError, InvariantAuditor, Violation
from .checkpoint import (
    CheckpointDaemon,
    NodeCheckpoint,
    OpJournal,
    SendJournal,
)
from .rejoin import (
    RecoveryAgent,
    RecoveryConfig,
    RecoveryManager,
    RecoveryReport,
    RejoinRecord,
)

__all__ = [
    "AuditError",
    "CheckpointDaemon",
    "InvariantAuditor",
    "NodeCheckpoint",
    "OpJournal",
    "RecoveryAgent",
    "RecoveryConfig",
    "RecoveryManager",
    "RecoveryReport",
    "RejoinRecord",
    "SendJournal",
    "Violation",
]
