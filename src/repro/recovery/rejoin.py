"""Crash-restart rejoin protocol: restore, handshake, replay.

The recovery stack for one cluster is a :class:`RecoveryManager` — one
:class:`RecoveryAgent` per node, armed on a
:class:`~repro.faults.injectors.FaultInjector` so crash/restart events
drive it.  While healthy, each agent journals window-structure commands
(:class:`~repro.recovery.checkpoint.OpJournal`), journals reliable sends
(:class:`~repro.recovery.checkpoint.SendJournal`) and takes periodic
:class:`~repro.recovery.checkpoint.CheckpointDaemon` snapshots.  After a
crash-restart the agent:

1. **restores** the mailbox LUT structurally from the op journal and
   positionally from the newest checkpoint — post *i* of a window serves
   epoch *i*, so posts before the checkpointed epoch are represented by
   the checkpointed retired ring, the post *at* it becomes the active
   buffer with the checkpointed counter, and later posts re-queue reset;
2. **reinstates** receive flows at the checkpointed cumulative sequence
   edges and sanctions the auditor's replay window;
3. **rejoins** every peer with a :class:`~repro.nic.headers.RejoinHello`
   carrying the restored edges; the peer un-suspects the node, replays
   its send journal beyond each edge (original sequence numbers, so
   dedup state stays valid) and answers with a
   :class:`~repro.nic.headers.RejoinReply` carrying *its* receive edges;
4. **replays** its own journal beyond the peer's edges, so traffic the
   crashed node sent pre-crash but the peer never received is also
   recovered.

Epochs the node had completed after its last checkpoint are rebuilt by
the peers' replay re-driving placement — byte-identical, which the
:class:`~repro.recovery.auditor.InvariantAuditor` verifies.  Journal
coverage holes (a bounded send journal evicted a needed entry) are
reported in the :class:`RecoveryReport`, never silently ignored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cluster.builder import Cluster
from ..faults.injectors import FaultInjector
from ..network.message import Delivery
from ..nic.headers import RejoinHello, RejoinReply
from .checkpoint import CheckpointDaemon, NodeCheckpoint, OpJournal, SendJournal


@dataclass
class RecoveryConfig:
    """Knobs of the checkpoint/rejoin machinery."""

    #: Checkpoint period (ns).  Cheap (counters only), so frequent.
    checkpoint_interval_ns: float = 10_000.0
    #: Last instant the checkpoint daemons tick (bounds the event heap
    #: so a run still terminates; set >= the workload's horizon).
    horizon_ns: float = 400_000.0
    #: Send-journal retention per (dst, flow) — replay coverage bound.
    journal_retain: int = 4096


@dataclass
class RejoinRecord:
    """One observed rejoin (restarted node's point of view)."""

    node: int
    incarnation: int
    time: float
    peers_greeted: int
    mailboxes_restored: int
    checkpoint_age_ns: Optional[float]  # None: rejoined with no checkpoint


@dataclass
class RecoveryReport:
    """What the recovery stack actually did (audit/test surface)."""

    rejoins: list[RejoinRecord] = field(default_factory=list)
    #: (peer_node, restarted_node, time) per hello serviced.
    hellos_serviced: list[tuple[int, int, float]] = field(default_factory=list)
    #: (restarted_node, peer_node, time) per reply consumed.
    replies_consumed: list[tuple[int, int, float]] = field(default_factory=list)
    #: send-journal coverage holes encountered during replay.
    replay_holes: list[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Every rejoin had full replay coverage and both handshake
        directions ran at least once per rejoin."""
        return not self.replay_holes and all(
            r.peers_greeted == 0 or any(h[1] == r.node for h in self.hellos_serviced)
            for r in self.rejoins
        )

    def describe(self) -> list[str]:
        lines = []
        for r in self.rejoins:
            age = "no checkpoint" if r.checkpoint_age_ns is None else f"ckpt {r.checkpoint_age_ns:.0f}ns old"
            lines.append(
                f"node {r.node} rejoined at {r.time:.0f}ns (incarnation {r.incarnation}, "
                f"{r.mailboxes_restored} mailboxes, {r.peers_greeted} peers, {age})"
            )
        lines.append(f"hellos serviced: {len(self.hellos_serviced)}")
        lines.append(f"replies consumed: {len(self.replies_consumed)}")
        for hole in self.replay_holes:
            lines.append(f"replay hole: {hole}")
        return lines


class RecoveryAgent:
    """Per-node recovery logic: journals, checkpoints, rejoin handshake."""

    def __init__(self, node, cfg: RecoveryConfig, report: RecoveryReport) -> None:
        self.node = node
        self.cfg = cfg
        self.report = report
        self.op_journal = OpJournal()
        self.send_journal = SendJournal(retain=cfg.journal_retain)
        self.daemon = CheckpointDaemon(
            node, cfg.checkpoint_interval_ns, cfg.horizon_ns
        )
        #: open observability span covering crash -> rejoin, if tracing.
        self._crash_span = None

    # ------------------------------------------------------------------ arming

    def install(self) -> None:
        """Hook the journals into the NIC/transport and start snapshots."""
        nic = self.node.nic
        nic.op_journal = self.op_journal
        if nic.transport is not None:
            nic.transport.journal = self.send_journal
        nic.register_handler(RejoinHello, self._on_hello)
        nic.register_handler(RejoinReply, self._on_reply)
        self.daemon.start()

    def on_crash(self) -> None:
        """The NIC just crash-stopped and swapped in a fresh transport.

        Re-hook the (surviving, host-side) send journal and seed the new
        transport's sequence spaces past everything journaled, so sends
        issued while the node is down continue the old numbering —
        receivers dedup by sequence number, so reuse would silently
        swallow them.
        """
        nic = self.node.nic
        spans = self.node.sim.spans
        if spans.active and spans.wants("recovery"):
            self._crash_span = spans.begin(
                "recovery",
                "crash_restart",
                node=self.node.node_id,
                incarnation=nic.incarnation,
            )
        if nic.transport is None:
            return
        nic.transport.journal = self.send_journal
        for (dst, flow), next_seq in self.send_journal.next_seqs().items():
            nic.transport.seed_tx_flow(dst, flow, next_seq)

    # ------------------------------------------------------------------ restart

    def on_restart(self) -> None:
        """Restore NIC state from host-side shadows, then rejoin peers."""
        nic = self.node.nic
        ckpt = self.daemon.latest
        restored = self._restore_lut(ckpt)
        rx_cums: dict = dict(ckpt.rx_cums) if ckpt is not None else {}
        if nic.transport is not None:
            for (peer, flow), cum in rx_cums.items():
                nic.transport.restore_rx_flow(peer, flow, cum)
        if nic.auditor is not None:
            nic.auditor.note_restore(nic, restored, rx_cums)
        self._drain_satisfied_boundaries(restored)
        peers = {p for (p, _flow) in rx_cums} | self.send_journal.peers()
        peers.discard(self.node.node_id)
        epochs = tuple(sorted(restored.items()))
        for peer in sorted(peers):
            cums = tuple(
                sorted(
                    (flow, cum)
                    for (p, flow), cum in rx_cums.items()
                    if p == peer
                )
            )
            nic.send_control(
                peer,
                RejoinHello(
                    node=self.node.node_id,
                    incarnation=nic.incarnation,
                    rx_cums=cums,
                    epochs=epochs,
                ),
            )
        nic.stat("rejoins_initiated").add()
        if ckpt is not None:
            self.node.sim.stats.summary("recovery.checkpoint_age_ns").add(
                self.node.sim.now - ckpt.time
            )
        sim = self.node.sim
        sim.spans.end(
            self._crash_span,
            peers_greeted=len(peers),
            mailboxes_restored=len(restored),
        )
        self._crash_span = None
        self.report.rejoins.append(
            RejoinRecord(
                node=self.node.node_id,
                incarnation=nic.incarnation,
                time=self.node.sim.now,
                peers_greeted=len(peers),
                mailboxes_restored=len(restored),
                checkpoint_age_ns=(
                    None if ckpt is None else self.node.sim.now - ckpt.time
                ),
            )
        )

    def _restore_lut(self, ckpt: Optional[NodeCheckpoint]) -> dict:
        """Rebuild the mailbox LUT from op journal + checkpoint.

        Returns {mailbox: restored_epoch}.  The journal gives the window
        *structure* (posts in order — post *i* serves epoch *i*); the
        checkpoint gives the *position* (epoch, active counter, retired
        ring).  Without a checkpoint everything restores to epoch 0 and
        peer replay re-drives the whole history.
        """
        nic = self.node.nic
        lut = getattr(nic, "lut", None)
        restored: dict = {}
        if lut is None:
            return restored
        for mailbox, log in self.op_journal.windows.items():
            snap = ckpt.mailboxes.get(mailbox) if ckpt is not None else None
            entry = lut.init_entry(mailbox, log.threshold_type, log.mode)
            epoch = snap.epoch if snap is not None else 0
            entry.epoch = epoch
            if snap is not None:
                entry.retired.extend(snap.retired)
            for i, post in enumerate(log.posts):
                if i < epoch:
                    continue  # completed pre-checkpoint; lives in the retired ring
                pb = post.posted
                pb.completed = False
                if snap is not None and snap.active is not None and i == epoch:
                    pb.counter = snap.active.counter
                    pb.bytes_received = snap.active.bytes_received
                else:
                    pb.counter = 0
                    pb.bytes_received = 0
                # Epochs the first run completed after this checkpoint
                # must re-complete at the *same* boundary during replay —
                # the journal pinned each one's counter at retire time
                # (flush can cut an epoch anywhere, even at zero bytes,
                # and the put stream alone cannot reproduce that).
                retire = log.retires.get(i)
                pb.replay_boundary = retire is not None
                if retire is not None:
                    pb.threshold = retire[0]
                lut.post(entry, pb)
            entry.closed = log.closed
            if log.handlers:
                # Re-attach active-mailbox handlers cold (the bindings
                # were NIC SRAM); the word rebuilds from journaled
                # effects and replayed epochs re-assert their own.
                # Must precede _drain_satisfied_boundaries: those
                # re-completions consult the registry.
                reg = nic._active_registry()
                for handler in log.handlers:
                    reg.restore(mailbox, handler, log)
            restored[mailbox] = epoch
        if self.op_journal.catch_all is not None:
            entry = lut.entries.get(self.op_journal.catch_all)
            if entry is not None:
                lut.set_catch_all(entry)
        nic.stat("mailboxes_restored").add(len(restored))
        return restored

    def _drain_satisfied_boundaries(self, restored: dict) -> None:
        """Retire restored epochs whose journaled boundary is already met.

        A post-checkpoint flush that took no further bytes leaves its
        epoch satisfied at restore time (counter == pinned threshold,
        possibly both zero); it must retire now so replay numbering
        lines up.  Runs *after* the auditor's restore sanction is
        installed — these completions are part of the sanctioned replay.
        """
        nic = self.node.nic
        lut = getattr(nic, "lut", None)
        if lut is None:
            return
        for mailbox in restored:
            entry = lut.entries.get(mailbox)
            if entry is None:
                continue
            active = entry.active
            if (
                active is not None
                and getattr(active, "replay_boundary", False)
                and active.counter >= active.threshold
            ):
                nic._complete_active(entry)  # cascades through successors

    # ------------------------------------------------------------------ handshake

    def _on_hello(self, delivery: Delivery) -> None:
        """A restarted peer announced its restored receive edges."""
        hdr: RejoinHello = delivery.message.header
        nic = self.node.nic
        if nic.detector is not None:
            nic.detector.reinstate(hdr.node)
        self.report.hellos_serviced.append(
            (self.node.node_id, hdr.node, self.node.sim.now)
        )
        nic.stat("rejoin_hellos_serviced").add()
        if nic.transport is None:
            return
        holes = nic.transport.replay_flows(
            hdr.node, dict(hdr.rx_cums), self.send_journal
        )
        self.report.replay_holes.extend(holes)
        my_cums = tuple(
            sorted(
                (flow, cum)
                for (_peer, flow), cum in nic.transport.rx_cums(peer=hdr.node).items()
            )
        )
        nic.send_control(
            hdr.node,
            RejoinReply(
                node=self.node.node_id,
                incarnation=nic.incarnation,
                rx_cums=my_cums,
            ),
        )

    def _on_reply(self, delivery: Delivery) -> None:
        """A peer reported what it holds from us; replay the rest."""
        hdr: RejoinReply = delivery.message.header
        nic = self.node.nic
        self.report.replies_consumed.append(
            (self.node.node_id, hdr.node, self.node.sim.now)
        )
        if nic.transport is None:
            return
        holes = nic.transport.replay_flows(
            hdr.node, dict(hdr.rx_cums), self.send_journal
        )
        self.report.replay_holes.extend(holes)


class RecoveryManager:
    """Cluster-wide recovery stack: one agent per node.

    Usage::

        manager = RecoveryManager(cluster, RecoveryConfig(...)).start()
        manager.arm(injector)   # crash/restart events now drive recovery
        ...
        assert manager.report.complete
    """

    def __init__(self, cluster: Cluster, config: Optional[RecoveryConfig] = None) -> None:
        self.cluster = cluster
        self.cfg = config or RecoveryConfig()
        self.report = RecoveryReport()
        self.agents = {
            node.node_id: RecoveryAgent(node, self.cfg, self.report)
            for node in cluster.nodes
        }

    def start(self) -> "RecoveryManager":
        """Install journals/handlers and start the checkpoint daemons."""
        for agent in self.agents.values():
            agent.install()
        return self

    def arm(self, injector: FaultInjector) -> "RecoveryManager":
        """Drive recovery from the injector's crash/restart events."""
        injector.on_crash.append(self._node_crashed)
        injector.on_restart.append(self._node_restarted)
        return self

    def agent(self, node_id: int) -> RecoveryAgent:
        return self.agents[node_id]

    def checkpoint_now(self) -> None:
        """Force an immediate snapshot on every healthy node (tests)."""
        for agent in self.agents.values():
            agent.daemon.take()

    def _node_crashed(self, node_id: int) -> None:
        self.agents[node_id].on_crash()

    def _node_restarted(self, node_id: int) -> None:
        self.agents[node_id].on_restart()
