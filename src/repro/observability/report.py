"""Run reports: one JSON/markdown artifact answering "what did this run do?".

A :class:`RunReport` snapshots the federated metrics (grouped
hierarchically), the span rollup (per-category counts and durations,
plus the top-N hottest spans by sim-time and wall-time), and arbitrary
run metadata.  The chaos and experiment harnesses build one per run and
the CLI writes it out via ``--metrics-out``.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.observability.metrics import MetricsRegistry, lookup
from repro.observability.spans import SpanTracer


class RunReport:
    """Immutable-ish snapshot of one run's observable state."""

    def __init__(
        self,
        metrics: dict[str, dict[str, Any]],
        span_summary: dict[str, dict],
        span_categories: list[str],
        hottest_sim: list[dict],
        hottest_wall: list[dict],
        meta: Optional[dict] = None,
    ) -> None:
        self.metrics = metrics
        self.span_summary = span_summary
        self.span_categories = span_categories
        self.hottest_sim = hottest_sim
        self.hottest_wall = hottest_wall
        self.meta = dict(meta or {})

    # -- construction -----------------------------------------------------

    @classmethod
    def collect(
        cls,
        target: Any,
        meta: Optional[dict] = None,
        top_n: int = 10,
    ) -> "RunReport":
        """Snapshot *target* (a Simulator or anything with ``.sim``)."""
        sim = getattr(target, "sim", target)
        registry = MetricsRegistry.collect(sim)
        spans: Optional[SpanTracer] = getattr(sim, "spans", None)
        if spans is not None:
            span_summary = spans.summary()
            categories = spans.categories()
            hot_sim = [s.to_dict() for s in spans.top_by_sim_time(top_n)]
            hot_wall = [s.to_dict() for s in spans.top_by_wall_time(top_n)]
        else:
            span_summary, categories, hot_sim, hot_wall = {}, [], [], []
        return cls(
            metrics=registry.snapshot(),
            span_summary=span_summary,
            span_categories=categories,
            hottest_sim=hot_sim,
            hottest_wall=hot_wall,
            meta=meta,
        )

    @classmethod
    def merge(cls, reports: list["RunReport"], meta: Optional[dict] = None) -> "RunReport":
        """Combine reports from several runs (e.g. a chaos sweep's cells).

        Counters sum; summary stat-dicts recombine by weighted mean and
        min/max envelope (stddev is dropped — it cannot be recovered
        from the flattened form); histogram dicts with identical binning
        sum element-wise.  Span rollups sum; hottest lists interleave
        and re-truncate.
        """
        merged_metrics: dict[str, dict[str, Any]] = {}
        for rep in reports:
            for group, values in rep.metrics.items():
                out = merged_metrics.setdefault(group, {})
                for name, value in values.items():
                    if name not in out:
                        out[name] = _copy_value(value)
                    else:
                        out[name] = _combine_value(out[name], value)
        span_summary: dict[str, dict] = {}
        for rep in reports:
            for cat, row in rep.span_summary.items():
                agg = span_summary.setdefault(
                    cat, {"count": 0, "open": 0, "sim_ns": 0.0, "wall_s": 0.0}
                )
                for k in agg:
                    agg[k] += row.get(k, 0)
        categories = sorted({c for rep in reports for c in rep.span_categories})
        top_n = max((len(rep.hottest_sim) for rep in reports), default=0)
        hot_sim = sorted(
            (s for rep in reports for s in rep.hottest_sim),
            key=lambda s: s.get("sim_time", 0.0),
            reverse=True,
        )[:top_n]
        hot_wall = sorted(
            (s for rep in reports for s in rep.hottest_wall),
            key=lambda s: s.get("wall_time", 0.0),
            reverse=True,
        )[:top_n]
        merged_meta = dict(meta or {})
        merged_meta.setdefault("merged_runs", len(reports))
        return cls(merged_metrics, span_summary, categories, hot_sim, hot_wall, merged_meta)

    # -- queries ----------------------------------------------------------

    def metric_names(self) -> list[str]:
        return sorted(n for values in self.metrics.values() for n in values)

    def groups(self) -> list[str]:
        return sorted(self.metrics)

    def undocumented(self) -> list[str]:
        """Report metrics the CATALOG does not declare (should be empty)."""
        return [n for n in self.metric_names() if lookup(n) is None]

    # -- export -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "meta": dict(self.meta),
            "metrics": self.metrics,
            "spans": {
                "categories": list(self.span_categories),
                "summary": self.span_summary,
                "hottest_by_sim_time": self.hottest_sim,
                "hottest_by_wall_time": self.hottest_wall,
            },
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> str:
        """Write JSON to *path* (and markdown next to it for ``.json`` paths)."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")
        return path

    def to_markdown(self) -> str:
        """Human-readable report: metadata, metric tables, span rollup."""
        lines: list[str] = ["# Run report", ""]
        if self.meta:
            lines.append("## Metadata")
            lines.append("")
            for k in sorted(self.meta):
                lines.append(f"- **{k}**: {self.meta[k]}")
            lines.append("")
        lines.append("## Metrics")
        for group in sorted(self.metrics):
            lines.append("")
            lines.append(f"### {group}")
            lines.append("")
            lines.append("| metric | value | unit |")
            lines.append("|---|---|---|")
            for name in sorted(self.metrics[group]):
                value = self.metrics[group][name]
                spec = lookup(name)
                unit = spec.unit if spec else "?"
                lines.append(f"| `{name}` | {_render_value(value)} | {unit} |")
        if self.span_summary:
            lines.append("")
            lines.append("## Spans")
            lines.append("")
            lines.append("| category | spans | open | total sim ns | total wall s |")
            lines.append("|---|---|---|---|---|")
            for cat in sorted(self.span_summary):
                row = self.span_summary[cat]
                lines.append(
                    f"| `{cat}` | {row['count']} | {row['open']} "
                    f"| {row['sim_ns']:.0f} | {row['wall_s']:.6f} |"
                )
            if self.hottest_sim:
                lines.append("")
                lines.append("### Hottest spans by sim-time")
                lines.append("")
                lines.append("| category | name | sim ns | wall s |")
                lines.append("|---|---|---|---|")
                for s in self.hottest_sim:
                    lines.append(
                        f"| `{s['category']}` | {s['name']} "
                        f"| {s['sim_time']:.0f} | {s['wall_time']:.6f} |"
                    )
            if self.hottest_wall:
                lines.append("")
                lines.append("### Hottest spans by wall-time")
                lines.append("")
                lines.append("| category | name | sim ns | wall s |")
                lines.append("|---|---|---|---|")
                for s in self.hottest_wall:
                    lines.append(
                        f"| `{s['category']}` | {s['name']} "
                        f"| {s['sim_time']:.0f} | {s['wall_time']:.6f} |"
                    )
        lines.append("")
        return "\n".join(lines)


def _copy_value(value: Any) -> Any:
    if isinstance(value, dict):
        out = dict(value)
        if "bins" in out:
            out["bins"] = list(out["bins"])
        return out
    return value


def _combine_value(a: Any, b: Any) -> Any:
    """Merge two flattened metric values of the same canonical name."""
    if isinstance(a, dict) and isinstance(b, dict):
        if "bins" in a and "bins" in b:  # histogram dicts
            if (a["lo"], a["hi"], a["nbins"]) != (b["lo"], b["hi"], b["nbins"]):
                raise ValueError("cannot merge histograms with different binning")
            return {
                **a,
                "count": a["count"] + b["count"],
                "underflow": a["underflow"] + b["underflow"],
                "overflow": a["overflow"] + b["overflow"],
                "bins": [x + y for x, y in zip(a["bins"], b["bins"])],
            }
        # summary dicts: weighted mean, envelope min/max, drop stddev
        n = a["n"] + b["n"]
        if n == 0:
            return dict(a)
        if a["n"] == 0:
            return dict(b)
        if b["n"] == 0:
            return dict(a)
        return {
            "n": n,
            "mean": (a["mean"] * a["n"] + b["mean"] * b["n"]) / n,
            "min": min(a["min"], b["min"]),
            "max": max(a["max"], b["max"]),
            "stddev": 0.0,
            "total": a["total"] + b["total"],
        }
    return a + b


def _render_value(value: Any) -> str:
    if isinstance(value, dict):
        if "bins" in value:
            return f"n={value['count']} over [{value['lo']:.0f}, {value['hi']:.0f}) ×{value['nbins']}"
        return (
            f"n={value['n']} mean={value['mean']:.2f} "
            f"min={value['min']:.2f} max={value['max']:.2f}"
        )
    return str(value)
