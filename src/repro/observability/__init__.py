"""Unified observability: hierarchical metrics, span tracing, run reports.

Three pieces, one instrumentation surface:

- :class:`MetricsRegistry` federates the flat per-component
  :mod:`repro.sim.stats` primitives under canonical hierarchical names
  (``nic.rvma.bytes_placed``, ``transport.retransmits``,
  ``recovery.replayed_msgs``), every one documented in
  :data:`~repro.observability.metrics.CATALOG`.
- :class:`SpanTracer` records sim-time/wall-time intervals with parent
  links and per-category enable flags, layered over the flat
  :class:`~repro.sim.trace.Tracer`.  Every :class:`~repro.sim.engine.Simulator`
  owns one at ``sim.spans``.
- :class:`RunReport` snapshots both into a JSON + markdown artifact,
  with top-N hottest-span profiling hooks.
"""

from repro.observability.metrics import CATALOG, MetricSpec, MetricsRegistry, canonical_name, lookup
from repro.observability.report import RunReport
from repro.observability.spans import Span, SpanTracer

__all__ = [
    "CATALOG",
    "MetricSpec",
    "MetricsRegistry",
    "RunReport",
    "Span",
    "SpanTracer",
    "canonical_name",
    "lookup",
]
