"""Span-style tracing layered on the flat :mod:`repro.sim.trace`.

A span is an interval with simulated start/end times (and wall-clock
times for profiling), a category, optional parent link, and free-form
fields.  The flat :class:`~repro.sim.trace.Tracer` records *instants*;
spans record *durations*, which is what profiling and report generation
need ("where did the sim-time go: NIC pipeline, transport, or fabric?").

This module deliberately imports nothing from the rest of ``repro`` —
the engine imports it, so any upward import would be a cycle.  Clocks
and the optional mirror tracer are passed in duck-typed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional


class Span:
    """One traced interval.

    ``start``/``end`` are simulated nanoseconds; ``wall_start``/
    ``wall_end`` are host-process seconds (``time.perf_counter``) so the
    profiling hooks can attribute *wall* cost as well as *sim* cost.
    ``end`` is ``None`` while the span is open.
    """

    __slots__ = (
        "id",
        "category",
        "name",
        "start",
        "end",
        "wall_start",
        "wall_end",
        "parent_id",
        "fields",
    )

    def __init__(
        self,
        id: int,
        category: str,
        name: str,
        start: float,
        wall_start: float,
        parent_id: Optional[int] = None,
        fields: Optional[dict] = None,
    ) -> None:
        self.id = id
        self.category = category
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.wall_start = wall_start
        self.wall_end: Optional[float] = None
        self.parent_id = parent_id
        self.fields: dict = fields or {}

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def sim_time(self) -> float:
        """Simulated duration in ns (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def wall_time(self) -> float:
        """Wall-clock duration in seconds (0.0 while still open)."""
        return (self.wall_end - self.wall_start) if self.wall_end is not None else 0.0

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "category": self.category,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "sim_time": self.sim_time,
            "wall_time": self.wall_time,
            "parent_id": self.parent_id,
            "fields": dict(self.fields),
        }

    def __repr__(self) -> str:  # pragma: no cover
        state = f"end={self.end}" if self.end is not None else "open"
        return f"Span({self.category}/{self.name} start={self.start} {state})"


class SpanTracer:
    """Collects :class:`Span` intervals with per-category enable flags.

    Disabled (the default) the hot-path guard is a single attribute
    check (``spans.active``), so instrumented components cost nearly
    nothing in benchmark runs.  ``enable()`` with no arguments turns on
    every category; ``enable("transport", "recovery")`` turns on just
    those.  When a mirror :class:`~repro.sim.trace.Tracer` is attached
    and enabled, span begin/end also land there as flat entries under
    ``span.<category>`` so existing trace tooling sees them.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        tracer: Any = None,
        wall_clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._clock = clock
        self._wall_clock = wall_clock
        self._tracer = tracer
        self.active = False
        self._categories: Optional[set[str]] = None  # None => all when active
        self._spans: list[Span] = []
        self._next_id = 1
        self._stack: list[Span] = []  # context-manager nesting only

    # -- enablement -------------------------------------------------------

    def enable(self, *categories: str) -> None:
        """Start recording.  No arguments enables every category."""
        self.active = True
        if categories:
            if self._categories is None:
                self._categories = set()
            self._categories.update(categories)
        else:
            self._categories = None

    def disable(self) -> None:
        """Stop recording (already-collected spans are kept)."""
        self.active = False

    def wants(self, category: str) -> bool:
        """Cheap guard for instrumentation sites: record this category?"""
        if not self.active:
            return False
        return self._categories is None or category in self._categories

    def categories(self) -> list[str]:
        """Sorted distinct categories seen so far."""
        return sorted({s.category for s in self._spans})

    # -- recording --------------------------------------------------------

    def begin(
        self,
        category: str,
        name: str,
        parent: Optional[Span] = None,
        **fields: Any,
    ) -> Optional[Span]:
        """Open a span; returns ``None`` when the category is disabled.

        Instrumentation sites hold the returned handle and pass it back
        to :meth:`end` — ``end(None)`` is a no-op, so call sites need no
        enablement check of their own.
        """
        if not self.wants(category):
            return None
        sp = Span(
            self._next_id,
            category,
            name,
            self._clock(),
            self._wall_clock(),
            parent_id=parent.id if parent is not None else None,
            fields=fields,
        )
        self._next_id += 1
        self._spans.append(sp)
        if self._tracer is not None:
            self._tracer.record(f"span.{category}", f"begin {name}", **fields)
        return sp

    def end(self, span: Optional[Span], **fields: Any) -> None:
        """Close *span* (no-op for ``None`` or an already-closed span)."""
        if span is None or span.end is not None:
            return
        span.end = self._clock()
        span.wall_end = self._wall_clock()
        if fields:
            span.fields.update(fields)
        if self._tracer is not None:
            self._tracer.record(
                f"span.{span.category}",
                f"end {span.name}",
                sim_time=span.sim_time,
                **fields,
            )

    @contextmanager
    def span(self, category: str, name: str, **fields: Any) -> Iterator[Optional[Span]]:
        """Context manager form; nested uses are parented automatically."""
        parent = self._stack[-1] if self._stack else None
        sp = self.begin(category, name, parent=parent, **fields)
        if sp is not None:
            self._stack.append(sp)
        try:
            yield sp
        finally:
            if sp is not None:
                self._stack.pop()
                self.end(sp)

    def clear(self) -> None:
        self._spans = []
        self._stack = []

    # -- queries ----------------------------------------------------------

    def spans(self, category: str = "") -> list[Span]:
        """Spans whose category starts with *category* ("" = all)."""
        return [s for s in self._spans if s.category.startswith(category)]

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def top_by_sim_time(self, n: int = 10) -> list[Span]:
        """N hottest *closed* spans by simulated duration."""
        done = [s for s in self._spans if s.end is not None]
        return sorted(done, key=lambda s: s.sim_time, reverse=True)[:n]

    def top_by_wall_time(self, n: int = 10) -> list[Span]:
        """N hottest *closed* spans by host wall-clock duration."""
        done = [s for s in self._spans if s.wall_end is not None]
        return sorted(done, key=lambda s: s.wall_time, reverse=True)[:n]

    def summary(self) -> dict[str, dict]:
        """Per-category rollup: span count, total sim ns, total wall s."""
        out: dict[str, dict] = {}
        for s in self._spans:
            row = out.setdefault(
                s.category, {"count": 0, "open": 0, "sim_ns": 0.0, "wall_s": 0.0}
            )
            row["count"] += 1
            if s.end is None:
                row["open"] += 1
            else:
                row["sim_ns"] += s.sim_time
                row["wall_s"] += s.wall_time
        return out

    def to_chrome_trace(self) -> list[dict]:
        """Closed spans as Chrome Trace Event Format complete ("X") events.

        Open spans are emitted as instants so they remain visible.
        Timestamps convert from simulated ns to the format's us.
        """
        events: list[dict] = []
        for s in self._spans:
            base = {
                "name": s.name,
                "ts": s.start / 1000.0,
                "pid": 0,
                "tid": s.category,
                "args": dict(s.fields),
            }
            if s.end is not None:
                base["ph"] = "X"
                base["dur"] = s.sim_time / 1000.0
            else:
                base["ph"] = "i"
                base["s"] = "t"
            events.append(base)
        return events
