"""Hierarchical metrics federation over :mod:`repro.sim.stats`.

Components keep updating the flat per-component counters they always
have (``rvma0.bytes_placed``, ``rdma1.rnr_drops``, ``ep0.rel_tx`` …).
This module is the read side: :class:`MetricsRegistry` sweeps a
simulator's :class:`~repro.sim.stats.StatsRegistry`, maps every flat
name onto one *canonical hierarchical* name (``nic.rvma.bytes_placed``,
``transport.retransmits``, ``recovery.replayed_msgs``), and aggregates
across components — counters sum, summaries merge via Chan's combine,
histograms merge bin-wise.

Every canonical name is declared in :data:`CATALOG` with a unit and a
one-line meaning; ``docs/OBSERVABILITY.md`` is generated from and
checked against it, so a metric cannot appear in a report undocumented.

Imports only :mod:`repro.sim.stats` — never nic/network/cluster — to
stay cycle-free (the engine imports this package's sibling ``spans``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.sim.stats import Histogram, Summary


@dataclass(frozen=True)
class MetricSpec:
    """Catalog entry: canonical name, primitive kind, unit, meaning."""

    name: str
    kind: str  # "counter" | "summary" | "histogram"
    unit: str
    description: str


def _c(name: str, unit: str, description: str) -> MetricSpec:
    return MetricSpec(name, "counter", unit, description)


def _s(name: str, unit: str, description: str) -> MetricSpec:
    return MetricSpec(name, "summary", unit, description)


def _h(name: str, unit: str, description: str) -> MetricSpec:
    return MetricSpec(name, "histogram", unit, description)


#: Every canonical metric the observability layer can emit.  Names
#: ending in ``*`` are prefix patterns (open-ended families such as
#: per-window fault drop counters).
CATALOG: dict[str, MetricSpec] = {
    spec.name: spec
    for spec in [
        # --- nic.rvma: the RVMA receive pipeline --------------------------
        _c("nic.rvma.bytes_placed", "bytes", "Payload bytes written into mailbox buffers by the RVMA placement pipeline."),
        _c("nic.rvma.epochs_completed", "epochs", "Buffer epochs retired after reaching their completion threshold."),
        _c("nic.rvma.buffers_posted", "buffers", "Virtual buffers posted into mailboxes (including managed-mode reposts)."),
        _c("nic.rvma.puts_discarded", "ops", "Inbound puts dropped at the NIC (closed window, missing mailbox, bounds)."),
        _c("nic.rvma.puts_lost", "ops", "Puts abandoned for good after NACK retry exhaustion."),
        _c("nic.rvma.put_retries", "ops", "Sender-side put retries triggered by receiver NACKs."),
        _c("nic.rvma.put_giveups", "ops", "Puts that exhausted their NACK retry budget."),
        _c("nic.rvma.put_window_evictions", "ops", "Pending-put window entries evicted to make room for new sends."),
        _c("nic.rvma.catch_all_hits", "ops", "Puts landing in a catch-all mailbox instead of a targeted one."),
        _c("nic.rvma.spilled_completions", "events", "Completions spilled to the overflow queue (completion FIFO full)."),
        _c("nic.rvma.nacks_received", "msgs", "NACK control messages received by the sending NIC."),
        _c("nic.rvma.nacks_closed", "msgs", "NACKs sent because the target mailbox window was closed."),
        _c("nic.rvma.nacks_no_mailbox", "msgs", "NACKs sent because no mailbox matched the virtual address."),
        _c("nic.rvma.nacks_no_buffer", "msgs", "NACKs sent because the mailbox had no posted buffer."),
        _c("nic.rvma.nacks_out_of_bounds", "msgs", "NACKs sent because the put exceeded buffer bounds."),
        _c("nic.rvma.nacks_quota", "msgs", "NACKs sent because the tenant placement quota rejected the put."),
        _c("nic.rvma.nacks_filtered", "msgs", "NACKs sent because an active-mailbox predicate filter rejected the payload."),
        _c("nic.rvma.quota_rejects", "ops", "Inbound puts rejected whole at placement by the tenant quota hook."),
        _c("nic.rvma.puts_lost_quota", "ops", "Sender-side puts abandoned because the receiver's tenant quota shed them (accounted QoS loss, subset of puts_lost)."),
        _c("nic.rvma.gets_failed_peer_death", "ops", "RVMA gets failed locally because the target peer is marked dead."),
        _c("nic.rvma.tx_messages", "msgs", "Data messages injected into the fabric by RVMA NICs."),
        _c("nic.rvma.tx_control", "msgs", "Control messages (acks, nacks, heartbeats) injected by RVMA NICs."),
        _c("nic.rvma.rx_dropped_failed", "msgs", "Inbound messages dropped because the RVMA NIC was failed/crashed."),
        _c("nic.rvma.rx_unknown_header", "msgs", "Inbound messages with an unrecognized header type."),
        _h("nic.rvma.epoch_bytes", "bytes", "Distribution of bytes accumulated per retired buffer epoch."),
        # Active mailboxes (NIC-side compute-on-arrival, repro.nic.active).
        _c("nic.rvma.active.attached", "handlers", "Active-mailbox handlers bound to mailboxes (including crash-restart re-attaches)."),
        _c("nic.rvma.active.invocations", "epochs", "Completion-unit handler invocations at epoch close."),
        _c("nic.rvma.active.word_ops", "ops", "Atomic word operations (add/add_bytes/cas) executed at epoch close."),
        _c("nic.rvma.active.cas_failures", "ops", "Compare-and-swap word operations whose expectation did not hold."),
        _c("nic.rvma.active.filter_passed", "ops", "Puts that passed an active-mailbox predicate filter and placed normally."),
        _c("nic.rvma.active.filtered_puts", "ops", "Puts rejected by an active-mailbox predicate filter before placement."),
        _c("nic.rvma.active.filter_bypass", "ops", "Fragmented puts that bypassed a predicate filter (payload not evaluable)."),
        _c("nic.rvma.active.served", "ops", "Hot-key GETs served straight from the NIC view (host sweep never dispatched them)."),
        _c("nic.rvma.active.served_bytes", "bytes", "Reply bytes injected by the KV serve handler."),
        _c("nic.rvma.active.passed_dirty", "ops", "Hot-key GETs passed to the host because the key had pending unsynced writes."),
        _c("nic.rvma.active.passed_cold", "ops", "Hot-key GETs passed to the host because the view held no value for the key."),
        _c("nic.rvma.active.kv_syncs", "ops", "Host→NIC hot-key view syncs (write executed or shed)."),
        _c("nic.rvma.active.replayed", "epochs", "Epoch completions whose handler effects were re-asserted from the journal during rejoin replay."),
        # --- nic.rdma: the RDMA comparison NIC ----------------------------
        _c("nic.rdma.bytes_placed", "bytes", "Payload bytes written into registered memory regions by the RDMA path."),
        _c("nic.rdma.mrs_registered", "regions", "Memory regions registered with the RDMA NIC."),
        _c("nic.rdma.writes_rejected", "ops", "RDMA writes rejected (bad rkey, bounds, permissions)."),
        _c("nic.rdma.reads_rejected", "ops", "RDMA reads rejected (bad rkey, bounds, permissions)."),
        _c("nic.rdma.rnr_drops", "ops", "Receiver-not-ready drops (no posted receive)."),
        _c("nic.rdma.rnr_retries", "ops", "Sender retries after an RNR NAK."),
        _c("nic.rdma.recv_too_small", "ops", "Posted receives too small for the arriving send."),
        _c("nic.rdma.ops_failed_peer_death", "ops", "RDMA verbs failed locally because the target peer is marked dead."),
        _c("nic.rdma.tx_messages", "msgs", "Data messages injected into the fabric by RDMA NICs."),
        _c("nic.rdma.tx_control", "msgs", "Control messages injected by RDMA NICs."),
        _c("nic.rdma.rx_dropped_failed", "msgs", "Inbound messages dropped because the RDMA NIC was failed/crashed."),
        _c("nic.rdma.rx_unknown_header", "msgs", "Inbound messages with an unrecognized header type."),
        # --- nic.base: plain BaseNic instances (tests, bring-up) ----------
        _c("nic.base.tx_messages", "msgs", "Data messages injected by plain base NICs."),
        _c("nic.base.tx_control", "msgs", "Control messages injected by plain base NICs."),
        _c("nic.base.rx_dropped_failed", "msgs", "Inbound messages dropped by failed plain base NICs."),
        _c("nic.base.rx_unknown_header", "msgs", "Inbound messages with an unrecognized header type (base NICs)."),
        # --- transport: the ARQ reliability layer -------------------------
        _c("transport.tx", "msgs", "Messages handed to the reliable transport for first transmission."),
        _c("transport.retransmits", "msgs", "Retransmissions triggered by ack timeout or SACK holes."),
        _c("transport.acks_rx", "msgs", "ACK envelopes received by senders."),
        _c("transport.acks_tx", "msgs", "ACK envelopes emitted by receivers."),
        _c("transport.delivered", "msgs", "In-order messages released to the NIC placement pipeline."),
        _c("transport.dups_suppressed", "msgs", "Duplicate transmissions suppressed before placement."),
        _c("transport.gave_up", "msgs", "Messages abandoned after exhausting the retransmit budget."),
        _c("transport.rx_paced", "msgs", "Deliveries held back by receiver pacing (flow_room) before release."),
        _c("transport.pings_tx", "msgs", "Heartbeat pings emitted for failure detection."),
        _s("transport.tx_attempts", "attempts", "Transmission attempts needed per acknowledged message (1 = no loss)."),
        # --- detector: phi-accrual-lite failure detection -----------------
        _c("detector.peers_suspected", "peers", "Peer-suspected transitions raised by the failure detector."),
        _c("detector.peers_reinstated", "peers", "Suspected peers reinstated after a late heartbeat."),
        _c("detector.peer_failures_seen", "peers", "PeerFailed notifications observed by NICs."),
        # --- recovery: crash-restart, checkpoint, rejoin, audit -----------
        _c("recovery.replayed_msgs", "msgs", "Journaled messages replayed to a rejoining peer after its restart."),
        _c("recovery.rejoins_initiated", "rejoins", "Rejoin handshakes initiated by restarted nodes."),
        _c("recovery.mailboxes_restored", "mailboxes", "Mailboxes rebuilt from checkpoint state during rejoin."),
        _c("recovery.rejoin_hellos_serviced", "msgs", "RejoinHello requests serviced by surviving peers."),
        _c("recovery.checkpoints_taken", "checkpoints", "Quiescence-gated checkpoints committed by the daemon."),
        _c("recovery.checkpoints_deferred", "checkpoints", "Checkpoint attempts deferred because the NIC was not quiescent."),
        _c("recovery.audit_violations", "violations", "Invariant auditor violations (byte conservation, double placement…)."),
        _c("recovery.crashes", "crashes", "Crash-stop events applied to NICs."),
        _c("recovery.restarts", "restarts", "NIC restarts after a crash-stop."),
        _c("recovery.failed", "events", "Fail-stop (non-restartable) events applied to NICs."),
        _s("recovery.checkpoint_mailboxes", "mailboxes", "Mailboxes captured per committed checkpoint."),
        _s("recovery.checkpoint_age_ns", "ns", "Age of the checkpoint used at restart (crash time minus commit time)."),
        # --- fabric: network links, switches, packet fabric ---------------
        _c("fabric.messages_sent", "msgs", "Messages accepted by the fabric for delivery."),
        _c("fabric.bytes_sent", "bytes", "Payload bytes accepted by the fabric."),
        _c("fabric.deliveries_dropped", "msgs", "Deliveries dropped in flight (fault injection, dead links)."),
        _c("fabric.packets_forwarded", "packets", "Packets forwarded by switches (packet-level fabric only)."),
        _c("fabric.packets_delivered", "packets", "Packets delivered to endpoint NICs (packet-level fabric only)."),
        _s("fabric.msg_latency_ns", "ns", "End-to-end fabric latency per delivered message."),
        # --- service.kv: the sharded key-value service --------------------
        _c("service.kv.requests", "ops", "KV requests decoded and executed by shard servers."),
        _c("service.kv.replies", "ops", "KV replies delivered to client completion mailboxes."),
        _c("service.kv.not_found", "ops", "GET/DELETE requests whose key was absent from the store."),
        _c("service.kv.bytes_in", "bytes", "Request-frame bytes consumed from shard request streams."),
        _c("service.kv.bytes_out", "bytes", "Reply-frame bytes put back to client completion mailboxes."),
        _c("service.kv.flushes", "epochs", "Partial request chunks surfaced early via RVMA_Win_inc_epoch."),
        _s("service.kv.reply_batch", "replies", "Replies coalesced into one put per (shard sweep, client)."),
        _s("service.kv.shard_queue_depth", "requests", "Decoded requests waiting in a shard's queue per server sweep."),
        _h("service.kv.request_latency_ns", "ns", "Client-observed KV request latency (issue to decoded reply)."),
        # --- service.kv QoS: multi-tenant admission, scheduling, robustness
        _c("service.kv.overload_replies", "ops", "RC_OVERLOAD replies sent by server admission control (token bucket or p99 shedding)."),
        _h("service.kv.queue_sojourn_ns", "ns", "Time admitted requests spent in the DRR scheduler before execution (the shedding SLO signal)."),
        _c("service.kv.client.timeouts", "ops", "Client-side request timeouts (no reply within the attempt timeout)."),
        _c("service.kv.client.retries", "ops", "Client request retransmissions after a timeout (exponential backoff + jitter)."),
        _c("service.kv.client.stale_replies", "msgs", "Late reply frames dropped because the request was already resolved (a retry won or the deadline passed)."),
        _c("service.kv.client.handler_served", "msgs", "Replies served by a NIC-side active handler (STATUS_HANDLER_FLAG stripped client-side; excluded from host sweep accounting)."),
        _c("service.kv.client.backlog_dropped", "ops", "Open-loop arrivals shed at the load generator's backlog cap."),
        _c("service.kv.tenant.admitted*", "ops", "Per-tenant requests admitted past the token-bucket admitter (…admitted.t<id>)."),
        _c("service.kv.tenant.shed*", "ops", "Per-tenant requests refused with RC_OVERLOAD at admission (…shed.t<id>)."),
        _c("service.kv.tenant.served_bytes*", "bytes", "Per-tenant request bytes executed by the weighted-fair scheduler (…served_bytes.t<id>)."),
        _c("service.kv.tenant.retries*", "ops", "Per-tenant client retransmissions (…retries.t<id>)."),
        _c("service.kv.tenant.deadline_misses*", "ops", "Per-tenant requests resolved client-side as deadline-exceeded (…deadline_misses.t<id>)."),
        _c("service.kv.tenant.quota_rejects*", "ops", "Per-tenant puts rejected by the NIC placement quota (…quota_rejects.t<id>)."),
        _h("service.kv.tenant.request_latency_ns*", "ns", "Per-tenant client-observed request latency (…request_latency_ns.t<id>)."),
        # --- scenario: the seeded scenario fuzzer -------------------------
        _c("scenario.runs", "runs", "Scenario executions driven by the fuzzer runner (replay or campaign)."),
        _c("scenario.failures", "runs", "Scenario executions whose oracles reported a failure fingerprint."),
        _c("scenario.faults_scheduled", "events", "Pinned fault events installed from scenario documents."),
        _c("scenario.workload_ops", "ops", "Abstract workload weight (steps/messages) of executed scenarios."),
        _c("scenario.shrink_attempts", "candidates", "Shrink candidates evaluated while minimizing a failing scenario."),
        _c("scenario.shrink_accepted", "candidates", "Shrink candidates accepted (smaller, same failure fingerprint)."),
        # --- workload.trace: trace-driven record/replay -------------------
        _c("workload.trace.rows_recorded", "ops", "Offered ops captured by a TraceRecorder from live KvClients."),
        _c("workload.trace.rows_replayed", "ops", "Trace rows dispatched to pool clients by the TraceReplayer."),
        _c("workload.trace.rows_dropped", "ops", "Trace rows shed at the replayer's backlog cap instead of dispatched."),
        _s("workload.trace.replay_lag_ns", "ns", "Dispatch lag per replayed row (worker pickup time minus trace timestamp)."),
        # --- faults: injected chaos -------------------------------------
        _c("faults.crashes", "crashes", "Crash faults injected by the fault injector."),
        _c("faults.restarts", "restarts", "Restart faults injected by the fault injector."),
        _c("faults.drops_random", "msgs", "Messages dropped by random-drop fault injection."),
        _c("faults.drops_*", "msgs", "Messages dropped by scheduled drop windows, one counter per window kind."),
    ]
}

# Suffixes owned by a cross-cutting subsystem regardless of which NIC the
# flat counter was registered on.
_DETECTOR_SUFFIXES = {"peers_suspected", "peers_reinstated", "peer_failures_seen"}
_RECOVERY_SUFFIXES = {
    "rejoins_initiated",
    "mailboxes_restored",
    "rejoin_hellos_serviced",
    "checkpoints_taken",
    "checkpoints_deferred",
    "audit_violations",
    "crashes",
    "restarts",
    "failed",
}
# Component-name families (trailing digits stripped) → canonical group.
_COMPONENT_GROUPS = {
    "rvma": "nic.rvma",
    "rdma": "nic.rdma",
    "nic": "nic.base",
    "switch": "fabric",
    "fabric": "fabric",
    "pktfabric": "fabric",
    "ep": "fabric",
    "link": "fabric",
}


def _family(component: str) -> str:
    """Component name with its trailing instance digits stripped."""
    return component.rstrip("0123456789")


def canonical_name(flat_name: str, kind: str = "counter") -> Optional[str]:
    """Map a flat stats name onto its canonical hierarchical name.

    Returns ``None`` for names that must be *skipped*: the transport,
    detector and auditor all double-register a flat cluster-wide
    counter (``reliability.*`` / ``recovery.audit_violations``) next to
    their per-NIC one — counting both would double every value.  The
    skip applies to counters only, so canonical summaries/histograms
    registered directly under those prefixes pass through untouched.
    """
    component, _, suffix = flat_name.partition(".")
    if kind == "counter" and component in ("reliability", "recovery"):
        # Checked before the CATALOG passthrough: the auditor's flat
        # recovery.audit_violations is itself a catalog name, and
        # passing it through would double-count the per-NIC copy.
        return None
    if flat_name in CATALOG:
        return flat_name
    if not suffix:
        return f"host.{flat_name}"
    if component == "faults":
        return flat_name
    if component == "workload":
        # Trace recorder/replayer stats register flat under their
        # canonical workload.trace.* names.
        return flat_name
    if component == "service":
        # Service metrics are registered flat under their canonical
        # names; the per-tenant families (service.kv.tenant.*.t<id>)
        # match CATALOG prefix patterns rather than literal entries.
        return flat_name
    if suffix == "rel_replays":
        return "recovery.replayed_msgs"
    if suffix.startswith("rel_"):
        return f"transport.{suffix[4:]}"
    if suffix in _DETECTOR_SUFFIXES:
        return f"detector.{suffix}"
    if suffix in _RECOVERY_SUFFIXES:
        return f"recovery.{suffix}"
    group = _COMPONENT_GROUPS.get(_family(component))
    if group is not None:
        return f"{group}.{suffix}"
    return f"host.{component}.{suffix}"


def lookup(name: str) -> Optional[MetricSpec]:
    """Catalog spec for *name*, honoring ``prefix*`` pattern entries."""
    spec = CATALOG.get(name)
    if spec is not None:
        return spec
    for pat, pspec in CATALOG.items():
        if pat.endswith("*") and name.startswith(pat[:-1]):
            return pspec
    return None


class MetricsRegistry:
    """A federated, hierarchical view over one run's statistics.

    Build one with :meth:`collect` after (or during) a run; it holds
    aggregated counters, merged summaries and merged histograms keyed
    by canonical name, plus whatever ``observable_metrics()`` hooks the
    registered components expose (fabric/switch attribute counters that
    predate the stats registry).
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.summaries: dict[str, Summary] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- construction -----------------------------------------------------

    @classmethod
    def collect(cls, target: Any) -> "MetricsRegistry":
        """Sweep *target* (a Simulator, or anything with ``.sim``).

        Flat stats fold in under canonical names; components exposing
        an ``observable_metrics() -> dict[str, int]`` hook contribute
        those values as counters (summed when several components emit
        the same name).
        """
        sim = getattr(target, "sim", target)
        reg = cls()
        stats = sim.stats
        for flat, counter in stats.counter_items():
            name = canonical_name(flat, "counter")
            if name is None:
                continue
            reg.counters[name] = reg.counters.get(name, 0) + counter.value
        for flat, summ in stats.summary_items():
            name = canonical_name(flat, "summary")
            if name is None:
                continue
            agg = reg.summaries.get(name)
            if agg is None:
                agg = reg.summaries[name] = Summary(name)
            agg.merge(summ)
        for flat, hist in stats.histogram_items():
            name = canonical_name(flat, "histogram")
            if name is None:
                continue
            agg = reg.histograms.get(name)
            if agg is None:
                agg = reg.histograms[name] = Histogram(
                    name, hist.lo, hist.hi, hist.nbins
                )
            agg.merge(hist)
        for comp in getattr(sim, "_components", []):
            hook = getattr(comp, "observable_metrics", None)
            if hook is None:
                continue
            for name, value in hook().items():
                reg.counters[name] = reg.counters.get(name, 0) + int(value)
        return reg

    # -- queries ----------------------------------------------------------

    def flat(self, prefix: str = "") -> dict[str, Any]:
        """All metrics under *prefix* as one flat name→value dict.

        Counters flatten to ints; summaries and histograms flatten to
        small stat dicts (see :meth:`summary_dict` / histogram bins).
        """
        out: dict[str, Any] = {}
        for name, v in self.counters.items():
            if name.startswith(prefix):
                out[name] = v
        for name, s in self.summaries.items():
            if name.startswith(prefix):
                out[name] = self.summary_dict(s)
        for name, h in self.histograms.items():
            if name.startswith(prefix):
                out[name] = self.histogram_dict(h)
        return dict(sorted(out.items()))

    def snapshot(self, prefix: str = "") -> dict[str, dict[str, Any]]:
        """Metrics grouped by their first name segment: ``{group: {name: value}}``."""
        groups: dict[str, dict[str, Any]] = {}
        for name, value in self.flat(prefix).items():
            group = name.split(".", 1)[0]
            groups.setdefault(group, {})[name] = value
        return groups

    def groups(self) -> list[str]:
        """Sorted top-level metric groups present (nic, transport, …)."""
        seen = set()
        for name in (*self.counters, *self.summaries, *self.histograms):
            seen.add(name.split(".", 1)[0])
        return sorted(seen)

    def names(self) -> list[str]:
        return sorted({*self.counters, *self.summaries, *self.histograms})

    def undocumented(self) -> list[str]:
        """Metric names carrying values that the CATALOG does not declare."""
        return [n for n in self.names() if lookup(n) is None]

    @staticmethod
    def summary_dict(s: Summary) -> dict[str, float]:
        if s.n == 0:
            return {"n": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "stddev": 0.0, "total": 0.0}
        return {
            "n": s.n,
            "mean": s.mean,
            "min": s.min,
            "max": s.max,
            "stddev": s.stddev,
            "total": s.total,
        }

    @staticmethod
    def histogram_dict(h: Histogram) -> dict[str, Any]:
        return {
            "count": h.count,
            "lo": h.lo,
            "hi": h.hi,
            "nbins": h.nbins,
            "bins": list(h.bins),
            "underflow": h.underflow,
            "overflow": h.overflow,
            "p50": h.percentile(0.50),
            "p99": h.percentile(0.99),
        }
