"""A simulated node: memory + NIC + wakeup machinery."""

from __future__ import annotations

from typing import Optional, Union

from ..memory.memory import NodeMemory
from ..memory.mwait import MemoryWaiter
from ..nic.rdma import RdmaNic, RdmaNicConfig
from ..nic.rvma import RvmaNic, RvmaNicConfig
from ..network.fabric import BaseFabric
from ..sim.engine import Simulator


class Node:
    """One endpoint of the simulated system.

    A node owns its memory, exactly one NIC (RVMA or RDMA — experiments
    compare whole systems, as the paper does), and a
    :class:`~repro.memory.mwait.MemoryWaiter` for completion wakeups.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        fabric: BaseFabric,
        nic_type: str = "rvma",
        nic_config: Optional[Union[RvmaNicConfig, RdmaNicConfig]] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.memory = NodeMemory()
        if nic_type == "rvma":
            self.nic: Union[RvmaNic, RdmaNic] = RvmaNic(
                sim, node_id, self.memory, fabric, nic_config
            )
        elif nic_type == "rdma":
            self.nic = RdmaNic(sim, node_id, self.memory, fabric, nic_config)
        else:
            raise ValueError(f"unknown nic_type {nic_type!r} (rvma|rdma)")
        self.nic_type = nic_type
        self.waiter = MemoryWaiter(sim, self.memory)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Node {self.node_id} nic={self.nic_type}>"
