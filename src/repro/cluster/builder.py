"""Cluster builder: topology + fabric + nodes in one call.

This is the top-level composition a user starts from::

    cluster = Cluster.build(n_nodes=64, topology="dragonfly",
                            nic_type="rvma", fidelity="flow")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..network.config import NetworkConfig
from ..network.fabric import BaseFabric, FlowFabric
from ..network.switch import PacketFabric
from ..network.topology import Topology, make_topology
from ..nic.rdma import RdmaNicConfig
from ..nic.rvma import RvmaNicConfig
from ..sim.engine import Simulator
from .node import Node

FIDELITIES = ("flow", "packet")


@dataclass
class Cluster:
    """A complete simulated system."""

    sim: Simulator
    topology: Topology
    fabric: BaseFabric
    nodes: list[Node]
    nic_type: str

    @classmethod
    def build(
        cls,
        n_nodes: int,
        topology: Union[str, Topology] = "dragonfly",
        nic_type: str = "rvma",
        fidelity: str = "flow",
        net_config: Optional[NetworkConfig] = None,
        nic_config: Optional[Union[RvmaNicConfig, RdmaNicConfig]] = None,
        seed: int = 0xC0FFEE,
        sim: Optional[Simulator] = None,
        trace: bool = False,
    ) -> "Cluster":
        """Construct a cluster.

        Parameters mirror the paper's experiment axes: node count,
        topology kind, protocol (``nic_type``), network parameters
        (link rate, routing mode) via *net_config*, and simulation
        fidelity (``packet`` for small-scale validation, ``flow`` for
        the 8,192-node motif runs).
        """
        if fidelity not in FIDELITIES:
            raise ValueError(f"fidelity must be one of {FIDELITIES}")
        sim = sim or Simulator(seed=seed, trace=trace)
        topo = (
            topology
            if isinstance(topology, Topology)
            else make_topology(topology, n_nodes)
        )
        if topo.n_nodes != n_nodes:
            raise ValueError(
                f"topology sized for {topo.n_nodes} nodes, requested {n_nodes}"
            )
        fabric: BaseFabric
        if fidelity == "flow":
            fabric = FlowFabric(sim, topo, net_config)
        else:
            fabric = PacketFabric(sim, topo, net_config)
        nodes = [Node(sim, i, fabric, nic_type, nic_config) for i in range(n_nodes)]
        return cls(sim=sim, topology=topo, fabric=fabric, nodes=nodes, nic_type=nic_type)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node(self, i: int) -> Node:
        """The i-th node of the cluster."""
        return self.nodes[i]

    def run(self, until: Optional[float] = None) -> float:
        """Run the cluster's simulator (to quiescence or ``until``)."""
        return self.sim.run(until=until)
