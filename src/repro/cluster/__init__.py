"""Cluster composition: nodes and the builder."""

from .builder import FIDELITIES, Cluster
from .node import Node

__all__ = ["Cluster", "FIDELITIES", "Node"]
