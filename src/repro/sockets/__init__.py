"""Sockets-style byte streams over Receiver-Managed RVMA (paper SS IV-B)."""

from .api import (
    Connection,
    DEFAULT_CHUNK,
    HELLO_BYTES,
    RvmaListener,
    SocketError,
    connect,
)

__all__ = [
    "Connection",
    "DEFAULT_CHUNK",
    "HELLO_BYTES",
    "RvmaListener",
    "SocketError",
    "connect",
]
