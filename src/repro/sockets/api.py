"""A sockets-style API over Receiver-Managed RVMA (paper §IV-B).

The paper argues RVMA "efficiently supports sockets-based network code
with very minimal middleware support, unlike contemporary
sockets-to-RDMA libraries".  This module is that middleware, and it is
minimal indeed:

* a **listener mailbox** per (node, port) accepts fixed-size connect
  requests (the receiver keeps it armed — receiver-managed resources);
* each accepted connection gets a pair of Receiver-Managed stream
  windows (one per direction) whose mailboxes are derived from the
  connection id — no address exchange beyond the connect hello;
* ``send`` is an RVMA put; ``recv`` drains completed chunks, with
  `RVMA_Win_inc_epoch` flushing partial tails — byte-stream semantics
  without a byte of ordering machinery on the NIC.

Requires an ordered transport (static routing), as deployed
sockets-over-fabric stacks use.  Like TCP, senders must not outrun the
receiver's advertised capacity (``depth`` chunks in flight): a NACKed
stream put is retried for *reliability*, but the retry re-appends at
its new arrival position, which scrambles MANAGED-mode byte order —
so the connection handshake is three-way (hello, window setup, ack),
and applications size ``depth`` to their burst length.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Generator

from ..core.api import RvmaApi
from ..core.receiver_managed import StreamClient, StreamServer
from ..nic.lut import BufferMode, EpochType
from ..network.routing import RoutingMode

#: Mailbox namespace for listener (port) mailboxes.
LISTEN_TAG = 0x4C00  # 'L'
#: Mailbox namespace for per-connection stream mailboxes.
CONN_TAG = 0x5300  # 'S'
#: Mailbox namespace for the accept-acknowledgement (3-way handshake).
ACK_TAG = 0x4100  # 'A'

#: Connect request wire format: u32 client node, u32 client port,
#: u64 connection id proposed by the client.
_HELLO = struct.Struct("<IIQ")
HELLO_BYTES = _HELLO.size

DEFAULT_CHUNK = 1024
DEFAULT_DEPTH = 8


def _listen_mailbox(port: int) -> int:
    return (LISTEN_TAG << 32) | (port & 0xFFFFFFFF)


def _stream_mailbox(conn_id: int, server_side: bool) -> int:
    # One mailbox per direction: the side that RECEIVES owns it.
    return (CONN_TAG << 32) | (conn_id << 1) | (1 if server_side else 0)


def _ack_mailbox(conn_id: int) -> int:
    return (ACK_TAG << 32) | conn_id


class SocketError(RuntimeError):
    pass


@dataclass
class Connection:
    """One bidirectional byte-stream connection."""

    api: RvmaApi
    peer_node: int
    conn_id: int
    #: Stream we receive on (we own the window).
    rx: StreamServer
    #: Stream we send on (peer owns the window).
    tx: StreamClient
    _pending: deque = field(default_factory=deque)  # buffered recv bytes
    closed: bool = False

    # --- data -----------------------------------------------------------------

    def send(self, data: bytes) -> Generator:
        """Stream *data* to the peer (returns when locally complete)."""
        if self.closed:
            raise SocketError("send on closed connection")
        op = yield from self.tx.send(data)
        yield op.local_done
        return len(data)

    #: Poll interval while waiting for bytes that sit in a partial
    #: chunk (the PSH-like pull; see recv).
    POLL_NS = 1_000.0

    def _drain_pending(self, out: bytearray, nbytes: int) -> None:
        while self._pending and len(out) < nbytes:
            chunk = self._pending[0]
            take = min(len(chunk), nbytes - len(out))
            out.extend(chunk[:take])
            if take == len(chunk):
                self._pending.popleft()
            else:
                self._pending[0] = chunk[take:]

    def _pull_more(self) -> Generator:
        """Bring at least the peer's next bytes into the pending queue.

        Full chunks are consumed directly; otherwise the receiver
        flushes its own window tail (``RVMA_Win_inc_epoch``) so short
        messages surface without waiting for a chunk boundary — the
        receiver-side equivalent of TCP's PSH delivery.
        """
        while True:
            if self.rx.poll_ready():
                chunk = yield from self.rx.recv()
                self._pending.append(chunk)
                return
            got = yield from self.flush_peer_tail()
            if got:
                return
            yield self.POLL_NS

    def recv(self, nbytes: int) -> Generator:
        """Receive exactly *nbytes* (blocking, like MSG_WAITALL).

        Returns partial in-flight bytes as they surface, so the call
        completes as soon as *nbytes* have arrived — regardless of chunk
        alignment.
        """
        if self.closed and not self._pending:
            raise SocketError("recv on closed connection")
        out = bytearray()
        while len(out) < nbytes:
            self._drain_pending(out, nbytes)
            if len(out) < nbytes:
                yield from self._pull_more()
        return bytes(out)

    def recv_some(self) -> Generator:
        """Receive whatever arrives next, like a plain recv."""
        if self._pending:
            return bytes(self._pending.popleft())
        yield from self._pull_more()
        return bytes(self._pending.popleft())

    def flush_peer_tail(self) -> Generator:
        """Surface a partially-filled incoming chunk now (push semantics)."""
        yield from self.rx.flush()
        info = yield from self.rx.api.wait_completion(self.rx.win)
        data = info.read_data()
        if data:
            self._pending.append(data)
        yield from self.rx.api.post_buffer(self.rx.win, size=self.rx.chunk_size)
        return len(data)

    def close(self) -> Generator:
        """Close our receive window; peer sends will NACK."""
        self.closed = True
        yield from self.rx.close()
        return None


class RvmaListener:
    """Server side: ``listen`` then ``accept`` connections on a port."""

    def __init__(
        self,
        api: RvmaApi,
        port: int,
        chunk_size: int = DEFAULT_CHUNK,
        depth: int = DEFAULT_DEPTH,
        backlog: int = 8,
    ) -> None:
        self.api = api
        self.port = port
        self.chunk_size = chunk_size
        self.depth = depth
        self.backlog = backlog
        self.win = None

    def listen(self) -> Generator:
        """Arm the listener mailbox with `backlog` hello-sized buffers."""
        self.win = yield from self.api.init_window(
            _listen_mailbox(self.port),
            epoch_threshold=HELLO_BYTES,
            epoch_type=EpochType.EPOCH_BYTES,
            mode=BufferMode.MANAGED,
        )
        for _ in range(self.backlog):
            yield from self.api.post_buffer(self.win, size=HELLO_BYTES)
        return self

    def accept(self) -> Generator:
        """Block for the next connect request; returns a Connection."""
        info = yield from self.api.wait_completion(self.win)
        client_node, _client_port, conn_id = _HELLO.unpack(info.read_data())
        # Re-arm the listener slot (receiver-managed: our pace, our memory).
        yield from self.api.post_buffer(self.win, size=HELLO_BYTES)
        # Our receive stream: mailbox derived from the connection id.
        rx = StreamServer(
            self.api, _stream_mailbox(conn_id, server_side=True),
            self.chunk_size, self.depth,
        )
        yield from rx.open()
        tx = StreamClient(
            self.api, client_node, _stream_mailbox(conn_id, server_side=False),
            mode=RoutingMode.STATIC,
        )
        # Third leg of the handshake: the client must not stream a byte
        # before our window exists — a NACK-retried put would re-append
        # out of order in MANAGED mode.  One tiny steered put says "go".
        op = yield from self.api.put(
            client_node, _ack_mailbox(conn_id), data=b"\x06", mode=RoutingMode.STATIC
        )
        yield op.local_done
        return Connection(
            api=self.api, peer_node=client_node, conn_id=conn_id, rx=rx, tx=tx
        )

    def close(self) -> Generator:
        yield from self.api.close_win(self.win)
        return None


_conn_ids = iter(range(1, 1 << 30))


def connect(
    api: RvmaApi,
    server_node: int,
    port: int,
    chunk_size: int = DEFAULT_CHUNK,
    depth: int = DEFAULT_DEPTH,
) -> Generator:
    """Client side: open a connection to (server_node, port).

    The client arms its receive stream *before* the hello, so the
    server's first bytes can never race the window (and RVMA's NACK
    retry covers the reverse race on slow servers).
    """
    conn_id = next(_conn_ids)
    rx = StreamServer(
        api, _stream_mailbox(conn_id, server_side=False), chunk_size, depth
    )
    yield from rx.open()
    # Arm the accept-ack window before saying hello (SYN -> SYN/ACK).
    ack_win = yield from api.init_window(
        _ack_mailbox(conn_id), epoch_threshold=1, epoch_type=EpochType.EPOCH_BYTES
    )
    yield from api.post_buffer(ack_win, size=1)
    hello = _HELLO.pack(api.node.node_id, 0, conn_id)
    op = yield from api.put(
        server_node, _listen_mailbox(port), data=hello, mode=RoutingMode.STATIC
    )
    yield op.local_done
    # Block until the server's stream window provably exists.
    yield from api.wait_completion(ack_win)
    yield from api.close_win(ack_win)
    tx = StreamClient(
        api, server_node, _stream_mailbox(conn_id, server_side=True),
        mode=RoutingMode.STATIC,
    )
    return Connection(api=api, peer_node=server_node, conn_id=conn_id, rx=rx, tx=tx)
