"""IB Verbs-flavoured software layer over the RDMA NIC (paper §V-A1).

Models the ``ibv_*`` fast path with per-call software costs, the
spec-compliant write-then-send completion sequence the paper adds to
OFED perftest, and the (unsafe-on-adaptive) last-byte polling fast
path used on statically routed InfiniBand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..memory.buffer import HostBuffer, MemoryRegion
from ..memory.mwait import POLL, WakeupModel
from ..nic.cq import CqKind
from ..nic.rdma import RdmaNic, RdmaOp
from ..network.routing import RoutingMode
from .completion_modes import CompletionMode, check_mode_safety
from .dispatch import CqDispatcher

#: Size of the completion-signalling send appended after a write
#: (the paper's modified perftest uses 1 byte).
SIGNAL_BYTES = 1


@dataclass(frozen=True)
class VerbsCosts:
    """Software-path costs (ns) for the Verbs interface."""

    post_send: float = 90.0  # ibv_post_send + doorbell prep
    post_recv: float = 70.0
    poll_cq: float = 45.0  # successful ibv_poll_cq
    reg_mr_base: float = 1600.0  # ibv_reg_mr syscall + pinning setup
    reg_mr_per_kb: float = 55.0  # per-page pinning/translation


class VerbsEndpoint:
    """One process's Verbs context on a node with an RDMA NIC."""

    def __init__(self, node, costs: Optional[VerbsCosts] = None) -> None:
        if not isinstance(node.nic, RdmaNic):
            raise TypeError("VerbsEndpoint requires a node with an RDMA NIC")
        self.node = node
        self.nic: RdmaNic = node.nic
        self.sim = node.sim
        self.costs = costs or VerbsCosts()
        self.dispatcher = CqDispatcher(self.sim, self.nic.cq)

    # ------------------------------------------------------------------ setup

    def reg_mr(self, buffer: HostBuffer) -> Generator:
        """Register *buffer*; returns its MemoryRegion."""
        yield self.costs.reg_mr_base + self.costs.reg_mr_per_kb * (buffer.size / 1024.0)
        mr = yield self.nic.hw_reg_mr(buffer)
        if isinstance(mr, Exception):
            raise mr
        return mr

    def post_recv(
        self, buffer: HostBuffer, wr_id: int = 0, tag: Optional[int] = None
    ) -> Generator:
        yield self.costs.post_recv
        yield self.nic.hw_post_recv(buffer, wr_id, tag)
        return True

    # ------------------------------------------------------------------ data path

    def rdma_write(
        self,
        dst: int,
        region: MemoryRegion,
        size: int,
        data: bytes = b"",
        offset: int = 0,
        mode: Optional[RoutingMode] = None,
        wr_id: int = 0,
        signaled: bool = True,
    ) -> Generator:
        """Post an RDMA write to a remote region; returns the RdmaOp."""
        if offset + size > region.length:
            raise ValueError(
                f"write [{offset}, +{size}) exceeds region of {region.length} bytes"
            )
        yield self.costs.post_send
        return self.nic.hw_write(
            dst, region.addr + offset, region.rkey, size, data, None, mode, wr_id,
            signaled=signaled,
        )

    def send(
        self,
        dst: int,
        size: int,
        data: bytes = b"",
        tag: int = 0,
        mode: Optional[RoutingMode] = None,
        wr_id: int = 0,
        signaled: bool = True,
    ) -> Generator:
        yield self.costs.post_send
        return self.nic.hw_send(dst, size, data, tag, mode, wr_id, signaled=signaled)

    def wait_cq(self, wr_id: int, kind: Optional[CqKind] = None) -> Generator:
        """Poll the shared CQ until the matching entry is harvested."""
        entry = yield self.dispatcher.wait_wr(wr_id, kind)
        yield self.costs.poll_cq
        return entry

    # ------------------------------------------------------------------ completion sequences

    def write_with_completion(
        self,
        dst: int,
        region: MemoryRegion,
        size: int,
        data: bytes = b"",
        mode: Optional[RoutingMode] = None,
        completion: CompletionMode = CompletionMode.SEND_RECV,
        wr_id: int = 0,
    ) -> Generator:
        """Initiator side of a spec-compliant completed write.

        SEND_RECV: write, wait for the transport ack (the fence — on an
        adaptive network the trailing send may not overtake data), then
        issue the 1-byte signalling send.  LAST_BYTE_POLL: the write
        alone (the receiver polls memory).
        """
        op = yield from self.rdma_write(dst, region, size, data, 0, mode, wr_id)
        if completion is CompletionMode.LAST_BYTE_POLL:
            return op
        entry = yield op.done  # ack fence
        yield self.costs.poll_cq  # harvesting the write CQE costs a poll
        if not entry.ok:
            raise RuntimeError(f"rdma write failed: {entry}")
        sig = yield from self.send(dst, SIGNAL_BYTES, b"\x01", tag=wr_id, mode=mode, wr_id=wr_id)
        return sig

    def wait_write_completion(
        self,
        region_buffer: HostBuffer,
        completion: CompletionMode,
        routing: RoutingMode,
        ctl_buffer: Optional[HostBuffer] = None,
        wr_id: int = 0,
        allow_unsafe: bool = False,
        wakeup: WakeupModel = POLL,
    ) -> Generator:
        """Target side: detect that an incoming write finished.

        LAST_BYTE_POLL requires a statically routed (byte-ordered)
        network — :func:`check_mode_safety` refuses otherwise unless the
        caller is deliberately demonstrating the corruption.
        """
        check_mode_safety(completion, routing, allow_unsafe)
        if completion is CompletionMode.LAST_BYTE_POLL:
            last = region_buffer.addr + region_buffer.size - 1
            addr = yield self.node.waiter.wait_for_write(last, wakeup)
            return addr
        if ctl_buffer is None:
            raise ValueError("SEND_RECV completion needs a posted control buffer")
        entry = yield from self.wait_cq(wr_id, CqKind.RECV)
        return entry
