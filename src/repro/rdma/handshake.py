"""The RDMA buffer-negotiation handshake (paper Fig 1, steps 1-3).

Before any RDMA data can move, the initiator must obtain the target
buffer's ``(addr, length, rkey)``: request over send/recv, allocation +
registration at the target, reply over send/recv.  RVMA removes this
entirely (mailboxes need no discovery), which is what Fig 6 amortises.

The region descriptor travels as real bytes (24-byte wire format), so
tests can verify the initiator truly learns raw remote addresses —
the exposure RVMA hides.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Generator

from ..memory.buffer import HostBuffer, MemoryRegion
from ..nic.cq import CqKind
from .verbs import VerbsEndpoint

#: wire format: u64 addr, u64 length, u64 rkey
_DESC = struct.Struct("<QQQ")
DESC_BYTES = _DESC.size
#: request wire format: u64 requested size, u64 request tag
_REQ = struct.Struct("<QQ")

#: wr_id namespaces so handshake traffic demuxes cleanly on shared CQs.
WR_HANDSHAKE_REQ = 0x48535251  # "HSRQ"
WR_HANDSHAKE_REP = 0x48535250  # "HSRP"


@dataclass
class HandshakeResult:
    """What the initiator ends up holding (and must retain!)."""

    region: MemoryRegion
    elapsed: float


def pack_region(mr: MemoryRegion) -> bytes:
    return _DESC.pack(mr.addr, mr.length, mr.rkey)


def unpack_region(data: bytes, node_id: int) -> MemoryRegion:
    addr, length, rkey = _DESC.unpack(data[:DESC_BYTES])
    return MemoryRegion(addr=addr, length=length, rkey=rkey, node_id=node_id)


def client_request_region(verbs: VerbsEndpoint, server: int, size: int) -> Generator:
    """Initiator side of Fig 1 steps 1+3: request, then learn (addr,len,rkey).

    Returns a :class:`HandshakeResult` with the elapsed setup time —
    the quantity Fig 6 amortises over subsequent transfers.
    """
    t0 = verbs.sim.now
    reply_buf = HostBuffer.allocate(verbs.node.memory, DESC_BYTES, label="hs-reply")
    yield from verbs.post_recv(reply_buf, wr_id=WR_HANDSHAKE_REP, tag=WR_HANDSHAKE_REP)
    req = _REQ.pack(size, WR_HANDSHAKE_REQ)
    op = yield from verbs.send(server, len(req), req, tag=WR_HANDSHAKE_REQ, wr_id=WR_HANDSHAKE_REQ)
    entry = yield op.done
    if not entry.ok:
        raise RuntimeError("handshake request failed (server not listening?)")
    yield from verbs.wait_cq(WR_HANDSHAKE_REP, CqKind.RECV)
    region = unpack_region(reply_buf.read(), node_id=server)
    return HandshakeResult(region=region, elapsed=verbs.sim.now - t0)


def server_serve_region(verbs: VerbsEndpoint, client: int) -> Generator:
    """Target side of Fig 1 step 2: allocate, register, reply.

    Returns ``(buffer, region)`` — the buffer is now dedicated to the
    client until it signals it is done (the RDMA resource-management
    problem the paper's receiver management fixes).
    """
    req_buf = HostBuffer.allocate(verbs.node.memory, _REQ.size, label="hs-req")
    yield from verbs.post_recv(req_buf, wr_id=WR_HANDSHAKE_REQ, tag=WR_HANDSHAKE_REQ)
    yield from verbs.wait_cq(WR_HANDSHAKE_REQ, CqKind.RECV)
    size, _tag = _REQ.unpack(req_buf.read())
    buffer = HostBuffer.allocate(verbs.node.memory, int(size), label="rdma-region")
    region = yield from verbs.reg_mr(buffer)
    desc = pack_region(region)
    op = yield from verbs.send(client, len(desc), desc, tag=WR_HANDSHAKE_REP, wr_id=WR_HANDSHAKE_REP)
    yield op.done
    return buffer, region
