"""RDMA software layers: Verbs and UCX veneers, handshake, completion modes."""

from .completion_modes import (
    CompletionMode,
    UnsafeCompletionError,
    check_mode_safety,
    spec_compliant_mode,
)
from .dispatch import CqDispatcher
from .handshake import (
    DESC_BYTES,
    HandshakeResult,
    client_request_region,
    pack_region,
    server_serve_region,
    unpack_region,
)
from .ucx import UcpCosts, UcpEndpoint
from .verbs import SIGNAL_BYTES, VerbsCosts, VerbsEndpoint

__all__ = [
    "CompletionMode",
    "CqDispatcher",
    "DESC_BYTES",
    "HandshakeResult",
    "SIGNAL_BYTES",
    "UcpCosts",
    "UcpEndpoint",
    "UnsafeCompletionError",
    "VerbsCosts",
    "VerbsEndpoint",
    "check_mode_safety",
    "client_request_region",
    "pack_region",
    "server_serve_region",
    "spec_compliant_mode",
    "unpack_region",
]
