"""UCX/UCP-flavoured software layer (paper §V-A2).

UCP's protocol layer adds dispatch, request tracking and tag matching
on top of the same NIC — more software per operation than raw Verbs,
which is why the paper's UCX numbers are higher in absolute terms and
the RVMA saving is a smaller fraction (45.8% vs 65.8%).

API sketch follows ucp: ``put_nbi`` (non-blocking immediate put),
``flush`` (fence until remote completion), ``tag_send``/``tag_recv``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..memory.buffer import HostBuffer, MemoryRegion
from ..nic.cq import CqKind
from ..nic.rdma import RdmaNic, RdmaOp
from ..network.routing import RoutingMode
from ..sim.process import AllOf
from .dispatch import CqDispatcher


@dataclass(frozen=True)
class UcpCosts:
    """Software-path costs (ns) for the UCP protocol layer."""

    put_nbi: float = 160.0  # ucp_put_nbi: protocol dispatch + lane select
    flush: float = 120.0  # ucp_worker_flush bookkeeping
    tag_send: float = 190.0  # ucp_tag_send_nb + request alloc
    tag_recv: float = 210.0  # ucp_tag_recv_nb + matching
    progress: float = 60.0  # ucp_worker_progress per completion reaped
    rkey_pack: float = 900.0  # rkey pack/unpack during wireup
    reg_mr_base: float = 1600.0
    reg_mr_per_kb: float = 55.0


class UcpEndpoint:
    """One worker's UCP context on a node with an RDMA NIC."""

    def __init__(self, node, costs: Optional[UcpCosts] = None) -> None:
        if not isinstance(node.nic, RdmaNic):
            raise TypeError("UcpEndpoint requires a node with an RDMA NIC")
        self.node = node
        self.nic: RdmaNic = node.nic
        self.sim = node.sim
        self.costs = costs or UcpCosts()
        self.dispatcher = CqDispatcher(self.sim, self.nic.cq)
        self._inflight: list[RdmaOp] = []

    # ------------------------------------------------------------------ memory

    def mem_map(self, buffer: HostBuffer) -> Generator:
        """ucp_mem_map + rkey pack; returns the MemoryRegion."""
        yield (
            self.costs.reg_mr_base
            + self.costs.reg_mr_per_kb * (buffer.size / 1024.0)
            + self.costs.rkey_pack
        )
        mr = yield self.nic.hw_reg_mr(buffer)
        if isinstance(mr, Exception):
            raise mr
        return mr

    # ------------------------------------------------------------------ RMA

    def put_nbi(
        self,
        dst: int,
        region: MemoryRegion,
        size: int,
        data: bytes = b"",
        offset: int = 0,
        mode: Optional[RoutingMode] = None,
        wr_id: int = 0,
    ) -> Generator:
        """Non-blocking immediate put; completion only via flush."""
        if offset + size > region.length:
            raise ValueError("put beyond mapped region")
        yield self.costs.put_nbi
        op = self.nic.hw_write(
            dst, region.addr + offset, region.rkey, size, data, None, mode, wr_id
        )
        self._inflight.append(op)
        return op

    def flush(self) -> Generator:
        """Fence: wait until every outstanding put is remotely complete."""
        yield self.costs.flush
        pending, self._inflight = self._inflight, []
        if pending:
            yield AllOf([op.done for op in pending])
        return len(pending)

    # ------------------------------------------------------------------ tags

    def tag_send(
        self,
        dst: int,
        size: int,
        data: bytes = b"",
        tag: int = 0,
        mode: Optional[RoutingMode] = None,
    ) -> Generator:
        """ucp_tag_send; returns the send op handle."""
        yield self.costs.tag_send
        return self.nic.hw_send(dst, size, data, tag, mode, wr_id=tag)

    def tag_recv_arm(self, buffer: HostBuffer, tag: int = 0) -> Generator:
        """Pre-post the receive for a tag (ucp_tag_recv_nb)."""
        yield self.costs.tag_recv
        yield self.nic.hw_post_recv(buffer, wr_id=tag, tag=tag)
        return True

    def tag_recv_wait(self, tag: int = 0) -> Generator:
        """Progress the worker until the tagged message lands."""
        entry = yield self.dispatcher.wait_wr(tag, CqKind.RECV)
        yield self.costs.progress
        return entry
