"""Shared-CQ demultiplexing.

An RDMA NIC funnels every completion through shared CQs; software with
several in-flight operations (a halo rank has six neighbours) must pull
entries and dispatch them to whichever logical channel they belong to.
This pump-and-match layer is precisely the bookkeeping RVMA's
per-buffer completion pointers eliminate (paper §IV) — modelling it
explicitly keeps the comparison honest.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from ..memory.mwait import CQ_POLL, WakeupModel
from ..nic.cq import CompletionQueue, CqEntry
from ..sim.engine import Simulator
from ..sim.process import Future, SimProcess


class CqDispatcher:
    """Routes CQ entries to per-predicate waiters.

    Each delivered entry costs one CQ-poll overhead (demultiplexing a
    shared queue), charged before the waiter resumes.
    """

    def __init__(self, sim: Simulator, cq: CompletionQueue, model: WakeupModel = CQ_POLL) -> None:
        self.sim = sim
        self.cq = cq
        self.model = model
        self._waiters: list[tuple[Callable[[CqEntry], bool], Future]] = []
        self._unclaimed: deque[CqEntry] = deque()
        self._pump: Optional[SimProcess] = None
        self.entries_dispatched = 0

    def wait_for(self, pred: Callable[[CqEntry], bool]) -> Future:
        """Future resolving with the first entry matching *pred*."""
        fut = Future(self.sim)
        # Check entries that arrived before anyone asked for them.
        for i, entry in enumerate(self._unclaimed):
            if pred(entry):
                del self._unclaimed[i]
                self.sim.schedule(self.model.delay_after_store(), fut.resolve, entry)
                return fut
        self._waiters.append((pred, fut))
        self._ensure_pump()
        return fut

    def wait_wr(self, wr_id: int, kind=None) -> Future:
        """Convenience: wait for an entry by work-request id (and kind)."""
        return self.wait_for(
            lambda e: e.wr_id == wr_id and (kind is None or e.kind == kind)
        )

    def _ensure_pump(self) -> None:
        if self._pump is None or self._pump.finished:
            self._pump = SimProcess(self.sim, self._pump_loop(), "cq-pump")

    def _pump_loop(self):
        while self._waiters:
            entry = yield self.cq.wait()
            self.entries_dispatched += 1
            yield self.model.delay_after_store()  # shared-queue demux cost
            for i, (pred, fut) in enumerate(self._waiters):
                if pred(entry):
                    del self._waiters[i]
                    fut.resolve(entry)
                    break
            else:
                self._unclaimed.append(entry)
