"""Target-side completion detection strategies for RDMA (paper §II, §V-A).

RDMA itself gives the target no completion signal, so deployments use:

* ``LAST_BYTE_POLL`` — poll the final byte of the landing buffer.  Fast,
  but **only correct when the network writes bytes in order** (static
  routing); on an adaptively routed network the last byte can land
  first, signalling completion over a still-hole-ridden buffer.  This
  also technically violates the InfiniBand spec (paper §IV-D).
* ``SEND_RECV`` — the spec-compliant scheme: after the write is acked,
  the initiator issues a small send; the target's recv CQE marks
  completion.  Required on adaptive networks; costs an ack fence plus a
  full extra message (the overhead Figs 4-5 quantify).
* ``WRITE_IMM`` — write-with-immediate generates a target CQE but only
  carries small payloads (< 64 B), so it cannot replace SEND_RECV for
  real transfers.
"""

from __future__ import annotations

from enum import Enum

from ..network.routing import RoutingMode


class CompletionMode(Enum):
    LAST_BYTE_POLL = "last_byte_poll"
    SEND_RECV = "send_recv"
    WRITE_IMM = "write_imm"


class UnsafeCompletionError(RuntimeError):
    """Raised when a completion mode is invalid for the routing mode."""


def check_mode_safety(mode: CompletionMode, routing: RoutingMode, allow_unsafe: bool = False) -> None:
    """LAST_BYTE_POLL on an adaptive network corrupts data; refuse it
    unless the caller explicitly opts into demonstrating the failure."""
    if (
        mode is CompletionMode.LAST_BYTE_POLL
        and not routing.ordered
        and not allow_unsafe
    ):
        raise UnsafeCompletionError(
            "last-byte polling requires byte-ordered delivery; adaptive routing "
            "reorders packets (pass allow_unsafe=True only to demonstrate the bug)"
        )


def spec_compliant_mode(routing: RoutingMode) -> CompletionMode:
    """What a correct deployment must use for bulk transfers."""
    return CompletionMode.SEND_RECV
