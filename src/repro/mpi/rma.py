"""MPI RMA over RVMA and RDMA (paper §IV-E/F).

The paper argues MPI's RMA epoch model maps *naturally* onto RVMA —
epochs are a hardware concept, fences need no receiver polling, and
retained epoch buffers enable ``MPIX_Rewind``.  This veneer makes that
concrete: an ``MPI_Win_allocate / MPI_Put / MPI_Get / MPI_Win_fence``
surface over either backend, with every synchronization built from
*real* simulated traffic (the tree collectives), so the two backends'
costs diverge exactly where the protocols do:

* **window allocation** — RDMA must allgather every rank's
  ``(addr, len, rkey)`` (3 u64s per rank through the reduction tree);
  RVMA mailboxes are derived from (rank, window id) and need nothing.
* **fence** — both sides allreduce per-target put counts; an RVMA
  receiver then installs the now-known count as the hardware threshold
  (``RVMA_Win_set_threshold``) and sleeps on its completion pointer,
  rotating to a fresh epoch buffer; RDMA relies on initiator-side ack
  fences and re-exposes the same static buffer.
* **MPIX_Rewind** — RVMA restores a previous epoch from the NIC's
  retained ring; on RDMA it raises: the buffer was overwritten in
  place, exactly the paper's §IV-F diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ..cluster.builder import Cluster
from ..collectives.tree import TreeComm
from ..core.api import RvmaApi
from ..memory.buffer import HostBuffer
from ..nic.lut import EpochType
from ..rdma.verbs import VerbsEndpoint
from ..motifs.transfer import RdmaProtocol, RvmaProtocol

#: Mailbox tag space for MPI windows (distinct from motif/collective tags).
WIN_TAG_BASE = 2000

#: Host memcpy bandwidth for the fence copy-forward / rewind restore
#: (bytes per ns; ~16 GB/s single-core stream).
MEMCPY_BPNS = 16.0

#: A threshold no realistic epoch reaches (before the fence installs
#: the real one).
OPEN_THRESHOLD = 2**62


class RewindUnsupportedError(RuntimeError):
    """MPIX_Rewind on an RDMA-backed window: the exposure buffer was
    overwritten in place, so no previous epoch exists to return to —
    the precise limitation the paper's multi-epoch buffers remove."""


def win_mailbox(rank: int, win_id: int) -> int:
    """Mailbox for rank's exposure window — derived, never exchanged."""
    return ((rank & 0xFFFFFFFF) << 16) | (WIN_TAG_BASE + win_id)


@dataclass
class _EpochLedger:
    """Outgoing-op bookkeeping for the current access epoch."""

    counts: list[int]
    pending: list = field(default_factory=list)  # ops awaiting local/ack completion

    def reset(self) -> None:
        self.counts = [0] * len(self.counts)
        self.pending = []


class MpiRma:
    """Factory/communicator for MPI-style windows on one cluster."""

    def __init__(self, cluster: Cluster, ring_depth: int = 4) -> None:
        if ring_depth < 2:
            raise ValueError("ring_depth must be >= 2 (current + 1 retained)")
        self.cluster = cluster
        self.backend = cluster.nic_type
        self.ring_depth = ring_depth
        self.n = cluster.n_nodes
        protocol = RvmaProtocol() if self.backend == "rvma" else RdmaProtocol()
        # Count vectors need n slots; the RDMA descriptor allgather 3n.
        self.comm = TreeComm(cluster, protocol, vector_slots=max(self.n, 3 * self.n))
        self._next_win_id = 0
        self._protocol = protocol

    def next_win_id(self) -> int:
        """A fresh collective window id (same value on every rank)."""
        self._next_win_id += 1
        return self._next_win_id

    def win_allocate(self, rank: int, size: int, win_id: int) -> Generator:
        """Collective: every rank calls this with the same *win_id*.

        Returns that rank's :class:`RankWindow`.
        """
        comm = yield from self.comm.setup(rank)
        win = RankWindow(self, rank, size, win_id, comm)
        yield from win._allocate()
        return win


class RankWindow:
    """One rank's view of an MPI RMA window."""

    def __init__(self, rma: MpiRma, rank: int, size: int, win_id: int, comm) -> None:
        self.rma = rma
        self.rank = rank
        self.size = size
        self.win_id = win_id
        self.comm = comm
        self.node = rma.cluster.node(rank)
        self.epoch = 0
        self.ledger = _EpochLedger(counts=[0] * rma.n)
        self.freed = False
        # backend state
        self._api: Optional[RvmaApi] = None
        self._win = None  # repro.core.window.Window
        self._ring: list[HostBuffer] = []
        self._verbs: Optional[VerbsEndpoint] = None
        self._local: Optional[HostBuffer] = None
        self._regions: dict[int, object] = {}  # RDMA: rank -> MemoryRegion

    # ------------------------------------------------------------------ allocate

    def _allocate(self) -> Generator:
        if self.rma.backend == "rvma":
            yield from self._allocate_rvma()
        else:
            yield from self._allocate_rdma()

    def _allocate_rvma(self) -> Generator:
        self._api = self.rma._protocol.api(self.node)
        self._win = yield from self._api.init_window(
            win_mailbox(self.rank, self.win_id),
            epoch_threshold=OPEN_THRESHOLD,
            epoch_type=EpochType.EPOCH_OPS,
        )
        for i in range(self.rma.ring_depth):
            buf = HostBuffer.allocate(self.node.memory, self.size, label=f"mpiwin{i}")
            self._ring.append(buf)
            yield from self._api.post_buffer(self._win, buffer=buf)
        self._local = self._ring[0]
        # Mailboxes are derived: nothing to exchange.  Synchronize so no
        # rank puts before every window exists.
        yield from self.rma.comm.barrier(self.comm)

    def _allocate_rdma(self) -> Generator:
        self._verbs = self.rma._protocol.verbs(self.node)
        self._local = HostBuffer.allocate(self.node.memory, self.size, label="mpiwin")
        region = yield from self._verbs.reg_mr(self._local)
        # Allgather (addr, len, rkey) of every rank through the tree:
        # each rank contributes its 3 slots of the 3n-vector; the sum of
        # one-hot contributions is the concatenated table.
        vector = [0] * (3 * self.rma.n)
        vector[3 * self.rank : 3 * self.rank + 3] = [region.addr, region.length, region.rkey]
        table = yield from self.rma.comm.allreduce_sum(self.comm, vector)
        from ..memory.buffer import MemoryRegion

        for r in range(self.rma.n):
            addr, length, rkey = table[3 * r : 3 * r + 3]
            self._regions[r] = MemoryRegion(addr=addr, length=length, rkey=rkey, node_id=r)

    # ------------------------------------------------------------------ RMA ops

    def put(self, target: int, data: bytes = b"", size: Optional[int] = None,
            disp: int = 0) -> Generator:
        """MPI_Put: nonblocking; completes at the next fence."""
        if self.freed:
            raise RuntimeError("window is freed")
        nbytes = size if size is not None else len(data)
        if disp + nbytes > self.size:
            raise ValueError(f"put [{disp}, +{nbytes}) beyond window of {self.size}B")
        if self.rma.backend == "rvma":
            op = yield from self._api.put(
                target, win_mailbox(target, self.win_id), data=data,
                size=nbytes, offset=disp,
            )
            self.ledger.pending.append(op.local_done)
        else:
            region = self._regions[target]
            op = yield from self._verbs.rdma_write(
                target, region, nbytes, data, offset=disp, signaled=False
            )
            self.ledger.pending.append(op.done)
        self.ledger.counts[target] += 1
        return op

    def get(self, target: int, length: int, disp: int = 0) -> Generator:
        """MPI_Get: blocking convenience; returns the fetched bytes."""
        dest = HostBuffer.allocate(self.node.memory, length, label="mpi-get")
        if self.rma.backend == "rvma":
            op = yield from self._api.get(
                target, win_mailbox(target, self.win_id), length, dest, offset=disp
            )
            ok = yield op.done
            if not ok:
                raise RuntimeError(f"MPI_Get from rank {target} failed")
        else:
            region = self._regions[target]
            op = self.node.nic.hw_read(target, region.addr + disp, region.rkey, length, dest)
            entry = yield op.done
            if not entry.ok:
                raise RuntimeError(f"MPI_Get from rank {target} failed")
        return dest.contents()

    # ------------------------------------------------------------------ fence

    def fence(self) -> Generator:
        """MPI_Win_fence: close the access+exposure epoch (collective)."""
        # 1. local/remote completion of everything we initiated.
        for fut in self.ledger.pending:
            yield fut
        # 2. learn how many ops targeted each rank this epoch.
        totals = yield from self.rma.comm.allreduce_sum(self.comm, self.ledger.counts)
        expected = totals[self.rank]
        if self.rma.backend == "rvma":
            yield from self._fence_rvma(expected)
        # RDMA: every sender held its ack fence before the allreduce, so
        # all data targeting us is already placed; the same static
        # buffer stays exposed (and no history is retained).
        self.ledger.reset()
        self.epoch += 1
        # Closing round: no rank may start the next access epoch until
        # every rank has rotated/closed its exposure epoch — otherwise a
        # fast neighbour's next-epoch put would land in this epoch's
        # buffer (the standard two-round MPI_Win_fence structure).
        yield from self.rma.comm.barrier(self.comm)
        return self.epoch

    def _fence_rvma(self, expected: int) -> Generator:
        api, win = self._api, self._win
        if expected > 0:
            # The once-unknown completion criterion is now known:
            # install it; hardware completes as soon as (possibly
            # already) the counter reaches it.
            ok = yield self.node.nic.hw_set_threshold(win.virtual_addr, expected)
            if not ok:
                raise RuntimeError("window has no active buffer at fence")
        else:
            yield from api.win_inc_epoch(win)
        info = yield from api.wait_completion(win)
        # Rotate: copy the completed state forward into the next epoch's
        # buffer so MPI window semantics (contents persist) hold, then
        # recycle the buffer rotating out of the retained ring.
        nxt = self._ring[(self.epoch + 1) % self.rma.ring_depth]
        data = info.record.buffer.contents()
        yield self.size / MEMCPY_BPNS
        nxt.write(0, data)
        self._local = nxt
        yield from api.post_buffer(self._win, buffer=info.record.buffer)

    # ------------------------------------------------------------------ rewind

    def rewind(self, epochs_back: int = 1) -> Generator:
        """MPIX_Rewind (paper §IV-F): restore a previous fence epoch.

        Returns the epoch number restored.  RDMA windows raise
        :class:`RewindUnsupportedError` — there is nothing to restore.
        """
        if self.rma.backend != "rvma":
            raise RewindUnsupportedError(
                "RDMA re-exposes one static buffer; previous epochs were "
                "overwritten in place (paper §IV-F)"
            )
        if epochs_back >= self.rma.ring_depth:
            raise ValueError(
                f"ring_depth {self.rma.ring_depth} retains at most "
                f"{self.rma.ring_depth - 1} epochs"
            )
        record = yield from self._api.rewind(self._win, epochs_back + 1)
        if record is None:
            raise RuntimeError(f"NIC no longer retains epoch {self.epoch - epochs_back}")
        data = self.node.memory.read(record.head_addr, record.length)
        yield len(data) / MEMCPY_BPNS
        if data:
            self._local.write(0, data.ljust(self.size, b"\x00")[: self.size])
        return record.epoch

    # ------------------------------------------------------------------ local access

    def read(self, disp: int = 0, length: Optional[int] = None) -> bytes:
        """Read the window's current contents (host memory)."""
        return self._local.read(disp, length if length is not None else self.size - disp)

    def write_local(self, disp: int, data: bytes) -> None:
        """Local store into the window (host memory)."""
        self._local.write(disp, data)

    def free(self) -> Generator:
        """MPI_Win_free: close the exposure window."""
        self.freed = True
        if self.rma.backend == "rvma":
            yield from self._api.close_win(self._win)
        else:
            yield self.node.nic.hw_dereg_mr(self._regions[self.rank].rkey)
        return None
