"""MPI RMA veneer over RVMA/RDMA (paper SS IV-E/F in practice)."""

from .rma import (
    MEMCPY_BPNS,
    MpiRma,
    RankWindow,
    RewindUnsupportedError,
    win_mailbox,
)

__all__ = [
    "MEMCPY_BPNS",
    "MpiRma",
    "RankWindow",
    "RewindUnsupportedError",
    "win_mailbox",
]
