"""Figure 6: UCX amortization analysis.

For each message size: the RDMA buffer-setup cost (Fig-1 handshake +
registration + rkey wireup), the steady-state exchange latency, and the
number of exchanges needed before setup is amortized to within the 3%
margin of error — for both static (last-byte) and adaptive (send/recv)
steady states.
"""

from __future__ import annotations

from ..timing.amortization import DEFAULT_TOLERANCE, amortization_analysis
from ..timing.calibration import UCX_CX5_THUNDERX2, Testbed
from .report import ExperimentResult

FIG6_SIZES = [2 ** k for k in range(4, 17, 2)]  # 16 B .. 64 KiB


def run_fig6(
    sizes: list[int] | None = None,
    testbed: Testbed = UCX_CX5_THUNDERX2,
    tolerance: float = DEFAULT_TOLERANCE,
) -> ExperimentResult:
    sizes = sizes or FIG6_SIZES
    analysis = amortization_analysis(testbed, sizes, "ucx", tolerance)
    rows = []
    for stat, adap in zip(analysis["static"], analysis["adaptive"]):
        rows.append(
            [
                stat.size,
                round(stat.setup_ns),
                round(stat.steady_ns),
                stat.exchanges_needed,
                round(adap.steady_ns),
                adap.exchanges_needed,
            ]
        )
    max_static = max(p.exchanges_needed for p in analysis["static"])
    return ExperimentResult(
        name="fig6",
        title=f"UCX Amortization Analysis (tolerance {tolerance:.0%})",
        headers=[
            "size_B",
            "setup_ns",
            "static_steady_ns",
            "static_N",
            "adaptive_steady_ns",
            "adaptive_N",
        ],
        rows=rows,
        summary={
            "max_exchanges_needed": max_static,
            "testbed": testbed.name,
        },
        paper_claims={
            "observation": "a large number of exchanges is needed to amortize setup"
        },
    )
