"""Fault-recovery experiment: MPIX_Rewind vs restart-from-scratch.

The paper's §IV-F argues multi-epoch buffers give RVMA "the world's
first hardware-level fault-tolerant RDMA" but shows no numbers.  This
experiment quantifies it on a timestep producer/consumer:

* a producer streams per-timestep snapshots into a consumer's window
  and dies during timestep F of N;
* **rewind recovery**: the consumer retrieves the last complete epoch
  from the NIC ring and a standby producer resumes from timestep F —
  cost = detection + rewind + re-running the lost partial step;
* **restart recovery**: no retained state — the replacement producer
  re-runs every timestep from 0.

Reported: total completion time and the fraction of work preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..cluster.builder import Cluster
from ..core.api import RvmaApi
from ..core.fault_tolerance import latest_consistent_epoch, mpix_rewind
from ..faults.injectors import FaultInjector
from ..sim.process import spawn
from .report import ExperimentResult

MAILBOX = 0xFA117
DETECTION_TIMEOUT_NS = 50_000.0


@dataclass
class RecoveryOutcome:
    total_ns: float
    steps_replayed: int
    recovered_epoch: int


def _snapshot(step: int, size: int) -> bytes:
    return bytes((step * 41 + i) % 256 for i in range(size))


def _run_scenario(
    n_steps: int,
    fail_at: int,
    step_bytes: int,
    step_compute_ns: float,
    use_rewind: bool,
) -> RecoveryOutcome:
    """One producer/consumer run with a mid-stream failure."""
    cl = Cluster.build(n_nodes=3, topology="star", nic_type="rvma", fidelity="flow")
    producer = RvmaApi(cl.node(0))
    standby = RvmaApi(cl.node(2))
    consumer = RvmaApi(cl.node(1))
    injector = FaultInjector(cl)
    outcome: dict = {}

    def producer_proc() -> Generator:
        yield 2_000.0
        for step in range(fail_at):
            yield step_compute_ns
            op = yield from producer.put(1, MAILBOX, data=_snapshot(step, step_bytes))
            yield op.local_done
        # Dies mid-way through timestep `fail_at`.
        yield step_compute_ns / 2
        half = _snapshot(fail_at, step_bytes)[: step_bytes // 2]
        op = yield from producer.put(1, MAILBOX, data=half, size=len(half))
        yield op.local_done
        injector.fail_node_at(0, cl.sim.now + 1.0)

    def consumer_proc() -> Generator:
        win = yield from consumer.init_window(MAILBOX, epoch_threshold=step_bytes)
        for _ in range(n_steps + 2):
            yield from consumer.post_buffer(win, size=step_bytes)
        received = 0
        while received < fail_at:
            yield from consumer.wait_completion(win)
            received += 1
        # The next epoch never completes: detect via timeout.
        yield DETECTION_TIMEOUT_NS
        if use_rewind:
            completed = yield from latest_consistent_epoch(consumer, win)
            rewound = yield from mpix_rewind(consumer, win, 1)
            outcome["recovered_epoch"] = rewound.epoch
            resume_from = completed + 1  # everything before is safe
        else:
            # Restart semantics: nothing retained; in-progress buffer
            # state is undefined, all prior epochs must be assumed lost.
            outcome["recovered_epoch"] = -1
            resume_from = 0
            # Fresh window for the re-run (old one has a dangling epoch).
            yield from consumer.close_win(win)
            win = yield from consumer.init_window(MAILBOX + 1, epoch_threshold=step_bytes)
            for _ in range(n_steps + 1):
                yield from consumer.post_buffer(win, size=step_bytes)
        outcome["resume_from"] = resume_from
        # Tell the standby producer where to resume (one control put).
        op = yield from consumer.put(2, MAILBOX + 2, size=8)
        yield op.local_done
        remaining = n_steps - resume_from
        for _ in range(remaining):
            yield from consumer.wait_completion(win)
        outcome["end"] = cl.sim.now

    def standby_proc() -> Generator:
        go = yield from standby.init_window(MAILBOX + 2, epoch_threshold=8)
        yield from standby.post_buffer(go, size=8)
        yield from standby.wait_completion(go)
        resume_from = outcome["resume_from"]
        target_mailbox = MAILBOX if use_rewind else MAILBOX + 1
        for step in range(resume_from, n_steps):
            yield step_compute_ns
            op = yield from standby.put(1, target_mailbox, data=_snapshot(step, step_bytes))
            yield op.local_done

    procs = [
        spawn(cl.sim, producer_proc(), "producer"),
        spawn(cl.sim, consumer_proc(), "consumer"),
        spawn(cl.sim, standby_proc(), "standby"),
    ]
    cl.sim.run()
    stuck = [p.name for p in procs if not p.finished]
    if stuck:
        raise RuntimeError(f"fault-recovery scenario deadlocked: {stuck}")
    return RecoveryOutcome(
        total_ns=outcome["end"],
        steps_replayed=n_steps - outcome["resume_from"],
        recovered_epoch=outcome["recovered_epoch"],
    )


def run_fault_recovery(
    n_steps: int = 20,
    fail_at: int = 15,
    step_bytes: int = 64 * 1024,
    step_compute_ns: float = 100_000.0,
) -> ExperimentResult:
    """Quantify §IV-F: rewind vs restart after a mid-stream failure."""
    rewind = _run_scenario(n_steps, fail_at, step_bytes, step_compute_ns, True)
    restart = _run_scenario(n_steps, fail_at, step_bytes, step_compute_ns, False)
    preserved = 1.0 - rewind.steps_replayed / n_steps
    rows = [
        ["rewind (MPIX_Rewind)", round(rewind.total_ns), rewind.steps_replayed,
         f"{preserved:.0%}"],
        ["restart from scratch", round(restart.total_ns), restart.steps_replayed, "0%"],
    ]
    return ExperimentResult(
        name="fault-recovery",
        title=(
            f"§IV-F: recovery after failure at step {fail_at}/{n_steps} "
            f"({step_bytes}B snapshots)"
        ),
        headers=["strategy", "completion_ns", "steps_replayed", "work_preserved"],
        rows=rows,
        summary={
            "speedup_from_rewind": restart.total_ns / rewind.total_ns,
            "steps_saved": restart.steps_replayed - rewind.steps_replayed,
            "recovered_epoch": rewind.recovered_epoch,
        },
        paper_claims={
            "observation": "multi-epoch buffers allow rolling communication "
            "back to a previous known state instead of restarting (§IV-F)"
        },
    )
