"""Noisy-neighbor isolation: multi-tenant QoS under an incast storm.

The adversarial cell for :mod:`repro.services.qos`: one aggressor
tenant open-loop floods the shard streams while a victim tenant runs a
steady Zipf workload.  Each seed runs the victim **solo** first (same
cluster, same seed, aggressor silent) to establish its baseline p99,
then the combined run, and reports the *isolation factor* — victim p99
combined over victim p99 solo.

With QoS armed (admission token buckets, RC_OVERLOAD shedding, DRR
weighted-fair sweeps, NIC placement quotas) the victim must stay within
a bounded factor of its solo latency while the aggressor is shed and
throttled; with QoS off the same cell must *show the violation* — that
contrast is the experiment's point, and the ``qos-noisy`` CI job
asserts both sides of it.

Liveness holds either way: clients run with deadlines + retries, so
every issued op resolves as ok / error / RC_OVERLOAD / deadline-
exceeded — :class:`~repro.services.LoadStats.all_resolved` is part of
the invariant.

Also the home of the ``qos`` CLI subcommand
(``rvma-experiments qos --help``).
"""

from __future__ import annotations

import argparse
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from ..cluster.builder import Cluster
from ..core.api import RvmaApi
from ..nic.rvma import RvmaNicConfig
from ..observability import MetricsRegistry
from ..services import (
    ClientRobustnessConfig,
    KvClient,
    KvServer,
    KvServerConfig,
    LoadGenerator,
    LoadStats,
    QosConfig,
    ShardMap,
    TenantDirectory,
    TenantSpec,
    WorkloadConfig,
    install_placement_quota,
)
from ..services.kv import REPLY_MAILBOX_BASE, REQUEST_MAILBOX_BASE
from ..sim.process import AllOf, spawn
from .chaos import CHAOS_RELIABILITY
from .report import ExperimentResult

#: Tenant ids for the two roles (0 stays the untenanted default).
VICTIM = 1
AGGRESSOR = 2

#: QoS-on isolation bound the CI job asserts: victim p99 combined must
#: stay within this factor of its solo baseline.
ISOLATION_BOUND = 2.0


@dataclass
class NoisyOutcome:
    """One seed's noisy-neighbor cell (solo baseline + combined run)."""

    seed: int
    qos: bool
    completed: bool
    error: Optional[str]
    victim_solo_p99_ns: float
    victim_p99_ns: float
    victim_stats: LoadStats
    aggressor_stats: LoadStats
    overload_replies: int
    quota_rejects: int
    retries: int
    victim_deadline_misses: int
    puts_lost: int
    puts_lost_quota: int
    events_executed: int = 0

    @property
    def isolation_factor(self) -> float:
        if self.victim_solo_p99_ns <= 0:
            return float("inf")
        return self.victim_p99_ns / self.victim_solo_p99_ns

    @property
    def resolved(self) -> bool:
        """Every issued op (both tenants) reached a terminal resolution."""
        return self.victim_stats.all_resolved() and self.aggressor_stats.all_resolved()

    @property
    def invariants_ok(self) -> bool:
        """Liveness + integrity, independent of the isolation verdict.

        ``puts_lost`` may exceed zero only by the quota-shed count —
        anything beyond that is silent loss, QoS or not.
        """
        return bool(
            self.completed
            and self.error is None
            and self.resolved
            and self.puts_lost <= self.puts_lost_quota
        )

    @property
    def isolated(self) -> bool:
        """The QoS promise: bounded victim p99, no victim deadline misses."""
        return (
            self.isolation_factor <= ISOLATION_BOUND
            and self.victim_deadline_misses == 0
        )


def default_tenants() -> TenantDirectory:
    """The cell's tenant policy: favoured victim, throttled aggressor.

    The victim is unmetered (admission rate 0) and carries 4x the DRR
    weight; the aggressor gets a modest admission budget plus a NIC
    placement quota, so overload is shed at *both* enforcement points.
    """
    return TenantDirectory(
        tenants=(
            TenantSpec(VICTIM, "victim", weight=4.0),
            TenantSpec(
                AGGRESSOR,
                "aggressor",
                weight=1.0,
                admit_rate_bytes_per_us=96.0,
                admit_burst_bytes=4096.0,
                nic_quota_bytes_per_us=192.0,
                nic_quota_burst_bytes=8192.0,
            ),
        ),
        default=TenantSpec(0, "default", weight=1.0),
    )


def run_noisy_neighbor(
    seed: int = 1,
    qos: bool = True,
    n_server_nodes: int = 2,
    shards_per_node: int = 2,
    victim_nodes: int = 2,
    aggressor_nodes: int = 2,
    clients_per_node: int = 2,
    victim_ops: int = 160,
    aggressor_ops: int = 800,
    victim_interarrival_ns: float = 6000.0,
    aggressor_batch: int = 8,
    aggressor_value_bytes: int = 1024,
    deadline_ns: float = 2_000_000.0,
    aggressor_deadline_ns: float = 400_000.0,
    tenants: Optional[TenantDirectory] = None,
    sim_deadline_ns: float = 120_000_000.0,
) -> NoisyOutcome:
    """Run one seed's cell: victim solo, then victim + aggressor.

    Both runs use identical cluster/seed/tenant wiring — the only
    difference is whether the aggressor generator is driven — so the
    isolation factor measures the aggressor's interference and nothing
    else.  The aggressor is a closed-loop incast: every client keeps
    ``aggressor_batch`` large puts in flight back-to-back, the worst
    sustained pressure the pool can offer; its deadline is short so
    shed ops resolve fast and the storm stays dense.
    """
    tenants = tenants or default_tenants()
    solo_p99, _solo = _run_cell(
        seed, qos, tenants, n_server_nodes, shards_per_node, victim_nodes,
        aggressor_nodes, clients_per_node, victim_ops, 0,
        victim_interarrival_ns, aggressor_batch,
        aggressor_value_bytes, deadline_ns, aggressor_deadline_ns, sim_deadline_ns,
    )
    victim_p99, out = _run_cell(
        seed, qos, tenants, n_server_nodes, shards_per_node, victim_nodes,
        aggressor_nodes, clients_per_node, victim_ops, aggressor_ops,
        victim_interarrival_ns, aggressor_batch,
        aggressor_value_bytes, deadline_ns, aggressor_deadline_ns, sim_deadline_ns,
    )
    out.victim_solo_p99_ns = solo_p99
    out.victim_p99_ns = victim_p99
    return out


def _run_cell(
    seed: int,
    qos: bool,
    tenants: TenantDirectory,
    n_server_nodes: int,
    shards_per_node: int,
    victim_nodes: int,
    aggressor_nodes: int,
    clients_per_node: int,
    victim_ops: int,
    aggressor_ops: int,
    victim_interarrival_ns: float,
    aggressor_batch: int,
    aggressor_value_bytes: int,
    deadline_ns: float,
    aggressor_deadline_ns: float,
    sim_deadline_ns: float,
) -> tuple[float, NoisyOutcome]:
    n_nodes = n_server_nodes + victim_nodes + aggressor_nodes
    cluster = Cluster.build(
        n_nodes=n_nodes, topology="dragonfly", nic_type="rvma", fidelity="flow",
        seed=seed, nic_config=RvmaNicConfig(reliability=CHAOS_RELIABILITY),
    )
    victim_node_ids = list(range(n_server_nodes, n_server_nodes + victim_nodes))
    aggressor_node_ids = list(
        range(n_server_nodes + victim_nodes, n_nodes)
    )
    for node_id in victim_node_ids:
        tenants.assign_node(node_id, VICTIM)
    for node_id in aggressor_node_ids:
        tenants.assign_node(node_id, AGGRESSOR)

    # Finite serving capacity (modeled host CPU per request): without
    # it execution is instantaneous, no queue ever forms, and there is
    # nothing for an aggressor to steal or for QoS to protect.
    server_config = KvServerConfig(
        service_ns_per_request=800.0, service_ns_per_byte=0.2
    )
    shard_map = ShardMap(list(range(n_server_nodes)), shards_per_node)
    qos_config = QosConfig() if qos else None
    servers = [
        KvServer(
            cluster.nodes[n], shard_map, server_config,
            qos=qos_config, tenants=tenants if qos else None,
        ).start()
        for n in range(n_server_nodes)
    ]
    if qos:
        for n in range(n_server_nodes):
            install_placement_quota(
                cluster.nodes[n], tenants,
                mailbox_lo=REQUEST_MAILBOX_BASE, mailbox_hi=REPLY_MAILBOX_BASE,
            )

    robustness = ClientRobustnessConfig()

    def make_clients(node_ids: list, tenant: int, offset: int) -> list:
        return [
            KvClient(
                RvmaApi(cluster.nodes[n]), shard_map, index=offset + i,
                max_put_bytes=server_config.chunk_bytes,
                tenant_id=tenant, robustness=robustness,
            )
            for n in node_ids
            for i in range(clients_per_node)
        ]

    victim_clients = make_clients(victim_node_ids, VICTIM, 0)
    aggressor_clients = make_clients(aggressor_node_ids, AGGRESSOR, 0)

    victim_gen = LoadGenerator(
        cluster.sim, victim_clients,
        WorkloadConfig(
            n_ops=victim_ops, n_keys=96, value_bytes=64, zipf_s=0.9,
            mode="open", mean_interarrival_ns=victim_interarrival_ns,
            deadline_ns=deadline_ns, rng_stream="kv-victim",
        ),
    )
    aggressor_gen = LoadGenerator(
        cluster.sim, aggressor_clients,
        WorkloadConfig(
            n_ops=aggressor_ops, n_keys=32, value_bytes=aggressor_value_bytes,
            zipf_s=0.0, get_frac=0.1, put_frac=0.9, mode="closed",
            batch=aggressor_batch,
            deadline_ns=aggressor_deadline_ns, rng_stream="kv-aggressor",
        ),
    )

    def drive(gen: LoadGenerator, clients: list):
        for client in clients:
            yield from client.open()
        yield from gen.run()

    def master():
        procs = [spawn(cluster.sim, drive(victim_gen, victim_clients), "noisy-victim")]
        if aggressor_ops > 0:
            procs.append(
                spawn(cluster.sim, drive(aggressor_gen, aggressor_clients), "noisy-aggressor")
            )
        yield AllOf([p.done_future for p in procs])
        # Drain grace: retransmits for ops that resolved at their
        # deadline may still be in flight; let them land (as stale
        # duplicates) before the shard streams close, so shutdown
        # doesn't masquerade as put loss.
        yield 100_000.0
        for server in servers:
            server.stop()

    proc = spawn(cluster.sim, master(), "noisy-master")
    error: Optional[str] = None
    try:
        cluster.sim.run(until=sim_deadline_ns)
    except RuntimeError as exc:
        error = str(exc)
    if error is None and not proc.finished:
        error = (
            f"cell did not finish by sim_deadline_ns={sim_deadline_ns:,.0f} "
            "(an op stalled past its deadline machinery)"
        )

    registry = MetricsRegistry.collect(cluster.sim)
    victim_hist = registry.histograms.get(
        f"service.kv.tenant.request_latency_ns.t{VICTIM}"
    )
    victim_p99 = victim_hist.percentile(0.99) if victim_hist is not None else float("nan")
    counters = registry.counters
    outcome = NoisyOutcome(
        seed=seed,
        qos=qos,
        completed=proc.finished,
        error=error,
        victim_solo_p99_ns=float("nan"),
        victim_p99_ns=victim_p99,
        victim_stats=victim_gen.stats,
        aggressor_stats=aggressor_gen.stats,
        overload_replies=counters.get("service.kv.overload_replies", 0),
        quota_rejects=counters.get("nic.rvma.quota_rejects", 0),
        retries=counters.get("service.kv.client.retries", 0),
        victim_deadline_misses=counters.get(
            f"service.kv.tenant.deadline_misses.t{VICTIM}", 0
        ),
        puts_lost=counters.get("nic.rvma.puts_lost", 0),
        puts_lost_quota=counters.get("nic.rvma.puts_lost_quota", 0),
        events_executed=cluster.sim.events_executed,
    )
    return victim_p99, outcome


def run_noisy_sweep(seeds: tuple = (1, 2, 3), **kw) -> ExperimentResult:
    """The contrast sweep: every seed runs QoS on *and* off.

    Passes when each seed's QoS-on cell is isolated (bounded victim
    p99, zero victim deadline misses) and its QoS-off cell demonstrates
    the violation QoS exists to prevent.
    """
    rows = []
    all_ok = True
    contrast_ok = True
    for seed in seeds:
        on = run_noisy_neighbor(seed=seed, qos=True, **kw)
        off = run_noisy_neighbor(seed=seed, qos=False, **kw)
        all_ok = all_ok and on.invariants_ok and off.invariants_ok and on.isolated
        contrast_ok = contrast_ok and not off.isolated
        for out in (on, off):
            rows.append([
                seed,
                "on" if out.qos else "off",
                f"{out.victim_solo_p99_ns:,.0f}",
                f"{out.victim_p99_ns:,.0f}",
                f"{out.isolation_factor:.2f}",
                out.overload_replies,
                out.quota_rejects,
                out.victim_deadline_misses,
                "yes" if out.invariants_ok else "NO",
                "yes" if out.isolated else "no",
            ])
    return ExperimentResult(
        name="qos-noisy",
        title="Noisy-neighbor isolation: victim p99 vs solo baseline, QoS on/off",
        headers=[
            "seed", "qos", "solo p99 ns", "p99 ns", "factor",
            "shed", "quota", "misses", "ok", "isolated",
        ],
        rows=rows,
        summary={
            "all_invariants_ok": all_ok,
            "qos_off_shows_violation": contrast_ok,
            "isolation_bound": ISOLATION_BOUND,
            "seeds": list(seeds),
        },
        paper_claims={
            "observation": "mailbox-level quotas plus weighted-fair sweeps "
            "extend RVMA's receiver-managed backpressure to tenant isolation: "
            "an incast-storming neighbour is shed at admission and the NIC "
            "while the victim's tail stays within a small factor of solo"
        },
    )


# ------------------------------------------------------------------- qos CLI


@contextmanager
def _engine_mode(mode: str) -> Iterator[None]:
    """Pin the engine fast/plain mode for the run (CI matrixes over it)."""
    from ..sim import engine

    saved = engine.DEFAULT_FAST
    engine.DEFAULT_FAST = mode == "fast"
    try:
        yield
    finally:
        engine.DEFAULT_FAST = saved


def qos_main(argv: Optional[list[str]] = None) -> int:
    """``rvma-experiments qos``: run the noisy-neighbor cell or sweep."""
    parser = argparse.ArgumentParser(
        prog="rvma-experiments qos",
        description="Noisy-neighbor isolation cell for the multi-tenant KV service",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="pin to one seed (default: the 3-seed matrix for --sweep, 1 otherwise)",
    )
    parser.add_argument(
        "--seeds", type=str, default="",
        help="comma-separated seed list for --sweep (overrides --seed)",
    )
    parser.add_argument(
        "--sweep", action="store_true",
        help="run the QoS on/off contrast sweep and assert both sides",
    )
    parser.add_argument(
        "--no-qos", action="store_true",
        help="single cell only: run with QoS disabled (shows the violation)",
    )
    parser.add_argument(
        "--engine", choices=("fast", "plain"), default="fast",
        help="event-engine mode (CI matrixes over both)",
    )
    args = parser.parse_args(argv)

    with _engine_mode(args.engine):
        if args.sweep:
            if args.seeds:
                seeds = tuple(int(s) for s in args.seeds.split(",") if s.strip())
            elif args.seed is not None:
                seeds = (args.seed,)
            else:
                seeds = (1, 2, 3)
            result = run_noisy_sweep(seeds=seeds)
            print(result.to_text())
            for key, value in result.summary.items():
                print(f"  {key}: {value}")
            ok = result.summary["all_invariants_ok"] and result.summary["qos_off_shows_violation"]
            return 0 if ok else 1

        out = run_noisy_neighbor(
            seed=args.seed if args.seed is not None else 1, qos=not args.no_qos
        )
        print(
            f"qos-noisy seed={out.seed} qos={'on' if out.qos else 'off'}: "
            f"victim p99 {out.victim_p99_ns:,.0f} ns vs solo "
            f"{out.victim_solo_p99_ns:,.0f} ns (factor {out.isolation_factor:.2f}), "
            f"shed {out.overload_replies}, quota rejects {out.quota_rejects}, "
            f"victim misses {out.victim_deadline_misses}"
        )
        print(
            f"invariants: {'ok' if out.invariants_ok else 'VIOLATED'}; "
            f"isolated: {'yes' if out.isolated else 'no'}"
            + (f" ({out.error})" if out.error else "")
        )
        return 0 if out.invariants_ok and (out.isolated or not out.qos) else 1
