"""Dependency-free SVG renderings of the regenerated figures.

Produces real figure files (``docs/figures/figN.svg``) from
:class:`~repro.experiments.report.ExperimentResult` objects using plain
SVG string assembly — no matplotlib in an offline reproduction.
Figs 4/5 render as log-x latency-reduction lines; Figs 7/8 as grouped
speedup bars with the paper's claimed values as reference lines.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence
from xml.sax.saxutils import escape

from .report import ExperimentResult

WIDTH, HEIGHT = 860, 420
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 70, 30, 46, 84
PLOT_W = WIDTH - MARGIN_L - MARGIN_R
PLOT_H = HEIGHT - MARGIN_T - MARGIN_B

SERIES_COLORS = ("#2563eb", "#dc2626", "#059669", "#d97706")
REF_COLOR = "#7c3aed"
GRID = "#e5e7eb"
INK = "#111827"


def _svg_open(title: str) -> list[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" '
        f'viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<text x="{WIDTH / 2}" y="24" text-anchor="middle" font-size="15" '
        f'fill="{INK}" font-weight="bold">{escape(title)}</text>',
    ]


def _axis_labels(x_label: str, y_label: str) -> list[str]:
    return [
        f'<text x="{MARGIN_L + PLOT_W / 2}" y="{HEIGHT - 8}" text-anchor="middle" '
        f'font-size="12" fill="{INK}">{escape(x_label)}</text>',
        f'<text x="16" y="{MARGIN_T + PLOT_H / 2}" text-anchor="middle" font-size="12" '
        f'fill="{INK}" transform="rotate(-90 16 {MARGIN_T + PLOT_H / 2})">'
        f"{escape(y_label)}</text>",
    ]


def line_chart_logx(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    title: str,
    x_label: str,
    y_label: str,
    reference: Optional[float] = None,
    reference_label: str = "paper",
) -> str:
    """Log-x line chart (the Fig 4/5 shape)."""
    if not xs or not series:
        raise ValueError("need data")
    lo_x, hi_x = math.log2(min(xs)), math.log2(max(xs))
    all_y = [y for ys in series.values() for y in ys] + (
        [reference] if reference is not None else []
    )
    hi_y = max(all_y) * 1.1 or 1.0

    def px(x: float) -> float:
        return MARGIN_L + (math.log2(x) - lo_x) / max(hi_x - lo_x, 1e-9) * PLOT_W

    def py(y: float) -> float:
        return MARGIN_T + PLOT_H - y / hi_y * PLOT_H

    out = _svg_open(title)
    # Gridlines + y ticks.
    for i in range(5):
        y = hi_y * i / 4
        out.append(
            f'<line x1="{MARGIN_L}" y1="{py(y):.1f}" x2="{MARGIN_L + PLOT_W}" '
            f'y2="{py(y):.1f}" stroke="{GRID}"/>'
        )
        out.append(
            f'<text x="{MARGIN_L - 6}" y="{py(y) + 4:.1f}" text-anchor="end" '
            f'font-size="10" fill="{INK}">{y:.0f}</text>'
        )
    # X ticks at powers of two.
    for x in xs:
        out.append(
            f'<text x="{px(x):.1f}" y="{MARGIN_T + PLOT_H + 16}" text-anchor="middle" '
            f'font-size="9" fill="{INK}" transform="rotate(45 {px(x):.1f} '
            f'{MARGIN_T + PLOT_H + 16})">{_fmt_size(x)}</text>'
        )
    if reference is not None:
        out.append(
            f'<line x1="{MARGIN_L}" y1="{py(reference):.1f}" x2="{MARGIN_L + PLOT_W}" '
            f'y2="{py(reference):.1f}" stroke="{REF_COLOR}" stroke-dasharray="6 4"/>'
        )
        out.append(
            f'<text x="{MARGIN_L + PLOT_W - 4}" y="{py(reference) - 5:.1f}" '
            f'text-anchor="end" font-size="11" fill="{REF_COLOR}">'
            f"{escape(reference_label)} {reference:g}</text>"
        )
    for idx, (name, ys) in enumerate(series.items()):
        color = SERIES_COLORS[idx % len(SERIES_COLORS)]
        points = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in zip(xs, ys))
        out.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" stroke-width="2"/>'
        )
        for x, y in zip(xs, ys):
            out.append(
                f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="2.5" fill="{color}"/>'
            )
        out.append(
            f'<text x="{MARGIN_L + 8 + idx * 140}" y="{MARGIN_T - 8}" font-size="11" '
            f'fill="{color}">&#9632; {escape(name)}</text>'
        )
    out.extend(_axis_labels(x_label, y_label))
    out.append("</svg>")
    return "\n".join(out)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str,
    y_label: str,
    reference: Optional[float] = None,
    reference_label: str = "paper avg",
) -> str:
    """Vertical bar chart (the Fig 7/8 shape)."""
    if not labels:
        raise ValueError("need data")
    hi_y = max(list(values) + ([reference] if reference else [])) * 1.1

    def py(y: float) -> float:
        return MARGIN_T + PLOT_H - y / hi_y * PLOT_H

    slot = PLOT_W / len(labels)
    bar_w = slot * 0.7
    out = _svg_open(title)
    for i in range(5):
        y = hi_y * i / 4
        out.append(
            f'<line x1="{MARGIN_L}" y1="{py(y):.1f}" x2="{MARGIN_L + PLOT_W}" '
            f'y2="{py(y):.1f}" stroke="{GRID}"/>'
        )
        out.append(
            f'<text x="{MARGIN_L - 6}" y="{py(y) + 4:.1f}" text-anchor="end" '
            f'font-size="10" fill="{INK}">{y:.1f}</text>'
        )
    for i, (label, value) in enumerate(zip(labels, values)):
        x = MARGIN_L + i * slot + (slot - bar_w) / 2
        color = SERIES_COLORS[i % 2]
        out.append(
            f'<rect x="{x:.1f}" y="{py(value):.1f}" width="{bar_w:.1f}" '
            f'height="{MARGIN_T + PLOT_H - py(value):.1f}" fill="{color}" opacity="0.85"/>'
        )
        cx = x + bar_w / 2
        out.append(
            f'<text x="{cx:.1f}" y="{MARGIN_T + PLOT_H + 12}" text-anchor="end" '
            f'font-size="8.5" fill="{INK}" transform="rotate(-45 {cx:.1f} '
            f'{MARGIN_T + PLOT_H + 12})">{escape(label)}</text>'
        )
        out.append(
            f'<text x="{cx:.1f}" y="{py(value) - 4:.1f}" text-anchor="middle" '
            f'font-size="9" fill="{INK}">{value:.2f}</text>'
        )
    if reference is not None:
        out.append(
            f'<line x1="{MARGIN_L}" y1="{py(reference):.1f}" x2="{MARGIN_L + PLOT_W}" '
            f'y2="{py(reference):.1f}" stroke="{REF_COLOR}" stroke-dasharray="6 4"/>'
        )
        out.append(
            f'<text x="{MARGIN_L + PLOT_W - 4}" y="{py(reference) - 5:.1f}" '
            f'text-anchor="end" font-size="11" fill="{REF_COLOR}">'
            f"{escape(reference_label)} {reference:g}</text>"
        )
    out.extend(_axis_labels("", y_label))
    out.append("</svg>")
    return "\n".join(out)


def _fmt_size(nbytes: float) -> str:
    n = int(nbytes)
    if n >= 1024:
        return f"{n // 1024}KiB"
    return f"{n}B"


def svg_for_result(result: ExperimentResult) -> str:
    """Best-effort SVG for a known experiment result shape."""
    if result.name in ("fig4", "fig5"):
        xs = [row[0] for row in result.rows]
        return line_chart_logx(
            xs,
            {
                "RVMA (ns)": [row[1] for row in result.rows],
                "RDMA (ns)": [row[2] for row in result.rows],
            },
            result.title,
            "message size",
            "one-way latency (ns)",
        )
    if result.name in ("fig7", "fig8"):
        labels = [f"{r[0]}/{r[1]}/{r[2]}" for r in result.rows]
        values = [r[5] for r in result.rows]
        return bar_chart(
            labels, values, result.title, "RDMA/RVMA speedup (x)",
            reference=result.paper_claims.get("avg_speedup"),
        )
    if result.name == "fig6":
        xs = [row[0] for row in result.rows]
        return line_chart_logx(
            xs,
            {
                "static baseline": [float(r[3]) for r in result.rows],
                "adaptive baseline": [float(r[5]) for r in result.rows],
            },
            result.title,
            "message size",
            "exchanges to amortize",
        )
    # Generic: last numeric column as bars.
    labels = [str(r[0]) for r in result.rows]
    values = []
    for row in result.rows:
        nums = [c for c in row if isinstance(c, (int, float))]
        values.append(float(nums[-1]) if nums else 0.0)
    return bar_chart(labels, values, result.title, "")
