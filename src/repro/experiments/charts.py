"""Terminal bar charts for experiment results.

Keeps the figures *visible* without plotting dependencies: horizontal
bars scaled to the terminal, one per configuration, with the paper's
claimed values marked for side-by-side reading.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .report import ExperimentResult

BAR_WIDTH = 44
FULL, PARTIALS = "█", " ▏▎▍▌▋▊▉"


def _bar(value: float, vmax: float, width: int = BAR_WIDTH) -> str:
    if vmax <= 0:
        return ""
    frac = max(0.0, min(1.0, value / vmax))
    cells = frac * width
    whole = int(cells)
    rem = int((cells - whole) * 8)
    return FULL * whole + (PARTIALS[rem] if rem else "")


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    unit: str = "",
    reference: Optional[float] = None,
    reference_label: str = "paper",
) -> str:
    """Render one horizontal bar per (label, value).

    ``reference`` draws a marker column at the claimed value so measured
    bars can be eyeballed against the paper.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must pair up")
    if not values:
        return title
    vmax = max(list(values) + ([reference] if reference else []))
    label_w = max(len(l) for l in labels)
    lines = [title] if title else []
    ref_col = int(min(1.0, (reference / vmax)) * BAR_WIDTH) if reference else None
    for label, value in zip(labels, values):
        bar = _bar(value, vmax)
        if ref_col is not None:
            padded = list(bar.ljust(BAR_WIDTH + 1))
            if padded[ref_col] == " ":
                padded[ref_col] = "┊"
            bar = "".join(padded).rstrip()
        lines.append(f"{label.rjust(label_w)}  {bar} {value:.2f}{unit}")
    if reference is not None:
        lines.append(f"{'':{label_w}}  ┊ = {reference_label} {reference:.2f}{unit}")
    return "\n".join(lines)


def chart_for_result(result: ExperimentResult) -> str:
    """Best-effort chart for a known experiment result shape."""
    if result.name in ("fig4", "fig5"):
        labels = [f"{row[0]}B" for row in result.rows]
        values = [row[3] for row in result.rows]  # reduction_%
        ref = result.paper_claims.get("max_reduction_pct")
        return bar_chart(
            labels, values, f"{result.title} — % latency reduction", "%",
            reference=ref,
        )
    if result.name in ("fig7", "fig8"):
        labels = [f"{row[0]}/{row[1]}/{row[2]}" for row in result.rows]
        values = [row[5] for row in result.rows]  # speedup
        ref = result.paper_claims.get("avg_speedup")
        return bar_chart(
            labels, values, f"{result.title} — RDMA/RVMA speedup", "x",
            reference=ref, reference_label="paper avg",
        )
    if result.name == "fig6":
        labels = [f"{row[0]}B" for row in result.rows]
        values = [float(row[3]) for row in result.rows]  # static_N
        return bar_chart(
            labels, values, f"{result.title} — exchanges to amortize (static)", ""
        )
    # Generic fallback: last numeric column.
    labels = [str(row[0]) for row in result.rows]
    values = []
    for row in result.rows:
        nums = [c for c in row if isinstance(c, (int, float))]
        values.append(float(nums[-1]) if nums else 0.0)
    return bar_chart(labels, values, result.title)
