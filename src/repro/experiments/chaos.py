"""Chaos harness: motifs under randomized fault schedules.

The reliability layer (:mod:`repro.reliability`) claims RVMA traffic
survives loss, duplication, flapping links and partitions end-to-end.
This harness proves it the only way that counts — by running the real
motifs (allreduce, incast, halo3d) under composed
:class:`~repro.faults.chaos.ChaosSchedule` faults and checking the
invariants:

* **completion** — every rank finishes; the simulation terminates;
* **exactness** — application results are byte/count-identical to a
  fault-free run of the same seed (retransmission is invisible above
  the transport);
* **bounded recovery** — retransmissions stay within the per-message
  retry budget and no message is abandoned (``rel_gave_up == 0``);
* **no silent loss** — ``puts_lost`` and friends stay zero.

With ``n_crashes > 0`` the schedule additionally crash-stops nodes
mid-run (NIC state destroyed, not just traffic dropped) and the
:mod:`repro.recovery` stack — checkpoints, rejoin protocol, replay —
must bring them back; the :class:`~repro.recovery.auditor.InvariantAuditor`
shadows every placement and the run must finish byte-identical to a
fault-free run with **zero** violations.

The same entry points back ``tests/integration/test_chaos.py`` /
``test_crash_restart.py`` (fixed seed matrices) and the ``chaos`` /
``chaos-crash`` experiment CLI tables.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..cluster.builder import Cluster
from ..faults.chaos import ChaosSchedule
from ..faults.injectors import FaultInjector
from ..motifs.allreduce import AllreduceMotif
from ..motifs.base import Motif, MotifResult
from ..motifs.halo3d import Halo3D
from ..motifs.incast import Incast
from ..motifs.transfer import RvmaProtocol
from ..network.config import NetworkConfig
from ..network.routing import RoutingMode
from ..nic.rvma import RvmaNicConfig
from ..observability import RunReport
from ..recovery.auditor import InvariantAuditor
from ..recovery.rejoin import RecoveryConfig, RecoveryManager
from ..reliability.transport import ReliabilityConfig, hottest_retransmit_flows
from .report import ExperimentResult

#: Transport tuning for chaos runs: timeouts sized to the small-scale
#: motif RTTs, budget sized so backoff coverage exceeds the longest
#: schedulable window (ChaosSchedule caps windows; see its docstring).
CHAOS_RELIABILITY = ReliabilityConfig(
    retransmit_timeout=8_000.0,
    backoff_factor=2.0,
    max_backoff=250_000.0,
    max_retries=10,
    heartbeat_interval=20_000.0,
    min_suspicion_timeout=120_000.0,
)

#: Default schedule shape for the harness (overridable per call).
DEFAULT_HORIZON_NS = 400_000.0
DEFAULT_EVENTS = 4
DEFAULT_MAX_WINDOW_NS = 50_000.0


#: Default motif shapes for the chaos sweeps (the scenario fuzzer
#: overrides these per scenario via ``motif_params``).
DEFAULT_MOTIF_PARAMS = {
    "allreduce": {"iterations": 4, "vector_len": 4},
    "incast": {"msgs_per_client": 3, "msg_bytes": 2048},
    "halo3d": {"iterations": 2, "msg_bytes": 4096},
}


def _build_motif(name: str, cluster: Cluster, params: Optional[dict] = None) -> Motif:
    proto = RvmaProtocol()
    kw = dict(DEFAULT_MOTIF_PARAMS.get(name, {}))
    kw.update(params or {})
    if name == "allreduce":
        return AllreduceMotif(cluster, proto, **kw)
    if name == "incast":
        return Incast(cluster, proto, **kw)
    if name == "halo3d":
        return Halo3D(cluster, proto, **kw)
    raise ValueError(f"unknown chaos motif {name!r}")


def _counter_total(cluster: Cluster, suffix: str) -> int:
    counters = cluster.sim.stats.counters()
    return sum(v for k, v in counters.items() if k.endswith(suffix))


def _fingerprint(name: str, motif: Motif, cluster: Cluster) -> tuple:
    """What must be identical between a chaotic and a fault-free run."""
    if name == "allreduce":
        return ("allreduce", tuple(sorted((r, tuple(v)) for r, v in motif.reduced.items())))
    # Incast/halo: every byte placed exactly once, every epoch completed.
    return (
        name,
        _counter_total(cluster, ".bytes_placed"),
        _counter_total(cluster, ".epochs_completed"),
    )


def _state_fingerprint(name: str, motif: Motif, cluster: Cluster) -> tuple:
    """Application-state fingerprint for crash-restart comparisons.

    Under crash-restart the peers legally *re-place* bytes lost with the
    NIC, so placement counters exceed a fault-free run's even when the
    end state is perfect.  Instead compare what the application can
    observe: per (node, mailbox) the final epoch and every retained
    completed-epoch record (epoch, length, content digest) — plus the
    reduced vectors for allreduce.
    """
    if name == "allreduce":
        return ("allreduce", tuple(sorted((r, tuple(v)) for r, v in motif.reduced.items())))
    rows = []
    for node in cluster.nodes:
        lut = getattr(node.nic, "lut", None)
        if lut is None:
            continue
        for mailbox, entry in sorted(lut.entries.items()):
            retired = tuple(
                (
                    r.epoch,
                    r.length,
                    hashlib.blake2s(
                        r.buffer.buffer.read(0, r.length) if r.length else b"",
                        digest_size=8,
                    ).hexdigest(),
                )
                for r in entry.retired
            )
            rows.append((node.node_id, mailbox, entry.epoch, retired))
    return (name, tuple(rows))


@dataclass
class ChaosOutcome:
    """One motif run under one chaos schedule."""

    motif: str
    seed: int
    reliability: bool
    completed: bool
    #: non-None when the run failed (deadlock / data-loss indicators).
    error: Optional[str]
    elapsed_ns: float
    deliveries_dropped: int
    retransmits: int
    acks: int
    dups_suppressed: int
    gave_up: int
    #: application results identical to the fault-free reference run.
    identical_to_clean: Optional[bool]
    schedule: list[str] = field(default_factory=list)
    hottest_flows: list = field(default_factory=list)
    #: crash-restart cycles the schedule injected.
    crash_restarts: int = 0
    #: rejoin handshakes completed (restarted node's hellos serviced).
    rejoins: int = 0
    #: send-journal coverage holes during replay (must be 0).
    replay_holes: int = 0
    #: runtime invariant auditor verdict (None: auditor not enabled).
    audit_violations: Optional[int] = None
    audit_report: Optional[dict] = None
    #: initiator give-up accounting (satellite visibility: silent loss
    #: paths that used to vanish into ``puts_lost``).
    put_window_evictions: int = 0
    put_giveups: int = 0
    #: observability snapshot (:class:`repro.observability.RunReport`),
    #: present when the run was invoked with ``observe=True``.
    run_report: Optional[object] = None

    @property
    def invariants_ok(self) -> bool:
        return bool(
            self.completed
            and self.error is None
            and self.gave_up == 0
            and self.identical_to_clean is not False
            and self.replay_holes == 0
            and not self.audit_violations
            and self.put_window_evictions == 0
            and self.put_giveups == 0
        )


def run_motif_under_chaos(
    motif_name: str,
    seed: int = 1,
    n_nodes: int = 8,
    topology: str = "dragonfly",
    reliability: bool = True,
    reliability_config: Optional[ReliabilityConfig] = None,
    n_events: int = DEFAULT_EVENTS,
    horizon_ns: float = DEFAULT_HORIZON_NS,
    max_window_ns: float = DEFAULT_MAX_WINDOW_NS,
    drop_prob: float = 0.05,
    compare_clean: bool = True,
    configure: Optional[Callable[[FaultInjector], None]] = None,
    n_crashes: int = 0,
    audit: Optional[bool] = None,
    recovery: bool = True,
    recovery_config: Optional[RecoveryConfig] = None,
    observe: bool = False,
    trace: bool = False,
    schedule: Optional[ChaosSchedule] = None,
    routing: Optional[RoutingMode] = None,
    motif_params: Optional[dict] = None,
    scenario_meta: Optional[dict] = None,
) -> ChaosOutcome:
    """Run one motif under a generated chaos schedule and audit it.

    ``reliability=False`` runs the identical schedule on the unprotected
    NICs — the regression guard that the faults *are* harmful (the run
    stalls or loses data without the transport).

    ``n_crashes > 0`` adds crash-restart events to the schedule and arms
    the full :mod:`repro.recovery` stack (checkpoints + rejoin +
    replay).  ``audit`` attaches the
    :class:`~repro.recovery.auditor.InvariantAuditor` (defaults to on
    exactly when crashes are injected); crash runs compare against the
    clean reference by *application state* rather than placement
    counters, since sanctioned replay legally re-places bytes.
    ``recovery=False`` crashes without the recovery stack — the
    regression guard that an amnesiac restart alone is *not* enough.

    ``observe=True`` attaches the observability layer and returns a
    :class:`repro.observability.RunReport` in ``ChaosOutcome.run_report``;
    ``trace=True`` additionally enables span recording in every category
    (the report then carries per-category rollups and hottest spans).

    The scenario fuzzer (:mod:`repro.scenarios`) drives this entry
    point with a fully pinned plan: ``schedule`` replaces the generated
    one, ``routing``/``motif_params`` pin the network mode and workload
    shape, and ``scenario_meta`` stamps ``scenario.*`` counters plus a
    ``scenario`` span so campaign reports can attribute the run.
    """
    nic_config = RvmaNicConfig(
        reliability=(reliability_config or CHAOS_RELIABILITY) if reliability else None
    )
    net_config = NetworkConfig(routing=routing) if routing is not None else None
    cluster = Cluster.build(
        n_nodes=n_nodes, topology=topology, nic_type="rvma", fidelity="flow",
        seed=seed, nic_config=nic_config, net_config=net_config,
    )
    if audit is None:
        audit = n_crashes > 0
    auditor = InvariantAuditor().attach(cluster) if audit else None
    injector = FaultInjector(cluster)
    manager: Optional[RecoveryManager] = None
    if n_crashes > 0 and reliability and recovery:
        manager = RecoveryManager(
            cluster,
            recovery_config or RecoveryConfig(horizon_ns=horizon_ns),
        ).start()
        manager.arm(injector)
    if schedule is None:
        schedule = ChaosSchedule.generate(
            cluster, horizon_ns=horizon_ns, n_events=n_events,
            max_window_ns=max_window_ns, drop_prob=drop_prob, n_crashes=n_crashes,
        )
    schedule.apply(injector)
    if configure is not None:
        configure(injector)
    motif = _build_motif(motif_name, cluster, motif_params)
    if observe and trace:
        cluster.sim.spans.enable()
    scenario_span = None
    if scenario_meta is not None:
        stats = cluster.sim.stats
        stats.counter("scenario.runs").add()
        stats.counter("scenario.faults_scheduled").add(len(schedule.events))
        stats.counter("scenario.workload_ops").add(
            int(scenario_meta.get("workload_ops", 0))
        )
        scenario_span = cluster.sim.spans.begin(
            "scenario", scenario_meta.get("workload", motif_name),
            id=scenario_meta.get("id", ""),
        )

    error: Optional[str] = None
    result: Optional[MotifResult] = None
    run_span = cluster.sim.spans.begin("run", motif_name, seed=seed)
    try:
        result = motif.run()
    except RuntimeError as exc:  # deadlocked ranks or data-loss indicators
        error = str(exc)
    cluster.sim.spans.end(run_span, completed=error is None)
    if scenario_span is not None:
        cluster.sim.spans.end(scenario_span, completed=error is None)

    counters = cluster.sim.stats.counters()
    fingerprint = _state_fingerprint if n_crashes > 0 else _fingerprint
    identical: Optional[bool] = None
    if compare_clean and error is None:
        clean_cluster = Cluster.build(
            n_nodes=n_nodes, topology=topology, nic_type="rvma", fidelity="flow",
            seed=seed, nic_config=nic_config, net_config=net_config,
        )
        clean_motif = _build_motif(motif_name, clean_cluster, motif_params)
        clean_motif.run()
        identical = fingerprint(motif_name, motif, cluster) == fingerprint(
            motif_name, clean_motif, clean_cluster
        )
    return ChaosOutcome(
        motif=motif_name,
        seed=seed,
        reliability=reliability,
        completed=error is None,
        error=error,
        elapsed_ns=result.elapsed if result is not None else float("nan"),
        deliveries_dropped=cluster.fabric.deliveries_dropped,
        retransmits=counters.get("reliability.rel_retransmits", 0),
        acks=counters.get("reliability.rel_acks_tx", 0),
        dups_suppressed=counters.get("reliability.rel_dups_suppressed", 0),
        gave_up=counters.get("reliability.rel_gave_up", 0),
        identical_to_clean=identical,
        schedule=schedule.describe(),
        hottest_flows=hottest_retransmit_flows(cluster, k=5),
        crash_restarts=len(injector.log.restarts),
        rejoins=len(manager.report.rejoins) if manager is not None else 0,
        replay_holes=len(manager.report.replay_holes) if manager is not None else 0,
        audit_violations=len(auditor.violations) if auditor is not None else None,
        audit_report=auditor.report() if auditor is not None else None,
        put_window_evictions=_counter_total(cluster, ".put_window_evictions"),
        put_giveups=_counter_total(cluster, ".put_giveups"),
        run_report=(
            RunReport.collect(
                cluster,
                meta={
                    "harness": "chaos",
                    "motif": motif_name,
                    "seed": seed,
                    "n_nodes": n_nodes,
                    "n_crashes": n_crashes,
                    "drop_prob": drop_prob,
                    "completed": error is None,
                },
            )
            if observe
            else None
        ),
    )


def run_chaos(
    seeds: tuple = (1, 2, 3),
    motifs: tuple = ("allreduce", "incast", "halo3d"),
    n_nodes: int = 8,
    **kw,
) -> ExperimentResult:
    """The chaos sweep: every motif x every seed, invariants audited."""
    rows = []
    all_ok = True
    total_retx = 0
    reports = []
    for motif in motifs:
        for seed in seeds:
            out = run_motif_under_chaos(motif, seed=seed, n_nodes=n_nodes, **kw)
            all_ok = all_ok and out.invariants_ok
            total_retx += out.retransmits
            if out.run_report is not None:
                reports.append(out.run_report)
            rows.append([
                motif,
                seed,
                out.deliveries_dropped,
                out.retransmits,
                out.dups_suppressed,
                "yes" if out.completed else "NO",
                {True: "yes", False: "NO", None: "-"}[out.identical_to_clean],
            ])
    return ExperimentResult(
        name="chaos",
        title=f"Chaos harness: motifs under composed fault schedules ({n_nodes} nodes)",
        headers=["motif", "seed", "drops", "retransmits", "dups", "completed", "exact"],
        rows=rows,
        summary={
            "all_invariants_ok": all_ok,
            "total_retransmits": total_retx,
            "seeds": list(seeds),
        },
        paper_claims={
            "observation": "reliability owned in the transport lets RVMA traffic "
            "survive lossy fabrics end-to-end (RAMC-style layering; extends §IV-F)"
        },
        run_report=(
            RunReport.merge(reports, meta={"harness": "chaos", "seeds": list(seeds)})
            if reports
            else None
        ),
    )


def run_crash_restart(
    seeds: tuple = (1, 2, 3),
    motifs: tuple = ("allreduce", "incast", "halo3d"),
    n_nodes: int = 8,
    n_crashes: int = 1,
    drop_prob: float = 0.05,
    **kw,
) -> ExperimentResult:
    """The crash-restart sweep: motifs survive a mid-run node crash.

    Every cell crash-stops ``n_crashes`` random nodes (NIC state
    destroyed) on top of the usual fabric chaos, recovers them through
    the checkpoint/rejoin/replay stack, and audits with the runtime
    invariant auditor.  A cell passes only if the run completes
    byte-identical to fault-free with zero violations, zero replay
    holes and zero initiator give-ups.
    """
    rows = []
    all_ok = True
    total_violations = 0
    reports = []
    for motif in motifs:
        for seed in seeds:
            out = run_motif_under_chaos(
                motif, seed=seed, n_nodes=n_nodes,
                n_crashes=n_crashes, drop_prob=drop_prob, **kw,
            )
            all_ok = all_ok and out.invariants_ok
            total_violations += out.audit_violations or 0
            if out.run_report is not None:
                reports.append(out.run_report)
            rows.append([
                motif,
                seed,
                out.crash_restarts,
                out.rejoins,
                out.retransmits,
                out.audit_violations if out.audit_violations is not None else "-",
                out.put_window_evictions + out.put_giveups,
                "yes" if out.completed else "NO",
                {True: "yes", False: "NO", None: "-"}[out.identical_to_clean],
            ])
    return ExperimentResult(
        name="chaos-crash",
        title=(
            f"Crash-restart harness: motifs across node crash + "
            f"checkpoint/rejoin recovery ({n_nodes} nodes)"
        ),
        headers=[
            "motif", "seed", "crashes", "rejoins", "retransmits",
            "violations", "giveups", "completed", "exact",
        ],
        rows=rows,
        summary={
            "all_invariants_ok": all_ok,
            "total_audit_violations": total_violations,
            "seeds": list(seeds),
            "n_crashes": n_crashes,
        },
        paper_claims={
            "observation": "retained-epoch state plus host-side journals makes "
            "§IV-F rewind a full crash-restart story: a node can lose its NIC "
            "state mid-run and the cluster converges to the fault-free result"
        },
        run_report=(
            RunReport.merge(
                reports, meta={"harness": "chaos-crash", "seeds": list(seeds)}
            )
            if reports
            else None
        ),
    )
