"""KV service under churn: serving traffic on RVMA, faults optional.

The chaos harness proves the *motifs* survive fault schedules; this
driver does the same for the sharded KV service (:mod:`repro.services`)
— a serving workload with open/closed-loop clients, Zipf key skew and
continuous many-to-few pressure on receiver-managed request streams.
Each cell runs one seed's workload, optionally under a
:class:`~repro.faults.chaos.ChaosSchedule` of link flaps, and reports:

* completion (every client got every reply; the run terminates);
* correctness (zero transport give-ups, zero silent put loss);
* the ``service.kv.request_latency_ns`` p50/p99 and the reliability
  counters that explain them (retransmits, paced deliveries).

Also the home of the ``services`` CLI subcommand
(``rvma-experiments services --help``).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional

from ..cluster.builder import Cluster
from ..core.api import RvmaApi
from ..faults.chaos import ChaosSchedule
from ..faults.injectors import FaultInjector
from ..nic.rvma import RvmaNicConfig
from ..observability import MetricsRegistry, RunReport
from ..services import KvClient, KvServer, KvServerConfig, LoadGenerator, ShardMap, WorkloadConfig
from ..sim.process import spawn
from .chaos import CHAOS_RELIABILITY
from .report import ExperimentResult

#: Chaos shape for churn cells: fabric-level flaps only — the service
#: must ride them out through the transport, not through recovery.
DEFAULT_HORIZON_NS = 600_000.0
DEFAULT_EVENTS = 3
DEFAULT_MAX_WINDOW_NS = 40_000.0


@dataclass
class KvOutcome:
    """One seed's KV workload run."""

    seed: int
    completed: bool
    error: Optional[str]
    elapsed_ns: float
    ops_issued: int
    ops_completed: int
    p50_ns: float
    p99_ns: float
    requests: int
    replies: int
    flushes: int
    reply_batch_mean: float
    retransmits: int
    rx_paced: int
    gave_up: int
    puts_lost: int
    #: simulator events executed — the bench harness's events/sec basis.
    events_executed: int = 0
    run_report: Optional[object] = None

    @property
    def invariants_ok(self) -> bool:
        return bool(
            self.completed
            and self.error is None
            and self.ops_completed == self.ops_issued
            and self.gave_up == 0
            and self.puts_lost == 0
        )


def run_kv_service(
    seed: int = 1,
    n_server_nodes: int = 3,
    shards_per_node: int = 2,
    n_client_nodes: int = 4,
    clients_per_node: int = 2,
    topology: str = "dragonfly",
    workload: Optional[WorkloadConfig] = None,
    server_config: Optional[KvServerConfig] = None,
    chaos: bool = False,
    horizon_ns: float = DEFAULT_HORIZON_NS,
    n_events: int = DEFAULT_EVENTS,
    max_window_ns: float = DEFAULT_MAX_WINDOW_NS,
    drop_prob: float = 0.0,
    deadline_ns: float = 50_000_000.0,
    observe: bool = False,
    trace: bool = False,
    fidelity: str = "flow",
) -> KvOutcome:
    """Run one seeded KV workload cell; returns its :class:`KvOutcome`.

    Server nodes are ``0..n_server_nodes-1``; clients spread across the
    next ``n_client_nodes`` nodes.  The cluster always runs with the
    reliability transport — the service's backpressure story *is* the
    transport's ``flow_room`` hold path, chaos or not.
    """
    workload = workload or WorkloadConfig()
    n_nodes = n_server_nodes + n_client_nodes
    cluster = Cluster.build(
        n_nodes=n_nodes, topology=topology, nic_type="rvma", fidelity=fidelity,
        seed=seed, nic_config=RvmaNicConfig(reliability=CHAOS_RELIABILITY),
    )
    if chaos:
        schedule = ChaosSchedule.generate(
            cluster, horizon_ns=horizon_ns, n_events=n_events,
            max_window_ns=max_window_ns, drop_prob=drop_prob,
            kinds=("link_flap",),
        )
        schedule.apply(FaultInjector(cluster))
    if observe and trace:
        cluster.sim.spans.enable()

    server_config = server_config or KvServerConfig()
    shard_map = ShardMap(list(range(n_server_nodes)), shards_per_node)
    servers = [
        KvServer(cluster.nodes[n], shard_map, server_config).start()
        for n in range(n_server_nodes)
    ]
    clients = [
        KvClient(
            RvmaApi(cluster.nodes[n_server_nodes + n]), shard_map, index=i,
            max_put_bytes=server_config.chunk_bytes,
        )
        for n in range(n_client_nodes)
        for i in range(clients_per_node)
    ]
    gen = LoadGenerator(cluster.sim, clients, workload)

    def master():
        for client in clients:
            yield from client.open()
        stats = yield from gen.run()
        for server in servers:
            server.stop()
        return stats

    proc = spawn(cluster.sim, master(), "kv-master")
    error: Optional[str] = None
    try:
        # Bounded: a stalled workload (e.g. a put held forever against
        # flow_room) would otherwise keep the poll loops generating
        # events and spin the drive loop indefinitely.
        cluster.sim.run(until=deadline_ns)
    except RuntimeError as exc:  # engine-level failure, not a modelled outcome
        error = str(exc)
    if error is None and not proc.finished:
        error = (
            f"workload did not finish by deadline_ns={deadline_ns:,.0f} "
            "(clients still waiting: stalled or deadlocked)"
        )

    registry = MetricsRegistry.collect(cluster.sim)
    latency = registry.histograms.get("service.kv.request_latency_ns")
    reply_batch = registry.summaries.get("service.kv.reply_batch")
    counters = registry.counters
    return KvOutcome(
        seed=seed,
        completed=proc.finished,
        error=error,
        elapsed_ns=cluster.sim.now,
        ops_issued=gen.stats.ops_issued,
        ops_completed=gen.stats.ops_completed,
        p50_ns=latency.percentile(0.50) if latency is not None else float("nan"),
        p99_ns=latency.percentile(0.99) if latency is not None else float("nan"),
        requests=counters.get("service.kv.requests", 0),
        replies=counters.get("service.kv.replies", 0),
        flushes=counters.get("service.kv.flushes", 0),
        reply_batch_mean=reply_batch.mean if reply_batch is not None else 0.0,
        retransmits=counters.get("transport.retransmits", 0),
        rx_paced=counters.get("transport.rx_paced", 0),
        gave_up=counters.get("transport.gave_up", 0),
        puts_lost=counters.get("nic.rvma.puts_lost", 0),
        events_executed=cluster.sim.events_executed,
        run_report=(
            RunReport.collect(
                cluster,
                meta={
                    "harness": "kv-churn",
                    "seed": seed,
                    "n_nodes": n_nodes,
                    "shards": shard_map.n_shards,
                    "clients": len(clients),
                    "mode": workload.mode,
                    "zipf_s": workload.zipf_s,
                    "chaos": chaos,
                    "completed": proc.finished,
                },
            )
            if observe
            else None
        ),
    )


def run_kv_churn(
    seeds: tuple = (1, 2, 3),
    chaos: bool = True,
    drop_prob: float = 0.02,
    observe: bool = False,
    trace: bool = False,
    **kw,
) -> ExperimentResult:
    """The churn sweep: the KV service across seeds, faults on.

    ``drop_prob`` adds light random loss on top of the flap windows so
    the retransmit column shows the ARQ earning its keep.
    """
    rows = []
    all_ok = True
    reports = []
    p99s = []
    for seed in seeds:
        out = run_kv_service(
            seed=seed, chaos=chaos, drop_prob=drop_prob if chaos else 0.0,
            observe=observe, trace=trace, **kw,
        )
        all_ok = all_ok and out.invariants_ok
        p99s.append(out.p99_ns)
        if out.run_report is not None:
            reports.append(out.run_report)
        rows.append([
            seed,
            out.ops_completed,
            f"{out.p50_ns:,.0f}",
            f"{out.p99_ns:,.0f}",
            f"{out.reply_batch_mean:.2f}",
            out.retransmits,
            out.rx_paced,
            "yes" if out.invariants_ok else "NO",
        ])
    return ExperimentResult(
        name="kv-churn",
        title="Sharded KV service under churn (Zipf load, link flaps, ARQ transport)",
        headers=["seed", "ops", "p50 ns", "p99 ns", "batch", "retransmits", "paced", "ok"],
        rows=rows,
        summary={
            "all_invariants_ok": all_ok,
            "worst_p99_ns": max(p99s) if p99s else float("nan"),
            "seeds": list(seeds),
        },
        paper_claims={
            "observation": "receiver-managed buckets give a serving workload "
            "sender-oblivious backpressure: clients never coordinate buffers, "
            "yet incast-style request floods survive loss and flaps exactly "
            "(extends §IV-B to an RPC service)"
        },
        run_report=(
            RunReport.merge(reports, meta={"harness": "kv-churn", "seeds": list(seeds)})
            if reports
            else None
        ),
    )


# ------------------------------------------------------------------- services CLI


def services_main(argv: Optional[list[str]] = None) -> int:
    """``rvma-experiments services``: run one KV workload cell directly."""
    parser = argparse.ArgumentParser(
        prog="rvma-experiments services",
        description="Drive the sharded RVMA key-value service",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="workload seed (default 1); with --churn, pins the sweep to "
        "this single seed so CI can shard seeds the same way the "
        "chaos/chaos-crash sweeps do",
    )
    parser.add_argument(
        "--churn", action="store_true",
        help="run the kv-churn sweep (chaos on) instead of a single cell; "
        "seeds come from --seeds, or --seed when given, else the "
        "default 3-seed matrix",
    )
    parser.add_argument(
        "--seeds", type=str, default="",
        help="comma-separated seed list for --churn (overrides --seed)",
    )
    parser.add_argument("--servers", type=int, default=3, help="server node count")
    parser.add_argument("--shards-per-node", type=int, default=2)
    parser.add_argument("--client-nodes", type=int, default=4)
    parser.add_argument("--clients-per-node", type=int, default=2)
    parser.add_argument("--ops", type=int, default=400)
    parser.add_argument("--keys", type=int, default=128)
    parser.add_argument("--value-bytes", type=int, default=64)
    parser.add_argument("--zipf", type=float, default=0.9, help="key-popularity skew (0 = uniform)")
    parser.add_argument("--mode", choices=("closed", "open"), default="closed")
    parser.add_argument("--batch", type=int, default=4, help="closed-loop pipeline depth")
    parser.add_argument(
        "--interarrival-ns", type=float, default=4000.0,
        help="open-loop mean interarrival",
    )
    parser.add_argument("--chaos", action="store_true", help="apply a link-flap schedule")
    parser.add_argument(
        "--metrics-out", type=str, default="",
        help="write the observability RunReport (JSON) here; markdown to <path>.md",
    )
    parser.add_argument("--trace", action="store_true", help="enable span tracing")
    args = parser.parse_args(argv)

    if args.churn:
        if args.seeds:
            seeds = tuple(int(s) for s in args.seeds.split(",") if s.strip())
        elif args.seed is not None:
            seeds = (args.seed,)
        else:
            seeds = (1, 2, 3)
        result = run_kv_churn(seeds=seeds, observe=bool(args.metrics_out), trace=args.trace)
        print(result.to_text())
        for key, value in result.summary.items():
            print(f"  {key}: {value}")
        if args.metrics_out and result.run_report is not None:
            result.run_report.save(args.metrics_out)
            print(f"observability report: {args.metrics_out}")
        return 0 if result.summary.get("all_invariants_ok") else 1

    workload = WorkloadConfig(
        n_ops=args.ops, n_keys=args.keys, value_bytes=args.value_bytes,
        zipf_s=args.zipf, mode=args.mode, batch=args.batch,
        mean_interarrival_ns=args.interarrival_ns,
    )
    out = run_kv_service(
        seed=args.seed if args.seed is not None else 1, n_server_nodes=args.servers,
        shards_per_node=args.shards_per_node, n_client_nodes=args.client_nodes,
        clients_per_node=args.clients_per_node, workload=workload,
        chaos=args.chaos, observe=bool(args.metrics_out), trace=args.trace,
    )
    print(
        f"kv-service seed={out.seed}: {out.ops_completed}/{out.ops_issued} ops, "
        f"p50 {out.p50_ns:,.0f} ns, p99 {out.p99_ns:,.0f} ns, "
        f"reply batch {out.reply_batch_mean:.2f}, retransmits {out.retransmits}, "
        f"paced {out.rx_paced}"
    )
    print(f"invariants: {'ok' if out.invariants_ok else 'VIOLATED'}"
          + (f" ({out.error})" if out.error else ""))
    if args.metrics_out and out.run_report is not None:
        out.run_report.save(args.metrics_out)
        with open(args.metrics_out + ".md", "w", encoding="utf-8") as fh:
            fh.write(out.run_report.to_markdown())
            fh.write("\n")
        print(f"observability report: {args.metrics_out}")
    return 0 if out.invariants_ok else 1
