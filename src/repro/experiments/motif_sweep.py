"""Figures 7 and 8: motif sweeps across topology x routing x link rate.

For every configuration the sweep runs the motif twice — once on an
RVMA cluster, once on an RDMA cluster with identical network/NIC cost
models — and reports the RDMA/RVMA speedup, the quantity the paper
plots.  The paper ran 8,192 nodes x 32 cores; node count here is a
parameter (64 by default for quick runs, 8192 reproduces the paper's
scale at flow fidelity).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Type

from ..cluster.builder import Cluster
from ..motifs.base import Motif
from ..motifs.halo3d import Halo3D
from ..motifs.sweep3d import Sweep3D
from ..motifs.transfer import RdmaProtocol, RvmaProtocol
from ..network.config import LINK_RATES, NetworkConfig
from ..network.routing import RoutingMode
from .report import ExperimentResult

DEFAULT_TOPOLOGIES = ("dragonfly", "fattree", "hyperx", "torus3d")
DEFAULT_RATES = ("100Gbps", "200Gbps", "400Gbps", "2Tbps")
DEFAULT_ROUTINGS = (RoutingMode.STATIC, RoutingMode.ADAPTIVE)


@dataclass
class MotifComparison:
    """One configuration's RVMA-vs-RDMA outcome."""

    topology: str
    routing: str
    rate: str
    rvma_ns: float
    rdma_ns: float

    @property
    def speedup(self) -> float:
        return self.rdma_ns / self.rvma_ns


def _run_one(
    motif_cls: Type[Motif],
    nic_type: str,
    n_nodes: int,
    topology: str,
    routing: RoutingMode,
    link_bw: float,
    seed: int,
    motif_kwargs: dict,
) -> float:
    net = NetworkConfig(link_bw=link_bw, routing=routing)
    cluster = Cluster.build(
        n_nodes=n_nodes,
        topology=topology,
        nic_type=nic_type,
        fidelity="flow",
        net_config=net,
        seed=seed,
    )
    protocol = RvmaProtocol() if nic_type == "rvma" else RdmaProtocol()
    result = motif_cls(cluster, protocol, **motif_kwargs).run()
    return result.elapsed


def _grid(topologies: tuple, routings: tuple, rates: tuple):
    for topology in topologies:
        for routing in routings:
            for rate in rates:
                yield topology, routing, rate


def run_motif_sweep(
    motif_cls: Type[Motif],
    n_nodes: int = 64,
    topologies: tuple = DEFAULT_TOPOLOGIES,
    rates: tuple = DEFAULT_RATES,
    routings: tuple = DEFAULT_ROUTINGS,
    seed: int = 0xC0FFEE,
    jobs: int = 1,
    **motif_kwargs,
) -> list[MotifComparison]:
    """The full Fig 7/8 grid; returns one comparison per configuration.

    ``jobs > 1`` fans independent (configuration, protocol) simulations
    out over worker processes — each run is a self-contained simulator,
    so the grid parallelises perfectly (set ``jobs=os.cpu_count()`` for
    paper-scale sweeps).
    """
    cells = list(_grid(topologies, routings, rates))
    tasks = [
        (motif_cls, nic, n_nodes, topology, routing, LINK_RATES[rate], seed, motif_kwargs)
        for (topology, routing, rate) in cells
        for nic in ("rvma", "rdma")
    ]
    if jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            elapsed = list(pool.map(_run_one_star, tasks))
    else:
        elapsed = [_run_one_star(t) for t in tasks]
    out = []
    for i, (topology, routing, rate) in enumerate(cells):
        out.append(
            MotifComparison(
                topology=topology,
                routing=routing.value,
                rate=rate,
                rvma_ns=elapsed[2 * i],
                rdma_ns=elapsed[2 * i + 1],
            )
        )
    return out


def _run_one_star(task: tuple) -> float:
    return _run_one(*task)


def _to_result(
    name: str,
    title: str,
    comparisons: list[MotifComparison],
    paper_claims: dict,
    n_nodes: int,
) -> ExperimentResult:
    rows = [
        [c.topology, c.routing, c.rate, round(c.rvma_ns), round(c.rdma_ns), c.speedup]
        for c in comparisons
    ]
    speedups = [c.speedup for c in comparisons]
    best = max(comparisons, key=lambda c: c.speedup)
    return ExperimentResult(
        name=name,
        title=title,
        headers=["topology", "routing", "link", "rvma_ns", "rdma_ns", "speedup_x"],
        rows=rows,
        summary={
            "avg_speedup": sum(speedups) / len(speedups),
            "max_speedup": best.speedup,
            "max_at": f"{best.topology}/{best.routing}/{best.rate}",
            "n_nodes": n_nodes,
        },
        paper_claims=paper_claims,
    )


def run_fig7(
    n_nodes: int = 64,
    topologies: tuple = DEFAULT_TOPOLOGIES,
    rates: tuple = DEFAULT_RATES,
    routings: tuple = DEFAULT_ROUTINGS,
    kb: int = 8,
    msg_bytes: int = 2048,
    compute_ns: float = 900.0,
    jobs: int = 1,
) -> ExperimentResult:
    """Fig 7: Sweep3D.  Paper: >=2x at contemporary rates, 4.4x at
    2 Tbps on an adaptively routed dragonfly, 3.56x average."""
    comps = run_motif_sweep(
        Sweep3D, n_nodes, topologies, rates, routings, jobs=jobs,
        kb=kb, msg_bytes=msg_bytes, compute_ns=compute_ns,
    )
    return _to_result(
        "fig7",
        f"RVMA vs RDMA using Sweep3D ({n_nodes} nodes)",
        comps,
        paper_claims={
            "avg_speedup": 3.56,
            "max_speedup": 4.4,
            "max_at": "dragonfly/adaptive/2Tbps",
        },
        n_nodes=n_nodes,
    )


def run_fig8(
    n_nodes: int = 64,
    topologies: tuple = DEFAULT_TOPOLOGIES,
    rates: tuple = DEFAULT_RATES,
    routings: tuple = DEFAULT_ROUTINGS,
    iterations: int = 10,
    msg_bytes: int = 96 * 1024,
    compute_ns: float = 1000.0,
    jobs: int = 1,
) -> ExperimentResult:
    """Fig 8: Halo3D.  Paper: 1.57x average; HyperX DOR 1.64x at
    400 Gbps and 1.89x at 2 Tbps."""
    comps = run_motif_sweep(
        Halo3D, n_nodes, topologies, rates, routings, jobs=jobs,
        iterations=iterations, msg_bytes=msg_bytes, compute_ns=compute_ns,
    )
    return _to_result(
        "fig8",
        f"RVMA vs RDMA using Halo3D ({n_nodes} nodes)",
        comps,
        paper_claims={
            "avg_speedup": 1.57,
            "max_speedup": 1.89,
            "max_at": "hyperx/static(DOR)/2Tbps",
        },
        n_nodes=n_nodes,
    )
