"""Trace replay harness: the same recorded load, every protocol variant.

Everything here drives one contract: a :class:`~repro.workloads.Trace`
replayed under any combination of engine mode (fast/plain), feature
toggles (QoS on/off, active mailboxes on/off) and — at the frame level —
wire backend (rvma/verbs/ucx) offers *bit-identical* load, so whatever
differs between two runs is the variant under test, never the workload.

Four entry points:

* :func:`record_trace` — run a stock :class:`LoadGenerator` workload
  with a :class:`TraceRecorder` attached and freeze the offered ops
  into a trace (the exemplars under ``corpus/traces/`` come from here);
* :func:`replay_trace` — replay a trace against a live sharded KV
  cluster and collect outcomes, per-key safety verdicts and metrics;
* :func:`compare_trace` — replay the same trace base vs QoS-on vs
  active-on and assert the documented contrasts on identical offered
  load (the ``trace compare`` CLI and CI wrap this);
* :func:`replay_trace_frames` — encode every trace row into its wire
  frame and push the per-client frame streams through one protocol
  backend, for the rvma/verbs/ucx byte-identity differential.

Also home of the ``trace`` CLI subcommand
(``rvma-experiments trace --help``).
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from typing import Optional

from ..cluster.builder import Cluster
from ..core.addressing import stable_hash64
from ..core.api import RvmaApi
from ..nic.rvma import RvmaNicConfig
from ..observability import MetricsRegistry, RunReport
from ..recovery.auditor import InvariantAuditor
from ..services import (
    ClientRobustnessConfig,
    KvClient,
    KvServer,
    KvServerConfig,
    LoadGenerator,
    LoadStats,
    QosConfig,
    ShardMap,
    TenantDirectory,
    TenantSpec,
    WorkloadConfig,
)
from ..services.wire import OP_PUT, encode_request
from ..sim.process import spawn
from ..workloads import (
    EXEMPLAR_NAMES,
    EXEMPLARS,
    Trace,
    TraceRecorder,
    TraceReplayer,
    check_replay_safety,
    exemplar_path,
    load_exemplar,
    value_for,
)
from ..workloads.replayer import _OP_CODES
from .chaos import CHAOS_RELIABILITY
from .qos_noisy import _engine_mode

#: Per-op deadline budget for QoS replay cells (the fuzzer's value): a
#: miss means a genuinely shed request, not a slow one.
TRACE_OP_DEADLINE_NS = 8_000_000.0

#: Whole-cell sim deadline (stall guard).
TRACE_SIM_DEADLINE_NS = 400_000_000.0

#: Hot keys armed on the NIC in active cells (top GET keys of the trace).
DEFAULT_HOT_KEYS = 4


def warm_value_for(key: str) -> bytes:
    """Deterministic warm-phase PUT payload for *key* (pure function)."""
    fill = (stable_hash64(key.encode("latin-1")) + 131) % 251 + 1
    return bytes([fill]) * 48


def hot_keys_of(trace: Trace, n_hot: int = DEFAULT_HOT_KEYS) -> tuple:
    """The trace's *n_hot* most-GET keys (count desc, key asc) as bytes."""
    counts: dict = {}
    for row in trace.rows:
        if row.op == "get":
            counts[row.key] = counts.get(row.key, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return tuple(key.encode("latin-1") for key, _n in ranked[:n_hot])


def _tenant_directory(trace: Trace) -> TenantDirectory:
    """The replay QoS policy, derived from the trace's tenant set.

    Lowest non-zero tenant is the favoured victim (4x DRR weight,
    unmetered); every other non-zero tenant gets a modest admission
    budget so overload is shed at the server door.  No NIC placement
    quotas — replay keeps ``puts_lost == 0`` an unconditional invariant.
    """
    nonzero = [t for t in trace.tenants() if t != 0]
    specs = []
    for i, tenant in enumerate(nonzero):
        if i == 0:
            specs.append(TenantSpec(tenant, "victim", weight=4.0))
        else:
            specs.append(TenantSpec(
                tenant, f"tenant{tenant}", weight=1.0,
                admit_rate_bytes_per_us=2.0, admit_burst_bytes=256.0,
            ))
    return TenantDirectory(
        tenants=tuple(specs), default=TenantSpec(0, "default", weight=1.0)
    )


@dataclass
class ReplayCell:
    """One replay run's observables."""

    completed: bool
    error: Optional[str]
    stats: LoadStats
    outcome_stream: list
    outcome_digest: str
    safety_failures: list
    p99_ns: float
    tenant_p99_ns: dict
    tenant_shed: dict
    requests: int
    served: int
    handler_served: int
    overload_replies: int
    puts_lost: int
    puts_lost_quota: int
    gave_up: int
    audit_ok: bool
    audit_violations: int
    events_executed: int
    report: Optional[dict] = None
    cluster: object = field(default=None, repr=False)

    @property
    def invariants_ok(self) -> bool:
        """Liveness + integrity + per-key safety for one cell."""
        return bool(
            self.completed
            and self.error is None
            and self.stats.all_resolved()
            and not self.safety_failures
            and self.puts_lost - self.puts_lost_quota == 0
            and self.gave_up == 0
            and self.audit_ok
        )


def replay_trace(
    trace: Trace,
    seed: int = 1,
    qos: bool = False,
    active: bool = False,
    audit: bool = True,
    observe: bool = False,
    n_hot: int = DEFAULT_HOT_KEYS,
    shards_per_node: int = 2,
    topology: str = "dragonfly",
    max_backlog: Optional[int] = None,
    check_safety: bool = True,
    sim_deadline_ns: float = TRACE_SIM_DEADLINE_NS,
) -> ReplayCell:
    """Replay *trace* against a live sharded KV cluster.

    The cluster shape follows the trace: one server node plus one client
    node per distinct trace client, each pool client stamped with its
    trace client's tenant.  The warm phase (one PUT per hot key, hot set
    derived from the trace alone) runs in **every** cell — QoS on or
    off, active on or off — so toggles never change the offered load.
    """
    clients_ids = trace.clients()
    if not clients_ids:
        raise ValueError("cannot replay an empty trace")
    n_nodes = 1 + len(clients_ids)
    cluster = Cluster.build(
        n_nodes=n_nodes, topology=topology, nic_type="rvma", fidelity="flow",
        seed=seed, nic_config=RvmaNicConfig(reliability=CHAOS_RELIABILITY),
    )
    if observe:
        cluster.sim.spans.enable()
    auditor = InvariantAuditor().attach(cluster) if audit else None

    hot = hot_keys_of(trace, n_hot)
    # Finite host serving capacity, the active_flash constants: without
    # per-request CPU cost no dispatch queue forms and neither QoS nor
    # the NIC serve path has anything to win.
    server_config = KvServerConfig(
        service_ns_per_request=800.0, service_ns_per_byte=0.2,
        hot_keys=hot if active else (),
    )
    shard_map = ShardMap([0], shards_per_node=shards_per_node)
    directory = _tenant_directory(trace) if qos else None
    if directory is not None:
        for i, tc in enumerate(clients_ids):
            directory.assign_node(1 + i, trace.tenant_of(tc))
        server = KvServer(
            cluster.nodes[0], shard_map, server_config,
            qos=QosConfig(), tenants=directory,
        ).start()
    else:
        server = KvServer(cluster.nodes[0], shard_map, server_config).start()
    # Identical client wiring in EVERY cell: max_retries=0 keeps the
    # safety oracle's executed-once-or-not-at-all ambiguity model, and
    # arming robustness unconditionally means the qos toggle changes
    # only server-side policy, never the client reply path.
    robustness = ClientRobustnessConfig(
        max_retries=0, default_deadline_ns=TRACE_OP_DEADLINE_NS
    )

    clients = [
        KvClient(
            RvmaApi(cluster.nodes[1 + i]), shard_map, index=i,
            max_put_bytes=server_config.chunk_bytes,
            tenant_id=trace.tenant_of(tc), robustness=robustness,
        )
        for i, tc in enumerate(clients_ids)
    ]
    replayer = TraceReplayer(
        cluster.sim, clients, trace,
        deadline_ns=TRACE_OP_DEADLINE_NS,
        max_backlog=max_backlog,
    )
    warmed = {key.decode("latin-1"): warm_value_for(key.decode("latin-1")) for key in hot}

    def master():
        for client in clients:
            yield from client.open()
        # Warm phase: one PUT per hot key from the first client, before
        # any trace row fires.  When active handlers are armed the host
        # syncs each value into the NIC view, so crowd GETs find a
        # servable entry — and the identical puts run with active off.
        warm = [(OP_PUT, key, warm_value_for(key.decode("latin-1"))) for key in hot]
        if warm:
            yield from clients[0].execute_batch(warm)
        yield from replayer.run()
        # Drain grace before shard streams close (stale-late idiom).
        yield 100_000.0
        server.stop()

    proc = spawn(cluster.sim, master(), "trace-master")
    error: Optional[str] = None
    try:
        cluster.sim.run(until=sim_deadline_ns)
    except Exception as exc:
        error = f"{type(exc).__name__}: {exc}"
    if error is None and not proc.finished:
        error = f"replay did not finish by sim_deadline_ns={sim_deadline_ns:,.0f}"

    registry = MetricsRegistry.collect(cluster.sim)
    counters = registry.counters
    latency = registry.histograms.get("service.kv.request_latency_ns")
    tenant_p99 = {}
    tenant_shed = {}
    for tenant in trace.tenants():
        h = registry.histograms.get(f"service.kv.tenant.request_latency_ns.t{tenant}")
        if h is not None and h.count:
            tenant_p99[tenant] = h.percentile(0.99)
        shed = counters.get(f"service.kv.tenant.shed.t{tenant}", 0)
        tenant_shed[tenant] = shed

    failures = (
        check_replay_safety(trace, replayer.outcomes, warmed)
        if check_safety and error is None
        else []
    )
    report = None
    if observe:
        from ..scenarios.runner import scrub_report

        report = scrub_report(RunReport.collect(
            cluster,
            meta={
                "harness": "trace-replay",
                "trace_id": trace.trace_id,
                "seed": seed,
                "qos": qos,
                "active": active,
            },
        ).to_dict())
    return ReplayCell(
        completed=proc.finished,
        error=error,
        stats=replayer.stats,
        outcome_stream=replayer.outcome_stream(),
        outcome_digest=replayer.outcome_digest(),
        safety_failures=failures,
        p99_ns=latency.percentile(0.99) if latency is not None else float("nan"),
        tenant_p99_ns=tenant_p99,
        tenant_shed=tenant_shed,
        requests=counters.get("service.kv.requests", 0),
        served=counters.get("nic.rvma.active.served", 0),
        handler_served=counters.get("service.kv.client.handler_served", 0),
        overload_replies=counters.get("service.kv.overload_replies", 0),
        puts_lost=counters.get("nic.rvma.puts_lost", 0),
        puts_lost_quota=counters.get("nic.rvma.puts_lost_quota", 0),
        gave_up=counters.get("transport.gave_up", 0),
        audit_ok=auditor.ok if auditor is not None else True,
        audit_violations=len(auditor.violations) if auditor is not None else 0,
        events_executed=cluster.sim.events_executed,
        report=report,
        cluster=cluster,
    )


# ------------------------------------------------------------------- compare


@dataclass
class CompareOutcome:
    """The three-way contrast on one trace: base vs QoS-on vs active-on."""

    trace_id: str
    seed: int
    base: ReplayCell
    qos_on: ReplayCell
    active_on: ReplayCell
    victim: Optional[int]
    aggressors: tuple

    @property
    def offered_identical(self) -> bool:
        """All cells offered every trace row (same count, zero drops)."""
        cells = (self.base, self.qos_on, self.active_on)
        return (
            len({c.stats.ops_issued for c in cells}) == 1
            and all(c.stats.ops_dropped == 0 for c in cells)
        )

    @property
    def invariants_ok(self) -> bool:
        return bool(
            self.base.invariants_ok
            and self.qos_on.invariants_ok
            and self.active_on.invariants_ok
            and self.offered_identical
            and self.base.served == 0  # active off must not serve
            and self.qos_on.served == 0
        )

    @property
    def dispatch_saving(self) -> int:
        return self.base.requests - self.active_on.requests

    @property
    def qos_contrast_ok(self) -> bool:
        """QoS isolation on identical load (needs a victim + aggressor).

        The aggressor gets shed, the victim does not, and the victim's
        p99 with QoS on beats its p99 in the unprotected base cell.
        """
        if self.victim is None or not self.aggressors:
            return True  # single-tenant trace: nothing to isolate
        victim_base = self.base.tenant_p99_ns.get(self.victim, float("inf"))
        victim_qos = self.qos_on.tenant_p99_ns.get(self.victim, float("inf"))
        return bool(
            sum(self.qos_on.tenant_shed.get(t, 0) for t in self.aggressors) > 0
            and self.qos_on.tenant_shed.get(self.victim, 0) == 0
            and victim_qos < victim_base
        )

    @property
    def active_contrast_ok(self) -> bool:
        """Active serving on identical load: faster tail, saved dispatches."""
        return bool(
            self.active_on.served > 0
            and self.dispatch_saving >= self.active_on.served
            and self.active_on.handler_served >= self.active_on.served
            and self.active_on.p99_ns < self.base.p99_ns
        )


def compare_trace(
    trace: Trace,
    seed: int = 1,
    observe: bool = False,
    **kw,
) -> CompareOutcome:
    """Replay *trace* three ways on identical offered load."""
    base = replay_trace(trace, seed=seed, qos=False, active=False, observe=observe, **kw)
    qos_on = replay_trace(trace, seed=seed, qos=True, active=False, observe=observe, **kw)
    active_on = replay_trace(trace, seed=seed, qos=False, active=True, observe=observe, **kw)
    nonzero = [t for t in trace.tenants() if t != 0]
    return CompareOutcome(
        trace_id=trace.trace_id,
        seed=seed,
        base=base,
        qos_on=qos_on,
        active_on=active_on,
        victim=nonzero[0] if nonzero else None,
        aggressors=tuple(nonzero[1:]),
    )


# ------------------------------------------------------------------- recording


def record_trace(
    seed: int = 1,
    workload: Optional[WorkloadConfig] = None,
    client_tenants: tuple = (0, 0, 0),
    shards_per_node: int = 2,
    topology: str = "dragonfly",
    source: str = "loadgen",
    sim_deadline_ns: float = TRACE_SIM_DEADLINE_NS,
) -> tuple:
    """Record a stock LoadGenerator run into a Trace; returns (trace, stats).

    One client node (one client) per entry in *client_tenants*; the
    trace's provenance pins the seed and the full workload shape, so a
    committed trace documents exactly how to regenerate itself.
    """
    workload = workload or WorkloadConfig(mode="open")
    n_nodes = 1 + len(client_tenants)
    cluster = Cluster.build(
        n_nodes=n_nodes, topology=topology, nic_type="rvma", fidelity="flow",
        seed=seed, nic_config=RvmaNicConfig(reliability=CHAOS_RELIABILITY),
    )
    server_config = KvServerConfig(
        service_ns_per_request=800.0, service_ns_per_byte=0.2
    )
    shard_map = ShardMap([0], shards_per_node=shards_per_node)
    server = KvServer(cluster.nodes[0], shard_map, server_config).start()
    clients = [
        KvClient(
            RvmaApi(cluster.nodes[1 + i]), shard_map, index=i,
            max_put_bytes=server_config.chunk_bytes, tenant_id=tenant,
        )
        for i, tenant in enumerate(client_tenants)
    ]
    recorder = TraceRecorder(cluster.sim).attach(*clients)
    gen = LoadGenerator(cluster.sim, clients, workload)

    def master():
        for client in clients:
            yield from client.open()
        yield from gen.run()
        yield 100_000.0
        server.stop()

    proc = spawn(cluster.sim, master(), "trace-record")
    cluster.sim.run(until=sim_deadline_ns)
    if not proc.finished:
        raise RuntimeError(
            f"recording stalled (deadline {sim_deadline_ns:,.0f} ns)"
        )
    from dataclasses import asdict

    trace = recorder.finish(provenance={
        "seed": seed,
        "source": source,
        "workload": asdict(workload),
        "client_tenants": list(client_tenants),
        "transforms": [],
    })
    return trace, gen.stats


# ------------------------------------------------------------- frame differential


def replay_trace_frames(
    trace: Trace,
    backend: str,
    seed: int = 1,
    topology: str = "star",
) -> tuple:
    """Push every trace row's wire frame through one protocol backend.

    The KV service itself runs on RVMA mailboxes; what the backends
    must agree on is byte transport.  Each trace client becomes one
    (client node → server node) channel carrying its rows' request
    frames in program order — the scenario differential's channel
    harness, fed by a trace instead of a synthetic matrix.  Returns
    ``(delivered, counts, stalled)``; two backends replaying the same
    trace must produce identical delivered bytes and counts.
    """
    from ..motifs import RdmaProtocol, RvmaProtocol, UcxProtocol
    from ..network.routing import RoutingMode

    factories = {
        "rvma": lambda: RvmaProtocol(mode=RoutingMode.STATIC),
        "verbs": lambda: RdmaProtocol(mode=RoutingMode.STATIC),
        "ucx": lambda: UcxProtocol(mode=RoutingMode.STATIC),
    }
    proto = factories[backend]()
    clients_ids = trace.clients()
    frames: dict = {tc: [] for tc in clients_ids}
    for index, row in enumerate(trace.rows):
        value = value_for(index, row.key, row.value_size) if row.op == "put" else b""
        op_code = _OP_CODES.get(row.op)
        if op_code is None:  # scan
            from ..services.wire import OP_SCAN

            op_code = OP_SCAN
        frames[row.client].append(encode_request(
            op_code, row.client, index + 1, row.key_bytes(), value,
            tenant=row.tenant,
        ))
    max_msg = max((len(f) for fs in frames.values() for f in fs), default=64)
    cluster = Cluster.build(
        n_nodes=1 + len(clients_ids), topology=topology,
        nic_type=proto.nic_type, fidelity="flow", seed=seed,
    )
    delivered: dict = {}
    counts: dict = {}

    def receiver(i, tc, tag):
        n_msgs = len(frames[tc])
        ep = yield from proto.recv_setup(cluster.nodes[0], 1 + i, tag, max_msg, slots=n_msgs)
        for k in range(n_msgs):
            want = len(frames[tc][k])
            delivered[(tc, k)] = (yield from ep.recv_data(want))
        counts[tc] = ep.received

    def sender(i, tc, tag):
        ep = yield from proto.send_setup(cluster.nodes[1 + i], 0, tag, max_msg)
        for frame in frames[tc]:
            yield from ep.send(len(frame), frame)

    procs = []
    for i, tc in enumerate(clients_ids):
        if not frames[tc]:
            continue
        tag = 100 + i
        procs.append(spawn(cluster.sim, receiver(i, tc, tag), f"tr-r{i}"))
        procs.append(spawn(cluster.sim, sender(i, tc, tag), f"tr-s{i}"))
    cluster.sim.run(until=TRACE_SIM_DEADLINE_NS)
    stalled = not all(p.finished for p in procs)
    return delivered, counts, stalled


# ------------------------------------------------------------------- exemplars


def build_exemplar(name: str) -> Trace:
    """Regenerate a committed exemplar from scratch (record + transforms).

    Pure function of the pinned recipes below — ``trace record
    --exemplar NAME`` writes exactly the bytes committed under
    ``corpus/traces/`` (the codec unit tests assert this stays true).
    """
    from ..workloads import inject_flash_crowd, tenant_remap, time_scale

    if name == "steady-mix":
        trace, _stats = record_trace(
            seed=11,
            workload=WorkloadConfig(
                n_ops=240, n_keys=64, value_bytes=96, zipf_s=1.1,
                get_frac=0.55, put_frac=0.40, mode="open",
                mean_interarrival_ns=2500.0, rng_stream="kv-trace-steady",
            ),
            client_tenants=(0, 0, 0),
            source="exemplar:steady-mix",
        )
        return trace
    if name == "flash-crowd":
        base, _stats = record_trace(
            seed=12,
            workload=WorkloadConfig(
                n_ops=200, n_keys=48, value_bytes=96, zipf_s=1.2,
                get_frac=0.80, put_frac=0.18, mode="open",
                mean_interarrival_ns=3000.0, rng_stream="kv-trace-flash",
            ),
            client_tenants=(1, 1, 2),
            source="exemplar:flash-crowd",
        )
        # The aggressor's flash crowd: a dense GET burst on the Zipf-
        # hottest key from a fourth (new) client in tenant 2, landing
        # mid-trace.  Client id picks the next free (node 4, index 3)
        # endpoint id so replay maps it onto its own pool client.
        from ..services.kv import client_id_of

        crowd_start = base.rows[len(base.rows) // 3].timestamp_ns
        return inject_flash_crowd(
            key="k000000", start_ns=crowd_start, n_ops=100,
            spacing_ns=250.0, client=client_id_of(4, 3), tenant=2,
        )(time_scale(1.0)(base))
    raise KeyError(f"unknown exemplar {name!r} (have {EXEMPLAR_NAMES})")


def _load_trace_arg(ref: str) -> Trace:
    """A CLI trace argument: exemplar name or path to a trace file."""
    if ref in EXEMPLARS:
        return load_exemplar(ref)
    return Trace.load(ref)


# ------------------------------------------------------------------- trace CLI


def trace_main(argv: Optional[list] = None) -> int:
    """``rvma-experiments trace``: record / replay / transform / compare."""
    parser = argparse.ArgumentParser(
        prog="rvma-experiments trace",
        description="Trace-driven workload record and bit-identical replay",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_info = sub.add_parser("info", help="describe a trace file or exemplar")
    p_info.add_argument("trace", help=f"trace path or exemplar ({', '.join(EXEMPLAR_NAMES)})")

    p_rec = sub.add_parser("record", help="record a LoadGenerator run into a trace")
    p_rec.add_argument("--seed", type=int, default=1)
    p_rec.add_argument("--ops", type=int, default=200)
    p_rec.add_argument("--mode", choices=("open", "closed"), default="open")
    p_rec.add_argument("--exemplar", choices=EXEMPLAR_NAMES, default=None,
                       help="regenerate a committed exemplar recipe instead")
    p_rec.add_argument("--out", required=True, help="output trace path")

    p_rep = sub.add_parser("replay", help="replay a trace against a live KV cluster")
    p_rep.add_argument("trace")
    p_rep.add_argument("--seed", type=int, default=1)
    p_rep.add_argument("--qos", action="store_true")
    p_rep.add_argument("--active", action="store_true")
    p_rep.add_argument("--no-audit", action="store_true")
    p_rep.add_argument("--max-backlog", type=int, default=None)
    p_rep.add_argument("--engine", choices=("fast", "plain"), default="fast")
    p_rep.add_argument("--report-out", default=None,
                       help="write the wall-scrubbed RunReport JSON here")

    p_tr = sub.add_parser("transform", help="apply pure transforms to a trace")
    p_tr.add_argument("trace")
    p_tr.add_argument("--out", required=True)
    p_tr.add_argument("--time-scale", type=float, default=None)
    p_tr.add_argument("--amplify", type=float, default=None)
    p_tr.add_argument("--idle-threshold-ns", type=float, default=10_000.0)
    p_tr.add_argument("--diurnal-period-ns", type=float, default=None)
    p_tr.add_argument("--diurnal-amplitude", type=float, default=0.5)
    p_tr.add_argument("--flash-key", default=None)
    p_tr.add_argument("--flash-start-ns", type=float, default=0.0)
    p_tr.add_argument("--flash-ops", type=int, default=50)
    p_tr.add_argument("--flash-spacing-ns", type=float, default=500.0)
    p_tr.add_argument("--flash-client", type=int, default=None)
    p_tr.add_argument("--flash-tenant", type=int, default=0)
    p_tr.add_argument("--tenant-remap", default=None,
                      help='comma list of old:new pairs, e.g. "0:1,2:3"')

    p_cmp = sub.add_parser("compare", help="base vs qos-on vs active-on on one trace")
    p_cmp.add_argument("trace")
    p_cmp.add_argument("--seed", type=int, default=1)
    p_cmp.add_argument("--engine", choices=("fast", "plain"), default="fast")
    p_cmp.add_argument("--report-out", default=None,
                       help="write the merged wall-scrubbed RunReport JSON here")

    args = parser.parse_args(argv)

    if args.cmd == "info":
        trace = _load_trace_arg(args.trace)
        print(trace.describe())
        print(json.dumps(trace.provenance, indent=2, sort_keys=True))
        return 0

    if args.cmd == "record":
        if args.exemplar:
            trace = build_exemplar(args.exemplar)
        else:
            trace, stats = record_trace(
                seed=args.seed,
                workload=WorkloadConfig(n_ops=args.ops, mode=args.mode),
            )
            print(f"recorded {stats.ops_issued} offered ops")
        trace.save(args.out)
        print(f"{args.out}: {trace.describe()}")
        return 0

    if args.cmd == "transform":
        from ..workloads import (
            amplify_bursts,
            compose,
            diurnal_ramp,
            inject_flash_crowd,
            tenant_remap,
            time_scale,
        )

        trace = _load_trace_arg(args.trace)
        steps = []
        # Fixed, documented application order (docs/WORKLOADS.md).
        if args.time_scale is not None:
            steps.append(time_scale(args.time_scale))
        if args.amplify is not None:
            steps.append(amplify_bursts(args.amplify, args.idle_threshold_ns))
        if args.diurnal_period_ns is not None:
            steps.append(diurnal_ramp(args.diurnal_period_ns, args.diurnal_amplitude))
        if args.flash_key is not None:
            if args.flash_client is None:
                parser.error("--flash-key requires --flash-client")
            steps.append(inject_flash_crowd(
                args.flash_key, args.flash_start_ns, args.flash_ops,
                args.flash_spacing_ns, args.flash_client, args.flash_tenant,
            ))
        if args.tenant_remap is not None:
            mapping = {}
            for pair in args.tenant_remap.split(","):
                old, new = pair.split(":")
                mapping[int(old)] = int(new)
            steps.append(tenant_remap(mapping))
        out = compose(*steps)(trace)
        out.save(args.out)
        print(f"{trace.trace_id} -> {out.trace_id}: {out.describe()}")
        return 0

    if args.cmd == "replay":
        trace = _load_trace_arg(args.trace)
        with _engine_mode(args.engine):
            cell = replay_trace(
                trace, seed=args.seed, qos=args.qos, active=args.active,
                audit=not args.no_audit, observe=args.report_out is not None,
                max_backlog=args.max_backlog,
            )
        print(
            f"replayed {trace.trace_id} seed={args.seed} "
            f"qos={'on' if args.qos else 'off'} active={'on' if args.active else 'off'}: "
            f"{cell.stats.ops_completed}/{cell.stats.ops_issued} ops, "
            f"p99 {cell.p99_ns:,.0f} ns, outcomes {cell.outcome_digest}"
        )
        if cell.safety_failures:
            for failure in cell.safety_failures[:10]:
                print(f"  SAFETY: {failure}")
        print(f"invariants: {'ok' if cell.invariants_ok else 'VIOLATED'}")
        if args.report_out:
            with open(args.report_out, "w", encoding="utf-8") as fh:
                json.dump(cell.report, fh, indent=2, sort_keys=True)
            print(f"report written to {args.report_out}")
        return 0 if cell.invariants_ok else 1

    if args.cmd == "compare":
        trace = _load_trace_arg(args.trace)
        with _engine_mode(args.engine):
            out = compare_trace(trace, seed=args.seed,
                                observe=args.report_out is not None)
        print(f"compare {out.trace_id} seed={out.seed} (identical offered load: "
              f"{'yes' if out.offered_identical else 'NO'})")
        for label, cell in (("base", out.base), ("qos-on", out.qos_on),
                            ("active-on", out.active_on)):
            print(
                f"  {label:10s} p99 {cell.p99_ns:>12,.0f} ns  "
                f"host dispatches {cell.requests:>5d}  served {cell.served:>4d}  "
                f"shed {sum(cell.tenant_shed.values()):>4d}  "
                f"outcomes {cell.outcome_digest}"
            )
        print(
            f"qos contrast: {'ok' if out.qos_contrast_ok else 'NO'}; "
            f"active contrast: {'ok' if out.active_contrast_ok else 'NO'} "
            f"(dispatch saving {out.dispatch_saving}); "
            f"invariants: {'ok' if out.invariants_ok else 'VIOLATED'}"
        )
        if args.report_out:
            from ..scenarios.runner import scrub_report

            reports = [
                RunReport.collect(cell.cluster, meta={
                    "harness": "trace-compare", "cell": label,
                    "trace_id": out.trace_id, "seed": out.seed,
                })
                for label, cell in (("base", out.base), ("qos_on", out.qos_on),
                                    ("active_on", out.active_on))
            ]
            merged = scrub_report(RunReport.merge(
                reports, meta={"harness": "trace-compare", "trace_id": out.trace_id},
            ).to_dict())
            with open(args.report_out, "w", encoding="utf-8") as fh:
                json.dump(merged, fh, indent=2, sort_keys=True)
            print(f"merged report written to {args.report_out}")
        ok = out.invariants_ok and out.qos_contrast_ok and out.active_contrast_ok
        return 0 if ok else 1

    parser.error(f"unknown command {args.cmd!r}")
    return 2
