"""Continuous benchmark harness: the pinned suite behind ``BENCH_*.json``.

The ROADMAP's north star is "as fast as the hardware allows"; this
module is how we *prove* the simulator stays that way.  It executes a
pinned suite of benchmarks — raw engine churn, cancellation storms, and
the paper's motifs (incast, halo3d, allreduce) plus a crash-restart
chaos cell — with fixed seeds and scales, and emits one
``BENCH_<timestamp>.json`` trajectory point per invocation:

* ``events_per_sec`` — simulator events executed per wall second (the
  headline engine-throughput number);
* ``wall_s`` / ``sim_ns`` — wall time and simulated time per benchmark;
* ``peak_rss_kb`` — process peak RSS after the benchmark (monotone
  across the suite: it is the high-water mark, not a per-bench delta);
* selected canonical metrics swept from the PR-3 observability
  registry (``fabric.*``, ``nic.rvma.*``, ``transport.*``) so a perf
  number can be correlated with what the run actually did.

A committed ``benchmarks/baseline.json`` anchors the regression gate:
:func:`compare` fails any benchmark whose events/sec drops more than
``tolerance`` below baseline.  Cross-machine runs are normalised by a
small pure-Python calibration loop (heap churn + function calls), so a
slower CI host does not read as an engine regression.

Usage::

    python -m repro.experiments.bench --suite default
    python -m repro.experiments.bench --suite smoke --out bench-out
    python -m repro.experiments.bench --suite default --update-baseline

The suite is deliberately cheap enough to run on every PR (the
``bench-smoke`` CI job runs the ``smoke`` suite and uploads the JSON
artifact).
"""

from __future__ import annotations

import argparse
import heapq
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

#: Default regression tolerance: fail on >20% events/sec drop.
DEFAULT_TOLERANCE = 0.20

#: Pinned seed for every benchmark cell (determinism is part of the
#: contract: same seed => same event count, so events/sec is comparable).
BENCH_SEED = 0xBE7C4

_REPO_ROOT = Path(__file__).resolve().parents[3]
DEFAULT_BASELINE = _REPO_ROOT / "benchmarks" / "baseline.json"


# --------------------------------------------------------------------------- data


@dataclass
class BenchRecord:
    """One benchmark's measurement."""

    name: str
    wall_s: float
    events: Optional[int]
    sim_ns: float
    peak_rss_kb: int
    metrics: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    @property
    def events_per_sec(self) -> Optional[float]:
        if self.events is None or self.wall_s <= 0:
            return None
        return self.events / self.wall_s

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall_s": round(self.wall_s, 6),
            "events": self.events,
            "events_per_sec": (
                round(self.events_per_sec, 1) if self.events_per_sec else None
            ),
            "sim_ns": self.sim_ns,
            "peak_rss_kb": self.peak_rss_kb,
            "metrics": self.metrics,
            "extras": self.extras,
        }


def _peak_rss_kb() -> int:
    try:
        import resource

        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KB on Linux, bytes on macOS.
        return int(rss // 1024) if sys.platform == "darwin" else int(rss)
    except Exception:  # pragma: no cover - non-POSIX fallback
        return 0


def calibrate(reps: int = 60) -> float:
    """Machine-speed proxy: heap churn + function calls per second.

    Pure Python, engine-free, deterministic work — the ratio of two
    hosts' calibration numbers approximates the ratio of their
    single-core Python throughput, which is what events/sec scales with.
    """

    def bump(x: int) -> int:
        return x + 1

    t0 = time.perf_counter()
    ops = 0
    for _ in range(reps):
        h: list = []
        push, pop = heapq.heappush, heapq.heappop
        for i in range(400):
            push(h, ((i * 7) % 31, i, bump))
        while h:
            _, i, fn = pop(h)
            ops = fn(ops)
    dt = time.perf_counter() - t0
    return ops / dt if dt > 0 else 0.0


def _registry_metrics(sim, prefixes: tuple[str, ...]) -> dict:
    """Selected canonical counters swept from the observability registry."""
    from repro.observability import MetricsRegistry

    reg = MetricsRegistry.collect(sim)
    out = {}
    for name, value in reg.counters.items():
        if name.startswith(prefixes):
            out[name] = value
    return dict(sorted(out.items()))


# ----------------------------------------------------------------------- benches


def bench_engine_churn(n_events: int) -> BenchRecord:
    """Raw DES throughput: a self-rescheduling chain of *n_events*.

    Uses the engine's fastest fire-and-forget scheduling API available
    (``post`` when present, plain ``schedule`` otherwise), mirroring
    what the converted hot call sites (process wakeups, fabric flights)
    use in real runs.
    """
    from repro.sim import Simulator

    sim = Simulator(seed=BENCH_SEED)
    post = getattr(sim, "post", None) or (
        lambda delay, fn, *args: sim.schedule(delay, fn, *args)
    )
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < n_events:
            post(1.0, tick)

    post(1.0, tick)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    assert count[0] == n_events
    return BenchRecord(
        name="engine-churn",
        wall_s=wall,
        events=sim.events_executed,
        sim_ns=sim.now,
        peak_rss_kb=_peak_rss_kb(),
    )


def bench_engine_cancel(n_timers: int) -> BenchRecord:
    """Cancellation-heavy load: armed timers, 75% cancelled before firing.

    This is the chaos-run shape (retransmit timers cancelled by ACKs);
    it exercises lazy-cancel garbage handling and heap compaction.  The
    record's extras carry the peak heap length so unbounded garbage
    growth is visible in the trajectory.
    """
    from repro.sim import Simulator

    sim = Simulator(seed=BENCH_SEED)
    fired = [0]
    peak_heap = [0]
    wave = max(64, n_timers // 64)

    def noop() -> None:
        fired[0] += 1

    def driver(remaining: int) -> None:
        batch = min(wave, remaining)
        timers = [sim.schedule(1000.0, noop) for _ in range(batch)]
        for ev in timers[: (3 * batch) // 4]:
            sim.cancel(ev)
        heap_len = len(sim._heap)
        if heap_len > peak_heap[0]:
            peak_heap[0] = heap_len
        if remaining - batch > 0:
            sim.schedule(10.0, driver, remaining - batch)

    sim.schedule(0.0, driver, n_timers)
    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0
    return BenchRecord(
        name="engine-cancel",
        wall_s=wall,
        events=sim.events_executed,
        sim_ns=sim.now,
        peak_rss_kb=_peak_rss_kb(),
        extras={"timers": n_timers, "fired": fired[0], "peak_heap_len": peak_heap[0]},
    )


def bench_incast(
    n_nodes: int, msgs_per_client: int, msg_bytes: int, fidelity: str = "packet"
) -> BenchRecord:
    """The §I many-to-one motif (RVMA shared bucket).

    Pinned at packet fidelity: fragmenting every message into MTU
    packets and switching each hop individually is the event-storm
    regime where scheduler throughput dominates, which is what this
    suite is meant to track.
    """
    from repro.cluster import Cluster
    from repro.motifs import Incast, RvmaProtocol

    cl = Cluster.build(
        n_nodes=n_nodes, topology="dragonfly", nic_type="rvma",
        fidelity=fidelity, seed=BENCH_SEED,
    )
    motif = Incast(
        cl, RvmaProtocol(), msgs_per_client=msgs_per_client, msg_bytes=msg_bytes
    )
    t0 = time.perf_counter()
    result = motif.run()
    wall = time.perf_counter() - t0
    return BenchRecord(
        name="incast",
        wall_s=wall,
        events=cl.sim.events_executed,
        sim_ns=cl.sim.now,
        peak_rss_kb=_peak_rss_kb(),
        metrics=_registry_metrics(cl.sim, ("fabric.", "nic.rvma.")),
        extras={
            "n_nodes": n_nodes,
            "messages": result.messages,
            "bytes_moved": result.bytes_moved,
            "motif_elapsed_ns": result.elapsed,
        },
    )


def bench_halo3d(
    n_nodes: int,
    iterations: int,
    msg_bytes: int,
    fidelity: str = "flow",
    name: str = "halo3d",
    topology: str = "dragonfly",
) -> BenchRecord:
    """Ghost exchange on a 3-D grid (the paper's Halo3D motif).

    The ``halo3d`` cell runs at flow fidelity (the 8,192-node regime);
    the ``halo3d-pkt`` cell reruns it at packet fidelity on a 3-D torus
    — long multi-hop nearest-neighbor routes, the switching-heavy shape
    that pins the vectorized packet fabric's throughput.
    """
    from repro.cluster import Cluster
    from repro.motifs import Halo3D, RvmaProtocol

    cl = Cluster.build(
        n_nodes=n_nodes, topology=topology, nic_type="rvma",
        fidelity=fidelity, seed=BENCH_SEED,
    )
    motif = Halo3D(cl, RvmaProtocol(), iterations=iterations, msg_bytes=msg_bytes)
    t0 = time.perf_counter()
    result = motif.run()
    wall = time.perf_counter() - t0
    return BenchRecord(
        name=name,
        wall_s=wall,
        events=cl.sim.events_executed,
        sim_ns=cl.sim.now,
        peak_rss_kb=_peak_rss_kb(),
        metrics=_registry_metrics(cl.sim, ("fabric.", "nic.rvma.")),
        extras={
            "n_nodes": n_nodes,
            "messages": result.messages,
            "bytes_moved": result.bytes_moved,
            "motif_elapsed_ns": result.elapsed,
        },
    )


def bench_allreduce(n_nodes: int, iterations: int, vector_len: int) -> BenchRecord:
    """Tree allreduce over the whole cluster."""
    from repro.cluster import Cluster
    from repro.motifs import AllreduceMotif, RvmaProtocol

    cl = Cluster.build(
        n_nodes=n_nodes, topology="dragonfly", nic_type="rvma",
        fidelity="flow", seed=BENCH_SEED,
    )
    motif = AllreduceMotif(
        cl, RvmaProtocol(), iterations=iterations, vector_len=vector_len
    )
    t0 = time.perf_counter()
    result = motif.run()
    wall = time.perf_counter() - t0
    return BenchRecord(
        name="allreduce",
        wall_s=wall,
        events=cl.sim.events_executed,
        sim_ns=cl.sim.now,
        peak_rss_kb=_peak_rss_kb(),
        metrics=_registry_metrics(cl.sim, ("fabric.", "nic.rvma.")),
        extras={
            "n_nodes": n_nodes,
            "messages": result.messages,
            "motif_elapsed_ns": result.elapsed,
        },
    )


def bench_kv_incast(
    n_client_nodes: int,
    clients_per_node: int,
    n_ops: int,
    batch: int,
    fidelity: str = "flow",
    name: str = "kv-incast",
    value_bytes: int = 64,
    topology: str = "dragonfly",
) -> BenchRecord:
    """The KV serving incast: many clients, one server node, Zipf keys.

    The serving-workload analog of the §I incast motif — continuous
    request pressure on few receiver-managed shard streams.  The record
    carries the client-observed ``service.kv.request_latency_ns``
    p50/p99 lifted from the observability RunReport, so latency
    regressions on the service path show in the trajectory alongside
    events/sec.  The ``kv-incast-pkt`` cell reruns the workload at
    packet fidelity, covering the vectorized packet fabric under a
    request/reply serving shape.
    """
    from repro.experiments.kv_churn import run_kv_service
    from repro.services import WorkloadConfig

    t0 = time.perf_counter()
    outcome = run_kv_service(
        seed=BENCH_SEED,
        n_server_nodes=1,
        shards_per_node=2,
        n_client_nodes=n_client_nodes,
        clients_per_node=clients_per_node,
        workload=WorkloadConfig(n_ops=n_ops, zipf_s=0.9, batch=batch, value_bytes=value_bytes),
        chaos=False,
        observe=True,
        fidelity=fidelity,
        topology=topology,
    )
    wall = time.perf_counter() - t0
    metrics = {}
    report = outcome.run_report
    if report is not None:
        service = report.metrics.get("service", {})
        for metric_name, value in service.items():
            if isinstance(value, int):
                metrics[metric_name] = value
        hist = service.get("service.kv.request_latency_ns")
        if isinstance(hist, dict):
            metrics["service.kv.request_latency_ns.p50"] = hist.get("p50")
            metrics["service.kv.request_latency_ns.p99"] = hist.get("p99")
    return BenchRecord(
        name=name,
        wall_s=wall,
        events=outcome.events_executed,
        sim_ns=outcome.elapsed_ns,
        peak_rss_kb=_peak_rss_kb(),
        metrics=metrics,
        extras={
            "clients": n_client_nodes * clients_per_node,
            "ops": outcome.ops_completed,
            "p50_ns": outcome.p50_ns,
            "p99_ns": outcome.p99_ns,
            "reply_batch_mean": outcome.reply_batch_mean,
            "invariants_ok": outcome.invariants_ok,
        },
    )


def bench_kv_noisy(victim_ops: int, aggressor_ops: int, aggressor_batch: int) -> BenchRecord:
    """The multi-tenant QoS sweep path: DRR + admission under incast.

    Runs one noisy-neighbor cell (solo baseline + combined run, QoS on)
    so the regression gate covers the weighted-fair scheduler, the
    admission controller and the robust-client retry path.  Events/sec
    counts the combined run's events over the whole cell's wall time —
    pinned seed, so both are deterministic and comparable.
    """
    from repro.experiments.qos_noisy import run_noisy_neighbor

    t0 = time.perf_counter()
    outcome = run_noisy_neighbor(
        seed=1, qos=True, victim_ops=victim_ops,
        aggressor_ops=aggressor_ops, aggressor_batch=aggressor_batch,
    )
    wall = time.perf_counter() - t0
    return BenchRecord(
        name="kv-noisy",
        wall_s=wall,
        events=outcome.events_executed,
        sim_ns=outcome.victim_p99_ns,
        peak_rss_kb=_peak_rss_kb(),
        metrics={
            "service.kv.overload_replies": outcome.overload_replies,
            "nic.rvma.quota_rejects": outcome.quota_rejects,
            "service.kv.client.retries": outcome.retries,
        },
        extras={
            "victim_p99_ns": outcome.victim_p99_ns,
            "isolation_factor": round(outcome.isolation_factor, 3),
            "isolated": outcome.isolated,
            "invariants_ok": outcome.invariants_ok,
        },
    )


def bench_active_flash(n_ops: int, variant: str = "flash", name: str = "active-flash") -> BenchRecord:
    """The hot-key flash-crowd contrast cell: NIC serve path vs host.

    Runs one seed's active off/on pair so the regression gate covers
    the completion-unit handler path (scan, view lookup, reply
    injection, OP_SERVED tombstoning) and the client's handler-reply
    accounting.  Events/sec counts the active-on run's events over the
    whole cell's wall time — pinned seed, both runs deterministic.
    """
    from repro.experiments.active_flash import run_flash_crowd

    t0 = time.perf_counter()
    outcome = run_flash_crowd(seed=1, n_ops=n_ops, variant=variant)
    wall = time.perf_counter() - t0
    return BenchRecord(
        name=name,
        wall_s=wall,
        events=outcome.on.events_executed,
        sim_ns=outcome.on.p99_ns,
        peak_rss_kb=_peak_rss_kb(),
        metrics={
            "nic.rvma.active.served": outcome.on.served,
            "service.kv.client.handler_served": outcome.on.handler_served,
            "service.kv.requests": outcome.on.requests,
        },
        extras={
            "variant": outcome.variant,
            "off_p99_ns": outcome.off.p99_ns,
            "on_p99_ns": outcome.on.p99_ns,
            "speedup": round(outcome.speedup, 3),
            "dispatch_saving": outcome.dispatch_saving,
            "invariants_ok": outcome.invariants_ok,
            "contrast_ok": outcome.contrast_ok,
        },
    )


def bench_kv_trace(exemplar: str, name: str = "kv-trace") -> BenchRecord:
    """Trace replay of a committed exemplar: the record/replay path.

    Replays one exemplar trace end to end (recorder-format decode,
    per-client open-loop dispatch, batched pipelining, outcome
    collection, per-key safety oracle) so the regression gate covers the
    trace machinery.  The offered load is pinned by the trace file, so
    the event count is exactly reproducible and events/sec comparable.
    """
    from repro.experiments.trace_replay import replay_trace
    from repro.workloads import load_exemplar

    trace = load_exemplar(exemplar)
    t0 = time.perf_counter()
    cell = replay_trace(trace, seed=BENCH_SEED)
    wall = time.perf_counter() - t0
    return BenchRecord(
        name=name,
        wall_s=wall,
        events=cell.events_executed,
        sim_ns=cell.p99_ns,
        peak_rss_kb=_peak_rss_kb(),
        metrics={
            "service.kv.requests": cell.requests,
            "workload.trace.rows_replayed": trace.n_ops,
        },
        extras={
            "exemplar": exemplar,
            "trace_id": trace.trace_id,
            "outcome_digest": cell.outcome_digest,
            "p99_ns": cell.p99_ns,
            "invariants_ok": cell.invariants_ok,
        },
    )


def bench_chaos_crash(seed: int) -> BenchRecord:
    """One crash-restart chaos cell: motif + faults + recovery + audit.

    No events/sec is reported (the runner owns its simulator); the
    record tracks wall time, simulated time and the reliability
    counters so chaos-path slowdowns still show in the trajectory.
    """
    from repro.experiments.chaos import run_motif_under_chaos

    t0 = time.perf_counter()
    outcome = run_motif_under_chaos(
        "allreduce", seed=seed, n_crashes=1, compare_clean=False, observe=True
    )
    wall = time.perf_counter() - t0
    metrics = {}
    if outcome.run_report is not None:
        for group in ("transport", "recovery"):
            for name, value in outcome.run_report.metrics.get(group, {}).items():
                if isinstance(value, int):
                    metrics[name] = value
    return BenchRecord(
        name="chaos-crash",
        wall_s=wall,
        events=None,
        sim_ns=outcome.elapsed_ns,
        peak_rss_kb=_peak_rss_kb(),
        metrics=metrics,
        extras={
            "seed": seed,
            "completed": outcome.completed,
            "invariants_ok": outcome.invariants_ok,
            "retransmits": outcome.retransmits,
            "crash_restarts": outcome.crash_restarts,
        },
    )


# ------------------------------------------------------------------------ suites

SUITES: dict[str, list[tuple[str, Callable[[], BenchRecord]]]] = {
    "default": [
        ("engine-churn", lambda: bench_engine_churn(300_000)),
        ("engine-cancel", lambda: bench_engine_cancel(120_000)),
        ("incast", lambda: bench_incast(33, 8, 64 * 1024)),
        ("halo3d", lambda: bench_halo3d(64, 4, 16 * 1024)),
        ("halo3d-pkt", lambda: bench_halo3d(
            64, 4, 32 * 1024, fidelity="packet", name="halo3d-pkt", topology="torus3d")),
        ("allreduce", lambda: bench_allreduce(32, 6, 8)),
        ("kv-incast", lambda: bench_kv_incast(8, 2, 640, 4)),
        ("kv-incast-pkt", lambda: bench_kv_incast(
            8, 2, 320, 4, fidelity="packet", name="kv-incast-pkt",
            value_bytes=1024, topology="torus3d")),
        ("kv-noisy", lambda: bench_kv_noisy(160, 800, 8)),
        ("active-flash", lambda: bench_active_flash(260)),
        ("kv-incast-active", lambda: bench_active_flash(
            200, variant="incast", name="kv-incast-active")),
        ("kv-trace", lambda: bench_kv_trace("flash-crowd")),
        ("chaos-crash", lambda: bench_chaos_crash(1)),
    ],
    "smoke": [
        ("engine-churn", lambda: bench_engine_churn(30_000)),
        ("engine-cancel", lambda: bench_engine_cancel(12_000)),
        ("incast", lambda: bench_incast(17, 4, 16 * 1024)),
        ("halo3d", lambda: bench_halo3d(27, 2, 4 * 1024)),
        ("halo3d-pkt", lambda: bench_halo3d(
            64, 2, 16 * 1024, fidelity="packet", name="halo3d-pkt", topology="torus3d")),
        ("allreduce", lambda: bench_allreduce(8, 3, 8)),
        ("kv-incast", lambda: bench_kv_incast(4, 2, 160, 4)),
        ("kv-incast-pkt", lambda: bench_kv_incast(
            4, 2, 240, 4, fidelity="packet", name="kv-incast-pkt",
            value_bytes=1024, topology="torus3d")),
        ("kv-noisy", lambda: bench_kv_noisy(80, 320, 4)),
        ("active-flash", lambda: bench_active_flash(120)),
        ("kv-incast-active", lambda: bench_active_flash(
            100, variant="incast", name="kv-incast-active")),
        ("kv-trace", lambda: bench_kv_trace("steady-mix")),
        ("chaos-crash", lambda: bench_chaos_crash(1)),
    ],
}


def run_suite(suite: str = "default", names: Optional[list[str]] = None) -> list[BenchRecord]:
    """Execute the pinned suite; returns one record per benchmark."""
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; have {sorted(SUITES)}")
    records = []
    for name, runner in SUITES[suite]:
        if names and name not in names:
            continue
        print(f"[bench] {name} ...", flush=True)
        rec = runner()
        eps = rec.events_per_sec
        print(
            f"[bench] {name}: {rec.wall_s:.3f}s wall"
            + (f", {eps:,.0f} events/s" if eps else "")
            + f", sim {rec.sim_ns:,.0f}ns",
            flush=True,
        )
        records.append(rec)
    return records


# ------------------------------------------------------------------- comparison


def compare(
    records: list[BenchRecord],
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    calib: Optional[float] = None,
    suite: str = "default",
) -> tuple[list[str], list[str]]:
    """Gate records against a baseline document.

    Returns ``(regressions, notes)``.  A benchmark regresses when its
    calibration-normalised events/sec falls more than *tolerance* below
    the baseline's for the same suite (scales differ between suites, so
    a smoke run is never gated against default-scale numbers).
    Benchmarks without events/sec (chaos-crash) and benchmarks absent
    from the baseline are reported as notes only.
    """
    regressions: list[str] = []
    notes: list[str] = []
    base_list = baseline.get("suites", {}).get(suite) or baseline.get("results", [])
    base_records = {r["name"]: r for r in base_list}
    base_calib = baseline.get("meta", {}).get("calib_ops_per_sec") or 0.0
    scale = 1.0
    if calib and base_calib:
        scale = calib / base_calib
        if abs(scale - 1.0) > 0.05:
            notes.append(
                f"calibration scale {scale:.2f}x vs baseline host "
                f"({baseline.get('meta', {}).get('host', '?')})"
            )
    for rec in records:
        base = base_records.get(rec.name)
        if base is None:
            notes.append(f"{rec.name}: no baseline entry (new benchmark)")
            continue
        eps, base_eps = rec.events_per_sec, base.get("events_per_sec")
        if eps is None or not base_eps:
            notes.append(f"{rec.name}: wall {rec.wall_s:.3f}s (no events/sec gate)")
            continue
        floor = base_eps * scale * (1.0 - tolerance)
        ratio = eps / (base_eps * scale)
        line = (
            f"{rec.name}: {eps:,.0f} events/s vs baseline {base_eps:,.0f} "
            f"(normalised ratio {ratio:.2f}x, floor {floor:,.0f})"
        )
        if eps < floor:
            regressions.append(line)
        else:
            notes.append(line)
    return regressions, notes


def build_document(
    records: list[BenchRecord], suite: str, calib: float
) -> dict:
    return {
        "meta": {
            "suite": suite,
            "date": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "host": platform.node(),
            "seed": BENCH_SEED,
            "calib_ops_per_sec": round(calib, 1),
        },
        "results": [r.to_dict() for r in records],
    }


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.bench",
        description="Run the pinned benchmark suite and gate against baseline.json",
    )
    parser.add_argument(
        "--suite", choices=sorted(SUITES), default="default",
        help="which pinned suite to run (smoke = CI scale)",
    )
    parser.add_argument(
        "--only", type=str, default="",
        help="comma-separated benchmark subset (default: whole suite)",
    )
    parser.add_argument(
        "--out", type=str, default=".",
        help="directory for the BENCH_<timestamp>.json artifact",
    )
    parser.add_argument(
        "--baseline", type=str, default=str(DEFAULT_BASELINE),
        help="baseline JSON to gate against (default: benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional events/sec regression before failing",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write this run's numbers to the baseline path instead of gating",
    )
    parser.add_argument(
        "--no-gate", action="store_true",
        help="emit the BENCH JSON but never fail on regressions",
    )
    args = parser.parse_args(argv)

    calib = calibrate()
    names = [n.strip() for n in args.only.split(",") if n.strip()] or None
    records = run_suite(args.suite, names)
    doc = build_document(records, args.suite, calib)

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y%m%d-%H%M%S")
    out_path = out_dir / f"BENCH_{stamp}.json"
    out_path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(f"[bench] wrote {out_path}")

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        # Merge this suite's numbers into the (possibly existing)
        # per-suite baseline so smoke and default anchors coexist.
        existing = {}
        if baseline_path.exists():
            existing = json.loads(baseline_path.read_text(encoding="utf-8"))
        suites = existing.get("suites", {})
        if "results" in existing and "suites" not in existing:
            suites[existing.get("meta", {}).get("suite", "default")] = existing["results"]
        suites[args.suite] = doc["results"]
        merged = {"meta": doc["meta"], "suites": suites}
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(merged, indent=2) + "\n", encoding="utf-8")
        print(f"[bench] baseline updated: {baseline_path} (suite {args.suite})")
        return 0

    if not baseline_path.exists():
        print(f"[bench] no baseline at {baseline_path}; skipping gate")
        return 0
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    regressions, notes = compare(records, baseline, args.tolerance, calib, args.suite)
    for note in notes:
        print(f"[bench] ok: {note}")
    for reg in regressions:
        print(f"[bench] REGRESSION: {reg}")
    if regressions and not args.no_gate:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
