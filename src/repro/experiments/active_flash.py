"""Hot-key flash crowd: active mailboxes vs host-dispatch serving.

The adversarial cell for :mod:`repro.nic.active`: a GET-heavy Zipf
flash crowd hammers a handful of hot keys on a sharded KV service with
finite host serving capacity.  Each seed runs the identical workload
twice — active handlers **off** (every GET sweeps through the host
dispatch loop) and **on** (the NIC's KV serve handler answers hot-key
GETs from its read-only view, tombstoning the frame so the host never
sees it) — and reports the contrast:

* tail latency: active-on p99 must beat active-off p99 (hot GETs skip
  the host service queue entirely);
* dispatch saving: ``service.kv.requests`` must drop by at least the
  NIC's ``nic.rvma.active.served`` count — every served GET is one
  fewer host dispatch, byte-for-byte the same reply.

A ``kv-incast`` variant runs the same contrast under a closed-loop
batch GET storm (many clients, all-hot key set), and a chaos cell
re-runs the active-on flash crowd under link flaps with the
:class:`~repro.recovery.auditor.InvariantAuditor` armed — handler
effects must stay byte-identical through retransmits and replay.

Also the home of the ``active`` CLI subcommand
(``rvma-experiments active --help``).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional

from ..cluster.builder import Cluster
from ..core.api import RvmaApi
from ..faults.chaos import ChaosSchedule
from ..faults.injectors import FaultInjector
from ..nic.rvma import RvmaNicConfig
from ..observability import MetricsRegistry
from ..recovery.auditor import InvariantAuditor
from ..services import (
    ClientRobustnessConfig,
    KvClient,
    KvServer,
    KvServerConfig,
    LoadGenerator,
    LoadStats,
    ShardMap,
    WorkloadConfig,
)
from ..services.wire import OP_PUT
from ..sim.process import spawn
from .chaos import CHAOS_RELIABILITY
from .qos_noisy import _engine_mode
from .report import ExperimentResult

#: Hot-key count; ranks 0..N-1 of the Zipf popularity order, which is
#: exactly where a skewed flash crowd concentrates.
DEFAULT_HOT_KEYS = 4


def hot_key_set(n_hot: int = DEFAULT_HOT_KEYS) -> tuple:
    """The workload's hottest *n_hot* keys (LoadGenerator's rank naming)."""
    return tuple(b"k%06d" % rank for rank in range(n_hot))


@dataclass
class CellStats:
    """One run's observables (one side of the on/off contrast)."""

    completed: bool
    error: Optional[str]
    p99_ns: float
    requests: int  # host dispatches (service.kv.requests)
    served: int  # NIC-served GETs (nic.rvma.active.served)
    handler_served: int  # client-visible handler replies
    puts_lost: int
    load: LoadStats
    events_executed: int = 0


@dataclass
class FlashOutcome:
    """One seed's flash-crowd contrast cell (active off vs on)."""

    seed: int
    variant: str  # "flash" | "incast"
    off: CellStats
    on: CellStats

    @property
    def dispatch_saving(self) -> int:
        """Host dispatches avoided by the NIC serve path."""
        return self.off.requests - self.on.requests

    @property
    def speedup(self) -> float:
        if self.on.p99_ns <= 0:
            return float("inf")
        return self.off.p99_ns / self.on.p99_ns

    @property
    def invariants_ok(self) -> bool:
        """Liveness + integrity on both sides of the contrast."""
        return bool(
            self.off.completed and self.on.completed
            and self.off.error is None and self.on.error is None
            and self.off.load.all_resolved() and self.on.load.all_resolved()
            and self.off.puts_lost == 0 and self.on.puts_lost == 0
            and self.off.served == 0  # active off must not serve
        )

    @property
    def contrast_ok(self) -> bool:
        """The acceptance contrast: faster tail, fewer host dispatches.

        Every NIC-served GET must account for at least one host dispatch
        the off cell paid for (``dispatch_saving >= served > 0``).
        """
        return bool(
            self.on.p99_ns < self.off.p99_ns
            and self.on.served > 0
            and self.dispatch_saving >= self.on.served
            and self.on.handler_served >= self.on.served
        )


def _run_cell(
    seed: int,
    active: bool,
    workload: WorkloadConfig,
    n_hot: int,
    n_server_nodes: int,
    shards_per_node: int,
    n_client_nodes: int,
    clients_per_node: int,
    chaos: bool = False,
    auditor: Optional[InvariantAuditor] = None,
    sim_deadline_ns: float = 200_000_000.0,
) -> CellStats:
    """One run: warm the hot keys, then drive the flash-crowd load."""
    n_nodes = n_server_nodes + n_client_nodes
    cluster = Cluster.build(
        n_nodes=n_nodes, topology="dragonfly", nic_type="rvma", fidelity="flow",
        seed=seed, nic_config=RvmaNicConfig(reliability=CHAOS_RELIABILITY),
    )
    if chaos:
        schedule = ChaosSchedule.generate(
            cluster, horizon_ns=sim_deadline_ns * 0.6, n_events=4,
            max_window_ns=2_000_000.0, drop_prob=0.02, kinds=("link_flap",),
        )
        schedule.apply(FaultInjector(cluster))
    if auditor is not None:
        auditor.attach(cluster)

    hot = hot_key_set(n_hot)
    # Finite host serving capacity: without per-request CPU cost there
    # is no dispatch queue for the flash crowd to clog and nothing for
    # the NIC serve path to win.
    server_config = KvServerConfig(
        service_ns_per_request=800.0, service_ns_per_byte=0.2,
        hot_keys=hot if active else (),
    )
    shard_map = ShardMap(list(range(n_server_nodes)), shards_per_node)
    servers = [
        KvServer(cluster.nodes[n], shard_map, server_config).start()
        for n in range(n_server_nodes)
    ]
    robustness = ClientRobustnessConfig() if chaos else None
    clients = [
        KvClient(
            RvmaApi(cluster.nodes[n_server_nodes + n]), shard_map, index=i,
            max_put_bytes=server_config.chunk_bytes, robustness=robustness,
        )
        for n in range(n_client_nodes)
        for i in range(clients_per_node)
    ]
    gen = LoadGenerator(cluster.sim, clients, workload)

    def master():
        for client in clients:
            yield from client.open()
        # Warm phase: one PUT per hot key.  The executing host syncs
        # each value into the NIC view (when active), so the crowd's
        # GETs find a servable entry — identical bytes either way.
        warm = [
            (OP_PUT, key, b"hot%03d" % i * 16)
            for i, key in enumerate(hot)
        ]
        gen.stats.ops_issued += len(warm)
        replies = yield from clients[0].execute_batch(
            warm, deadline_ns=workload.deadline_ns
        )
        for (op, _k, _v), reply in zip(warm, replies):
            gen.stats.note(op, reply.status)
        yield from gen.run()
        # Drain grace before the shard streams close, so late
        # retransmits land as stale duplicates instead of put loss.
        yield 100_000.0
        for server in servers:
            server.stop()

    proc = spawn(cluster.sim, master(), "flash-master")
    error: Optional[str] = None
    try:
        cluster.sim.run(until=sim_deadline_ns)
    except RuntimeError as exc:
        error = str(exc)
    if error is None and not proc.finished:
        error = f"cell did not finish by sim_deadline_ns={sim_deadline_ns:,.0f}"

    registry = MetricsRegistry.collect(cluster.sim)
    latency = registry.histograms.get("service.kv.request_latency_ns")
    counters = registry.counters
    return CellStats(
        completed=proc.finished,
        error=error,
        p99_ns=latency.percentile(0.99) if latency is not None else float("nan"),
        requests=counters.get("service.kv.requests", 0),
        served=counters.get("nic.rvma.active.served", 0),
        handler_served=counters.get("service.kv.client.handler_served", 0),
        puts_lost=counters.get("nic.rvma.puts_lost", 0),
        load=gen.stats,
        events_executed=cluster.sim.events_executed,
    )


def _flash_workload(n_hot: int, n_ops: int, deadline_ns: Optional[float]) -> WorkloadConfig:
    """GET-heavy open-loop Zipf crowd concentrated on the hot ranks."""
    return WorkloadConfig(
        n_ops=n_ops, n_keys=max(6 * n_hot, 16), value_bytes=96, zipf_s=1.2,
        get_frac=0.94, put_frac=0.06, mode="open",
        mean_interarrival_ns=900.0, deadline_ns=deadline_ns,
        rng_stream="kv-flash",
    )


def _incast_workload(n_hot: int, n_ops: int, deadline_ns: Optional[float]) -> WorkloadConfig:
    """Closed-loop batch GET storm; the key set is nothing but hot keys."""
    return WorkloadConfig(
        n_ops=n_ops, n_keys=n_hot, value_bytes=96, zipf_s=0.0,
        get_frac=0.97, put_frac=0.03, mode="closed", batch=8,
        deadline_ns=deadline_ns, rng_stream="kv-incast",
    )


def run_flash_crowd(
    seed: int = 1,
    n_hot: int = DEFAULT_HOT_KEYS,
    n_ops: int = 260,
    variant: str = "flash",
    n_server_nodes: int = 2,
    shards_per_node: int = 2,
    n_client_nodes: int = 3,
    clients_per_node: int = 2,
) -> FlashOutcome:
    """Run one seed's contrast cell: active off, then on, same workload.

    Both runs share cluster/seed/workload wiring; the only difference
    is ``KvServerConfig.hot_keys`` — so the contrast measures the NIC
    serve path and nothing else.
    """
    if variant == "incast":
        workload = _incast_workload(n_hot, n_ops, deadline_ns=None)
    else:
        workload = _flash_workload(n_hot, n_ops, deadline_ns=None)
    kw = dict(
        workload=workload, n_hot=n_hot, n_server_nodes=n_server_nodes,
        shards_per_node=shards_per_node, n_client_nodes=n_client_nodes,
        clients_per_node=clients_per_node,
    )
    off = _run_cell(seed, active=False, **kw)
    on = _run_cell(seed, active=True, **kw)
    return FlashOutcome(seed=seed, variant=variant, off=off, on=on)


@dataclass
class ChaosOutcome:
    """One seed's active-on flash crowd under link flaps, auditor armed."""

    seed: int
    cell: CellStats
    audit_ok: bool
    audit_violations: int

    @property
    def invariants_ok(self) -> bool:
        return bool(
            self.cell.completed
            and self.cell.error is None
            and self.cell.load.all_resolved()
            and self.audit_ok
            and self.cell.served > 0
        )


def run_flash_chaos(
    seed: int = 1,
    n_hot: int = DEFAULT_HOT_KEYS,
    n_ops: int = 200,
) -> ChaosOutcome:
    """Active-on flash crowd under link flaps with the auditor shadowing
    every placement/completion — handler rewrites and injected replies
    must keep epoch bytes identical through retransmits."""
    auditor = InvariantAuditor()
    cell = _run_cell(
        seed, active=True,
        workload=_flash_workload(n_hot, n_ops, deadline_ns=8_000_000.0),
        n_hot=n_hot, n_server_nodes=2, shards_per_node=2,
        n_client_nodes=3, clients_per_node=2,
        chaos=True, auditor=auditor,
    )
    return ChaosOutcome(
        seed=seed, cell=cell, audit_ok=auditor.ok,
        audit_violations=len(auditor.violations),
    )


def run_flash_sweep(seeds: tuple = (1, 2, 3), **kw) -> ExperimentResult:
    """The contrast sweep: flash + incast variants, then a chaos cell.

    Passes when every seed's both variants show the acceptance contrast
    (active-on p99 < active-off p99, ``dispatch_saving >= served > 0``)
    and the chaos cell survives with a clean audit.
    """
    rows = []
    all_ok = True
    contrast_ok = True
    chaos_ok = True
    for seed in seeds:
        for variant in ("flash", "incast"):
            out = run_flash_crowd(seed=seed, variant=variant, **kw)
            all_ok = all_ok and out.invariants_ok
            contrast_ok = contrast_ok and out.contrast_ok
            rows.append([
                seed,
                variant,
                f"{out.off.p99_ns:,.0f}",
                f"{out.on.p99_ns:,.0f}",
                f"{out.speedup:.2f}",
                out.on.served,
                out.dispatch_saving,
                out.on.handler_served,
                "yes" if out.invariants_ok else "NO",
                "yes" if out.contrast_ok else "no",
            ])
        chaos = run_flash_chaos(seed=seed)
        chaos_ok = chaos_ok and chaos.invariants_ok
        rows.append([
            seed, "chaos",
            "-", f"{chaos.cell.p99_ns:,.0f}", "-",
            chaos.cell.served, "-", chaos.cell.handler_served,
            "yes" if chaos.invariants_ok else "NO",
            "audit" if chaos.audit_ok else f"{chaos.audit_violations} violations",
        ])
    return ExperimentResult(
        name="active-flash",
        title="Hot-key flash crowd: NIC-served GETs vs host dispatch, active on/off",
        headers=[
            "seed", "variant", "off p99 ns", "on p99 ns", "speedup",
            "served", "saved", "client", "ok", "contrast",
        ],
        rows=rows,
        summary={
            "all_invariants_ok": all_ok,
            "contrast_ok": contrast_ok,
            "chaos_ok": chaos_ok,
            "seeds": list(seeds),
        },
        paper_claims={
            "observation": "attaching compute to the mailbox threshold "
            "crossing extends RVMA's receiver-managed completion into "
            "compute-on-arrival: hot-key GETs resolve at the NIC with the "
            "host sweep loop never dispatched, byte-identical to the "
            "host-served reply"
        },
    )


# ---------------------------------------------------------------- active CLI


def active_main(argv: Optional[list] = None) -> int:
    """``rvma-experiments active``: run the flash-crowd cell or sweep."""
    parser = argparse.ArgumentParser(
        prog="rvma-experiments active",
        description="Hot-key flash-crowd cell for NIC-side active mailboxes",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="pin to one seed (default: the 3-seed matrix for --sweep, 1 otherwise)",
    )
    parser.add_argument(
        "--seeds", type=str, default="",
        help="comma-separated seed list for --sweep (overrides --seed)",
    )
    parser.add_argument(
        "--sweep", action="store_true",
        help="run the on/off contrast sweep (flash + incast + chaos) and assert it",
    )
    parser.add_argument(
        "--variant", choices=("flash", "incast"), default="flash",
        help="single-cell workload shape (ignored with --sweep)",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="single cell only: active-on under link flaps with the auditor armed",
    )
    parser.add_argument(
        "--engine", choices=("fast", "plain"), default="fast",
        help="event-engine mode (CI matrixes over both)",
    )
    args = parser.parse_args(argv)

    with _engine_mode(args.engine):
        if args.sweep:
            if args.seeds:
                seeds = tuple(int(s) for s in args.seeds.split(",") if s.strip())
            elif args.seed is not None:
                seeds = (args.seed,)
            else:
                seeds = (1, 2, 3)
            result = run_flash_sweep(seeds=seeds)
            print(result.to_text())
            for key, value in result.summary.items():
                print(f"  {key}: {value}")
            ok = (
                result.summary["all_invariants_ok"]
                and result.summary["contrast_ok"]
                and result.summary["chaos_ok"]
            )
            return 0 if ok else 1

        seed = args.seed if args.seed is not None else 1
        if args.chaos:
            chaos = run_flash_chaos(seed=seed)
            print(
                f"active-chaos seed={chaos.seed}: served {chaos.cell.served}, "
                f"client handler replies {chaos.cell.handler_served}, "
                f"p99 {chaos.cell.p99_ns:,.0f} ns, "
                f"audit {'ok' if chaos.audit_ok else f'{chaos.audit_violations} VIOLATIONS'}"
            )
            return 0 if chaos.invariants_ok else 1
        out = run_flash_crowd(seed=seed, variant=args.variant)
        print(
            f"active-flash seed={out.seed} variant={out.variant}: "
            f"p99 {out.off.p99_ns:,.0f} ns off vs {out.on.p99_ns:,.0f} ns on "
            f"(speedup {out.speedup:.2f}), served {out.on.served}, "
            f"host dispatches saved {out.dispatch_saving}"
        )
        print(
            f"invariants: {'ok' if out.invariants_ok else 'VIOLATED'}; "
            f"contrast: {'yes' if out.contrast_ok else 'NO'}"
        )
        return 0 if out.invariants_ok and out.contrast_ok else 1
