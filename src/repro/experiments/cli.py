"""Command-line driver: regenerate any paper figure or ablation.

Usage::

    rvma-experiments fig4
    rvma-experiments fig7 --nodes 512
    rvma-experiments all --nodes 64 --out results.md
    rvma-experiments fig7 --paper-scale     # 8,192 nodes, slow

Each command prints the regenerated table and the paper's headline
claims next to the measured ones.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from .active_flash import run_flash_sweep
from .ablations import (
    run_ablation_completion,
    run_ablation_lut,
    run_ablation_pcie,
    run_ablation_threshold,
    run_ablation_write_imm,
)
from .chaos import run_chaos, run_crash_restart
from .charts import chart_for_result
from .fault_recovery import run_fault_recovery
from .fig45 import run_fig4, run_fig5
from .fig6 import run_fig6
from .kv_churn import run_kv_churn
from .motif_sweep import run_fig7, run_fig8
from .qos_noisy import run_noisy_sweep
from .report import ExperimentResult

PAPER_NODES = 8192


def _fig7_runner(args) -> ExperimentResult:
    return run_fig7(n_nodes=args.nodes, jobs=args.jobs)


def _fig8_runner(args) -> ExperimentResult:
    return run_fig8(n_nodes=args.nodes, jobs=args.jobs)


def _seeds_of(args) -> tuple:
    """One pinned seed from ``--seed``, or the default matrix."""
    return (args.seed,) if args.seed is not None else (1, 2, 3)


def _motifs_of(args) -> tuple:
    """Motif subset from ``--motifs``, or the full default set."""
    if args.motifs:
        return tuple(m.strip() for m in args.motifs.split(",") if m.strip())
    return ("allreduce", "incast", "halo3d")


def _chaos_runner(args) -> ExperimentResult:
    return run_chaos(
        seeds=_seeds_of(args),
        motifs=_motifs_of(args),
        observe=bool(args.metrics_out),
        trace=args.trace,
    )


def _chaos_crash_runner(args) -> ExperimentResult:
    return run_crash_restart(
        seeds=_seeds_of(args),
        motifs=_motifs_of(args),
        observe=bool(args.metrics_out),
        trace=args.trace,
    )


def _kv_churn_runner(args) -> ExperimentResult:
    return run_kv_churn(
        seeds=_seeds_of(args),
        observe=bool(args.metrics_out),
        trace=args.trace,
    )


def _qos_noisy_runner(args) -> ExperimentResult:
    return run_noisy_sweep(seeds=_seeds_of(args))


def _active_flash_runner(args) -> ExperimentResult:
    return run_flash_sweep(seeds=_seeds_of(args))


RUNNERS: dict[str, Callable] = {
    "fig4": lambda args: run_fig4(),
    "fig5": lambda args: run_fig5(),
    "fig6": lambda args: run_fig6(),
    "fig7": _fig7_runner,
    "fig8": _fig8_runner,
    "ablation-lut": lambda args: run_ablation_lut(),
    "ablation-completion": lambda args: run_ablation_completion(),
    "ablation-threshold": lambda args: run_ablation_threshold(),
    "ablation-write-imm": lambda args: run_ablation_write_imm(),
    "fault-recovery": lambda args: run_fault_recovery(),
    "ablation-pcie": lambda args: run_ablation_pcie(),
    "chaos": _chaos_runner,
    "chaos-crash": _chaos_crash_runner,
    "kv-churn": _kv_churn_runner,
    "qos-noisy": _qos_noisy_runner,
    "active-flash": _active_flash_runner,
}


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "bench":
        # Delegate to the benchmark harness, which owns its own flags
        # (`rvma-experiments bench --suite smoke` == `python -m
        # repro.experiments.bench --suite smoke`).
        from .bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "services":
        # Same delegation pattern: the KV service driver owns its flags
        # (`rvma-experiments services --mode open --zipf 1.1 ...`).
        from .kv_churn import services_main

        return services_main(argv[1:])
    if argv and argv[0] == "fuzz":
        # The scenario fuzzer owns its own subcommands
        # (`rvma-experiments fuzz run --seed-start 1 --count 20`).
        from repro.scenarios.cli import fuzz_main

        return fuzz_main(argv[1:])
    if argv and argv[0] == "qos":
        # Noisy-neighbor QoS cell: owns its flags (`rvma-experiments
        # qos --sweep --engine plain`).
        from .qos_noisy import qos_main

        return qos_main(argv[1:])
    if argv and argv[0] == "active":
        # Active-mailbox flash-crowd cell: owns its flags
        # (`rvma-experiments active --sweep --engine plain`).
        from .active_flash import active_main

        return active_main(argv[1:])
    if argv and argv[0] == "trace":
        # Trace-driven workload record/replay: owns its subcommands
        # (`rvma-experiments trace replay steady-mix --seed 2`).
        from .trace_replay import trace_main

        return trace_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="rvma-experiments",
        description="Regenerate the RVMA paper's tables and figures",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(RUNNERS) + ["all"],
        help="which figure/ablation to regenerate",
    )
    parser.add_argument(
        "--nodes", type=int, default=64,
        help="node count for the motif sweeps (paper used 8192)",
    )
    parser.add_argument(
        "--paper-scale", action="store_true",
        help=f"run motif sweeps at the paper's {PAPER_NODES} nodes (slow)",
    )
    parser.add_argument("--out", type=str, default="", help="append markdown to this file")
    parser.add_argument("--chart", action="store_true", help="render a terminal bar chart per result")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the motif grids (each cell is an independent simulation)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="pin the chaos/chaos-crash/kv-churn sweeps to a single seed "
        "(default: the fixed 3-seed matrix); lets CI shard seeds "
        "and failures replay exactly",
    )
    parser.add_argument(
        "--motifs", type=str, default="",
        help="comma-separated motif subset for the chaos sweeps "
        "(default: allreduce,incast,halo3d)",
    )
    parser.add_argument(
        "--metrics-out", type=str, default="",
        help="write the observability RunReport (JSON) to this path; a "
        "markdown rendering goes to <path>.md (chaos/chaos-crash only)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="enable span tracing during the run (adds span categories, "
        "hottest-span profiles to the --metrics-out report)",
    )
    args = parser.parse_args(argv)
    if args.paper_scale:
        args.nodes = PAPER_NODES

    names = sorted(RUNNERS) if args.experiment == "all" else [args.experiment]
    results: list[ExperimentResult] = []
    for name in names:
        t0 = time.time()
        result = RUNNERS[name](args)
        elapsed = time.time() - t0
        print(result.to_text())
        if args.chart:
            print()
            print(chart_for_result(result))
        for key, value in result.summary.items():
            claim = result.paper_claims.get(key)
            note = f"   (paper: {claim})" if claim is not None else ""
            print(f"  {key}: {value}{note}")
        for key, claim in result.paper_claims.items():
            if key not in result.summary:
                print(f"  paper {key}: {claim}")
        print(f"  [{name} regenerated in {elapsed:.1f}s]\n")
        results.append(result)

    if args.metrics_out:
        reports = [r.run_report for r in results if r.run_report is not None]
        if not reports:
            print(
                "--metrics-out: no observability report produced "
                "(only chaos/chaos-crash runs collect one)",
                file=sys.stderr,
            )
        else:
            from repro.observability import RunReport

            merged = reports[0] if len(reports) == 1 else RunReport.merge(reports)
            merged.save(args.metrics_out)
            md_path = args.metrics_out + ".md"
            with open(md_path, "w", encoding="utf-8") as fh:
                fh.write(merged.to_markdown())
                fh.write("\n")
            print(f"observability report: {args.metrics_out} (markdown: {md_path})")

    if args.out:
        with open(args.out, "a", encoding="utf-8") as fh:
            for result in results:
                fh.write(result.to_markdown())
                fh.write("\n")
        print(f"appended {len(results)} result table(s) to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
