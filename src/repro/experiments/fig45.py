"""Figures 4 and 5: RVMA vs RDMA one-way latency (Verbs and UCX).

Regenerates the two latency-comparison series of the paper's §V-A:
per message size, the completed-transfer latency of RVMA and of
spec-compliant RDMA (write + ack fence + 1-byte send/recv), plus the
headline "% latency reduction" each figure quotes.
"""

from __future__ import annotations

from ..network.routing import RoutingMode
from ..timing.calibration import (
    FIG45_SIZES,
    Testbed,
    UCX_CX5_THUNDERX2,
    VERBS_OPA_SKYLAKE,
)
from ..timing.microbench import latency_sweep
from .report import ExperimentResult


def _latency_figure(
    name: str,
    title: str,
    testbed: Testbed,
    interface: str,
    paper_max_reduction: float,
    sizes: list[int],
    iterations: int,
) -> ExperimentResult:
    points = latency_sweep(
        testbed, sizes, interface, RoutingMode.ADAPTIVE, iterations=iterations
    )
    rows = [
        [p.size, round(p.rvma_ns), round(p.rdma_ns), p.reduction_pct, p.speedup]
        for p in points
    ]
    best = max(points, key=lambda p: p.reduction_pct)
    return ExperimentResult(
        name=name,
        title=title,
        headers=["size_B", "rvma_ns", "rdma_ns", "reduction_%", "speedup_x"],
        rows=rows,
        summary={
            "max_reduction_pct": best.reduction_pct,
            "max_reduction_at_B": best.size,
            "testbed": testbed.name,
        },
        paper_claims={"max_reduction_pct": paper_max_reduction},
    )


def run_fig4(sizes: list[int] | None = None, iterations: int = 6) -> ExperimentResult:
    """Fig 4: RVMA vs RDMA latency over Verbs (OmniPath/Skylake model)."""
    return _latency_figure(
        "fig4",
        "RVMA vs. RDMA Latency (Verbs) — adaptive-routing-compliant RDMA",
        VERBS_OPA_SKYLAKE,
        "verbs",
        paper_max_reduction=65.8,
        sizes=sizes or FIG45_SIZES,
        iterations=iterations,
    )


def run_fig5(sizes: list[int] | None = None, iterations: int = 6) -> ExperimentResult:
    """Fig 5: RVMA vs RDMA latency over UCX (CX-5/ThunderX2 model)."""
    return _latency_figure(
        "fig5",
        "RVMA vs. RDMA Latency (UCX) — adaptive-routing-compliant RDMA",
        UCX_CX5_THUNDERX2,
        "ucx",
        paper_max_reduction=45.8,
        sizes=sizes or FIG45_SIZES,
        iterations=iterations,
    )
