"""Ablations for the design choices DESIGN.md calls out.

* A1 — LUT counter spill: on-NIC threshold counters vs host-memory
  counters across PCIe generations (paper §III-B says the penalty is
  significant today and minimal for Gen6).
* A2 — completion wakeup mechanism: MWait vs cache-line polling vs
  shared-CQ polling (paper §IV-C).
* A3 — epoch threshold type: EPOCH_BYTES vs EPOCH_OPS for the same
  traffic (they must complete identically; cost difference ~0).
* A4 — PCIe generation sweep of the end-to-end put latency.
"""

from __future__ import annotations

from ..memory.mwait import CQ_POLL, MWAIT, POLL
from ..memory.pcie import GEN3, GEN4, GEN5, GEN6, PAPER_SIM
from ..nic.lut import EpochType
from ..nic.rvma import RvmaNicConfig
from ..timing.calibration import Testbed, VERBS_OPA_SKYLAKE
from ..timing.microbench import rvma_latency
from .report import ExperimentResult

ABLATION_SIZE = 1024


def run_ablation_lut(testbed: Testbed = VERBS_OPA_SKYLAKE, size: int = ABLATION_SIZE) -> ExperimentResult:
    """A1: completion latency with on-NIC vs spilled (host) counters."""
    rows = []
    for gen in (GEN3, GEN4, PAPER_SIM, GEN5, GEN6):
        on_nic = rvma_latency(
            testbed, size,
            nic_cfg=RvmaNicConfig(pcie=gen, nic_proc=testbed.nic_proc,
                                  issue_overhead=testbed.issue_overhead),
        )
        spilled = rvma_latency(
            testbed, size,
            nic_cfg=RvmaNicConfig(pcie=gen, nic_proc=testbed.nic_proc,
                                  issue_overhead=testbed.issue_overhead,
                                  nic_counters=0),
        )
        rows.append([gen.name, round(on_nic), round(spilled),
                     round(spilled - on_nic), (spilled - on_nic) / on_nic * 100.0])
    penalties = {r[0]: r[3] for r in rows}
    return ExperimentResult(
        name="ablation-lut",
        title=f"A1: on-NIC vs host-memory threshold counters ({size}B put)",
        headers=["pcie", "on_nic_ns", "spilled_ns", "penalty_ns", "penalty_%"],
        rows=rows,
        summary={
            "gen4_penalty_ns": penalties.get("gen4"),
            "gen6_penalty_ns": penalties.get("gen6"),
        },
        paper_claims={
            "observation": "host-memory counters cost ~2x bus latency today; "
            "minimal for PCIe Gen6 (tens of ns)"
        },
    )


def run_ablation_completion(testbed: Testbed = VERBS_OPA_SKYLAKE, size: int = ABLATION_SIZE) -> ExperimentResult:
    """A2: receiver wakeup mechanism comparison."""
    rows = []
    for model in (MWAIT, POLL, CQ_POLL):
        lat = rvma_latency(testbed, size, wakeup=model)
        rows.append([model.name, round(lat), model.wake_latency, model.poll_interval])
    mwait = rows[0][1]
    return ExperimentResult(
        name="ablation-completion",
        title=f"A2: completion wakeup mechanism ({size}B put)",
        headers=["mechanism", "latency_ns", "wake_ns", "poll_interval_ns"],
        rows=rows,
        summary={"mwait_ns": mwait, "cq_poll_extra_ns": rows[2][1] - mwait},
        paper_claims={
            "observation": "per-buffer completion pointers admit MWait; "
            "shared CQs force costlier polling"
        },
    )


def run_ablation_threshold(testbed: Testbed = VERBS_OPA_SKYLAKE, size: int = ABLATION_SIZE) -> ExperimentResult:
    """A3: EPOCH_BYTES vs EPOCH_OPS for single-put epochs.

    Uses the same ping-pong with the two threshold interpretations;
    both must yield identical completion behaviour, so this is a parity
    check as much as a cost ablation.
    """
    import repro.timing.microbench as mb
    from ..cluster.builder import Cluster
    from ..core.api import RvmaApi
    from ..sim.process import spawn

    rows = []
    for etype, threshold in ((EpochType.EPOCH_BYTES, size), (EpochType.EPOCH_OPS, 1)):
        cl = mb._build(testbed, "rvma", testbed.net.routing, "packet")
        api0 = RvmaApi(cl.node(0), testbed.rvma_sw_overhead)
        api1 = RvmaApi(cl.node(1), testbed.rvma_sw_overhead)
        samples: list[float] = []
        starts: list[float] = []
        total = 6

        def receiver(api1=api1, cl=cl, etype=etype, threshold=threshold,
                     samples=samples, starts=starts):
            win = yield from api1.init_window(0xE0, threshold, etype)
            for _ in range(total):
                yield from api1.post_buffer(win, size=size)
            for i in range(total):
                yield from api1.wait_completion(win)
                samples.append(cl.sim.now - starts[i])
                op = yield from api1.put(0, 0xE1, size=8)
                yield op.local_done

        def sender(api0=api0, cl=cl, starts=starts):
            pong = yield from api0.init_window(0xE1, 8)
            for _ in range(total):
                yield from api0.post_buffer(pong, size=8)
            yield 5000.0
            for _ in range(total):
                starts.append(cl.sim.now)
                yield from api0.put(1, 0xE0, size=size)
                yield from api0.wait_completion(pong)

        spawn(cl.sim, receiver(), "rx")
        spawn(cl.sim, sender(), "tx")
        cl.sim.run()
        mean = sum(samples[2:]) / len(samples[2:])
        rows.append([etype.name, round(mean, 1)])
    delta = abs(rows[0][1] - rows[1][1])
    return ExperimentResult(
        name="ablation-threshold",
        title=f"A3: epoch threshold type parity ({size}B single-put epochs)",
        headers=["threshold_type", "latency_ns"],
        rows=rows,
        summary={"bytes_vs_ops_delta_ns": delta},
        paper_claims={"observation": "byte and op counting are equivalent for "
                      "non-overlapping single-put epochs"},
    )


def run_ablation_pcie(testbed: Testbed = VERBS_OPA_SKYLAKE, size: int = ABLATION_SIZE) -> ExperimentResult:
    """A4: end-to-end completed-put latency across PCIe generations."""
    rows = []
    for gen in (GEN3, GEN4, PAPER_SIM, GEN5, GEN6):
        lat = rvma_latency(
            testbed, size,
            nic_cfg=RvmaNicConfig(pcie=gen, nic_proc=testbed.nic_proc,
                                  issue_overhead=testbed.issue_overhead),
        )
        rows.append([gen.name, gen.latency, round(lat)])
    return ExperimentResult(
        name="ablation-pcie",
        title=f"A4: PCIe generation sweep ({size}B put)",
        headers=["pcie", "bus_latency_ns", "put_latency_ns"],
        rows=rows,
        summary={"gen3_ns": rows[0][2], "gen6_ns": rows[-1][2]},
        paper_claims={
            "observation": "PCIe latency is a major contributor; Gen6 makes "
            "the local bus insignificant vs the wire (paper §V-B)"
        },
    )


def run_ablation_write_imm(testbed: Testbed = VERBS_OPA_SKYLAKE) -> ExperimentResult:
    """A5: write-with-immediate as a completion mechanism.

    The paper (§I, §VI) notes RDMA's completion-carrying commands only
    support small payloads: for <= 64 B, write+imm is nearly as fast as
    RVMA, but it simply cannot carry real transfers — RVMA's threshold
    completion has no such ceiling.
    """
    from ..nic.rdma import MAX_IMM_PAYLOAD
    from ..rdma.completion_modes import CompletionMode
    from ..timing.microbench import rdma_verbs_latency, rvma_latency

    rows = []
    for size in (16, 64, 256, 4096):
        rvma = rvma_latency(testbed, size)
        send_recv = rdma_verbs_latency(testbed, size, CompletionMode.SEND_RECV)
        if size <= MAX_IMM_PAYLOAD:
            imm = round(
                rdma_verbs_latency(testbed, size, CompletionMode.WRITE_IMM)
            )
        else:
            imm = "n/a (>64B)"
        rows.append([size, round(rvma), imm, round(send_recv)])
    return ExperimentResult(
        name="ablation-write-imm",
        title="A5: write-with-immediate vs RVMA vs send/recv completion",
        headers=["size_B", "rvma_ns", "write_imm_ns", "send_recv_ns"],
        rows=rows,
        summary={"imm_ceiling_B": 64},
        paper_claims={
            "observation": "completion-carrying RDMA commands support only "
            "small payloads (<64B); larger transfers need the send/recv path"
        },
    )
