"""Result tables: fixed-width text for terminals, markdown for docs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


@dataclass
class ExperimentResult:
    """One experiment's regenerated table plus headline numbers."""

    name: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    #: headline metrics, e.g. {"max_reduction_pct": 63.1}
    summary: dict = field(default_factory=dict)
    #: the paper's reported values for EXPERIMENTS.md comparison
    paper_claims: dict = field(default_factory=dict)
    #: merged observability snapshot across the sweep's runs
    #: (:class:`repro.observability.RunReport`); None unless the sweep
    #: was invoked with ``observe=True``.
    run_report: Any = None

    def to_text(self) -> str:
        """Fixed-width terminal rendering of the table."""
        return format_table(self.headers, self.rows, title=self.title)

    def to_markdown(self) -> str:
        """Markdown rendering with summary/paper-claim footnotes."""
        lines = [f"### {self.name}: {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
        if self.summary or self.paper_claims:
            lines.append("")
            for k, v in self.summary.items():
                claim = self.paper_claims.get(k)
                suffix = f" (paper: {_fmt(claim)})" if claim is not None else ""
                lines.append(f"- **{k}** = {_fmt(v)}{suffix}")
        lines.append("")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render an aligned fixed-width table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
