"""Experiment drivers: one per paper figure, plus ablations."""

from .ablations import (
    run_ablation_completion,
    run_ablation_lut,
    run_ablation_pcie,
    run_ablation_threshold,
    run_ablation_write_imm,
)
from .chaos import ChaosOutcome, run_chaos, run_motif_under_chaos
from .charts import bar_chart, chart_for_result
from .fault_recovery import run_fault_recovery
from .fig45 import run_fig4, run_fig5
from .fig6 import FIG6_SIZES, run_fig6
from .motif_sweep import (
    DEFAULT_RATES,
    DEFAULT_ROUTINGS,
    DEFAULT_TOPOLOGIES,
    MotifComparison,
    run_fig7,
    run_fig8,
    run_motif_sweep,
)
from .report import ExperimentResult, format_table

__all__ = [
    "DEFAULT_RATES",
    "DEFAULT_ROUTINGS",
    "DEFAULT_TOPOLOGIES",
    "ChaosOutcome",
    "ExperimentResult",
    "FIG6_SIZES",
    "MotifComparison",
    "bar_chart",
    "chart_for_result",
    "format_table",
    "run_ablation_completion",
    "run_ablation_lut",
    "run_ablation_pcie",
    "run_ablation_threshold",
    "run_ablation_write_imm",
    "run_chaos",
    "run_fault_recovery",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_motif_sweep",
    "run_motif_under_chaos",
]
