"""The committed exemplar traces under ``corpus/traces/``.

Two pinned traces every replay consumer (CLI compare, CI trace-replay
job, bench kv-trace cell, scenario-fuzzer ``trace`` workloads) shares:

* ``steady-mix`` — a single-tenant open-loop get/put/delete mix with
  Zipf-skewed keys, recorded from the stock :class:`LoadGenerator`;
  the plain "does replay reproduce a recorded run" workhorse.
* ``flash-crowd`` — two tenants (1 = victim, 2 = aggressor) with a
  hot-key GET flash crowd injected into the aggressor's stream via
  trace transforms; the load shape that makes QoS isolation and
  active-mailbox serving visibly diverge on identical offered load.

The registry pins each trace's identity (trace_id) and shape (rows,
clients, tenants); ``tests/unit/test_trace_codec.py`` asserts the
committed files still match, so a regenerated or hand-edited trace
cannot drift in silently.  Regeneration lives in
``repro.experiments.trace_replay`` (``trace record`` + transforms).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .trace import Trace

#: corpus/traces/ at the repo root (… /src/repro/workloads/exemplars.py).
TRACES_DIR = Path(__file__).resolve().parents[3] / "corpus" / "traces"


@dataclass(frozen=True)
class ExemplarInfo:
    """Pinned identity + shape of one committed trace."""

    name: str
    file: str
    trace_id: str
    rows: int
    clients: int
    tenants: tuple


#: Filled in when the exemplars were generated; pinned by unit tests.
EXEMPLARS = {
    "steady-mix": ExemplarInfo(
        name="steady-mix",
        file="steady-mix.jsonl",
        trace_id="1ff9996b3c04",
        rows=240,
        clients=3,
        tenants=(0,),
    ),
    "flash-crowd": ExemplarInfo(
        name="flash-crowd",
        file="flash-crowd.jsonl",
        trace_id="082d6420dbb7",
        rows=300,
        clients=4,
        tenants=(1, 2),
    ),
}

EXEMPLAR_NAMES = tuple(sorted(EXEMPLARS))


def exemplar_path(name: str) -> Path:
    info = EXEMPLARS.get(name)
    if info is None:
        raise KeyError(f"unknown exemplar trace {name!r} (have {EXEMPLAR_NAMES})")
    return TRACES_DIR / info.file


def load_exemplar(name: str) -> Trace:
    """Load a committed exemplar and verify it matches its pinned shape."""
    info = EXEMPLARS[name] if name in EXEMPLARS else None
    if info is None:
        raise KeyError(f"unknown exemplar trace {name!r} (have {EXEMPLAR_NAMES})")
    trace = Trace.load(str(TRACES_DIR / info.file))
    if trace.trace_id != info.trace_id or trace.n_ops != info.rows:
        raise ValueError(
            f"exemplar {name!r} drifted: file is {trace.trace_id}/{trace.n_ops} "
            f"rows, registry pins {info.trace_id}/{info.rows}"
        )
    return trace
