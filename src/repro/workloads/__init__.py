"""Trace-driven workloads: record, transform and replay KV load shapes.

The :class:`LoadGenerator` synthesizes arrivals; this package captures
them (or any live :class:`KvClient` run) into a pinned, schema-versioned
trace file and replays that file bit-identically — same arrival
instants, same per-client op order, same payload bytes — across engine
modes, backends and feature toggles, so every existing oracle becomes
an A/B instrument over *identical* offered load.

- :mod:`repro.workloads.trace` — the canonical JSON-lines codec
  (header + rows, blake2s trace_id over rows only, strict decode);
- :mod:`repro.workloads.recorder` — TraceRecorder hooks into KvClient;
- :mod:`repro.workloads.replayer` — TraceReplayer open-loop driver with
  canonical outcome streams and per-key replay safety checks;
- :mod:`repro.workloads.transforms` — pure Trace→Trace closures
  (time-scale, burst amplification, flash-crowd injection, diurnal
  ramp, tenant remap) with an associative composition law;
- :mod:`repro.workloads.exemplars` — the committed traces under
  ``corpus/traces/`` with pinned identities.
"""

from .exemplars import EXEMPLAR_NAMES, EXEMPLARS, exemplar_path, load_exemplar
from .recorder import TraceRecorder
from .replayer import TraceReplayer, check_replay_safety, value_for
from .trace import (
    SUPPORTED_TRACE_SCHEMAS,
    TRACE_KIND,
    TRACE_OPS,
    TRACE_SCHEMA_VERSION,
    Trace,
    TraceError,
    TraceRow,
)
from .transforms import (
    amplify_bursts,
    compose,
    diurnal_ramp,
    inject_flash_crowd,
    tenant_remap,
    time_scale,
)

__all__ = [
    "EXEMPLARS",
    "EXEMPLAR_NAMES",
    "SUPPORTED_TRACE_SCHEMAS",
    "TRACE_KIND",
    "TRACE_OPS",
    "TRACE_SCHEMA_VERSION",
    "Trace",
    "TraceError",
    "TraceRecorder",
    "TraceReplayer",
    "TraceRow",
    "amplify_bursts",
    "check_replay_safety",
    "compose",
    "diurnal_ramp",
    "exemplar_path",
    "inject_flash_crowd",
    "load_exemplar",
    "tenant_remap",
    "time_scale",
    "value_for",
]
