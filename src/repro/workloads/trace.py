"""The canonical KV trace format: pinned, schema-versioned JSON lines.

One trace file = one header line + one line per op.  The header is a
canonical-JSON object carrying the format kind, the trace schema
version, the row count, seed provenance, and a blake2s ``trace_id``;
every row is a canonical-JSON array::

    [timestamp_ns, tenant, client, op, key, value_size]

mirroring the :mod:`repro.scenarios.schema` discipline: sorted keys,
fixed separators, explicit everything — so a trace's serialized form is
its identity, and two traces with the same rows have the same
``trace_id`` no matter where they were recorded.

Two properties are load bearing for the replay oracles:

* **identity covers rows only** — ``trace_id`` digests the schema
  version plus the canonical row lines, *not* the provenance, so a
  transform that changes no rows (``time_scale(1.0)``) is a true
  identity and transform composition is associative on trace ids;
* **strict decode** — unknown ops, negative or out-of-order timestamps,
  value sizes on non-put ops, clients that switch tenants mid-trace,
  truncated files and header/row disagreements are all
  :class:`TraceError`, never a best-effort repair.  A trace that loads
  is replayable bit-identically.

Timestamps are normalized on construction (integral floats stored as
ints) so transforms that multiply by 1.0 round-trip byte-identically.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional

#: Header ``kind`` marker — a trace file is self-describing.
TRACE_KIND = "rvma-kv-trace"

#: Bump when the row layout changes; the decoder accepts every version
#: in :data:`SUPPORTED_TRACE_SCHEMAS`.
TRACE_SCHEMA_VERSION = 1
SUPPORTED_TRACE_SCHEMAS = (1,)

#: Row op names (the wire op codes' names, see repro.services.wire).
TRACE_OPS = ("get", "put", "delete", "scan")

#: Only puts carry payload bytes; every other op's value_size must be 0.
_VALUE_OPS = ("put",)

_SEP = (",", ":")


class TraceError(ValueError):
    """A trace document failed validation or decoding."""


def _norm_ts(value) -> float:
    """Canonical timestamp: integral floats collapse to ints.

    ``1500 * 1.0 == 1500.0`` must re-encode as ``1500``, or a
    ``time_scale(1.0)`` transform would change the serialized rows (and
    the trace_id) without changing the trace.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TraceError(f"timestamp must be a number, got {value!r}")
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise TraceError(f"timestamp must be finite, got {value!r}")
        if value.is_integer():
            return int(value)
    return value


@dataclass(frozen=True)
class TraceRow:
    """One offered op: when, who, what."""

    timestamp_ns: float
    tenant: int
    client: int
    op: str
    key: str
    value_size: int

    def __post_init__(self) -> None:
        # Canonicalize at construction: every TraceRow serializes the
        # same way no matter which path built it (recorder, decoder,
        # transform, or a test constructing rows directly).
        object.__setattr__(self, "timestamp_ns", _norm_ts(self.timestamp_ns))

    def to_list(self) -> list:
        return [
            self.timestamp_ns, self.tenant, self.client,
            self.op, self.key, self.value_size,
        ]

    def to_line(self) -> str:
        """Canonical serialized row (part of the trace identity)."""
        return json.dumps(self.to_list(), separators=_SEP, ensure_ascii=True)

    @classmethod
    def from_list(cls, row) -> "TraceRow":
        if not isinstance(row, (list, tuple)) or len(row) != 6:
            raise TraceError(f"malformed trace row {row!r} (need 6 fields)")
        ts, tenant, client, op, key, value_size = row
        if isinstance(tenant, bool) or not isinstance(tenant, int):
            raise TraceError(f"trace row tenant must be an int, got {tenant!r}")
        if isinstance(client, bool) or not isinstance(client, int):
            raise TraceError(f"trace row client must be an int, got {client!r}")
        if isinstance(value_size, bool) or not isinstance(value_size, int):
            raise TraceError(f"trace row value_size must be an int, got {value_size!r}")
        return cls(
            timestamp_ns=_norm_ts(ts),
            tenant=tenant,
            client=client,
            op=str(op),
            key=str(key),
            value_size=value_size,
        )

    def validate(self) -> None:
        if self.op not in TRACE_OPS:
            raise TraceError(f"unknown trace op {self.op!r} (have {TRACE_OPS})")
        ts = self.timestamp_ns
        if ts < 0:
            raise TraceError(f"negative timestamp {ts!r}")
        if not 0 <= self.tenant <= 0xFFFF:
            raise TraceError(f"tenant {self.tenant} does not fit the u16 wire field")
        if not 0 <= self.client <= 0xFFFFFFFF:
            raise TraceError(f"client {self.client} does not fit the u32 wire field")
        if not self.key:
            raise TraceError("trace row key must be non-empty")
        if len(self.key) > 0xFFFF:
            raise TraceError(f"key of {len(self.key)} chars exceeds the u16 length field")
        try:
            self.key.encode("latin-1")
        except UnicodeEncodeError as exc:
            raise TraceError(f"key {self.key!r} is not byte-encodable (latin-1)") from exc
        if self.value_size < 0:
            raise TraceError(f"negative value_size {self.value_size}")
        if self.op not in _VALUE_OPS and self.value_size != 0:
            raise TraceError(
                f"op {self.op!r} must have value_size 0, got {self.value_size}"
            )

    def key_bytes(self) -> bytes:
        return self.key.encode("latin-1")


def _rows_digest(schema: int, rows: Iterable[TraceRow]) -> str:
    h = hashlib.blake2s(digest_size=6)
    h.update(f"{TRACE_KIND}:{schema}\n".encode("utf-8"))
    for row in rows:
        h.update(row.to_line().encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


@dataclass(frozen=True)
class Trace:
    """An immutable, validated op trace plus its provenance.

    ``provenance`` records where the rows came from (recording seed,
    workload shape, applied transforms) — documentation, not identity:
    :attr:`trace_id` covers the schema version and rows only.
    """

    rows: tuple = ()
    provenance: dict = field(default_factory=dict)
    schema: int = TRACE_SCHEMA_VERSION

    # ------------------------------------------------------------- identity

    @property
    def trace_id(self) -> str:
        return _rows_digest(self.schema, self.rows)

    @property
    def n_ops(self) -> int:
        return len(self.rows)

    def header_dict(self) -> dict:
        return {
            "kind": TRACE_KIND,
            "schema": self.schema,
            "trace_id": self.trace_id,
            "n_ops": len(self.rows),
            "provenance": self.provenance,
        }

    def to_jsonl(self) -> str:
        """Canonical serialized form: header line + one line per row."""
        lines = [json.dumps(self.header_dict(), sort_keys=True, separators=_SEP)]
        lines.extend(row.to_line() for row in self.rows)
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------- queries

    def clients(self) -> tuple:
        """Distinct client ids, sorted (the replayer's endpoint order)."""
        return tuple(sorted({row.client for row in self.rows}))

    def tenants(self) -> tuple:
        """Distinct tenant ids, sorted."""
        return tuple(sorted({row.tenant for row in self.rows}))

    def tenant_of(self, client: int) -> int:
        """The (validated-unique) tenant a client's rows carry."""
        for row in self.rows:
            if row.client == client:
                return row.tenant
        raise KeyError(f"client {client} has no rows in this trace")

    def duration_ns(self) -> float:
        if not self.rows:
            return 0.0
        return self.rows[-1].timestamp_ns - self.rows[0].timestamp_ns

    # ------------------------------------------------------------- building

    @classmethod
    def from_rows(cls, rows, provenance: Optional[dict] = None,
                  schema: int = TRACE_SCHEMA_VERSION) -> "Trace":
        trace = cls(
            rows=tuple(
                row if isinstance(row, TraceRow) else TraceRow.from_list(row)
                for row in rows
            ),
            provenance=dict(provenance or {}),
            schema=schema,
        )
        trace.validate()
        return trace

    def with_rows(self, rows, note: Optional[dict] = None) -> "Trace":
        """Transform helper: new rows, provenance extended with *note*.

        The transform descriptor lands in ``provenance["transforms"]``
        (a list, appended in application order) so a transformed trace
        documents its lineage without that lineage entering the id.
        """
        provenance = dict(self.provenance)
        if note is not None:
            provenance["transforms"] = list(provenance.get("transforms", ())) + [note]
        return Trace.from_rows(rows, provenance=provenance, schema=self.schema)

    # ------------------------------------------------------------- checks

    def validate(self) -> None:
        last_ts = None
        tenant_of: dict = {}
        for i, row in enumerate(self.rows):
            if not isinstance(row, TraceRow):
                raise TraceError(f"row {i} is not a TraceRow")
            row.validate()
            if last_ts is not None and row.timestamp_ns < last_ts:
                raise TraceError(
                    f"row {i} timestamp {row.timestamp_ns!r} out of order "
                    f"(previous {last_ts!r})"
                )
            last_ts = row.timestamp_ns
            seen = tenant_of.setdefault(row.client, row.tenant)
            if seen != row.tenant:
                # A client endpoint belongs to exactly one tenant: the
                # wire stamps the client's tenant into every frame, so a
                # mid-trace switch could never have been recorded.
                raise TraceError(
                    f"row {i}: client {row.client} switches tenant "
                    f"{seen} -> {row.tenant}"
                )

    # ------------------------------------------------------------- codec

    @classmethod
    def decode(cls, text: str) -> "Trace":
        lines = text.splitlines()
        if not lines or not lines[0].strip():
            raise TraceError("empty trace file (missing header line)")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise TraceError(f"trace header is not valid JSON: {exc}") from exc
        if not isinstance(header, dict) or header.get("kind") != TRACE_KIND:
            raise TraceError(
                f"not a {TRACE_KIND} file (kind={header.get('kind') if isinstance(header, dict) else header!r})"
            )
        schema = header.get("schema")
        if schema not in SUPPORTED_TRACE_SCHEMAS:
            raise TraceError(
                f"unsupported trace schema {schema!r} "
                f"(decoder speaks {SUPPORTED_TRACE_SCHEMAS})"
            )
        rows = []
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"line {lineno}: not valid JSON: {exc}") from exc
            rows.append(TraceRow.from_list(doc))
        declared = header.get("n_ops")
        if declared != len(rows):
            raise TraceError(
                f"header declares {declared!r} ops but the file carries "
                f"{len(rows)} (truncated or padded trace)"
            )
        trace = cls.from_rows(
            rows, provenance=header.get("provenance") or {}, schema=int(schema)
        )
        declared_id = header.get("trace_id")
        if declared_id != trace.trace_id:
            raise TraceError(
                f"header trace_id {declared_id!r} does not match the rows "
                f"({trace.trace_id}) — edited or corrupted trace"
            )
        return trace

    @classmethod
    def load(cls, path: str) -> "Trace":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.decode(fh.read())

    def save(self, path: str) -> str:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())
        return path

    def describe(self) -> str:
        return (
            f"trace {self.trace_id}: {len(self.rows)} ops, "
            f"{len(self.clients())} client(s), tenants {list(self.tenants())}, "
            f"{self.duration_ns():,.0f} ns span"
        )
