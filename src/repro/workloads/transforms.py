"""Pure, composable trace transforms.

Each factory returns a ``Trace -> Trace`` closure.  Transforms never
mutate their input: they build a new row tuple, re-validate it through
:meth:`Trace.with_rows` (so a transform cannot smuggle an out-of-order
or malformed row past the codec), and append a canonical descriptor to
``provenance["transforms"]`` documenting the lineage.  Because the
trace_id digests rows only, the algebra is clean:

* ``time_scale(1.0)`` is a true identity on trace_ids;
* ``compose(f, g)(t).trace_id == g(f(t)).trace_id`` — composition is
  function composition, associative by construction.

All timestamp arithmetic goes through the codec's normalization, so a
scale factor of 1.0 (or any factor that lands on integers) round-trips
byte-identically.
"""

from __future__ import annotations

import math
from typing import Callable

from .trace import Trace, TraceError, TraceRow, _norm_ts

Transform = Callable[[Trace], Trace]


def time_scale(factor: float) -> Transform:
    """Multiply every timestamp by *factor* (>1 stretches, <1 compresses).

    ``time_scale(1.0)`` is the identity on rows (and therefore on
    trace_ids) — the law the property suite pins.
    """
    if factor <= 0:
        raise TraceError(f"time_scale factor must be > 0, got {factor}")

    def apply(trace: Trace) -> Trace:
        rows = tuple(
            TraceRow(_norm_ts(r.timestamp_ns * factor), r.tenant, r.client,
                     r.op, r.key, r.value_size)
            for r in trace.rows
        )
        return trace.with_rows(rows, {"transform": "time_scale", "factor": factor})

    return apply


def amplify_bursts(factor: float, idle_threshold_ns: float = 10_000.0) -> Transform:
    """Sharpen bursts: gaps shorter than the threshold shrink by *factor*.

    Inter-arrival gaps below ``idle_threshold_ns`` (the "inside a
    burst" regime) are divided by *factor*; longer idle gaps are kept,
    so the macro shape (burst spacing) survives while each burst gets
    denser.  Timestamps are rebuilt cumulatively from the first row.
    """
    if factor < 1.0:
        raise TraceError(f"amplify_bursts factor must be >= 1, got {factor}")

    def apply(trace: Trace) -> Trace:
        rows = []
        t = trace.rows[0].timestamp_ns if trace.rows else 0
        for i, r in enumerate(trace.rows):
            if i > 0:
                gap = r.timestamp_ns - trace.rows[i - 1].timestamp_ns
                t = t + (gap / factor if gap < idle_threshold_ns else gap)
            rows.append(TraceRow(_norm_ts(t), r.tenant, r.client,
                                 r.op, r.key, r.value_size))
        return trace.with_rows(rows, {
            "transform": "amplify_bursts",
            "factor": factor,
            "idle_threshold_ns": idle_threshold_ns,
        })

    return apply


def inject_flash_crowd(
    key: str,
    start_ns: float,
    n_ops: int,
    spacing_ns: float,
    client: int,
    tenant: int,
    op: str = "get",
) -> Transform:
    """Merge a hot-key crowd (n_ops × *op* on *key*) into the trace.

    The crowd arrives at ``start_ns, start_ns + spacing, ...`` from a
    dedicated *client* (which must either be new or already belong to
    *tenant* — the codec enforces per-client tenant consistency) and is
    stably merged by timestamp: existing rows keep their relative order,
    crowd rows slot in after any equal-timestamp original.
    """
    if n_ops < 1:
        raise TraceError(f"flash crowd needs n_ops >= 1, got {n_ops}")
    if spacing_ns < 0:
        raise TraceError(f"flash crowd spacing must be >= 0, got {spacing_ns}")

    def apply(trace: Trace) -> Trace:
        crowd = [
            TraceRow(_norm_ts(start_ns + i * spacing_ns), tenant, client, op, key, 0)
            for i in range(n_ops)
        ]
        merged = sorted(
            list(trace.rows) + crowd, key=lambda r: r.timestamp_ns
        )
        return trace.with_rows(merged, {
            "transform": "inject_flash_crowd",
            "key": key, "start_ns": start_ns, "n_ops": n_ops,
            "spacing_ns": spacing_ns, "client": client, "tenant": tenant,
            "op": op,
        })

    return apply


def diurnal_ramp(period_ns: float, amplitude: float) -> Transform:
    """Impose a smooth load swing: arrivals bunch at the cycle's peak.

    Remaps ``t -> t - A·(P/2π)·sin(2πt/P)``; the map's derivative is
    ``1 - A·cos(2πt/P) > 0`` for ``amplitude < 1``, so it is strictly
    monotone (row order survives) while the instantaneous rate swings
    by ``±amplitude`` around nominal over each period.
    """
    if period_ns <= 0:
        raise TraceError(f"diurnal period must be > 0, got {period_ns}")
    if not 0.0 <= amplitude < 1.0:
        raise TraceError(f"diurnal amplitude must be in [0, 1), got {amplitude}")

    def apply(trace: Trace) -> Trace:
        two_pi = 2.0 * math.pi
        k = amplitude * period_ns / two_pi

        def warp(t: float) -> float:
            return t - k * math.sin(two_pi * t / period_ns)

        rows = tuple(
            TraceRow(_norm_ts(warp(r.timestamp_ns)), r.tenant, r.client,
                     r.op, r.key, r.value_size)
            for r in trace.rows
        )
        return trace.with_rows(rows, {
            "transform": "diurnal_ramp",
            "period_ns": period_ns, "amplitude": amplitude,
        })

    return apply


def tenant_remap(mapping: dict) -> Transform:
    """Relabel tenants (``{old: new}``); unmapped tenants pass through.

    Remapping is per-tenant, so per-client tenant consistency is
    preserved automatically.
    """

    def apply(trace: Trace) -> Trace:
        rows = tuple(
            TraceRow(r.timestamp_ns, mapping.get(r.tenant, r.tenant),
                     r.client, r.op, r.key, r.value_size)
            for r in trace.rows
        )
        return trace.with_rows(rows, {
            "transform": "tenant_remap",
            "mapping": {str(k): v for k, v in sorted(mapping.items())},
        })

    return apply


def compose(*transforms: Transform) -> Transform:
    """Left-to-right composition: ``compose(f, g)(t) == g(f(t))``."""

    def apply(trace: Trace) -> Trace:
        for fn in transforms:
            trace = fn(trace)
        return trace

    return apply
