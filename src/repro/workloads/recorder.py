"""Capture a live KV run into a :class:`~repro.workloads.trace.Trace`.

The recorder sits on the client side of the wire: every op a
:class:`~repro.services.kv.KvClient` issues — batch ops and scans alike
— is noted at its batch anchor time (the ``t0`` the client stamps into
the request deadline math), so the recorded timestamps are exactly the
arrival times an open-loop generator fed the client, not the times the
transport got around to sending frames.  Replaying the trace therefore
re-offers the original load shape even when the original run's service
path was congested.

Determinism: notes arrive in simulator callback order, which is itself
deterministic, and :meth:`TraceRecorder.finish` stable-sorts rows by
timestamp — so the same run records the same trace bytes, always.
Rows can be *globally* out of timestamp order before the sort because a
backlogged open-loop worker issues a batch anchored at its queue-entry
time after a fresher batch from an idle worker; the stable sort
restores the canonical non-decreasing order the codec requires while
preserving each client's program order for equal timestamps.
"""

from __future__ import annotations

from typing import Optional

from ..services.wire import OP_NAMES
from .trace import Trace, TraceError, TraceRow, _norm_ts


class TraceRecorder:
    """Accumulates offered ops from attached clients into a Trace."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self._rows: list[TraceRow] = []
        self._recorded = sim.stats.counter("workload.trace.rows_recorded")

    # ------------------------------------------------------------- capture

    def attach(self, *clients) -> "TraceRecorder":
        """Hook one or more KvClients; every op they issue is recorded."""
        for client in clients:
            client.recorder = self
        return self

    def detach(self, *clients) -> None:
        for client in clients:
            if client.recorder is self:
                client.recorder = None

    def note(self, t_ns: float, tenant: int, client_id: int,
             op_code: int, key: bytes, value_size: int) -> None:
        """Record one offered op (called from the KvClient hot path)."""
        name = OP_NAMES.get(op_code)
        if name is None:
            raise TraceError(f"cannot record unknown op code {op_code!r}")
        self._rows.append(TraceRow(
            timestamp_ns=_norm_ts(t_ns),
            tenant=tenant,
            client=client_id,
            op=name,
            key=bytes(key).decode("latin-1"),
            value_size=value_size if name == "put" else 0,
        ))
        self._recorded.add()

    # ------------------------------------------------------------- output

    @property
    def n_rows(self) -> int:
        return len(self._rows)

    def finish(self, provenance: Optional[dict] = None) -> Trace:
        """Freeze the recording into a validated Trace.

        Stable sort by timestamp: per-client program order survives ties,
        and the global order becomes the canonical non-decreasing one.
        """
        rows = sorted(self._rows, key=lambda r: r.timestamp_ns)
        return Trace.from_rows(rows, provenance=provenance)
