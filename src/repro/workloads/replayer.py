"""Drive a KV client pool open-loop from a recorded trace.

The replayer is the other half of the record/replay contract: given the
same trace and seed, every run — fast or plain engine, any backend,
QoS on or off, active mailboxes on or off — offers *exactly* the same
load: same arrival instants (the trace timestamps are absolute sim
times), same per-client op streams in the same program order, same
deterministic payload bytes.  Nothing about the offered side consults
an RNG, so protocol variants are compared on identical input by
construction rather than by hoping seeds line up.

Structure mirrors :class:`~repro.services.loadgen.LoadGenerator`'s
open-loop mode, with two deliberate differences:

* arrivals come from the trace master walking rows (``yield`` the gap
  to the next timestamp; zero gaps and a first row at the current
  instant dispatch immediately — both legal in traces, though the
  synthetic generator can never produce them);
* each *trace* client gets its own FIFO so per-client program order is
  preserved even when several trace clients share one pool client.

Outcomes are collected per row index and exposed as a canonical,
digestable stream (:meth:`TraceReplayer.outcome_digest`) ordered by row
— independent of completion interleaving — which is what the property
suite pins across engines and backends.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from typing import Generator, Optional

from ..core.addressing import stable_hash64
from ..sim.process import AllOf, spawn
from ..services.kv import KvClient
from ..services.loadgen import LoadStats
from ..services.wire import OP_DELETE, OP_GET, OP_PUT
from .trace import Trace, TraceError

_OP_CODES = {"get": OP_GET, "put": OP_PUT, "delete": OP_DELETE}


def value_for(row_index: int, key: str, value_size: int) -> bytes:
    """The deterministic payload replayed for a put row.

    Traces record value *sizes*, not bytes (production traces rarely
    keep payloads).  Replay synthesizes self-describing fill bytes as a
    pure function of (row index, key), the loadgen fill idiom — so the
    bytes a variant serves back are checkable without any run state.
    """
    fill = (stable_hash64(key.encode("latin-1")) + row_index) % 251 + 1
    return bytes([fill]) * value_size


class TraceReplayer:
    """Replays a :class:`Trace` against a pool of :class:`KvClient`.

    Trace clients map onto pool clients in sorted order, modulo the
    pool size; the caller picks the pool shape (the harness builds one
    pool client per trace client so tenant stamping matches the trace).
    """

    def __init__(
        self,
        sim,
        clients: list[KvClient],
        trace: Trace,
        deadline_ns: Optional[float] = None,
        max_backlog: Optional[int] = None,
        worker_poll_ns: float = 500.0,
        batch: int = 8,
    ) -> None:
        if not clients:
            raise ValueError("trace replayer needs at least one client")
        if max_backlog is not None and max_backlog < 1:
            raise ValueError(f"max_backlog must be >= 1, got {max_backlog}")
        self.sim = sim
        self.clients = clients
        self.trace = trace
        self.deadline_ns = deadline_ns
        #: Default is "never drop": a replayed trace offers every row so
        #: variant comparisons stay apples-to-apples.  Cap it to study
        #: generator-side shedding under amplified traces.
        self.max_backlog = max_backlog if max_backlog is not None else len(trace.rows) + 1
        self.worker_poll_ns = worker_poll_ns
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        #: Consecutive backlogged rows of one trace client pipelined per
        #: execute_batch — keeps a burst *concurrent* at the server (the
        #: loadgen reply-batching idiom) instead of serializing it into
        #: closed-loop round trips.  Program order per key survives:
        #: frames for one shard travel in issue order and a key always
        #: hashes to the same shard.
        self.batch = batch
        self.stats = LoadStats()
        #: row index -> (op, status, payload bytes), filled as replies land.
        self.outcomes: dict[int, tuple[str, int, bytes]] = {}
        self._client_of = {
            tc: clients[i % len(clients)]
            for i, tc in enumerate(trace.clients())
        }
        for tc in trace.clients():
            pool = self._client_of[tc]
            if pool.tenant_id != trace.tenant_of(tc):
                raise TraceError(
                    f"trace client {tc} carries tenant {trace.tenant_of(tc)} "
                    f"but its pool client is tenant {pool.tenant_id}"
                )
        stats = sim.stats
        self._replayed = stats.counter("workload.trace.rows_replayed")
        self._dropped = stats.counter("workload.trace.rows_dropped")
        self._lag = stats.summary("workload.trace.replay_lag_ns")

    # ------------------------------------------------------------------ driving

    def run(self) -> Generator:
        """Replay every row; returns :class:`LoadStats` when all resolve."""
        spans = self.sim.spans
        sp = None
        if spans.active and spans.wants("trace"):
            sp = spans.begin(
                "trace", "replay",
                trace_id=self.trace.trace_id, n_ops=self.trace.n_ops,
            )
        queues: dict[int, deque] = {tc: deque() for tc in self.trace.clients()}
        queued = [0]
        done = [False]
        workers = []
        by_pool: dict[int, list[deque]] = {}
        for tc in self.trace.clients():
            by_pool.setdefault(id(self._client_of[tc]), []).append(queues[tc])
        # One worker per distinct pool client, in first-assignment order
        # (trace-client sorted order — deterministic, unlike id()s).
        pools: list[tuple[KvClient, list[deque]]] = []
        seen: set[int] = set()
        for tc in self.trace.clients():
            client = self._client_of[tc]
            if id(client) not in seen:
                seen.add(id(client))
                pools.append((client, by_pool[id(client)]))
        for i, (client, qs) in enumerate(pools):
            workers.append(
                spawn(
                    self.sim,
                    self._worker(client, qs, queued, done),
                    name=f"kv-replay{i}",
                )
            )
        for index, row in enumerate(self.trace.rows):
            dt = row.timestamp_ns - self.sim.now
            if dt > 0:
                yield dt
            # dt <= 0: zero-gap row (or float noise) — dispatch now.
            self.stats.ops_issued += 1
            if queued[0] >= self.max_backlog:
                self.stats.ops_dropped += 1
                self._dropped.add()
                continue
            queues[row.client].append((index, row))
            queued[0] += 1
        done[0] = True
        if workers:
            yield AllOf([w.done_future for w in workers])
        if sp is not None:
            spans.end(sp, replayed=self._replayed.value, dropped=self._dropped.value)
        return self.stats

    def _worker(self, client: KvClient, queues: list[deque],
                queued: list, done: list) -> Generator:
        spans = self.sim.spans
        while True:
            row_item = None
            src_queue = None
            for q in queues:
                if q:
                    row_item = q.popleft()
                    src_queue = q
                    break
            if row_item is None:
                if done[0]:
                    return
                yield self.worker_poll_ns
                continue
            index, row = row_item
            queued[0] -= 1
            self._replayed.add()
            self._lag.add(self.sim.now - row.timestamp_ns)
            sp = None
            if spans.active and spans.wants("trace"):
                sp = spans.begin(
                    "trace", "dispatch", row=index, op=row.op, client=row.client
                )
            if row.op == "scan":
                items = yield from client.scan(row.key_bytes())
                payload = b"".join(k + b"=" + v + b";" for k, v in items)
                self.outcomes[index] = ("scan", 0, payload)
                self.stats.ops_completed += 1
            else:
                # Coalesce the backlog: further queued rows of this trace
                # client join the pipeline (scans stay solo — their
                # scatter-gather replies don't frame-batch).
                entries = [(index, row)]
                while (
                    len(entries) < self.batch
                    and src_queue
                    and src_queue[0][1].op != "scan"
                ):
                    entries.append(src_queue.popleft())
                    queued[0] -= 1
                for extra_index, extra_row in entries[1:]:
                    self._replayed.add()
                    self._lag.add(self.sim.now - extra_row.timestamp_ns)
                ops = []
                for entry_index, entry_row in entries:
                    value = (
                        value_for(entry_index, entry_row.key, entry_row.value_size)
                        if entry_row.op == "put" else b""
                    )
                    ops.append((_OP_CODES[entry_row.op], entry_row.key_bytes(), value))
                replies = yield from client.execute_batch(
                    ops, t0=row.timestamp_ns, deadline_ns=self.deadline_ns,
                )
                for (entry_index, entry_row), reply in zip(entries, replies):
                    self.outcomes[entry_index] = (
                        entry_row.op, reply.status, bytes(reply.payload or b"")
                    )
                    self.stats.note(_OP_CODES[entry_row.op], reply.status)
            if sp is not None:
                spans.end(sp)

    # ------------------------------------------------------------------ results

    def outcome_stream(self) -> list:
        """Outcomes ordered by row index — the canonical result stream.

        Row order is a property of the trace, not of completion
        interleaving, so two deterministic runs produce identical
        streams iff they resolved every row identically.
        """
        return [
            [index, op, status, payload.decode("latin-1")]
            for index, (op, status, payload) in sorted(self.outcomes.items())
        ]

    def outcome_digest(self) -> str:
        """blake2s over the canonical outcome stream."""
        h = hashlib.blake2s(digest_size=8)
        for entry in self.outcome_stream():
            h.update(json.dumps(entry, separators=(",", ":")).encode("utf-8"))
            h.update(b"\n")
        return h.hexdigest()


# ------------------------------------------------------------------ safety

def check_replay_safety(trace: Trace, outcomes: dict,
                        warmed: Optional[dict] = None) -> list:
    """Per-key linearizability over a replay's outcomes.

    Keys touched by a single trace client have a total program order
    (receiver-managed streams preserve it end to end), so they get the
    exact possible-state walk the scenario runner uses
    (``_apply_kv_step`` — RC_OVERLOAD is definitively not-executed,
    DEADLINE_EXCEEDED forks the set, an OK GET collapses it).  Keys
    shared across clients have no client-side order witness, so they
    get value-provenance checks instead: an OK GET must return a warmed
    value or some payload a put row could have written.  Scans are
    read-only and excluded.  Returns a list of failure strings.
    """
    from ..scenarios.runner import _ABSENT, _apply_kv_step
    from ..services.wire import STATUS_NOT_FOUND, STATUS_OK

    warmed = warmed or {}
    by_key: dict[str, list] = {}
    clients_of: dict[str, set] = {}
    for index, row in enumerate(trace.rows):
        if row.op == "scan":
            continue
        if index not in outcomes:
            continue
        by_key.setdefault(row.key, []).append((index, row))
        clients_of.setdefault(row.key, set()).add(row.client)
    failures = []
    for key, entries in by_key.items():
        if len(clients_of[key]) == 1:
            possible = {warmed[key]} if key in warmed else {_ABSENT}
            for index, row in entries:
                op, status, payload = outcomes[index]
                new_value = value_for(index, key, row.value_size) if op == "put" else None
                fail = _apply_kv_step(op, status, payload or None, new_value, possible)
                if fail:
                    failures.append(f"key {key!r} row {index}: {fail}")
        else:
            legal = {warmed[key]} if key in warmed else set()
            legal.update(
                value_for(index, key, row.value_size)
                for index, row in entries if row.op == "put"
            )
            for index, row in entries:
                op, status, payload = outcomes[index]
                if op == "get" and status == STATUS_OK and payload not in legal:
                    failures.append(
                        f"key {key!r} row {index}: get observed a value no "
                        f"put ever wrote ({len(payload)}B)"
                    )
                elif status not in _LEGAL_STATUSES.get(op, _LEGAL_STATUSES["get"]):
                    failures.append(f"key {key!r} row {index}: {op} -> {status}")
    return failures


def _legal_statuses():
    from ..services.wire import (
        STATUS_DEADLINE_EXCEEDED,
        STATUS_NOT_FOUND,
        STATUS_OK,
        STATUS_OVERLOAD,
    )

    common = {STATUS_OK, STATUS_NOT_FOUND, STATUS_OVERLOAD, STATUS_DEADLINE_EXCEEDED}
    return {
        "get": common, "delete": common,
        "put": {STATUS_OK, STATUS_OVERLOAD, STATUS_DEADLINE_EXCEEDED},
    }


_LEGAL_STATUSES = _legal_statuses()
