"""Sweep3D motif: KBA wavefront sweeps over a 2-D process grid (Fig 7).

The classic S\\ :sub:`n` transport sweep: ranks form a ``px x py``
grid; for each of 8 octants a wavefront of dependencies crosses the
grid corner-to-corner, in ``kb`` pipelined k-blocks.  A rank receives
its upstream X and Y halves, computes, and forwards downstream.  The
critical path is ``(px + py + kb)`` pipeline stages of *small* messages
— which is why Sweep3D is latency-bound and amplifies per-transfer
protocol overhead (the paper's 4.4x headline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..cluster.builder import Cluster
from .base import Motif
from .transfer import RecvEndpoint, SendEndpoint, TransferProtocol

#: Octant sweep directions over the 2-D grid: (sx, sy), each appearing
#: twice (the two z directions share the 2-D wavefront pattern).
OCTANT_DIRS = [(1, 1), (1, -1), (-1, 1), (-1, -1)] * 2

#: Channel tags by axis and direction sign.
TAG_X_POS, TAG_X_NEG, TAG_Y_POS, TAG_Y_NEG = 1, 2, 3, 4


def _tag(axis: str, sign: int) -> int:
    if axis == "x":
        return TAG_X_POS if sign > 0 else TAG_X_NEG
    return TAG_Y_POS if sign > 0 else TAG_Y_NEG


@dataclass
class _SweepState:
    recv_x: dict  # sign -> RecvEndpoint from upstream x neighbour
    recv_y: dict
    send_x: dict  # sign -> SendEndpoint to downstream x neighbour
    send_y: dict


class Sweep3D(Motif):
    """Pipelined wavefront exchange (paper's Sweep3D motif)."""

    name = "sweep3d"

    def __init__(
        self,
        cluster: Cluster,
        protocol: TransferProtocol,
        px: Optional[int] = None,
        py: Optional[int] = None,
        kb: int = 8,
        msg_bytes: int = 2048,
        compute_ns: float = 200.0,
    ) -> None:
        super().__init__(cluster, protocol)
        n = cluster.n_nodes
        if px is None or py is None:
            px = 1
            for d in range(int(n**0.5), 0, -1):
                if n % d == 0:
                    px = d
                    break
            py = n // px
        if px * py != n:
            raise ValueError(f"px*py={px * py} != n_nodes={n}")
        self.px, self.py = px, py
        self.kb = kb
        self.msg_bytes = msg_bytes
        self.compute_ns = compute_ns

    def coords(self, rank: int) -> tuple[int, int]:
        """(x, y) position of *rank* on the process grid."""
        return rank % self.px, rank // self.px

    def rank_of(self, x: int, y: int) -> Optional[int]:
        """Rank at (x, y), or None outside the grid."""
        if 0 <= x < self.px and 0 <= y < self.py:
            return y * self.px + x
        return None

    # In-flight bound per channel: one octant's kb blocks may overrun
    # into the next same-direction octant before the receiver drains.
    @property
    def _slots(self) -> int:
        return 2 * self.kb + 1

    def setup_rank(self, rank: int) -> Generator:
        x, y = self.coords(rank)
        node = self.cluster.node(rank)
        st = _SweepState({}, {}, {}, {})
        for sign in (1, -1):
            up_x = self.rank_of(x - sign, y)
            if up_x is not None:
                st.recv_x[sign] = yield from self.protocol.recv_setup(
                    node, up_x, _tag("x", sign), self.msg_bytes, self._slots
                )
            down_x = self.rank_of(x + sign, y)
            if down_x is not None:
                st.send_x[sign] = yield from self.protocol.send_setup(
                    node, down_x, _tag("x", sign), self.msg_bytes
                )
            up_y = self.rank_of(x, y - sign)
            if up_y is not None:
                st.recv_y[sign] = yield from self.protocol.recv_setup(
                    node, up_y, _tag("y", sign), self.msg_bytes, self._slots
                )
            down_y = self.rank_of(x, y + sign)
            if down_y is not None:
                st.send_y[sign] = yield from self.protocol.send_setup(
                    node, down_y, _tag("y", sign), self.msg_bytes
                )
        return st

    def run_rank(self, rank: int, st: _SweepState) -> Generator:
        for sx, sy in OCTANT_DIRS:
            for _k in range(self.kb):
                rx = st.recv_x.get(sx)
                if rx is not None:
                    yield from rx.recv()
                ry = st.recv_y.get(sy)
                if ry is not None:
                    yield from ry.recv()
                if self.compute_ns > 0:
                    yield self.compute_ns
                tx = st.send_x.get(sx)
                if tx is not None:
                    yield from tx.send(self.msg_bytes)
                    self.count_send(self.msg_bytes)
                ty = st.send_y.get(sy)
                if ty is not None:
                    yield from ty.send(self.msg_bytes)
                    self.count_send(self.msg_bytes)
