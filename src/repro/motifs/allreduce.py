"""Allreduce motif: iterative tree reductions (extension experiment).

Not in the paper's evaluation, but a canonical SST-class motif and a
natural stress for the protocols' small-message path: every iteration
is a full reduce+broadcast of a small vector, so the critical path is
2·log2(n) latency-bound exchanges — between Sweep3D (long serial
chains) and Halo3D (parallel bulky faces) in character.
"""

from __future__ import annotations

from typing import Generator

from ..cluster.builder import Cluster
from .base import Motif
from .transfer import TransferProtocol


class AllreduceMotif(Motif):
    """Repeated small-vector allreduces over the whole cluster."""

    name = "allreduce"

    def __init__(
        self,
        cluster: Cluster,
        protocol: TransferProtocol,
        iterations: int = 10,
        vector_len: int = 8,
        compute_ns: float = 500.0,
    ) -> None:
        super().__init__(cluster, protocol)
        self.iterations = iterations
        self.vector_len = vector_len
        self.compute_ns = compute_ns
        # Imported here: collectives build on the transfer adapters, so a
        # module-level import would be circular via the package __init__.
        from ..collectives.tree import TreeComm

        self.comm = TreeComm(cluster, protocol, vector_slots=vector_len)
        self.reduced: dict[int, list[int]] = {}

    def setup_rank(self, rank: int) -> Generator:
        state = yield from self.comm.setup(rank)
        return state

    def run_rank(self, rank: int, state) -> Generator:
        values = [rank + i for i in range(self.vector_len)]
        for _ in range(self.iterations):
            totals = yield from self.comm.allreduce_sum(state, values)
            self.count_send(8 * self.vector_len)
            if self.compute_ns > 0:
                yield self.compute_ns
            values = [t % (2**32) for t in totals]  # feed results forward
        self.reduced[rank] = values

    def verify(self) -> bool:
        """All ranks converged to identical vectors."""
        vectors = list(self.reduced.values())
        return bool(vectors) and all(v == vectors[0] for v in vectors)
