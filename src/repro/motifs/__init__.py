"""Application motifs (paper §V-B1) and the protocol adapters they run on."""

from .allreduce import AllreduceMotif
from .base import Motif, MotifResult, SimBarrier
from .halo3d import FACES, Halo3D, face_tag
from .incast import BUCKET_DEPTH, Incast
from .randompairs import RandomPairs, assign_targets
from .sweep3d import OCTANT_DIRS, Sweep3D
from .transfer import (
    READY_BYTES,
    RdmaProtocol,
    RecvEndpoint,
    RvmaProtocol,
    SendEndpoint,
    TransferProtocol,
    UcxProtocol,
    mailbox_for,
)

__all__ = [
    "AllreduceMotif",
    "BUCKET_DEPTH",
    "FACES",
    "Halo3D",
    "Incast",
    "Motif",
    "MotifResult",
    "OCTANT_DIRS",
    "RandomPairs",
    "READY_BYTES",
    "RdmaProtocol",
    "RecvEndpoint",
    "RvmaProtocol",
    "SendEndpoint",
    "SimBarrier",
    "Sweep3D",
    "TransferProtocol",
    "UcxProtocol",
    "assign_targets",
    "face_tag",
    "mailbox_for",
]
