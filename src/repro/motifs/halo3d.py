"""Halo3D motif: nearest-neighbour face exchange on a 3-D grid (Fig 8).

Each rank owns a block of a 3-D domain and swaps face ghost cells with
up to six neighbours every iteration, with all sends/recvs in flight
concurrently (nonblocking-exchange style) before a compute step.
Face messages are medium-to-large, so Halo3D is bandwidth-leaning —
protocol overhead still shows (the paper's 1.57x average) but less than
for Sweep3D, and it grows as links get faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..cluster.builder import Cluster
from ..sim.process import AllOf, spawn
from .base import Motif
from .transfer import TransferProtocol

#: (axis index, direction) for the six faces; tags must be distinct per
#: direction so X+ traffic never lands in the X- channel.
FACES = [(0, 1), (0, -1), (1, 1), (1, -1), (2, 1), (2, -1)]

#: All 26 neighbour offsets of a 3-D block (faces, edges, corners).
OFFSETS_26 = [
    (dx, dy, dz)
    for dx in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dz in (-1, 0, 1)
    if (dx, dy, dz) != (0, 0, 0)
]
_OFFSET_INDEX = {off: i for i, off in enumerate(OFFSETS_26)}


def face_tag(axis: int, sign: int) -> int:
    return 10 + axis * 2 + (0 if sign > 0 else 1)


def offset_tag(offset: tuple[int, int, int]) -> int:
    """Distinct channel tag per 26-neighbourhood direction."""
    return 40 + _OFFSET_INDEX[offset]


def _negate(offset: tuple[int, int, int]) -> tuple[int, int, int]:
    return (-offset[0], -offset[1], -offset[2])


@dataclass
class _HaloState:
    recvs: dict  # offset -> RecvEndpoint
    sends: dict  # offset -> SendEndpoint


class Halo3D(Motif):
    """Ghost exchange on a 3-D grid (paper's Halo3D motif).

    ``neighbours=6`` exchanges the faces only (the paper's evaluated
    pattern); ``neighbours=26`` adds edges and corners, with message
    sizes scaled by the physical ghost-region geometry: a face carries
    ``msg_bytes``, an edge ``msg_bytes / edge_divisor``, a corner
    ``msg_bytes / corner_divisor`` (cells scale like n², n·g, g² for
    ghost width g).
    """

    name = "halo3d"

    def __init__(
        self,
        cluster: Cluster,
        protocol: TransferProtocol,
        grid: Optional[tuple[int, int, int]] = None,
        iterations: int = 10,
        msg_bytes: int = 32 * 1024,
        compute_ns: float = 1000.0,
        neighbours: int = 6,
        edge_divisor: int = 32,
        corner_divisor: int = 1024,
    ) -> None:
        super().__init__(cluster, protocol)
        if neighbours not in (6, 26):
            raise ValueError("neighbours must be 6 (faces) or 26 (full stencil)")
        n = cluster.n_nodes
        if grid is None:
            grid = _near_cubic_grid(n)
        gx, gy, gz = grid
        if gx * gy * gz != n:
            raise ValueError(f"grid {grid} does not tile {n} ranks")
        self.grid = grid
        self.iterations = iterations
        self.msg_bytes = msg_bytes
        self.compute_ns = compute_ns
        self.neighbours = neighbours
        self.edge_bytes = max(1, msg_bytes // edge_divisor)
        self.corner_bytes = max(1, msg_bytes // corner_divisor)

    def _offset_bytes(self, offset: tuple[int, int, int]) -> int:
        order = sum(1 for c in offset if c != 0)
        if order == 1:
            return self.msg_bytes
        if order == 2:
            return self.edge_bytes
        return self.corner_bytes

    def _offsets(self) -> list[tuple[int, int, int]]:
        if self.neighbours == 6:
            return [
                tuple(sign if i == axis else 0 for i in range(3))
                for axis, sign in FACES
            ]
        return OFFSETS_26

    def _rank_at_offset(self, rank: int, offset: tuple[int, int, int]) -> Optional[int]:
        x, y, z = self.coords(rank)
        return self.rank_of((x + offset[0], y + offset[1], z + offset[2]))

    def coords(self, rank: int) -> tuple[int, int, int]:
        """Grid coordinates of *rank* (x fastest)."""
        gx, gy, _gz = self.grid
        return rank % gx, (rank // gx) % gy, rank // (gx * gy)

    def rank_of(self, c: tuple[int, int, int]) -> Optional[int]:
        """Rank at grid coordinate *c*, or None outside the grid."""
        gx, gy, gz = self.grid
        x, y, z = c
        if 0 <= x < gx and 0 <= y < gy and 0 <= z < gz:
            return x + y * gx + z * gx * gy
        return None

    def neighbour(self, rank: int, axis: int, sign: int) -> Optional[int]:
        """Neighbouring rank one step along *axis*, or None at the face."""
        c = list(self.coords(rank))
        c[axis] += sign
        return self.rank_of(tuple(c))

    def _tag(self, offset: tuple[int, int, int]) -> int:
        if self.neighbours == 6:
            axis = next(i for i, c in enumerate(offset) if c != 0)
            return face_tag(axis, offset[axis])
        return offset_tag(offset)

    def setup_rank(self, rank: int) -> Generator:
        node = self.cluster.node(rank)
        st = _HaloState({}, {})
        # A neighbour at *offset* sends to us tagged with its own
        # outgoing direction — the negated offset from our view.
        for offset in self._offsets():
            nb = self._rank_at_offset(rank, offset)
            if nb is None:
                continue
            size = self._offset_bytes(offset)
            st.recvs[offset] = yield from self.protocol.recv_setup(
                node, nb, self._tag(_negate(offset)), size, slots=3
            )
            st.sends[offset] = yield from self.protocol.send_setup(
                node, nb, self._tag(offset), size
            )
        return st

    def run_rank(self, rank: int, st: _HaloState) -> Generator:
        for _it in range(self.iterations):
            procs = []
            for offset, send_ep in st.sends.items():
                size = self._offset_bytes(offset)
                procs.append(spawn(self.sim, send_ep.send(size), f"tx{offset}"))
                self.count_send(size)
            for offset, recv_ep in st.recvs.items():
                procs.append(spawn(self.sim, recv_ep.recv(), f"rx{offset}"))
            yield AllOf([p.done_future for p in procs])
            if self.compute_ns > 0:
                yield self.compute_ns


def _near_cubic_grid(n: int) -> tuple[int, int, int]:
    """Factor *n* ranks into the most cubic (gx, gy, gz) available."""
    best = (1, 1, n)
    best_score = float("inf")
    x = 1
    while x * x * x <= n:
        if n % x == 0:
            rem = n // x
            y = x
            while y * y <= rem:
                if rem % y == 0:
                    z = rem // y
                    # Total pairwise imbalance: prefers (2,2,4) over (1,4,4).
                    score = (z - x) + (z - y) + (y - x)
                    if score < best_score:
                        best_score = score
                        best = (x, y, z)
                y += 1
        x += 1
    return best
