"""Random-pairs motif: uniform random traffic (extension experiment).

Every rank sends ``msgs_per_rank`` messages to pseudo-randomly chosen
peers.  This is the communication shape of graph analytics, key-value
sharding and AMR regridding — and the starkest protocol contrast:

* **RVMA**: each rank exposes *one* mailbox; any peer may put to it
  anonymously.  The receiver sizes its bucket; transient overruns NACK
  and retry.  Senders need zero per-peer state.
* **RDMA**: every communicating (src, dst) pair needs a negotiated
  channel — registered region, descriptor exchange, and the per-message
  ready/ack/signal cycle.  Pair state grows with the traffic pattern.

The target assignment is deterministic in (seed, n, msgs_per_rank), so
both protocols move byte-identical traffic and receivers know their
expected in-degree.
"""

from __future__ import annotations

from collections import Counter
from typing import Generator

from ..cluster.builder import Cluster
from ..core.api import RvmaApi
from ..nic.lut import BufferMode, EpochType
from ..sim.process import AllOf, spawn
from .base import Motif, MotifResult
from .transfer import RvmaProtocol, TransferProtocol, mailbox_for

RP_TAG = 500
#: Shared-bucket depth each RVMA receiver maintains.
RP_BUCKET = 12
#: RDMA channel tags must be unique per (src, dst) pair (wr_id/mailbox
#: namespaces are per-channel); this caps the motif at ~240 ranks for
#: the RDMA flavour, plenty for its purpose.
MAX_RDMA_RANKS = 240


def assign_targets(n: int, msgs_per_rank: int, seed: int) -> dict[int, list[int]]:
    """Deterministic pseudo-random targets; never self."""
    out: dict[int, list[int]] = {}
    state = seed & 0xFFFFFFFF
    for rank in range(n):
        targets = []
        for j in range(msgs_per_rank):
            # xorshift32: portable, seed-stable, no RNG state shared
            # with the simulator's streams.
            state ^= (state << 13) & 0xFFFFFFFF
            state ^= state >> 17
            state ^= (state << 5) & 0xFFFFFFFF
            t = state % (n - 1)
            targets.append(t if t < rank else t + 1)
        out[rank] = targets
    return out


class RandomPairs(Motif):
    """Uniform random point-to-point traffic."""

    name = "randompairs"
    strict_nacks = False  # bucket overruns retry by design

    def __init__(
        self,
        cluster: Cluster,
        protocol: TransferProtocol,
        msgs_per_rank: int = 8,
        msg_bytes: int = 4096,
        pattern_seed: int = 0xD1CE,
    ) -> None:
        super().__init__(cluster, protocol)
        if cluster.n_nodes < 2:
            raise ValueError("random pairs needs at least two ranks")
        self.msgs_per_rank = msgs_per_rank
        self.msg_bytes = msg_bytes
        self.targets = assign_targets(cluster.n_nodes, msgs_per_rank, pattern_seed)
        #: per-destination expected in-degree (both protocols know this).
        self.in_degree = Counter(t for ts in self.targets.values() for t in ts)
        self.is_rvma = isinstance(protocol, RvmaProtocol)
        if not self.is_rvma and cluster.n_nodes > MAX_RDMA_RANKS:
            raise ValueError(
                f"RDMA random-pairs needs a unique tag per pair; "
                f"max {MAX_RDMA_RANKS} ranks"
            )
        #: RDMA pair state for reporting (the resource story).
        self.pairs = {(s, d) for s, ts in self.targets.items() for d in ts}

    def _pair_tag(self, src: int, dst: int) -> int:
        return RP_TAG + src * self.cluster.n_nodes + dst

    # --- RVMA: one anonymous mailbox per receiver -----------------------------------

    def _rvma_setup(self, rank: int) -> Generator:
        api: RvmaApi = self.protocol.api(self.cluster.node(rank))
        win = yield from api.init_window(
            mailbox_for(rank, RP_TAG), epoch_threshold=1,
            epoch_type=EpochType.EPOCH_OPS, mode=BufferMode.STEERED,
        )
        for _ in range(min(RP_BUCKET, max(1, self.in_degree[rank]))):
            yield from api.post_buffer(win, size=self.msg_bytes)
        return (api, win)

    def _rvma_run(self, rank: int, state) -> Generator:
        api, win = state

        def send_all():
            for target in self.targets[rank]:
                op = yield from api.put(
                    target, mailbox_for(target, RP_TAG), size=self.msg_bytes
                )
                yield op.local_done
                self.count_send(self.msg_bytes)

        def recv_all():
            for _ in range(self.in_degree[rank]):
                info = yield from api.wait_completion(win)
                yield from api.post_buffer(win, buffer=info.record.buffer)

        tx = spawn(self.sim, send_all(), f"rp-tx{rank}")
        rx = spawn(self.sim, recv_all(), f"rp-rx{rank}")
        yield AllOf([tx.done_future, rx.done_future])

    # --- RDMA: negotiated channel per communicating pair ----------------------------

    def _rdma_setup(self, rank: int) -> Generator:
        node = self.cluster.node(rank)
        recvs = {}
        for src in sorted({s for (s, d) in self.pairs if d == rank}):
            count = sum(1 for t in self.targets[src] if t == rank)
            recvs[src] = (
                (yield from self.protocol.recv_setup(
                    node, src, self._pair_tag(src, rank), self.msg_bytes, slots=1
                )),
                count,
            )
        sends = {}
        for dst in sorted(set(self.targets[rank])):
            sends[dst] = yield from self.protocol.send_setup(
                node, dst, self._pair_tag(rank, dst), self.msg_bytes
            )
        return (recvs, sends)

    def _rdma_run(self, rank: int, state) -> Generator:
        recvs, sends = state

        def drain(ep, count):
            for _ in range(count):
                yield from ep.recv()

        def feed(dst, ep):
            for t in self.targets[rank]:
                if t == dst:
                    yield from ep.send(self.msg_bytes)
                    self.count_send(self.msg_bytes)

        procs = [
            spawn(self.sim, drain(ep, count), f"rp-rx{rank}-{src}")
            for src, (ep, count) in recvs.items()
        ] + [
            spawn(self.sim, feed(dst, ep), f"rp-tx{rank}-{dst}")
            for dst, ep in sends.items()
        ]
        yield AllOf([p.done_future for p in procs])

    # --- plumbing -----------------------------------------------------------------------

    def setup_rank(self, rank: int) -> Generator:
        if self.is_rvma:
            return (yield from self._rvma_setup(rank))
        return (yield from self._rdma_setup(rank))

    def run_rank(self, rank: int, state) -> Generator:
        if self.is_rvma:
            yield from self._rvma_run(rank, state)
        else:
            yield from self._rdma_run(rank, state)

    def run(self) -> MotifResult:
        result = super().run()
        result.extras["pair_channels"] = 0 if self.is_rvma else len(self.pairs)
        result.extras["registered_regions"] = (
            0
            if self.is_rvma
            else sum(len(n.nic.mr_table) for n in self.cluster.nodes)
        )
        return result
