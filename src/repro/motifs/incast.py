"""Incast motif: many clients, one server (the paper's §I motivation).

RDMA forces a many-to-one server to dedicate a registered buffer (and a
handshake, and per-transfer coordination) to *every* client for an
unbounded time.  RVMA lets all clients target one mailbox whose bucket
the server replenishes at its own pace — receiver-side resource
management.  This motif measures total completion time and reports the
resource footprint difference (dedicated regions vs shared bucket).
"""

from __future__ import annotations

from typing import Generator

from ..cluster.builder import Cluster
from ..core.api import RvmaApi
from ..nic.lut import BufferMode, EpochType
from ..sim.process import AllOf, spawn
from .base import Motif, MotifResult
from .transfer import RvmaProtocol, TransferProtocol, mailbox_for

SERVER_RANK = 0
INCAST_TAG = 77
#: Shared-bucket depth the RVMA server maintains.
BUCKET_DEPTH = 16


class Incast(Motif):
    """All ranks > 0 send ``msgs_per_client`` messages to rank 0."""

    name = "incast"
    # Bucket underruns are expected under incast pressure; clients retry.
    strict_nacks = False

    def __init__(
        self,
        cluster: Cluster,
        protocol: TransferProtocol,
        msgs_per_client: int = 4,
        msg_bytes: int = 4096,
    ) -> None:
        super().__init__(cluster, protocol)
        if cluster.n_nodes < 2:
            raise ValueError("incast needs a server and at least one client")
        self.msgs_per_client = msgs_per_client
        self.msg_bytes = msg_bytes
        self.is_rvma = isinstance(protocol, RvmaProtocol)

    # --- RVMA flavour: one mailbox, shared bucket --------------------------------

    def _rvma_server_setup(self) -> Generator:
        api: RvmaApi = self.protocol.api(self.cluster.node(SERVER_RANK))
        win = yield from api.init_window(
            mailbox_for(SERVER_RANK, INCAST_TAG),
            epoch_threshold=1,
            epoch_type=EpochType.EPOCH_OPS,
            mode=BufferMode.STEERED,
        )
        for _ in range(BUCKET_DEPTH):
            yield from api.post_buffer(win, size=self.msg_bytes)
        return (api, win)

    def _rvma_server_run(self, state) -> Generator:
        api, win = state
        expected = (self.cluster.n_nodes - 1) * self.msgs_per_client
        for _ in range(expected):
            info = yield from api.wait_completion(win)
            yield from api.post_buffer(win, buffer=info.record.buffer)

    def _rvma_client_run(self, rank: int) -> Generator:
        api: RvmaApi = self.protocol.api(self.cluster.node(rank))
        mailbox = mailbox_for(SERVER_RANK, INCAST_TAG)
        for _ in range(self.msgs_per_client):
            op = yield from api.put(SERVER_RANK, mailbox, size=self.msg_bytes)
            yield op.local_done
            self.count_send(self.msg_bytes)

    # --- RDMA flavour: a dedicated channel per client ------------------------------

    def _rdma_server_setup(self) -> Generator:
        node = self.cluster.node(SERVER_RANK)
        recvs = {}
        for client in range(1, self.cluster.n_nodes):
            recvs[client] = yield from self.protocol.recv_setup(
                node, client, INCAST_TAG, self.msg_bytes, slots=1
            )
        return recvs

    def _rdma_server_run(self, recvs) -> Generator:
        # Drain every client channel concurrently; each message needs the
        # ready/write/ack/signal cycle on its dedicated buffer.
        def drain(ep):
            for _ in range(self.msgs_per_client):
                yield from ep.recv()

        procs = [
            spawn(self.sim, drain(ep), f"incast-drain{c}") for c, ep in recvs.items()
        ]
        yield AllOf([p.done_future for p in procs])

    def _rdma_client_run(self, rank: int, send_ep) -> Generator:
        for _ in range(self.msgs_per_client):
            yield from send_ep.send(self.msg_bytes)
            self.count_send(self.msg_bytes)

    # --- Motif plumbing ---------------------------------------------------------------

    def setup_rank(self, rank: int) -> Generator:
        if self.is_rvma:
            if rank == SERVER_RANK:
                return (yield from self._rvma_server_setup())
            if False:  # pragma: no cover - keeps this a generator
                yield None
            return None
        if rank == SERVER_RANK:
            return (yield from self._rdma_server_setup())
        return (
            yield from self.protocol.send_setup(
                self.cluster.node(rank), SERVER_RANK, INCAST_TAG, self.msg_bytes
            )
        )

    def run_rank(self, rank: int, state) -> Generator:
        if rank == SERVER_RANK:
            if self.is_rvma:
                yield from self._rvma_server_run(state)
            else:
                yield from self._rdma_server_run(state)
        else:
            if self.is_rvma:
                yield from self._rvma_client_run(rank)
            else:
                yield from self._rdma_client_run(rank, state)

    def run(self) -> MotifResult:
        result = super().run()
        server = self.cluster.node(SERVER_RANK)
        if self.is_rvma:
            result.extras["server_buffers"] = BUCKET_DEPTH
            result.extras["server_regions"] = 0
        else:
            result.extras["server_buffers"] = self.cluster.n_nodes - 1
            result.extras["server_regions"] = len(server.nic.mr_table)
        return result
