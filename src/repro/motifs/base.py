"""Motif framework: per-rank processes over a cluster + a protocol.

A motif (the paper's §V-B1 "behavioral representations of common
computation and communication patterns") spawns one simulated process
per rank.  Channel setup happens first, then an application-level
barrier, then the timed communication phase — so protocol *setup* costs
are reported separately from steady-state exchange costs, mirroring how
the paper separates Fig 6 (setup amortization) from Figs 7-8.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Generator

from ..cluster.builder import Cluster
from ..sim.process import Future, spawn
from .transfer import TransferProtocol


class SimBarrier:
    """An application-level barrier across rank processes.

    Zero simulated cost (represents e.g. MPI_Barrier done out-of-band
    before timing starts, as benchmarks do); processes ``yield
    barrier.wait()``.
    """

    def __init__(self, sim, parties: int) -> None:
        self.sim = sim
        self.parties = parties
        self._arrived = 0
        self._waiters: list[Future] = []
        self.generation = 0

    def wait(self) -> Future:
        """Arrive at the barrier; the future resolves when all have."""
        fut = Future(self.sim)
        self._arrived += 1
        if self._arrived >= self.parties:
            self._arrived = 0
            self.generation += 1
            waiters, self._waiters = self._waiters, []
            for w in waiters:
                w.resolve(self.generation)
            fut.resolve(self.generation)
        else:
            self._waiters.append(fut)
        return fut


@dataclass
class MotifResult:
    """Outcome of one motif run."""

    motif: str
    protocol: str
    n_nodes: int
    #: Simulated ns from the post-setup barrier to the last rank finishing.
    elapsed: float
    #: Simulated ns spent in channel setup (start to barrier).
    setup_elapsed: float
    messages: int
    bytes_moved: int
    extras: dict = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.setup_elapsed + self.elapsed


class Motif(ABC):
    """Base class: implement :meth:`setup_rank` and :meth:`run_rank`."""

    name = "motif"

    def __init__(self, cluster: Cluster, protocol: TransferProtocol) -> None:
        if cluster.nic_type != protocol.nic_type:
            raise ValueError(
                f"cluster has {cluster.nic_type} NICs but protocol "
                f"{protocol.name} needs {protocol.nic_type}"
            )
        self.cluster = cluster
        self.protocol = protocol
        self.sim = cluster.sim
        self.barrier = SimBarrier(self.sim, cluster.n_nodes)
        self._t_barrier = [0.0]
        self.messages = 0
        self.bytes_moved = 0

    # --- to implement -------------------------------------------------------------

    @abstractmethod
    def setup_rank(self, rank: int) -> Generator:
        """Create channels; resolves to per-rank state passed to run_rank."""

    @abstractmethod
    def run_rank(self, rank: int, state) -> Generator:
        """The timed communication phase for one rank."""

    # --- driver ----------------------------------------------------------------------

    def _rank_process(self, rank: int) -> Generator:
        state = yield from self.setup_rank(rank)
        yield self.barrier.wait()
        self._t_barrier[0] = max(self._t_barrier[0], self.sim.now)
        yield from self.run_rank(rank, state)

    def count_send(self, size: int) -> None:
        """Account one application-level message of *size* bytes."""
        self.messages += 1
        self.bytes_moved += size

    def run(self) -> MotifResult:
        """Execute all ranks to completion; verifies no rank deadlocked
        and no protocol integrity violations (NACKs) occurred."""
        procs = [
            spawn(self.sim, self._rank_process(r), f"{self.name}-rank{r}")
            for r in range(self.cluster.n_nodes)
        ]
        self.sim.run()
        unfinished = [p.name for p in procs if not p.finished]
        if unfinished:
            raise RuntimeError(
                f"{self.name}: {len(unfinished)} ranks deadlocked, e.g. {unfinished[:4]}"
            )
        self._check_integrity()
        setup = self._t_barrier[0]
        return MotifResult(
            motif=self.name,
            protocol=self.protocol.name,
            n_nodes=self.cluster.n_nodes,
            elapsed=self.sim.now - setup,
            setup_elapsed=setup,
            messages=self.messages,
            bytes_moved=self.bytes_moved,
        )

    #: When True, any NACK at all fails the run (sweeps/halos are sized
    #: so the bucket never underruns; a NACK there is a protocol bug).
    #: Incast relaxes this: transient NO_BUFFER NACKs are retried.
    strict_nacks = True

    def _check_integrity(self) -> None:
        counters = self.sim.stats.counters()
        fatal_keys = ("puts_lost", "writes_rejected", "recv_too_small", "rx_unknown_header")
        fatal = {
            k: v for k, v in counters.items() if v and any(f in k for f in fatal_keys)
        }
        if self.strict_nacks:
            fatal.update(
                {
                    k: v
                    for k, v in counters.items()
                    if v and ("nacks_" in k or "puts_discarded" in k)
                }
            )
        if fatal:
            raise RuntimeError(f"{self.name}: data-loss indicators nonzero: {fatal}")
