"""Transfer protocol adapters: how a motif exchange maps onto RVMA vs RDMA.

This module encodes the protocol difference the paper's Figs 7-8
measure.  For a persistent sender->receiver channel re-used every
iteration:

**RVMA** (receiver-managed):
  setup: receiver creates a mailbox window (EPOCH_OPS, threshold 1) and
  posts a bucket of buffers.  send: one put — no coordination, "it
  simply sends the data when it is available" (§V-B1).  recv: wait on
  the buffer's own completion pointer, then locally re-post.

**RDMA** (spec-compliant on adaptive networks):
  setup: receiver registers a region and ships (addr, len, rkey) to the
  sender (Fig 1 steps 1-3, as real messages).  Every iteration then
  costs: receiver tells the sender the buffer is writable ("ready"),
  sender writes, waits for the transport ack (fence), and sends the
  1-byte completion signal the receiver's CQ recv reports.  Three
  control messages plus an ack wait per transfer — the overhead RVMA
  deletes.

Both adapters run on identical NIC/PCIe/network cost models.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Generator, Optional

from ..cluster.node import Node
from ..core.api import RvmaApi
from ..memory.buffer import HostBuffer
from ..nic.cq import CqKind
from ..nic.lut import BufferMode, EpochType
from ..network.routing import RoutingMode
from ..rdma.completion_modes import CompletionMode, check_mode_safety
from ..rdma.handshake import pack_region, unpack_region, DESC_BYTES
from ..rdma.ucx import UcpEndpoint
from ..rdma.verbs import VerbsEndpoint

#: Size of the per-iteration "buffer ready" notification (RDMA only).
READY_BYTES = 16
#: Size of the per-iteration completion signal (RDMA only).
SIGNAL_BYTES = 1


def mailbox_for(src: int, tag: int) -> int:
    """A unique 64-bit mailbox virtual address per (sender, tag)."""
    return ((src & 0xFFFFFFFF) << 16) | (tag & 0xFFFF)


def _wr(tag: int, kind: int) -> int:
    """wr_id namespace per channel: kind 0=desc, 1=ready, 2=complete."""
    return tag * 4 + kind


class RecvEndpoint(ABC):
    """Receiver half of a persistent channel."""

    @abstractmethod
    def recv(self) -> Generator:
        """Yield until the next message is complete; returns arrival info."""

    @abstractmethod
    def read_last(self, result, nbytes: int) -> bytes:
        """Payload bytes of the message *result* (from :meth:`recv`)."""

    def recv_data(self, nbytes: int) -> Generator:
        """Receive one message and return its first *nbytes* bytes."""
        result = yield from self.recv()
        return self.read_last(result, nbytes)


class SendEndpoint(ABC):
    """Sender half of a persistent channel."""

    @abstractmethod
    def send(self, size: int, data: bytes = b"") -> Generator:
        """Transfer *size* bytes (optionally real payload bytes);
        returns when the send buffer is reusable."""


class TransferProtocol(ABC):
    """Factory for channel endpoints on a given cluster."""

    name: str = "protocol"
    nic_type: str = "rvma"

    @abstractmethod
    def recv_setup(self, node: Node, src: int, tag: int, max_msg: int, slots: int) -> Generator:
        """Generator resolving to a :class:`RecvEndpoint`."""

    @abstractmethod
    def send_setup(self, node: Node, dst: int, tag: int, max_msg: int) -> Generator:
        """Generator resolving to a :class:`SendEndpoint`."""


# --------------------------------------------------------------------------- RVMA


class _RvmaRecv(RecvEndpoint):
    def __init__(self, api: RvmaApi, win, max_msg: int) -> None:
        self.api = api
        self.win = win
        self.max_msg = max_msg
        self.received = 0

    def recv(self) -> Generator:
        info = yield from self.api.wait_completion(self.win)
        self.received += 1
        # Receiver-side resource management: re-arm the same buffer
        # locally; the sender is never involved.
        yield from self.api.post_buffer(self.win, buffer=info.record.buffer)
        return info

    def read_last(self, result, nbytes: int) -> bytes:
        return result.record.buffer.read(0, nbytes)


class _RvmaSend(SendEndpoint):
    def __init__(self, api: RvmaApi, dst: int, mailbox: int, mode: Optional[RoutingMode]) -> None:
        self.api = api
        self.dst = dst
        self.mailbox = mailbox
        self.mode = mode
        self.sent = 0

    def send(self, size: int, data: bytes = b"") -> Generator:
        op = yield from self.api.put(
            self.dst, self.mailbox, data=data, size=size, mode=self.mode
        )
        yield op.local_done  # send buffer reusable once payload is on the wire
        self.sent += 1
        return op


class RvmaProtocol(TransferProtocol):
    """Mailbox puts with hardware threshold completion."""

    name = "rvma"
    nic_type = "rvma"

    def __init__(self, mode: Optional[RoutingMode] = None, sw_overhead: float = 0.0) -> None:
        self.mode = mode
        self.sw_overhead = sw_overhead
        self._apis: dict[int, RvmaApi] = {}

    def api(self, node: Node) -> RvmaApi:
        """The per-node RVMA endpoint (cached)."""
        api = self._apis.get(node.node_id)
        if api is None:
            api = self._apis[node.node_id] = RvmaApi(node, self.sw_overhead)
        return api

    def recv_setup(self, node: Node, src: int, tag: int, max_msg: int, slots: int) -> Generator:
        api = self.api(node)
        win = yield from api.init_window(
            mailbox_for(src, tag),
            epoch_threshold=1,
            epoch_type=EpochType.EPOCH_OPS,
            mode=BufferMode.STEERED,
        )
        for _ in range(slots):
            yield from api.post_buffer(win, size=max_msg)
        return _RvmaRecv(api, win, max_msg)

    def send_setup(self, node: Node, dst: int, tag: int, max_msg: int) -> Generator:
        # No discovery, no registration, no remote state: the defining
        # asymmetry with RDMA below.
        if False:  # pragma: no cover - keeps this a generator
            yield None
        return _RvmaSend(self.api(node), dst, mailbox_for(node.node_id, tag), self.mode)


# --------------------------------------------------------------------------- RDMA


class _RdmaRecv(RecvEndpoint):
    def __init__(
        self,
        verbs: VerbsEndpoint,
        sender: int,
        tag: int,
        buffer: HostBuffer,
        region,
        mode: Optional[RoutingMode],
        completion: CompletionMode,
    ) -> None:
        self.verbs = verbs
        self.sender = sender
        self.tag = tag
        self.buffer = buffer
        self.region = region
        self.mode = mode
        self.completion = completion
        self.ctl = HostBuffer.allocate(verbs.node.memory, 64, label="rdma-ctl")
        self.received = 0

    def recv(self) -> Generator:
        if self.completion is CompletionMode.SEND_RECV:
            # Arm for the completion signal *before* green-lighting the
            # sender, or the signal could beat the recv post.
            yield from self.verbs.post_recv(self.ctl, wr_id=_wr(self.tag, 2), tag=_wr(self.tag, 2))
        # Tell the sender the buffer may be overwritten (epoch sync).
        op = yield from self.verbs.send(
            self.sender, READY_BYTES, b"", tag=_wr(self.tag, 1),
            mode=self.mode, wr_id=_wr(self.tag, 1),
        )
        if self.completion is CompletionMode.SEND_RECV:
            entry = yield from self.verbs.wait_cq(_wr(self.tag, 2), CqKind.RECV)
        else:
            routing = self.mode or self.verbs.node.nic.fabric.config.routing
            entry = yield from self.verbs.wait_write_completion(
                self.buffer, self.completion, routing
            )
        self.received += 1
        return entry

    def read_last(self, result, nbytes: int) -> bytes:
        return self.buffer.read(0, nbytes)


class _RdmaSend(SendEndpoint):
    def __init__(
        self,
        verbs: VerbsEndpoint,
        dst: int,
        tag: int,
        region,
        mode: Optional[RoutingMode],
        completion: CompletionMode,
    ) -> None:
        self.verbs = verbs
        self.dst = dst
        self.tag = tag
        self.region = region
        self.mode = mode
        self.completion = completion
        self.ready_buf = HostBuffer.allocate(verbs.node.memory, 64, label="rdma-ready")
        self.sent = 0

    def send(self, size: int, data: bytes = b"") -> Generator:
        if size > self.region.length:
            raise ValueError(f"message of {size}B exceeds negotiated region")
        # Wait for the receiver's green light, then re-arm for the next one.
        yield from self.verbs.wait_cq(_wr(self.tag, 1), CqKind.RECV)
        yield from self.verbs.post_recv(self.ready_buf, wr_id=_wr(self.tag, 1), tag=_wr(self.tag, 1))
        op = yield from self.verbs.rdma_write(
            self.dst, self.region, size, data, mode=self.mode, wr_id=_wr(self.tag, 2)
        )
        if self.completion is CompletionMode.SEND_RECV:
            entry = yield op.done  # transport-ack fence before the signal
            if not entry.ok:
                raise RuntimeError(f"rdma write failed on channel tag {self.tag}")
            yield from self.verbs.send(
                self.dst, SIGNAL_BYTES, b"", tag=_wr(self.tag, 2),
                mode=self.mode, wr_id=_wr(self.tag, 2),
            )
        else:
            yield op.done  # still fence for send-buffer reuse semantics
        self.sent += 1
        return op


class RdmaProtocol(TransferProtocol):
    """Registered-region writes with ready/ack/signal coordination."""

    name = "rdma"
    nic_type = "rdma"

    def __init__(
        self,
        mode: Optional[RoutingMode] = None,
        completion: CompletionMode = CompletionMode.SEND_RECV,
        allow_unsafe: bool = False,
    ) -> None:
        self.mode = mode
        self.completion = completion
        self.allow_unsafe = allow_unsafe
        self._verbs: dict[int, VerbsEndpoint] = {}

    def verbs(self, node: Node) -> VerbsEndpoint:
        """The per-node Verbs endpoint (cached)."""
        v = self._verbs.get(node.node_id)
        if v is None:
            v = self._verbs[node.node_id] = VerbsEndpoint(node)
        return v

    def recv_setup(self, node: Node, src: int, tag: int, max_msg: int, slots: int) -> Generator:
        routing = self.mode or node.nic.fabric.config.routing
        check_mode_safety(self.completion, routing, self.allow_unsafe)
        verbs = self.verbs(node)
        buffer = HostBuffer.allocate(node.memory, max_msg, label="rdma-landing")
        region = yield from verbs.reg_mr(buffer)
        # Fig 1 step 3: ship (addr, len, rkey) to the initiator.  Fire and
        # forget: waiting for the ack here can deadlock rank setup chains
        # (the peer may still be in its own recv_setup); RNR retry
        # guarantees eventual delivery once the peer posts its recv.
        desc = pack_region(region)
        yield from verbs.send(
            src, DESC_BYTES, desc, tag=_wr(tag, 0), mode=self.mode, wr_id=_wr(tag, 0)
        )
        return _RdmaRecv(verbs, src, tag, buffer, region, self.mode, self.completion)

    def send_setup(self, node: Node, dst: int, tag: int, max_msg: int) -> Generator:
        verbs = self.verbs(node)
        desc_buf = HostBuffer.allocate(node.memory, DESC_BYTES, label="rdma-desc")
        yield from verbs.post_recv(desc_buf, wr_id=_wr(tag, 0), tag=_wr(tag, 0))
        ep = _RdmaSend(verbs, dst, tag, None, self.mode, self.completion)
        # Arm the first "ready" recv before learning the region so the
        # receiver's first green light can never RNR.
        yield from verbs.post_recv(ep.ready_buf, wr_id=_wr(tag, 1), tag=_wr(tag, 1))
        yield from verbs.wait_cq(_wr(tag, 0), CqKind.RECV)
        ep.region = unpack_region(desc_buf.read(), node_id=dst)
        return ep


# ---------------------------------------------------------------------------- UCX


def _utag(src: int, tag: int) -> int:
    """Tag-match namespace per (sender, channel): RDMA tag matching is
    receiver-global, so two senders sharing a channel tag would steal
    each other's landings without the source fold."""
    return ((src & 0x7FFF) << 16) | (tag & 0xFFFF)


class _UcxRecv(RecvEndpoint):
    def __init__(self, ucp: UcpEndpoint, src: int, tag: int, buffer: HostBuffer) -> None:
        self.ucp = ucp
        self.src = src
        self.tag = tag
        self.buffer = buffer
        self.received = 0

    def recv(self) -> Generator:
        entry = yield from self.ucp.tag_recv_wait(_utag(self.src, self.tag))
        # Re-arm before returning (microbench ping-pong idiom); a send
        # racing the re-arm RNR-NAKs and the initiator retries.
        yield from self.ucp.tag_recv_arm(self.buffer, tag=_utag(self.src, self.tag))
        self.received += 1
        return entry

    def read_last(self, result, nbytes: int) -> bytes:
        return self.buffer.read(0, nbytes)


class _UcxSend(SendEndpoint):
    def __init__(self, ucp: UcpEndpoint, dst: int, tag: int, mode: Optional[RoutingMode]) -> None:
        self.ucp = ucp
        self.dst = dst
        self.tag = tag
        self.mode = mode
        self.sent = 0

    def send(self, size: int, data: bytes = b"") -> Generator:
        op = yield from self.ucp.tag_send(
            self.dst, size, data, tag=_utag(self.ucp.node.node_id, self.tag), mode=self.mode
        )
        entry = yield op.done
        if not entry.ok:
            raise RuntimeError(f"ucx tag send failed on channel tag {self.tag}")
        self.sent += 1
        return op


class UcxProtocol(TransferProtocol):
    """UCP tagged messaging over the RDMA NIC (paper §V-A2).

    Same hardware as :class:`RdmaProtocol`, more software per op: UCP
    dispatch/matching costs on every send and receive.  Tag matching
    replaces the explicit ready/signal round trips — the receiver
    pre-posts a tagged landing buffer and RNR retry absorbs re-arm
    races, mirroring the microbenchmark ping-pong idiom.
    """

    name = "ucx"
    nic_type = "rdma"

    def __init__(self, mode: Optional[RoutingMode] = None) -> None:
        self.mode = mode
        self._eps: dict[int, UcpEndpoint] = {}

    def ucp(self, node: Node) -> UcpEndpoint:
        """The per-node UCP worker (cached)."""
        ep = self._eps.get(node.node_id)
        if ep is None:
            ep = self._eps[node.node_id] = UcpEndpoint(node)
        return ep

    def recv_setup(self, node: Node, src: int, tag: int, max_msg: int, slots: int) -> Generator:
        ucp = self.ucp(node)
        buffer = HostBuffer.allocate(node.memory, max_msg, label="ucx-landing")
        yield from ucp.tag_recv_arm(buffer, tag=_utag(src, tag))
        return _UcxRecv(ucp, src, tag, buffer)

    def send_setup(self, node: Node, dst: int, tag: int, max_msg: int) -> Generator:
        if False:  # pragma: no cover - keeps this a generator
            yield None
        return _UcxSend(self.ucp(node), dst, tag, self.mode)
