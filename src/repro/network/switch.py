"""Switch component and the packet-fidelity fabric.

The packet fabric instantiates a real :class:`Switch` per topology
switch, wires :class:`~repro.sim.link.SerializingLink` cables between
them, fragments messages into MTU packets and source-routes each packet
independently.  Under adaptive routing each packet may take a different
candidate path, producing genuine out-of-order arrival — the phenomenon
that breaks RDMA last-byte polling (paper §II, §IV-D).

Two execution paths share one timing model:

* **Plain** (``Simulator(fast=False)``) — the reference oracle: every
  packet is a :class:`RoutedPacket` hopping through real ``Switch``
  components over real links, one engine event per wire arrival and
  one per crossbar traversal.
* **Fast** (``fast=True``) — vectorized: per-packet state lives in
  struct-of-arrays slot arrays on the fabric, routes are precompiled
  into per-hop step records, and packets due to advance at the same
  simulated instant are grouped into *one* engine event per
  link-timestep (``_advance_batch``) instead of two events per hop per
  packet.  Both paths read and write the same ``SerializingLink``
  ``_free_at`` horizons and the same ``Switch.packets_forwarded``
  counters with the same float arithmetic in the same order, so
  delivery bytes, timing, ``fabric.*`` metrics and span streams are
  identical between modes (asserted by the fabric conformance suite).

Used at small scale (validation, microbenchmarks, integrity tests);
the flow fabric covers the 8,192-node motif runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..sim.component import Component
from ..sim.engine import Simulator
from ..sim.event import PRIORITY_HIGH
from ..sim.link import SerializingLink
from .config import NetworkConfig
from .fabric import BaseFabric
from .message import Delivery, DeliveryInfo, Message, Packet, PACKET_HEADER_BYTES
from .routing import PathChoice, RoutingMode, choose_path
from .topology.base import Topology


@dataclass(slots=True)
class RoutedPacket:
    """A packet plus its source route and current position."""

    packet: Packet
    route: list[int]  # switch ids, first = source's switch
    hop: int  # index into route of the switch currently holding it
    path_index: int


class Switch(Component):
    """An output-queued crossbar switch.

    Contention is modelled by the serializing output links; the
    crossbar adds a traversal delay at ``crossbar_factor x link_bw``
    (1.5x per the paper) plus a fixed pipeline latency, and is never the
    bottleneck — matching the paper's setup.
    """

    def __init__(self, sim: Simulator, switch_id: int, config: NetworkConfig) -> None:
        super().__init__(sim, f"switch{switch_id}")
        self.switch_id = switch_id
        self.config = config
        self.to_switch: dict[int, Any] = {}  # neighbor switch id -> Port
        self.to_node: dict[int, Any] = {}  # node id -> Port
        self.packets_forwarded = 0

    def observable_metrics(self) -> dict[str, int]:
        """Attribute counters exposed to the observability collector."""
        return {"fabric.packets_forwarded": self.packets_forwarded}

    def make_switch_port(self, neighbor: int):
        """Create the output port cabled towards *neighbor* switch."""
        port = self.add_port(f"sw{neighbor}", self.on_packet)
        self.to_switch[neighbor] = port
        return port

    def make_node_port(self, node: int):
        """Create the ejection port cabled to endpoint *node*."""
        port = self.add_port(f"node{node}", self.on_packet)
        self.to_node[node] = port
        return port

    def on_packet(self, env: RoutedPacket) -> None:
        """Receive a packet, traverse the crossbar, forward it."""
        xbar = env.packet.wire_size / self.config.crossbar_bw
        self.sim.post(self.config.switch_latency + xbar, self._forward, env)

    def _forward(self, env: RoutedPacket) -> None:
        self.packets_forwarded += 1
        env.hop += 1
        if env.hop < len(env.route):
            nxt = env.route[env.hop]
            self.to_switch[nxt].send(env, env.packet.wire_size)
        else:
            dst = env.packet.message.dst
            self.to_node[dst].send(env, env.packet.wire_size)


class _Endpoint(Component):
    """NIC-side cable terminus for one node in the packet fabric."""

    def __init__(self, sim: Simulator, node_id: int, fabric: "PacketFabric") -> None:
        super().__init__(sim, f"ep{node_id}")
        self.node_id = node_id
        self.fabric = fabric
        self.inj_port = self.add_port("inj", self._on_arrival)

    def _on_arrival(self, env: RoutedPacket) -> None:
        self.fabric._on_packet_arrival(self.node_id, env)


class PacketFabric(BaseFabric):
    """Packet-granularity fabric built from real switch components."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        config: Optional[NetworkConfig] = None,
        name: str = "pktfabric",
    ) -> None:
        super().__init__(sim, topology, config, name)
        cfg = self.config
        self.switches = [Switch(sim, i, cfg) for i in range(topology.n_switches)]
        # Switch-to-switch cables (one SerializingLink per undirected pair;
        # SerializingLink is full-duplex with independent directions).
        done: set[tuple[int, int]] = set()
        for (u, v) in topology.links():
            key = (min(u, v), max(u, v))
            if key in done:
                continue
            done.add(key)
            pa = self.switches[u].make_switch_port(v)
            pb = self.switches[v].make_switch_port(u)
            SerializingLink(sim, pa, pb, cfg.hop_latency, cfg.link_bw)
        # Node cables.
        self.endpoints = []
        for node in range(topology.n_nodes):
            sw = self.switches[topology.node_switch(node)]
            ep = _Endpoint(sim, node, self)
            sp = sw.make_node_port(node)
            SerializingLink(sim, ep.inj_port, sp, cfg.injection_latency, cfg.link_bw)
            self.endpoints.append(ep)
        self.packets_delivered = 0
        #: open per-message flight spans: id(msg) -> [span, packets_left]
        self._msg_spans: dict[int, list] = {}
        #: (src, dst) -> (static_path, cands, scorers, allowed); scorers
        #: hold the serializing-link free_at dicts along each candidate
        #: so per-packet adaptive scoring skips the port/dict traversal.
        self._scored_paths: dict[tuple[int, int], tuple] = {}

        # --- fast-path state (struct-of-arrays over in-flight packets) ---
        # One slot per in-flight packet; slots are recycled through
        # ``_fp_free``.  A *step* is one transmission performed by the
        # switch at route[i]: ``(switch, link_free_at_dict, port_key,
        # inv_bw, latency, link)`` — everything ``_advance_batch`` needs
        # without touching a Port or Component.
        self._fp_pkt: list = []            # Packet per slot
        self._fp_steps: list = []          # per-slot step tuple (len == hops)
        self._fp_hop: list = []            # index of the next step to run
        self._fp_wire: list = []           # wire bytes (payload + header)
        self._fp_dsw: list = []            # crossbar delay for this wire size
        self._fp_pidx: list = []           # chosen candidate index
        self._fp_free: list = []           # recycled slot indices
        #: packets due to advance at the same instant share one engine
        #: event: time -> [slot, ...] (one list per pending batch).
        self._fwd_due: dict[float, list] = {}
        self._del_due: dict[float, list] = {}
        #: (src, dst) -> (static_steps, cand_steps): routes precompiled
        #: to step records; invalidated with the other route caches.
        self._fast_routes: dict[tuple[int, int], tuple] = {}
        #: per-node injection handles: (free_at, port_key, inv_bw,
        #: latency, link) — the injection half of a step record.
        self._inj_fast = []
        for ep in self.endpoints:
            link = ep.inj_port.link
            self._inj_fast.append(
                (link._free_at, id(ep.inj_port), link._inv_bw, link.latency, link)
            )

    def observable_metrics(self) -> dict[str, int]:
        metrics = super().observable_metrics()
        metrics["fabric.packets_delivered"] = self.packets_delivered
        return metrics

    def _invalidate_route_caches(self) -> None:
        """Fault transition: also drop the per-packet scorer and the
        precompiled fast-path step caches (their ``allowed`` sets and
        link handles bake in the route state at build time)."""
        super()._invalidate_route_caches()
        self._scored_paths.clear()
        self._fast_routes.clear()

    # --- sending -----------------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        size: int,
        header: Any = None,
        data: bytes = b"",
        mode: Optional[RoutingMode] = None,
    ) -> Message:
        """Fragment into MTU packets, source-routing each independently."""
        mode = mode or self.config.routing
        if self.sim.fast:
            return self._send_fast(src, dst, size, header, data, mode)
        msg = self._mk_message(src, dst, size, header, data)
        n_pkts = 0
        for pkt in msg.fragment():
            choice = self.select_path(src, dst, mode)
            env = RoutedPacket(packet=pkt, route=choice.path, hop=0, path_index=choice.index)
            self.endpoints[src].inj_port.send(env, pkt.wire_size)
            n_pkts += 1
        spans = self.sim.spans
        if spans.active and spans.wants("fabric"):
            sp = spans.begin("fabric", "msg_flight", src=src, dst=dst, size=size, packets=n_pkts)
            if sp is not None:
                self._msg_spans[id(msg)] = [sp, n_pkts]
        return msg

    def _send_fast(
        self, src: int, dst: int, size: int, header: Any, data: bytes, mode: RoutingMode
    ) -> Message:
        """Vectorized send: inline the injection transmit and enqueue
        each packet's first crossbar traversal into a shared batch.

        Per packet this does exactly the reference arithmetic —
        ``start = max(free_at, now); tail = start + wire*inv_bw;
        first_forward = (tail + latency) + (switch_latency +
        wire/crossbar_bw)`` — without creating the endpoint/link/switch
        event chain.  Path selection happens *before* the injection
        horizon is bumped, in the same order as the reference loop, so
        adaptive scoring and rng draws are identical.
        """
        msg = self._mk_message(src, dst, size, header, data)
        sim = self.sim
        now = sim.now
        cfg = self.config
        sw_lat = cfg.switch_latency
        xbar_bw = cfg.crossbar_bw
        inj_free, inj_key, inj_inv, inj_lat, inj_link = self._inj_fast[src]
        routes = self._fast_routes.get((src, dst))
        if routes is None:
            routes = self._build_fast_routes(src, dst)
        static_steps, cand_steps = routes
        if mode is RoutingMode.STATIC:
            fixed_steps = static_steps
        elif len(cand_steps) == 1:
            # Single candidate: the reference choose_path shortcuts
            # without an rng draw; mirror that exactly.
            fixed_steps = cand_steps[0]
        else:
            fixed_steps = None
            entry = self._scored_paths.get((src, dst))
            if entry is None:
                entry = self._build_scorers(src, dst)
            _static, cands, scorers, allowed = entry
            if len(allowed) != len(cands):
                use_scorers = [scorers[i] for i in allowed]
                remap = allowed
            else:
                use_scorers = scorers
                remap = None
            route_rng = self._route_rng

        pkts = self._fp_pkt
        steps_arr = self._fp_steps
        hops_arr = self._fp_hop
        wire_arr = self._fp_wire
        dsw_arr = self._fp_dsw
        pidx_arr = self._fp_pidx
        free_slots = self._fp_free
        due = self._fwd_due

        n_pkts = 0
        for pkt in msg.fragment():
            if fixed_steps is not None:
                steps = fixed_steps
                pidx = 0
            else:
                # Inline adaptive selection: identical scoring math,
                # near-best tie-break and rng draw discipline as
                # select_path/choose_path (choice over one candidate
                # never draws), minus the PathChoice/path-copy
                # allocations — only the index is needed here.
                scores = []
                for chans, base in use_scorers:
                    for free_at, pid in chans:
                        t = free_at[pid]
                        if t > now:
                            base += t - now
                    scores.append(base)
                best = min(scores)
                slack = best * 0.05 if best * 0.05 > 1.0 else 1.0
                near = [i for i, sc in enumerate(scores) if sc <= best + slack]
                if len(near) == 1:
                    pidx = near[0]
                else:
                    pidx = near[int(route_rng.integers(0, len(near)))]
                if remap is not None:
                    pidx = remap[pidx]
                steps = cand_steps[pidx]
            w = pkt.size + PACKET_HEADER_BYTES
            # Injection transmit (same math as SerializingLink.transmit).
            start = inj_free[inj_key]
            if now > start:
                start = now
            tail = start + w * inj_inv
            inj_free[inj_key] = tail
            inj_link.bytes_carried += w
            dsw = sw_lat + w / xbar_bw
            if free_slots:
                slot = free_slots.pop()
                pkts[slot] = pkt
                steps_arr[slot] = steps
                hops_arr[slot] = 0
                wire_arr[slot] = w
                dsw_arr[slot] = dsw
                pidx_arr[slot] = pidx
            else:
                slot = len(pkts)
                pkts.append(pkt)
                steps_arr.append(steps)
                hops_arr.append(0)
                wire_arr.append(w)
                dsw_arr.append(dsw)
                pidx_arr.append(pidx)
            t_fwd = (tail + inj_lat) + dsw
            batch = due.get(t_fwd)
            if batch is None:
                due[t_fwd] = [slot]
                sim.post_at(t_fwd, self._advance_batch, t_fwd)
            else:
                batch.append(slot)
            n_pkts += 1
        spans = sim.spans
        if spans.active and spans.wants("fabric"):
            sp = spans.begin("fabric", "msg_flight", src=src, dst=dst, size=size, packets=n_pkts)
            if sp is not None:
                self._msg_spans[id(msg)] = [sp, n_pkts]
        return msg

    def _build_fast_routes(self, src: int, dst: int) -> tuple:
        """Precompile every candidate route into per-hop step records."""
        static_path, cands, _allowed = self._pair_paths(src, dst)
        entry = (
            self._compile_steps(static_path, dst),
            tuple(self._compile_steps(p, dst) for p in cands),
        )
        self._fast_routes[(src, dst)] = entry
        return entry

    def _compile_steps(self, path: list, dst: int) -> tuple:
        """Step records for one switch path: route[i]'s transmission."""
        steps = []
        last = len(path) - 1
        for i, u in enumerate(path):
            sw = self.switches[u]
            port = sw.to_switch[path[i + 1]] if i < last else sw.to_node[dst]
            link = port.link
            steps.append((sw, link._free_at, id(port), link._inv_bw, link.latency, link))
        return tuple(steps)

    def _advance_batch(self, when: float) -> None:
        """Run every forward due at *when*: one engine event for the
        whole link-timestep batch.

        Each slot performs what the reference does in ``Switch._forward``
        plus the downstream link transmit: bump the forwarding switch's
        counter, serialize onto the next cable, then either enqueue the
        next crossbar traversal or hand the packet to the delivery batch
        at its ejection-arrival time.
        """
        slots = self._fwd_due.pop(when)
        sim = self.sim
        post_at = sim.post_at
        steps_arr = self._fp_steps
        hops_arr = self._fp_hop
        wire_arr = self._fp_wire
        dsw_arr = self._fp_dsw
        fwd_due = self._fwd_due
        del_due = self._del_due
        for slot in slots:
            steps = steps_arr[slot]
            hop = hops_arr[slot]
            sw, free, key, inv_bw, lat, link = steps[hop]
            sw.packets_forwarded += 1
            w = wire_arr[slot]
            start = free[key]
            if when > start:
                start = when
            tail = start + w * inv_bw
            free[key] = tail
            link.bytes_carried += w
            arrive = tail + lat
            hop += 1
            if hop < len(steps):
                hops_arr[slot] = hop
                t_fwd = arrive + dsw_arr[slot]
                batch = fwd_due.get(t_fwd)
                if batch is None:
                    fwd_due[t_fwd] = [slot]
                    post_at(t_fwd, self._advance_batch, t_fwd)
                else:
                    batch.append(slot)
            else:
                batch = del_due.get(arrive)
                if batch is None:
                    del_due[arrive] = [slot]
                    post_at(arrive, self._deliver_batch, arrive, priority=PRIORITY_HIGH)
                else:
                    batch.append(slot)

    def _deliver_batch(self, when: float) -> None:
        """Deliver every packet whose ejection completes at *when*.

        Mirrors ``_on_packet_arrival`` per slot (counter, span
        bookkeeping, DeliveryInfo) and recycles the slot.  Runs at
        PRIORITY_HIGH like the reference ejection-link delivery.
        """
        slots = self._del_due.pop(when)
        pkts = self._fp_pkt
        steps_arr = self._fp_steps
        pidx_arr = self._fp_pidx
        spans = self.sim.spans
        msg_spans = self._msg_spans
        free_slots = self._fp_free
        deliver = self._deliver
        for slot in slots:
            pkt = pkts[slot]
            msg = pkt.message
            self.packets_delivered += 1
            entry = msg_spans.get(id(msg))
            if entry is not None:
                entry[1] -= 1
                if entry[1] <= 0:
                    spans.end(entry[0])
                    del msg_spans[id(msg)]
            info = DeliveryInfo(
                send_time=msg.send_time,
                arrival_time=when,
                hops=len(steps_arr[slot]),
                path_index=pidx_arr[slot],
            )
            pkts[slot] = None
            steps_arr[slot] = None
            free_slots.append(slot)
            deliver(msg.dst, Delivery(msg, info, packet=pkt))

    # --- routing -----------------------------------------------------------------

    def _build_scorers(self, src: int, dst: int) -> tuple:
        """Build and cache the per-pair scorer entry: candidate paths
        plus the serializing-link ``_free_at`` handles along each one,
        so per-packet adaptive scoring is dict lookups only."""
        static_path, cands, allowed = self._pair_paths(src, dst)
        ep = self.endpoints[src]
        inj = (ep.inj_port.link._free_at, id(ep.inj_port))
        scorers = []
        for path in cands:
            chans = [inj]
            for u, v in zip(path, path[1:]):
                port = self.switches[u].to_switch[v]
                chans.append((port.link._free_at, id(port)))
            scorers.append((chans, len(path) * self.config.hop_latency))
        entry = (static_path, cands, scorers, allowed)
        self._scored_paths[(src, dst)] = entry
        return entry

    def select_path(self, src: int, dst: int, mode: RoutingMode) -> PathChoice:
        """Load-aware path choice, scored from cached channel handles.

        Semantically identical to the BaseFabric version (same UGAL
        scoring, same rng stream, same near-best tie-break, same
        fault-window candidate filtering) — only the per-packet
        port/dict traversal is hoisted into a one-time cache.
        """
        entry = self._scored_paths.get((src, dst))
        if entry is None:
            entry = self._build_scorers(src, dst)
        static_path, cands, scorers, allowed = entry
        if mode is RoutingMode.STATIC:
            return PathChoice(list(static_path), 0)
        now = self.sim.now
        remap = None
        use_cands = cands
        use_scorers = scorers
        if len(allowed) != len(cands):
            remap = allowed
            use_cands = [cands[i] for i in allowed]
            use_scorers = [scorers[i] for i in allowed]
        scores = []
        for chans, base in use_scorers:
            for free_at, pid in chans:
                t = free_at[pid]
                if t > now:
                    base += t - now
            scores.append(base)
        ch = choose_path(
            use_cands,
            mode,
            rng_pick=lambda n: self.sim.rng.choice(f"{self.name}.route", n),
            scores=scores,
        )
        if remap is not None:
            return PathChoice(ch.path, remap[ch.index])
        return ch

    def injection_busy_until(self, node: int) -> float:
        ep = self.endpoints[node]
        return ep.inj_port.link.busy_until(ep.inj_port)

    def _path_backlog(self, path_switches: list[int], src: int, dst: int) -> float:
        """Queue-depth score from the *real* serializing links, so
        adaptive selection in packet mode is genuinely load-aware
        (UGAL-style), not merely randomized."""
        now = self.sim.now
        backlog = 0.0
        ep = self.endpoints[src]
        backlog += max(0.0, ep.inj_port.link.busy_until(ep.inj_port) - now)
        for u, v in zip(path_switches, path_switches[1:]):
            port = self.switches[u].to_switch[v]
            backlog += max(0.0, port.link.busy_until(port) - now)
        return backlog + len(path_switches) * self.config.hop_latency

    def _on_packet_arrival(self, node_id: int, env: RoutedPacket) -> None:
        self.packets_delivered += 1
        msg = env.packet.message
        entry = self._msg_spans.get(id(msg))
        if entry is not None:
            entry[1] -= 1
            if entry[1] <= 0:
                self.sim.spans.end(entry[0])
                del self._msg_spans[id(msg)]
        info = DeliveryInfo(
            send_time=msg.send_time,
            arrival_time=self.sim.now,
            hops=len(env.route),
            path_index=env.path_index,
        )
        self._deliver(node_id, Delivery(msg, info, packet=env.packet))
