"""Switch component and the packet-fidelity fabric.

The packet fabric instantiates a real :class:`Switch` per topology
switch, wires :class:`~repro.sim.link.SerializingLink` cables between
them, fragments messages into MTU packets and source-routes each packet
independently.  Under adaptive routing each packet may take a different
candidate path, producing genuine out-of-order arrival — the phenomenon
that breaks RDMA last-byte polling (paper §II, §IV-D).

Used at small scale (validation, microbenchmarks, integrity tests);
the flow fabric covers the 8,192-node motif runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..sim.component import Component
from ..sim.engine import Simulator
from ..sim.link import SerializingLink
from .config import NetworkConfig
from .fabric import BaseFabric
from .message import Delivery, DeliveryInfo, Message, Packet
from .routing import PathChoice, RoutingMode, choose_path
from .topology.base import Topology


@dataclass(slots=True)
class RoutedPacket:
    """A packet plus its source route and current position."""

    packet: Packet
    route: list[int]  # switch ids, first = source's switch
    hop: int  # index into route of the switch currently holding it
    path_index: int


class Switch(Component):
    """An output-queued crossbar switch.

    Contention is modelled by the serializing output links; the
    crossbar adds a traversal delay at ``crossbar_factor x link_bw``
    (1.5x per the paper) plus a fixed pipeline latency, and is never the
    bottleneck — matching the paper's setup.
    """

    def __init__(self, sim: Simulator, switch_id: int, config: NetworkConfig) -> None:
        super().__init__(sim, f"switch{switch_id}")
        self.switch_id = switch_id
        self.config = config
        self.to_switch: dict[int, Any] = {}  # neighbor switch id -> Port
        self.to_node: dict[int, Any] = {}  # node id -> Port
        self.packets_forwarded = 0

    def observable_metrics(self) -> dict[str, int]:
        """Attribute counters exposed to the observability collector."""
        return {"fabric.packets_forwarded": self.packets_forwarded}

    def make_switch_port(self, neighbor: int):
        """Create the output port cabled towards *neighbor* switch."""
        port = self.add_port(f"sw{neighbor}", self.on_packet)
        self.to_switch[neighbor] = port
        return port

    def make_node_port(self, node: int):
        """Create the ejection port cabled to endpoint *node*."""
        port = self.add_port(f"node{node}", self.on_packet)
        self.to_node[node] = port
        return port

    def on_packet(self, env: RoutedPacket) -> None:
        """Receive a packet, traverse the crossbar, forward it."""
        xbar = env.packet.wire_size / self.config.crossbar_bw
        self.sim.post(self.config.switch_latency + xbar, self._forward, env)

    def _forward(self, env: RoutedPacket) -> None:
        self.packets_forwarded += 1
        env.hop += 1
        if env.hop < len(env.route):
            nxt = env.route[env.hop]
            self.to_switch[nxt].send(env, env.packet.wire_size)
        else:
            dst = env.packet.message.dst
            self.to_node[dst].send(env, env.packet.wire_size)


class _Endpoint(Component):
    """NIC-side cable terminus for one node in the packet fabric."""

    def __init__(self, sim: Simulator, node_id: int, fabric: "PacketFabric") -> None:
        super().__init__(sim, f"ep{node_id}")
        self.node_id = node_id
        self.fabric = fabric
        self.inj_port = self.add_port("inj", self._on_arrival)

    def _on_arrival(self, env: RoutedPacket) -> None:
        self.fabric._on_packet_arrival(self.node_id, env)


class PacketFabric(BaseFabric):
    """Packet-granularity fabric built from real switch components."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        config: Optional[NetworkConfig] = None,
        name: str = "pktfabric",
    ) -> None:
        super().__init__(sim, topology, config, name)
        cfg = self.config
        self.switches = [Switch(sim, i, cfg) for i in range(topology.n_switches)]
        # Switch-to-switch cables (one SerializingLink per undirected pair;
        # SerializingLink is full-duplex with independent directions).
        done: set[tuple[int, int]] = set()
        for (u, v) in topology.links():
            key = (min(u, v), max(u, v))
            if key in done:
                continue
            done.add(key)
            pa = self.switches[u].make_switch_port(v)
            pb = self.switches[v].make_switch_port(u)
            SerializingLink(sim, pa, pb, cfg.hop_latency, cfg.link_bw)
        # Node cables.
        self.endpoints = []
        for node in range(topology.n_nodes):
            sw = self.switches[topology.node_switch(node)]
            ep = _Endpoint(sim, node, self)
            sp = sw.make_node_port(node)
            SerializingLink(sim, ep.inj_port, sp, cfg.injection_latency, cfg.link_bw)
            self.endpoints.append(ep)
        self.packets_delivered = 0
        #: open per-message flight spans: id(msg) -> [span, packets_left]
        self._msg_spans: dict[int, list] = {}
        #: (src, dst) -> (static_path, cands, scorers); scorers hold the
        #: serializing-link free_at dicts along each candidate so
        #: per-packet adaptive scoring skips the port/dict traversal.
        self._scored_paths: dict[tuple[int, int], tuple] = {}

    def observable_metrics(self) -> dict[str, int]:
        metrics = super().observable_metrics()
        metrics["fabric.packets_delivered"] = self.packets_delivered
        return metrics

    def send(
        self,
        src: int,
        dst: int,
        size: int,
        header: Any = None,
        data: bytes = b"",
        mode: Optional[RoutingMode] = None,
    ) -> Message:
        """Fragment into MTU packets, source-routing each independently."""
        mode = mode or self.config.routing
        msg = self._mk_message(src, dst, size, header, data)
        n_pkts = 0
        for pkt in msg.fragment():
            choice = self.select_path(src, dst, mode)
            env = RoutedPacket(packet=pkt, route=choice.path, hop=0, path_index=choice.index)
            if len(choice.path) == 1 and src != dst:
                # src and dst share a switch: still one switch traversal.
                pass
            self.endpoints[src].inj_port.send(env, pkt.wire_size)
            n_pkts += 1
        spans = self.sim.spans
        if spans.active and spans.wants("fabric"):
            sp = spans.begin("fabric", "msg_flight", src=src, dst=dst, size=size, packets=n_pkts)
            if sp is not None:
                self._msg_spans[id(msg)] = [sp, n_pkts]
        return msg

    def select_path(self, src: int, dst: int, mode: RoutingMode) -> PathChoice:
        """Load-aware path choice, scored from cached channel handles.

        Semantically identical to the BaseFabric version (same UGAL
        scoring, same rng stream, same near-best tie-break) — only the
        per-packet port/dict traversal is hoisted into a one-time cache.
        """
        key = (src, dst)
        entry = self._scored_paths.get(key)
        if entry is None:
            static_path, cands = self._pair_paths(src, dst)
            ep = self.endpoints[src]
            inj = (ep.inj_port.link._free_at, id(ep.inj_port))
            scorers = []
            for path in cands:
                chans = [inj]
                for u, v in zip(path, path[1:]):
                    port = self.switches[u].to_switch[v]
                    chans.append((port.link._free_at, id(port)))
                scorers.append((chans, len(path) * self.config.hop_latency))
            entry = (static_path, cands, scorers)
            self._scored_paths[key] = entry
        static_path, cands, scorers = entry
        if mode is RoutingMode.STATIC:
            return PathChoice(list(static_path), 0)
        now = self.sim.now
        scores = []
        for chans, base in scorers:
            for free_at, pid in chans:
                t = free_at[pid]
                if t > now:
                    base += t - now
            scores.append(base)
        return choose_path(
            cands,
            mode,
            rng_pick=lambda n: self.sim.rng.choice(f"{self.name}.route", n),
            scores=scores,
        )

    def injection_busy_until(self, node: int) -> float:
        ep = self.endpoints[node]
        return ep.inj_port.link.busy_until(ep.inj_port)

    def _path_backlog(self, path_switches: list[int], src: int, dst: int) -> float:
        """Queue-depth score from the *real* serializing links, so
        adaptive selection in packet mode is genuinely load-aware
        (UGAL-style), not merely randomized."""
        now = self.sim.now
        backlog = 0.0
        ep = self.endpoints[src]
        backlog += max(0.0, ep.inj_port.link.busy_until(ep.inj_port) - now)
        for u, v in zip(path_switches, path_switches[1:]):
            port = self.switches[u].to_switch[v]
            backlog += max(0.0, port.link.busy_until(port) - now)
        return backlog + len(path_switches) * self.config.hop_latency

    def _on_packet_arrival(self, node_id: int, env: RoutedPacket) -> None:
        self.packets_delivered += 1
        msg = env.packet.message
        entry = self._msg_spans.get(id(msg))
        if entry is not None:
            entry[1] -= 1
            if entry[1] <= 0:
                self.sim.spans.end(entry[0])
                del self._msg_spans[id(msg)]
        info = DeliveryInfo(
            send_time=msg.send_time,
            arrival_time=self.sim.now,
            hops=len(env.route),
            path_index=env.path_index,
        )
        self._deliver(node_id, Delivery(msg, info, packet=env.packet))
