"""Fabric base: channel bookkeeping shared by both fidelities.

A *channel* is one direction of one cable: node->switch (injection),
switch->switch, or switch->node (ejection).  Fabrics track per-channel
``free_at`` horizons; the flow fabric reserves channels per message,
the packet fabric per packet via real switch components.

Both fabrics present the same interface to NICs::

    fabric.attach(node_id, handler)          # handler(Delivery)
    fabric.send(src, dst, size, header=..., data=..., mode=...)
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim.component import Component
from ..sim.engine import Simulator
from .config import NetworkConfig
from .message import Delivery, DeliveryInfo, Message, MTU, PACKET_HEADER_BYTES
from .routing import PathChoice, RoutingMode, choose_path
from .topology.base import Topology

DeliveryHandler = Callable[[Delivery], None]


class BaseFabric(Component):
    """Shared structure: channel tables, path selection, endpoint handlers."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        config: Optional[NetworkConfig] = None,
        name: str = "fabric",
    ) -> None:
        super().__init__(sim, name)
        self.topology = topology
        self.config = config or NetworkConfig()
        self._handlers: dict[int, DeliveryHandler] = {}

        # Channel index space: [injection per node][ejection per node][switch links]
        n = topology.n_nodes
        self._inj_base = 0
        self._eje_base = n
        self._link_base = 2 * n
        self._link_index: dict[tuple[int, int], int] = {}
        idx = self._link_base
        for (u, v) in topology.links():
            self._link_index[(u, v)] = idx
            idx += 1
        self.n_channels = idx
        self.free_at = [0.0] * self.n_channels
        self.channel_bytes = [0] * self.n_channels
        #: per-channel crossing latency, precomputed (hot path).
        self._chan_latency = [self.channel_latency(ch) for ch in range(idx)]
        #: (src, dst) -> (static_chans, static_hops, ((chans, penalty, hops), ...))
        #: — topology routes are immutable, so cache them per pair.
        self._route_cache: dict[tuple[int, int], tuple] = {}
        #: (src, dst) -> (static_path, candidate_paths, allowed) switch
        #: lists; the packet fabric routes per packet, and recomputing
        #: Valiant/derouted candidates per packet dominated its profile.
        self._paths_cache: dict[tuple[int, int], tuple] = {}
        #: fault-state marks pushed by the fault injector: element ->
        #: outstanding down-window count.  Counters (not booleans) so
        #: overlapping windows on the same element compose; an element
        #: is avoided while its count is positive.
        self._down_switches: dict[int, int] = {}
        self._down_links: dict[frozenset, int] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Optional fault hook: called with each Delivery just before it
        #: reaches the destination handler; returning True drops it.
        self.fault_filter = None
        self.deliveries_dropped = 0
        #: canonical latency summary, shared across fabrics in one sim.
        self._lat_summary = sim.stats.summary("fabric.msg_latency_ns")
        #: adaptive-routing stream, resolved once (same draws as going
        #: through rng.choice each send — stream creation is keyed by
        #: name, and choice(n==1) never draws).
        self._route_rng = sim.rng.stream(f"{self.name}.route")
        #: reciprocal so the serialization divide becomes a multiply.
        self._inv_link_bw = 1.0 / self.config.link_bw

    def observable_metrics(self) -> dict[str, int]:
        """Attribute counters exposed to the observability collector."""
        return {
            "fabric.messages_sent": self.messages_sent,
            "fabric.bytes_sent": self.bytes_sent,
            "fabric.deliveries_dropped": self.deliveries_dropped,
        }

    # --- endpoints ---------------------------------------------------------------

    def attach(self, node_id: int, handler: DeliveryHandler) -> None:
        """Register *handler* to receive Deliveries addressed to *node_id*."""
        self.topology.check_node(node_id)
        if node_id in self._handlers:
            raise ValueError(f"node {node_id} already attached")
        self._handlers[node_id] = handler

    def _deliver(self, node_id: int, delivery: Delivery) -> None:
        if self.fault_filter is not None and self.fault_filter(delivery):
            self.deliveries_dropped += 1
            return
        info = delivery.info
        self._lat_summary.add(info.arrival_time - info.send_time)
        handler = self._handlers.get(node_id)
        if handler is None:
            raise RuntimeError(f"no handler attached for node {node_id}")
        handler(delivery)

    # --- channels ----------------------------------------------------------------

    def injection_channel(self, node: int) -> int:
        """Channel index of *node*'s NIC->switch cable."""
        return self._inj_base + node

    def ejection_channel(self, node: int) -> int:
        """Channel index of the switch->NIC cable into *node*."""
        return self._eje_base + node

    def link_channel(self, u: int, v: int) -> int:
        """Channel index of the directed switch link u->v."""
        return self._link_index[(u, v)]

    def channels_for(self, path_switches: list[int], src: int, dst: int) -> list[int]:
        """Full channel sequence for a switch path between two nodes."""
        chans = [self.injection_channel(src)]
        for u, v in zip(path_switches, path_switches[1:]):
            chans.append(self.link_channel(u, v))
        chans.append(self.ejection_channel(dst))
        return chans

    def injection_busy_until(self, node: int) -> float:
        """When the node's injection channel finishes its queued traffic."""
        return self.free_at[self.injection_channel(node)]

    def channel_label(self, ch: int) -> str:
        """Human-readable name for a channel index."""
        if ch < self._eje_base:
            return f"inject[node{ch - self._inj_base}]"
        if ch < self._link_base:
            return f"eject[node{ch - self._eje_base}]"
        for (u, v), idx in self._link_index.items():
            if idx == ch:
                return f"link[sw{u}->sw{v}]"
        return f"chan[{ch}]"

    def hottest_channels(self, k: int = 10) -> list[tuple[str, int]]:
        """Top-*k* channels by bytes carried — congestion diagnostics
        for experiments (e.g. spotting the D-mod-k core hotspot)."""
        ranked = sorted(
            range(self.n_channels), key=lambda ch: self.channel_bytes[ch], reverse=True
        )[:k]
        return [(self.channel_label(ch), self.channel_bytes[ch]) for ch in ranked]

    def channel_latency(self, ch: int) -> float:
        """Latency charged as traffic crosses into this channel.

        Injection: NIC-to-switch cable plus the first switch's pipeline;
        switch links: cable plus the downstream switch's pipeline;
        ejection: switch-to-NIC cable only.  This matches the packet
        fabric, where Switch components charge their own pipeline.
        """
        if ch < self._eje_base:
            return self.config.injection_latency + self.config.switch_latency
        if ch < self._link_base:
            return self.config.injection_latency
        return self.config.hop_latency + self.config.switch_latency

    # --- fault-aware route state -------------------------------------------------

    def set_switch_state(self, switch_id: int, up: bool) -> None:
        """Mark a switch down (``up=False``) or back up for routing.

        Called by the fault injector at window boundaries.  Adaptive
        selection avoids candidates crossing a down element (static
        routing stays oblivious, matching the drop-window semantics:
        a static route through a dead element is simply dropped).
        Every transition invalidates the route caches — cached scorer
        handles and allowed-candidate sets would otherwise go stale.
        """
        counts = self._down_switches
        if up:
            n = counts.get(switch_id, 0) - 1
            if n <= 0:
                counts.pop(switch_id, None)
            else:
                counts[switch_id] = n
        else:
            counts[switch_id] = counts.get(switch_id, 0) + 1
        self._invalidate_route_caches()

    def set_link_state(self, u: int, v: int, up: bool) -> None:
        """Mark the switch link u<->v down or back up for routing."""
        edge = frozenset((u, v))
        counts = self._down_links
        if up:
            n = counts.get(edge, 0) - 1
            if n <= 0:
                counts.pop(edge, None)
            else:
                counts[edge] = n
        else:
            counts[edge] = counts.get(edge, 0) + 1
        self._invalidate_route_caches()

    def _invalidate_route_caches(self) -> None:
        """Drop every cached route/score structure (fault transitions)."""
        self._route_cache.clear()
        self._paths_cache.clear()

    def _path_blocked(self, path_switches: list[int]) -> bool:
        """Does *path_switches* traverse a currently-down element?"""
        down_sw = self._down_switches
        if down_sw:
            for s in path_switches:
                if s in down_sw:
                    return True
        down_ln = self._down_links
        if down_ln:
            for e in zip(path_switches, path_switches[1:]):
                if frozenset(e) in down_ln:
                    return True
        return False

    def _allowed_candidates(self, paths) -> tuple:
        """Indices of candidates not crossing a down element.

        Falls back to *all* candidates when every path is blocked
        (no live alternative exists — traffic then takes its normal
        route and the drop window decides its fate).
        """
        if not self._down_switches and not self._down_links:
            return tuple(range(len(paths)))
        allowed = tuple(
            i for i, p in enumerate(paths) if not self._path_blocked(p)
        )
        return allowed or tuple(range(len(paths)))

    # --- routing ----------------------------------------------------------------

    def _path_backlog(self, path_switches: list[int], src: int, dst: int) -> float:
        """UGAL-ish score: queued work on the path plus a hop penalty."""
        now = self.sim.now
        backlog = 0.0
        for ch in self.channels_for(path_switches, src, dst):
            wait = self.free_at[ch] - now
            if wait > 0:
                backlog += wait
        return backlog + len(path_switches) * self.config.hop_latency

    def _pair_paths(self, src: int, dst: int) -> tuple:
        """Cached (static_path, candidate_paths, allowed) for a node pair.

        Topology routes are pure functions of the immutable topology;
        callers must not mutate the returned lists (choose_path copies
        the winning path before handing it out).  ``allowed`` is the
        fault-filtered candidate index tuple, baked in at build time —
        the cache is invalidated on every fault transition, so it never
        goes stale.
        """
        key = (src, dst)
        cached = self._paths_cache.get(key)
        if cached is None:
            s_sw = self.topology.node_switch(src)
            d_sw = self.topology.node_switch(dst)
            cands = self.topology.candidate_paths(s_sw, d_sw)
            cached = (
                self.topology.static_path(s_sw, d_sw),
                cands,
                self._allowed_candidates(cands),
            )
            self._paths_cache[key] = cached
        return cached

    def select_path(self, src: int, dst: int, mode: RoutingMode) -> PathChoice:
        """Pick a switch path per the routing mode (load-aware when adaptive)."""
        static_path, cands, allowed = self._pair_paths(src, dst)
        if mode is RoutingMode.STATIC:
            return PathChoice(list(static_path), 0)
        if len(allowed) != len(cands):
            sub = [cands[i] for i in allowed]
            ch = choose_path(
                sub,
                mode,
                load_fn=lambda p: self._path_backlog(p, src, dst),
                rng_pick=lambda n: self.sim.rng.choice(f"{self.name}.route", n),
            )
            return PathChoice(ch.path, allowed[ch.index])
        return choose_path(
            cands,
            mode,
            load_fn=lambda p: self._path_backlog(p, src, dst),
            rng_pick=lambda n: self.sim.rng.choice(f"{self.name}.route", n),
        )

    def _pair_routes(self, src: int, dst: int) -> tuple:
        """Cached channel sequences for every route of a node pair."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is None:
            s_sw = self.topology.node_switch(src)
            d_sw = self.topology.node_switch(dst)
            static_path = self.topology.static_path(s_sw, d_sw)
            static = (tuple(self.channels_for(static_path, src, dst)), len(static_path))
            hop = self.config.hop_latency
            paths = self.topology.candidate_paths(s_sw, d_sw)
            cands = tuple(
                (tuple(self.channels_for(p, src, dst)), len(p) * hop, len(p))
                for p in paths
            )
            cached = (static, cands, self._allowed_candidates(paths))
            self._route_cache[key] = cached
        return cached

    # --- sending (implemented by fidelities) ------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        size: int,
        header: Any = None,
        data: bytes = b"",
        mode: Optional[RoutingMode] = None,
    ) -> Message:
        """Transmit *size* bytes from *src* to *dst* (fidelity-specific)."""
        raise NotImplementedError

    def _mk_message(self, src: int, dst: int, size: int, header: Any, data: bytes) -> Message:
        self.topology.check_node(src)
        self.topology.check_node(dst)
        msg = Message(src=src, dst=dst, size=size, header=header, data=data)
        msg.send_time = self.sim.now
        self.messages_sent += 1
        self.bytes_sent += size
        return msg


class FlowFabric(BaseFabric):
    """Message-granularity fabric for scale (Figs 7-8 at 8,192 nodes).

    Each message reserves its channels with virtual-cut-through timing:
    the head advances hop by hop waiting for busy channels; each channel
    stays occupied until the message tail has been clocked through it.
    Contention therefore appears at injection, ejection and any shared
    switch link — the effects that dominate the paper's motifs — while
    costing O(hops) work per message instead of O(packets x hops).
    Routes are cached per node pair (topologies are immutable).
    """

    def send(
        self,
        src: int,
        dst: int,
        size: int,
        header: Any = None,
        data: bytes = b"",
        mode: Optional[RoutingMode] = None,
    ) -> Message:
        """Send a whole message with virtual-cut-through channel reservation."""
        mode = mode or self.config.routing
        msg = self._mk_message(src, dst, size, header, data)
        (static_chans, static_hops), cands, allowed = self._pair_routes(src, dst)
        free = self.free_at
        now = self.sim.now
        if mode is RoutingMode.STATIC:
            chans, hops, idx = static_chans, static_hops, 0
        elif len(cands) == 1:
            chans, _pen, hops = cands[0]
            idx = 0
        else:
            # UGAL-ish scoring, identical to routing.choose_path: queued
            # backlog plus a hop penalty, randomized among the near-best.
            # Candidates crossing a faulted element are filtered out
            # up front (``allowed`` is all of them when no fault is live).
            remap = None
            use = cands
            if len(allowed) != len(cands):
                remap = allowed
                use = [cands[i] for i in allowed]
            scores = []
            for cand_chans, penalty, _hops in use:
                backlog = penalty
                for ch in cand_chans:
                    wait = free[ch] - now
                    if wait > 0:
                        backlog += wait
                scores.append(backlog)
            best = min(scores)
            slack = best * 0.05 if best * 0.05 > 1.0 else 1.0
            near = [i for i, sc in enumerate(scores) if sc <= best + slack]
            if len(near) == 1:
                idx = near[0]
            else:
                idx = near[int(self._route_rng.integers(0, len(near)))]
            chans, _pen, hops = use[idx]
            if remap is not None:
                idx = remap[idx]

        # msg.wire_size, inlined (two property hops per send add up).
        n_pkts = -(-size // MTU) if size else 1
        wire = size + n_pkts * PACKET_HEADER_BYTES
        ser = wire * self._inv_link_bw
        lat = self._chan_latency
        bytes_acc = self.channel_bytes
        t_head = now
        for ch in chans:
            f = free[ch]
            if f > t_head:
                t_head = f
            t_head += lat[ch]
            free[ch] = t_head + ser
            bytes_acc[ch] += wire
        t_deliver = t_head + ser

        info = DeliveryInfo(
            send_time=msg.send_time,
            arrival_time=t_deliver,
            hops=hops,
            path_index=idx,
        )
        sim = self.sim
        spans = sim.spans
        if spans.active and spans.wants("fabric"):
            sp = spans.begin("fabric", "msg_flight", src=src, dst=dst, size=size, hops=hops)
            if sp is not None:
                # Delivery and span-end land at the same arrival time:
                # one bucketed heap entry, delivery first.
                sim.post_batch_at(
                    t_deliver,
                    ((self._deliver, (dst, Delivery(msg, info))), (spans.end, (sp,))),
                )
                return msg
        sim.post_at(t_deliver, self._deliver, dst, Delivery(msg, info))
        return msg
