"""Network substrate: messages, topologies, routing, switches, fabrics."""

from .config import LINK_RATES, NetworkConfig
from .fabric import BaseFabric, FlowFabric
from .message import (
    MTU,
    PACKET_HEADER_BYTES,
    Delivery,
    DeliveryInfo,
    Message,
    Packet,
)
from .routing import PathChoice, RoutingMode, choose_path
from .switch import PacketFabric, RoutedPacket, Switch
from .topology import (
    TOPOLOGY_KINDS,
    Dragonfly,
    FatTree,
    HyperX,
    Star,
    Topology,
    Torus3D,
    make_topology,
)

__all__ = [
    "BaseFabric",
    "Delivery",
    "DeliveryInfo",
    "Dragonfly",
    "FatTree",
    "FlowFabric",
    "HyperX",
    "LINK_RATES",
    "Message",
    "MTU",
    "NetworkConfig",
    "Packet",
    "PacketFabric",
    "PACKET_HEADER_BYTES",
    "PathChoice",
    "RoutedPacket",
    "RoutingMode",
    "Star",
    "Switch",
    "Topology",
    "TOPOLOGY_KINDS",
    "Torus3D",
    "choose_path",
    "make_topology",
]
