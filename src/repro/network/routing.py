"""Routing policies: static (deterministic, ordered) vs adaptive.

The protocol-level consequence the paper hinges on: a **static** route
gives per-(src,dst) in-order, byte-ordered delivery, so RDMA's
last-byte-polling trick works; an **adaptive** network reorders packets
and messages, so RDMA needs a trailing send/recv for completion while
RVMA does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Sequence


class RoutingMode(Enum):
    """How paths are chosen at injection."""

    STATIC = "static"
    ADAPTIVE = "adaptive"

    @property
    def ordered(self) -> bool:
        """Does the network guarantee in-order (and byte-ordered) delivery?"""
        return self is RoutingMode.STATIC


@dataclass
class PathChoice:
    """Result of a routing decision."""

    path: list[int]
    index: int  # which candidate was picked (diagnostics / tests)


def choose_path(
    candidates: Sequence[list[int]],
    mode: RoutingMode,
    load_fn: Callable[[list[int]], float] | None = None,
    rng_pick: Callable[[int], int] = lambda n: 0,
    scores: Sequence[float] | None = None,
) -> PathChoice:
    """Select a path from *candidates*.

    STATIC always takes candidate 0 (the topology's deterministic
    minimal path).  ADAPTIVE scores candidates as ``backlog +
    hop_penalty`` (UGAL-style: a longer path must be idle enough to
    beat the minimal one) and picks uniformly among the near-best to
    spread load.  Callers that already hold per-candidate scores pass
    them via *scores* instead of a *load_fn*.
    """
    if not candidates:
        raise ValueError("no candidate paths")
    if mode is RoutingMode.STATIC or len(candidates) == 1:
        return PathChoice(list(candidates[0]), 0)

    if scores is None:
        scores = [load_fn(p) for p in candidates]
    best = min(scores)
    # Near-best set: within 5% or an absolute sliver; randomize among them.
    slack = max(best * 0.05, 1.0)
    near = [i for i, s in enumerate(scores) if s <= best + slack]
    idx = near[rng_pick(len(near))]
    return PathChoice(list(candidates[idx]), idx)
