"""Network configuration shared by both fabric fidelities."""

from __future__ import annotations

from dataclasses import dataclass

from ..units import gbps
from .routing import RoutingMode

#: Link rates swept in Figs 7-8 (bytes/ns).
LINK_RATES = {
    "100Gbps": gbps(100),
    "200Gbps": gbps(200),
    "400Gbps": gbps(400),
    "2Tbps": gbps(2000),
}


@dataclass
class NetworkConfig:
    """Knobs for a simulated fabric.

    Defaults follow the paper's simulation setup (§V-B): crossbar
    bandwidth 1.5x the link rate, host bus never the bottleneck, high
    packet update fidelity.
    """

    #: Link bandwidth in bytes/ns (100 Gbps default).
    link_bw: float = gbps(100)
    #: Switch-to-switch cable propagation latency, ns.
    hop_latency: float = 40.0
    #: NIC-to-switch (and switch-to-NIC) cable latency, ns.
    injection_latency: float = 15.0
    #: Per-switch pipeline (port-to-port) latency, ns.
    switch_latency: float = 100.0
    #: Crossbar speedup over the link rate (paper: 1.5x).
    crossbar_factor: float = 1.5
    #: Default path-selection policy.
    routing: RoutingMode = RoutingMode.ADAPTIVE

    def __post_init__(self) -> None:
        if self.link_bw <= 0:
            raise ValueError("link_bw must be positive")
        if self.crossbar_factor < 1.0:
            raise ValueError("crossbar_factor must be >= 1 (paper uses 1.5)")

    @property
    def crossbar_bw(self) -> float:
        return self.link_bw * self.crossbar_factor

    def with_(self, **kw) -> "NetworkConfig":
        """Copy with overrides (sweeps build variants from one base)."""
        data = self.__dict__ | kw
        return NetworkConfig(**data)
