"""Canonical dragonfly topology (Kim et al.), as used in Fig 7/8.

Parameters: ``a`` routers per group, ``p`` terminals per router, ``h``
global links per router.  With ``g = a*h + 1`` groups every pair of
groups shares exactly one global link; routers within a group are fully
connected.  Minimal routes are L-G-L (<=3 switch hops); non-minimal
(Valiant) routes go via a random intermediate group, which is what an
adaptively routed dragonfly uses to spread load.
"""

from __future__ import annotations

from .base import Topology, dedupe_consecutive


class Dragonfly(Topology):
    kind = "dragonfly"

    def __init__(self, a: int, p: int, h: int, n_nodes: int = 0) -> None:
        if a < 1 or p < 1 or h < 1:
            raise ValueError("dragonfly requires a, p, h >= 1")
        self.a = a
        self.p = p
        self.h = h
        self.groups = a * h + 1
        n_switches = a * self.groups
        capacity = p * n_switches
        if n_nodes == 0:
            n_nodes = capacity
        if n_nodes > capacity:
            raise ValueError(f"n_nodes {n_nodes} exceeds capacity {capacity}")
        super().__init__(n_nodes, n_switches, f"dragonfly(a={a},p={p},h={h})")
        # Non-minimal path pool is sampled per-message by the fabric.
        self._valiant_groups = max(1, self.groups - 2)

    # --- structure -----------------------------------------------------------

    def node_switch(self, node: int) -> int:
        self.check_node(node)
        return node // self.p

    def group_of(self, sw: int) -> int:
        return sw // self.a

    def router_in_group(self, sw: int) -> int:
        return sw % self.a

    def _global_link_owner(self, src_group: int, dst_group: int) -> int:
        """Switch id in *src_group* owning the global link to *dst_group*."""
        if src_group == dst_group:
            raise ValueError("no global link within a group")
        j = dst_group if dst_group < src_group else dst_group - 1
        return src_group * self.a + (j // self.h)

    def switch_neighbors(self, sw: int) -> list[int]:
        grp = self.group_of(sw)
        r = self.router_in_group(sw)
        # Intra-group: fully connected.
        out = [grp * self.a + i for i in range(self.a) if i != r]
        # Global links owned by this router.
        for port in range(self.h):
            j = r * self.h + port
            dst_group = j if j < grp else j + 1
            if dst_group >= self.groups:
                continue
            out.append(self._global_link_owner(dst_group, grp))
        return out

    # --- routing -------------------------------------------------------------

    def _lgl(self, src_sw: int, dst_sw: int) -> list[int]:
        """Minimal local-global-local route between two switches."""
        sg, dg = self.group_of(src_sw), self.group_of(dst_sw)
        if sg == dg:
            return dedupe_consecutive([src_sw, dst_sw])
        g_out = self._global_link_owner(sg, dg)
        g_in = self._global_link_owner(dg, sg)
        return dedupe_consecutive([src_sw, g_out, g_in, dst_sw])

    def static_path(self, src_sw: int, dst_sw: int) -> list[int]:
        if src_sw == dst_sw:
            return [src_sw]
        return self._lgl(src_sw, dst_sw)

    def valiant_path(self, src_sw: int, dst_sw: int, mid_group: int) -> list[int]:
        """Non-minimal route through *mid_group* (a Valiant deroute)."""
        sg, dg = self.group_of(src_sw), self.group_of(dst_sw)
        if mid_group in (sg, dg):
            return self.static_path(src_sw, dst_sw)
        # land on the router in mid_group that owns the link onward to dg
        entry = self._global_link_owner(mid_group, sg)
        first = self._lgl(src_sw, entry)
        second = self._lgl(entry, dst_sw)
        return dedupe_consecutive(first + second[1:])

    def candidate_paths(self, src_sw: int, dst_sw: int) -> list[list[int]]:
        if src_sw == dst_sw:
            return [[src_sw]]
        cands = [self.static_path(src_sw, dst_sw)]
        sg, dg = self.group_of(src_sw), self.group_of(dst_sw)
        if sg != dg:
            # A deterministic spread of Valiant intermediates; the fabric
            # picks among candidates by load.
            step = max(1, self.groups // 4)
            mids = {(sg + k * step + 1) % self.groups for k in range(3)}
            for m in sorted(mids):
                if m not in (sg, dg):
                    cands.append(self.valiant_path(src_sw, dst_sw, m))
        return cands

    def diameter(self) -> int:
        # L-G-L worst case is 3 switch-to-switch hops (4 switches).
        return 3
