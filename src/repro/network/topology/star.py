"""Single-switch star: the back-to-back testbed topology.

The paper's "real world testing" (Figs 4-6) uses two nodes on one
switch; this topology models exactly that and keeps microbenchmark
latency free of multi-hop effects.
"""

from __future__ import annotations

from .base import Topology


class Star(Topology):
    kind = "star"

    def __init__(self, n_nodes: int) -> None:
        super().__init__(n_nodes, 1, f"star({n_nodes})")

    def node_switch(self, node: int) -> int:
        self.check_node(node)
        return 0

    def switch_neighbors(self, sw: int) -> list[int]:
        return []

    def static_path(self, src_sw: int, dst_sw: int) -> list[int]:
        return [0]

    def candidate_paths(self, src_sw: int, dst_sw: int) -> list[list[int]]:
        return [[0]]

    def diameter(self) -> int:
        return 0
