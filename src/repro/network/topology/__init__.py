"""Interconnect topologies evaluated in the paper (Figs 4-8)."""

from __future__ import annotations

import math

from .base import Topology, dedupe_consecutive
from .dragonfly import Dragonfly
from .fattree import FatTree
from .hyperx import HyperX
from .star import Star
from .torus import Torus3D

__all__ = [
    "Dragonfly",
    "FatTree",
    "HyperX",
    "Star",
    "Topology",
    "Torus3D",
    "dedupe_consecutive",
    "make_topology",
    "TOPOLOGY_KINDS",
]

TOPOLOGY_KINDS = ("dragonfly", "fattree", "hyperx", "torus3d", "star")


def _dragonfly_for(n: int) -> Dragonfly:
    for h in range(1, 16):
        a, p = 2 * h, max(1, h)
        capacity = a * p * (a * h + 1)
        if capacity >= n:
            return Dragonfly(a=a, p=p, h=h, n_nodes=n)
    raise ValueError(f"no dragonfly sizing for {n} nodes")


def _fattree_for(n: int) -> FatTree:
    k = 2
    while k * k * k // 4 < n:
        k += 2
    return FatTree(k=k, n_nodes=n)


def _hyperx_for(n: int) -> HyperX:
    if n >= 4096:
        t = 32
    elif n >= 256:
        t = 8
    else:
        t = 2
    s = max(2, math.ceil(math.sqrt(n / t)))
    while s * s * t < n:
        s += 1
    return HyperX(dims=(s, s), terminals=t, n_nodes=n)


def _torus_for(n: int) -> Torus3D:
    # Find a near-cubic switch count >= n (terminals = 1, growing the
    # lattice slightly when n does not factor).
    m = n
    while True:
        x = round(m ** (1 / 3))
        for dx in range(0, x):
            for cand in (x - dx, x + dx):
                if cand >= 2 and m % cand == 0:
                    rem = m // cand
                    y = round(math.sqrt(rem))
                    for dy in range(0, y):
                        for cy in (y - dy, y + dy):
                            if cy >= 2 and rem % cy == 0 and rem // cy >= 2:
                                return Torus3D(
                                    shape=(cand, cy, rem // cy), terminals=1, n_nodes=n
                                )
        m += 1


def make_topology(kind: str, n_nodes: int) -> Topology:
    """Build a paper-comparable topology sized for *n_nodes* endpoints.

    The sizing heuristics reproduce the paper's setup at 8,192 nodes
    (e.g. a k=32 fat-tree, a 16x16x32 torus) and scale down cleanly for
    tests.
    """
    if kind == "dragonfly":
        return _dragonfly_for(n_nodes)
    if kind == "fattree":
        return _fattree_for(n_nodes)
    if kind == "hyperx":
        return _hyperx_for(n_nodes)
    if kind == "torus3d":
        return _torus_for(n_nodes)
    if kind == "star":
        return Star(n_nodes)
    raise ValueError(f"unknown topology kind {kind!r}; choose from {TOPOLOGY_KINDS}")
