"""Three-level k-ary fat-tree (Clos), k even: k^3/4 hosts.

Layout: k pods; each pod has k/2 edge and k/2 aggregation switches;
(k/2)^2 core switches.  Aggregation switch j of every pod uplinks to
core switches [j*(k/2), (j+1)*(k/2)).  Static routing is D-mod-k
(deterministic up-path chosen by destination hash); adaptive routing
chooses among all (k/2)^2 up-paths by load.
"""

from __future__ import annotations

from .base import Topology


class FatTree(Topology):
    kind = "fattree"

    def __init__(self, k: int, n_nodes: int = 0) -> None:
        if k < 2 or k % 2:
            raise ValueError("fat-tree requires even k >= 2")
        self.k = k
        self.half = k // 2
        self.n_pods = k
        self.n_edge = k * self.half
        self.n_agg = k * self.half
        self.n_core = self.half * self.half
        capacity = self.half * self.n_edge  # k^3/4
        if n_nodes == 0:
            n_nodes = capacity
        if n_nodes > capacity:
            raise ValueError(f"n_nodes {n_nodes} exceeds capacity {capacity}")
        super().__init__(n_nodes, self.n_edge + self.n_agg + self.n_core, f"fattree(k={k})")

    # switch id layout: [edges][aggs][cores]
    def edge_id(self, pod: int, i: int) -> int:
        return pod * self.half + i

    def agg_id(self, pod: int, j: int) -> int:
        return self.n_edge + pod * self.half + j

    def core_id(self, c: int) -> int:
        return self.n_edge + self.n_agg + c

    def is_edge(self, sw: int) -> bool:
        return sw < self.n_edge

    def is_agg(self, sw: int) -> bool:
        return self.n_edge <= sw < self.n_edge + self.n_agg

    def is_core(self, sw: int) -> bool:
        return sw >= self.n_edge + self.n_agg

    # --- structure --------------------------------------------------------------

    def node_switch(self, node: int) -> int:
        self.check_node(node)
        return node // self.half  # edge switch id

    def pod_of_edge(self, sw: int) -> int:
        return sw // self.half

    def switch_neighbors(self, sw: int) -> list[int]:
        if self.is_edge(sw):
            pod = self.pod_of_edge(sw)
            return [self.agg_id(pod, j) for j in range(self.half)]
        if self.is_agg(sw):
            idx = sw - self.n_edge
            pod, j = divmod(idx, self.half)
            down = [self.edge_id(pod, i) for i in range(self.half)]
            up = [self.core_id(j * self.half + m) for m in range(self.half)]
            return down + up
        c = sw - self.n_edge - self.n_agg
        j = c // self.half
        return [self.agg_id(pod, j) for pod in range(self.n_pods)]

    # --- routing ---------------------------------------------------------------

    def _updown(self, src_sw: int, dst_sw: int, j: int, m: int) -> list[int]:
        """Up/down path via aggregation column j (and core offset m)."""
        sp, dp = self.pod_of_edge(src_sw), self.pod_of_edge(dst_sw)
        if sp == dp:
            return [src_sw, self.agg_id(sp, j), dst_sw]
        core = self.core_id(j * self.half + m)
        return [src_sw, self.agg_id(sp, j), core, self.agg_id(dp, j), dst_sw]

    def static_path(self, src_sw: int, dst_sw: int) -> list[int]:
        if src_sw == dst_sw:
            return [src_sw]
        # D-mod-k: both up-path choices keyed on the destination edge id,
        # so all traffic to one destination converges (classic static ECMP).
        j = dst_sw % self.half
        m = (dst_sw // self.half) % self.half
        return self._updown(src_sw, dst_sw, j, m)

    def candidate_paths(self, src_sw: int, dst_sw: int) -> list[list[int]]:
        if src_sw == dst_sw:
            return [[src_sw]]
        sp, dp = self.pod_of_edge(src_sw), self.pod_of_edge(dst_sw)
        cands = []
        if sp == dp:
            for j in range(self.half):
                cands.append(self._updown(src_sw, dst_sw, j, 0))
            return cands
        # Spread over aggregation columns and a couple of cores per column.
        for j in range(self.half):
            for m in (0, self.half // 2):
                cands.append(self._updown(src_sw, dst_sw, j, m % self.half))
        # De-duplicate (when half == 1 the two m values coincide).
        seen, out = set(), []
        for p in cands:
            t = tuple(p)
            if t not in seen:
                seen.add(t)
                out.append(p)
        return out

    def diameter(self) -> int:
        return 4  # edge-agg-core-agg-edge
