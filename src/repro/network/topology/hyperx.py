"""HyperX topology (Ahn et al.): an L-dimensional generalized hypercube.

Routers form an L-dimensional lattice with shape ``dims``; along every
dimension each router is directly linked to *all* routers sharing its
other coordinates.  Minimal routing corrects each mismatched dimension
once: Dimension-Order Routing (DOR) corrects them in a fixed order
(the paper's "HyperX Dimension Order Routing" series in Fig 8);
adaptive routing (DAL-like) chooses the dimension order by load.
"""

from __future__ import annotations

from itertools import permutations

import math

from .base import Topology


class HyperX(Topology):
    kind = "hyperx"

    def __init__(self, dims: tuple[int, ...], terminals: int, n_nodes: int = 0) -> None:
        dims = tuple(int(d) for d in dims)
        if not dims or any(d < 2 for d in dims):
            raise ValueError("hyperx dims must each be >= 2")
        if terminals < 1:
            raise ValueError("terminals per router must be >= 1")
        self.dims = dims
        self.terminals = terminals
        n_switches = math.prod(dims)
        capacity = n_switches * terminals
        if n_nodes == 0:
            n_nodes = capacity
        if n_nodes > capacity:
            raise ValueError(f"n_nodes {n_nodes} exceeds capacity {capacity}")
        super().__init__(
            n_nodes, n_switches, f"hyperx({'x'.join(map(str, dims))},T={terminals})"
        )
        # Strides for coordinate <-> id conversion (row-major).
        self._strides = []
        s = 1
        for d in reversed(dims):
            self._strides.append(s)
            s *= d
        self._strides.reverse()

    # --- coordinates -----------------------------------------------------------

    def coords(self, sw: int) -> tuple[int, ...]:
        out = []
        for stride, d in zip(self._strides, self.dims):
            out.append((sw // stride) % d)
        return tuple(out)

    def switch_id(self, coords: tuple[int, ...]) -> int:
        return sum(c * s for c, s in zip(coords, self._strides))

    # --- structure --------------------------------------------------------------

    def node_switch(self, node: int) -> int:
        self.check_node(node)
        return node // self.terminals

    def switch_neighbors(self, sw: int) -> list[int]:
        c = self.coords(sw)
        out = []
        for dim, size in enumerate(self.dims):
            for v in range(size):
                if v != c[dim]:
                    nc = list(c)
                    nc[dim] = v
                    out.append(self.switch_id(tuple(nc)))
        return out

    # --- routing -----------------------------------------------------------------

    def _path_with_order(self, src_sw: int, dst_sw: int, order: tuple[int, ...]) -> list[int]:
        path = [src_sw]
        cur = list(self.coords(src_sw))
        dst = self.coords(dst_sw)
        for dim in order:
            if cur[dim] != dst[dim]:
                cur[dim] = dst[dim]
                path.append(self.switch_id(tuple(cur)))
        return path

    def static_path(self, src_sw: int, dst_sw: int) -> list[int]:
        """DOR: correct dimensions in ascending index order."""
        if src_sw == dst_sw:
            return [src_sw]
        return self._path_with_order(src_sw, dst_sw, tuple(range(len(self.dims))))

    def candidate_paths(self, src_sw: int, dst_sw: int) -> list[list[int]]:
        if src_sw == dst_sw:
            return [[src_sw]]
        ndims = len(self.dims)
        orders = list(permutations(range(ndims))) if ndims <= 3 else [
            tuple(range(ndims)),
            tuple(reversed(range(ndims))),
        ]
        seen, out = set(), []
        for order in orders:
            p = self._path_with_order(src_sw, dst_sw, order)
            t = tuple(p)
            if t not in seen:
                seen.add(t)
                out.append(p)
        return out

    def diameter(self) -> int:
        return len(self.dims)
