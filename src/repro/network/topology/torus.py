"""3-D torus with wraparound links (Cray Gemini / BlueGene class).

Minimal DOR routing corrects X then Y then Z, taking the shorter ring
direction per dimension.  Adaptive routing varies the dimension order.
"""

from __future__ import annotations

import math

from .base import Topology


class Torus3D(Topology):
    kind = "torus3d"

    def __init__(
        self, shape: tuple[int, int, int], terminals: int = 1, n_nodes: int = 0
    ) -> None:
        shape = tuple(int(s) for s in shape)
        if len(shape) != 3 or any(s < 2 for s in shape):
            raise ValueError("torus3d needs three dimensions each >= 2")
        if terminals < 1:
            raise ValueError("terminals per router must be >= 1")
        self.shape = shape
        self.terminals = terminals
        n_switches = math.prod(shape)
        capacity = n_switches * terminals
        if n_nodes == 0:
            n_nodes = capacity
        if n_nodes > capacity:
            raise ValueError(f"n_nodes {n_nodes} exceeds capacity {capacity}")
        super().__init__(
            n_nodes, n_switches, f"torus3d({'x'.join(map(str, shape))},T={terminals})"
        )
        sx, sy, sz = shape
        self._strides = (sy * sz, sz, 1)

    def coords(self, sw: int) -> tuple[int, int, int]:
        sx, sy, sz = self.shape
        return (sw // (sy * sz), (sw // sz) % sy, sw % sz)

    def switch_id(self, c: tuple[int, int, int]) -> int:
        return c[0] * self._strides[0] + c[1] * self._strides[1] + c[2]

    # --- structure ---------------------------------------------------------------

    def node_switch(self, node: int) -> int:
        self.check_node(node)
        return node // self.terminals

    def switch_neighbors(self, sw: int) -> list[int]:
        c = self.coords(sw)
        out = []
        for dim in range(3):
            size = self.shape[dim]
            for step in (-1, 1):
                nc = list(c)
                nc[dim] = (nc[dim] + step) % size
                nsw = self.switch_id(tuple(nc))
                if nsw != sw:  # size-2 rings: +1 and -1 coincide
                    out.append(nsw)
        # De-duplicate while preserving order.
        seen, uniq = set(), []
        for n in out:
            if n not in seen:
                seen.add(n)
                uniq.append(n)
        return uniq

    # --- routing -------------------------------------------------------------------

    def _ring_steps(self, frm: int, to: int, size: int) -> list[int]:
        """Coordinates visited moving the short way around one ring."""
        if frm == to:
            return []
        fwd = (to - frm) % size
        back = (frm - to) % size
        step = 1 if fwd <= back else -1
        steps = []
        cur = frm
        while cur != to:
            cur = (cur + step) % size
            steps.append(cur)
        return steps

    def _path_with_order(self, src_sw: int, dst_sw: int, order: tuple[int, ...]) -> list[int]:
        path = [src_sw]
        cur = list(self.coords(src_sw))
        dst = self.coords(dst_sw)
        for dim in order:
            for coord in self._ring_steps(cur[dim], dst[dim], self.shape[dim]):
                cur[dim] = coord
                path.append(self.switch_id(tuple(cur)))
        return path

    def static_path(self, src_sw: int, dst_sw: int) -> list[int]:
        if src_sw == dst_sw:
            return [src_sw]
        return self._path_with_order(src_sw, dst_sw, (0, 1, 2))

    def candidate_paths(self, src_sw: int, dst_sw: int) -> list[list[int]]:
        if src_sw == dst_sw:
            return [[src_sw]]
        seen, out = set(), []
        for order in ((0, 1, 2), (2, 1, 0), (1, 0, 2)):
            p = self._path_with_order(src_sw, dst_sw, order)
            t = tuple(p)
            if t not in seen:
                seen.add(t)
                out.append(p)
        return out

    def diameter(self) -> int:
        return sum(s // 2 for s in self.shape)
