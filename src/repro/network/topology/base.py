"""Topology base class.

A topology describes switches, the endpoints (nodes) attached to them,
and how to enumerate paths.  Paths are sequences of switch ids starting
at the source's switch and ending at the destination's switch; fabrics
translate consecutive switch pairs into directed channels.

Every concrete topology provides:

* ``static_path(s, d)`` — the one deterministic minimal path (what a
  statically-routed/DOR network would use);
* ``candidate_paths(s, d)`` — the path set an adaptively-routed network
  chooses from (minimal candidates plus, where the topology calls for
  it, Valiant-style non-minimal paths).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence


class Topology(ABC):
    """Abstract interconnect topology."""

    #: short machine name, e.g. "dragonfly"
    kind: str = "topology"

    def __init__(self, n_nodes: int, n_switches: int, name: str = "") -> None:
        if n_nodes <= 0 or n_switches <= 0:
            raise ValueError("topology needs positive node and switch counts")
        self.n_nodes = n_nodes
        self.n_switches = n_switches
        self.name = name or self.kind

    # --- structure -------------------------------------------------------------

    @abstractmethod
    def node_switch(self, node: int) -> int:
        """Switch id the endpoint *node* is cabled to."""

    @abstractmethod
    def switch_neighbors(self, sw: int) -> Sequence[int]:
        """Switches directly linked to *sw* (used to enumerate channels)."""

    def links(self) -> Iterable[tuple[int, int]]:
        """All directed switch-to-switch links."""
        for u in range(self.n_switches):
            for v in self.switch_neighbors(u):
                yield (u, v)

    # --- routing ---------------------------------------------------------------

    @abstractmethod
    def static_path(self, src_sw: int, dst_sw: int) -> list[int]:
        """Deterministic minimal path (inclusive of both endpoints)."""

    @abstractmethod
    def candidate_paths(self, src_sw: int, dst_sw: int) -> list[list[int]]:
        """Paths an adaptive router may choose between (>=1 entry)."""

    @abstractmethod
    def diameter(self) -> int:
        """Maximum switch-to-switch minimal hop count."""

    # --- validation helpers ---------------------------------------------------------

    def check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} outside [0, {self.n_nodes})")

    def validate_path(self, path: list[int], src_sw: int, dst_sw: int) -> None:
        """Assert a path is well-formed; used by tests and debug builds."""
        if not path or path[0] != src_sw or path[-1] != dst_sw:
            raise AssertionError(f"path {path} does not join {src_sw}->{dst_sw}")
        for u, v in zip(path, path[1:]):
            if v not in self.switch_neighbors(u):
                raise AssertionError(f"path edge {u}->{v} is not a link")

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<{type(self).__name__} {self.name}: {self.n_nodes} nodes, "
            f"{self.n_switches} switches>"
        )


def dedupe_consecutive(path: list[int]) -> list[int]:
    """Collapse repeated consecutive switches (e.g. when the source's
    switch already owns the global link)."""
    out = [path[0]]
    for sw in path[1:]:
        if sw != out[-1]:
            out.append(sw)
    return out
