"""Messages and packets carried by the network fabrics.

A :class:`Message` is one NIC-level operation's wire traffic (an RVMA
put, an RDMA write, a 1-byte completion send...).  The packet-fidelity
fabric fragments messages into :class:`Packet` objects of at most
``MTU`` payload bytes; the flow-fidelity fabric carries messages whole.

Messages carry *real payload bytes* plus an opaque ``header`` (protocol
object interpreted by the receiving NIC model).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

#: Maximum payload bytes per packet (InfiniBand-class 4 KiB MTU).
MTU = 4096

#: Wire overhead per packet: headers/CRC (IB ~ 30B LRH+BTH+ICRC+VCRC).
PACKET_HEADER_BYTES = 30

_msg_ids = itertools.count(1)


@dataclass(slots=True)
class Message:
    """One network operation's traffic between a pair of NICs."""

    src: int
    dst: int
    size: int  # payload bytes
    header: Any = None  # protocol header interpreted by the receiving NIC
    data: bytes = b""  # actual payload contents ("" => size-only modelling)
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    send_time: float = -1.0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("message size must be >= 0")
        if self.data and len(self.data) != self.size:
            raise ValueError(
                f"payload length {len(self.data)} != declared size {self.size}"
            )

    @property
    def wire_size(self) -> int:
        """Bytes on the wire including per-packet header overhead."""
        return self.size + self.num_packets * PACKET_HEADER_BYTES

    @property
    def num_packets(self) -> int:
        return max(1, -(-self.size // MTU))

    def fragment(self) -> list["Packet"]:
        """Split into MTU-sized packets, preserving payload slices.

        On the fabric hot path every message is fragmented exactly once,
        so the single-packet case short-circuits and the loop builds
        ``Packet`` records positionally.
        """
        size = self.size
        data = self.data
        if size <= MTU:
            return [Packet(self, 0, 0, max(size, 0), data or b"", True)]
        pkts: list[Packet] = []
        last = self.num_packets - 1
        for seq in range(last + 1):
            off = seq * MTU
            psize = MTU if off + MTU <= size else size - off
            pdata = data[off : off + psize] if data else b""
            pkts.append(Packet(self, seq, off, psize, pdata, seq == last))
        return pkts


@dataclass(slots=True)
class Packet:
    """One MTU-or-smaller fragment of a message."""

    message: Message
    seq: int
    offset: int
    size: int
    data: bytes = b""
    is_last: bool = False

    @property
    def wire_size(self) -> int:
        return self.size + PACKET_HEADER_BYTES

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Packet msg={self.message.msg_id} seq={self.seq} "
            f"off={self.offset} size={self.size}>"
        )


@dataclass(frozen=True, slots=True)
class DeliveryInfo:
    """Metadata handed to the receiving NIC along with traffic."""

    send_time: float
    arrival_time: float
    hops: int
    path_index: int = 0  # which candidate path carried it (diagnostics)


@dataclass(slots=True)
class Delivery:
    """What a fabric hands the destination NIC.

    ``packet is None`` means the whole message arrived at once (flow
    fidelity); otherwise exactly this fragment arrived (packet fidelity)
    and the NIC must place/count it individually.
    """

    message: Message
    info: DeliveryInfo
    packet: Optional[Packet] = None

    @property
    def is_whole_message(self) -> bool:
        return self.packet is None
