"""Open/closed-loop load generation for the KV service.

Arrivals, op mix and key popularity all draw from *named* RNG streams
(:mod:`repro.sim.rng`), so a workload is a pure function of the
simulator seed — the property every differential and regression test
here relies on.

Key popularity follows a Zipf(s) distribution over a fixed keyspace
(``s = 0`` degenerates to uniform).  Keys hash to shards via
``stable_hash64``, so hot keys land on effectively random shards and
skew shows up as per-shard load imbalance, the way it does in
production key-value fleets.

Two driving modes:

* **closed** — each client keeps ``batch`` requests in flight
  back-to-back: throughput-bound, exercises server-side reply batching;
* **open** — requests arrive by an exponential arrival process
  independent of service times and queue for a free client; latency is
  measured from the *intended arrival*, so queueing delay counts (the
  honest way to measure a service under offered load).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from typing import Generator, Optional

from ..sim.process import AllOf, spawn
from .kv import KvClient
from .wire import (
    OP_DELETE,
    OP_GET,
    OP_PUT,
    STATUS_DEADLINE_EXCEEDED,
    STATUS_NOT_FOUND,
    STATUS_OK,
    STATUS_OVERLOAD,
)


class ZipfSampler:
    """Zipf(s) over ``n_keys`` ranks via inverse-CDF table lookup."""

    def __init__(self, n_keys: int, s: float = 0.0) -> None:
        if n_keys < 1:
            raise ValueError("need at least one key")
        if s < 0:
            raise ValueError("zipf skew must be >= 0")
        self.n_keys = n_keys
        self.s = s
        weights = [1.0 / (rank ** s) for rank in range(1, n_keys + 1)]
        total = sum(weights)
        cum = 0.0
        self._cdf: list[float] = []
        for w in weights:
            cum += w / total
            self._cdf.append(cum)
        self._cdf[-1] = 1.0  # guard float drift

    def sample(self, u: float) -> int:
        """Rank (0-based key index) for a uniform draw ``u in [0, 1)``."""
        return bisect_left(self._cdf, u)


@dataclass
class WorkloadConfig:
    """One KV workload's shape."""

    n_ops: int = 200
    n_keys: int = 128
    value_bytes: int = 64
    #: Zipf skew (0 = uniform key popularity).
    zipf_s: float = 0.0
    #: Op mix; the remainder after get+put is split delete-heavy.
    get_frac: float = 0.55
    put_frac: float = 0.40
    #: ``closed`` or ``open``.
    mode: str = "closed"
    #: Requests pipelined per closed-loop issue (drives reply batching).
    batch: int = 1
    #: Mean exponential interarrival for open-loop mode.
    mean_interarrival_ns: float = 4000.0
    #: Idle-client poll interval for the open-loop work queue.
    worker_poll_ns: float = 500.0
    #: Open-loop backlog cap: arrivals beyond this many queued ops are
    #: dropped (and counted) instead of growing the deque without bound
    #: — an overloaded open-loop run degrades, it does not eat memory.
    max_backlog: int = 1024
    #: Per-op deadline budget handed to robust clients (None = client
    #: default; ignored by clients without a robustness config).
    deadline_ns: Optional[float] = None
    rng_stream: str = "kv-load"


@dataclass
class LoadStats:
    """What one workload run issued and observed.

    Every issued op resolves into exactly one bucket: completed-ok,
    failed, overload (RC_OVERLOAD reply), deadline-exceeded, or dropped
    at the generator backlog — :meth:`all_resolved` is the no-op-stalls
    liveness check the QoS experiments assert.
    """

    ops_issued: int = 0
    ops_completed: int = 0
    ops_failed: int = 0
    #: RC_OVERLOAD resolutions (shed by server admission control).
    ops_overload: int = 0
    #: Client-side deadline-exceeded resolutions.
    ops_deadline: int = 0
    #: Arrivals dropped at the open-loop backlog cap.
    ops_dropped: int = 0
    by_op: dict = field(default_factory=dict)

    def note(self, op: int, status: int) -> None:
        self.by_op[op] = self.by_op.get(op, 0) + 1
        self.ops_completed += 1
        if status == STATUS_OVERLOAD:
            self.ops_overload += 1
        elif status == STATUS_DEADLINE_EXCEEDED:
            self.ops_deadline += 1
        elif not (status == STATUS_OK or (status == STATUS_NOT_FOUND and op != OP_PUT)):
            self.ops_failed += 1

    def all_resolved(self) -> bool:
        """True when every issued op reached a terminal resolution."""
        return self.ops_issued == self.ops_completed + self.ops_dropped


class LoadGenerator:
    """Drives a pool of :class:`KvClient` endpoints through a workload.

    Latencies land in the shared ``service.kv.request_latency_ns``
    histogram (clients record them); this class owns arrival timing,
    op/key sampling and pool scheduling.
    """

    def __init__(self, sim, clients: list[KvClient], config: Optional[WorkloadConfig] = None) -> None:
        if not clients:
            raise ValueError("load generator needs at least one client")
        if config is not None and config.max_backlog < 1:
            # max_backlog < 1 silently drops *every* open-loop arrival
            # (the cap check runs before the append) — reject it rather
            # than run a workload that offers nothing.
            raise ValueError(f"max_backlog must be >= 1, got {config.max_backlog}")
        self.sim = sim
        self.clients = clients
        self.config = config or WorkloadConfig()
        self.stats = LoadStats()
        self.sampler = ZipfSampler(self.config.n_keys, self.config.zipf_s)
        self._dropped = sim.stats.counter("service.kv.client.backlog_dropped")
        self._seq = 0

    # ------------------------------------------------------------------ sampling

    def key_bytes(self, rank: int) -> bytes:
        return b"k%06d" % rank

    def _sample_op(self) -> tuple[int, bytes, bytes]:
        cfg = self.config
        rng = self.sim.rng
        u_op = rng.random(cfg.rng_stream + ".op")
        rank = self.sampler.sample(rng.random(cfg.rng_stream + ".key"))
        key = self.key_bytes(rank)
        self._seq += 1
        if u_op < cfg.get_frac:
            return OP_GET, key, b""
        if u_op < cfg.get_frac + cfg.put_frac:
            # Deterministic, self-describing value bytes: checkable by
            # tests and unique-ish per (key, issue sequence).
            fill = (rank * 131 + self._seq) % 251 + 1
            value = bytes([fill]) * cfg.value_bytes
            return OP_PUT, key, value
        return OP_DELETE, key, b""

    def _interarrival(self) -> float:
        u = self.sim.rng.random(self.config.rng_stream + ".arrival")
        # Inverse-CDF exponential; clamp u away from 0 to bound the tail.
        return -self.config.mean_interarrival_ns * math.log(max(u, 1e-12))

    # ------------------------------------------------------------------ driving

    def run(self) -> Generator:
        """Drive the configured workload to completion; returns stats."""
        if self.config.mode == "closed":
            yield from self._run_closed()
        elif self.config.mode == "open":
            yield from self._run_open()
        else:
            raise ValueError(f"unknown load mode {self.config.mode!r}")
        return self.stats

    def _run_closed(self) -> Generator:
        cfg = self.config
        share, extra = divmod(cfg.n_ops, len(self.clients))
        procs = []
        for i, client in enumerate(self.clients):
            quota = share + (1 if i < extra else 0)
            if quota:
                procs.append(
                    spawn(self.sim, self._closed_worker(client, quota), name=f"kv-load{i}")
                )
        if procs:
            yield AllOf([p.done_future for p in procs])

    def _closed_worker(self, client: KvClient, quota: int) -> Generator:
        left = quota
        while left > 0:
            batch = [self._sample_op() for _ in range(min(self.config.batch, left))]
            self.stats.ops_issued += len(batch)
            replies = yield from client.execute_batch(
                batch, deadline_ns=self.config.deadline_ns
            )
            for (op, _k, _v), reply in zip(batch, replies):
                self.stats.note(op, reply.status)
            left -= len(batch)

    def _run_open(self) -> Generator:
        cfg = self.config
        backlog: deque = deque()
        done = [False]
        workers = [
            spawn(self.sim, self._open_worker(client, backlog, done), name=f"kv-open{i}")
            for i, client in enumerate(self.clients)
        ]
        for _ in range(cfg.n_ops):
            yield self._interarrival()
            self.stats.ops_issued += 1
            if len(backlog) >= cfg.max_backlog:
                # Offered load has outrun the pool for max_backlog ops:
                # shed at the generator rather than queueing unboundedly.
                # A dropped arrival consumes only the .arrival RNG draw
                # (no .op/.key draws), so the synthesized op stream
                # depends on backlog depth and hence on service timing —
                # the reason cross-variant comparisons replay a recorded
                # trace (repro.workloads) instead of re-synthesizing.
                self.stats.ops_dropped += 1
                self._dropped.add()
                continue
            backlog.append((self._sample_op(), self.sim.now))
        done[0] = True
        yield AllOf([w.done_future for w in workers])

    def _open_worker(self, client: KvClient, backlog: deque, done: list) -> Generator:
        while True:
            if backlog:
                (op, key, value), arrived = backlog.popleft()
                replies = yield from client.execute_batch(
                    [(op, key, value)], t0=arrived, deadline_ns=self.config.deadline_ns
                )
                self.stats.note(op, replies[0].status)
            elif done[0]:
                return
            else:
                yield self.config.worker_poll_ns
