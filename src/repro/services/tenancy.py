"""Tenant identity, per-tenant policy, and the NIC placement quota.

A *tenant* is the unit of isolation for the multi-tenant KV service:
every request frame carries its tenant id (``wire`` u16 field), and
three enforcement points key off the :class:`TenantSpec` registered
here — the NIC placement quota (this module), the token-bucket
admitter and the weighted-fair scheduler (:mod:`repro.services.qos`).

The :class:`PlacementQuota` is the NIC-boundary half: it installs onto
``BaseNic.placement_quota`` (a duck-typed hook — the NIC layer never
imports services) and meters inbound put bytes per *source-node
tenant* against a token bucket before any buffer is touched.  A
rejection is **reject-into-counter, not silent drop**: the NIC NACKs
``QUOTA`` (non-retryable at the NIC — the client's backoff loop, not
the put-retry machinery, is the recovery path) and both the NIC-level
and per-tenant counters record it.

Tenant membership is by source node: simulated NICs know the sending
node id, not the request framing, so the quota maps ``src node →
tenant`` via :meth:`TenantDirectory.assign_node`.  Unassigned nodes
fall to the default tenant (unmetered unless given a spec).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .qos import TokenBucket
from .wire import DEFAULT_TENANT


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's identity and resource policy.

    Rates are bytes per microsecond; a rate of 0 means *unmetered* at
    that enforcement point.  ``weight`` is the DRR share (relative to
    other tenants' weights).
    """

    tenant_id: int
    name: str = ""
    #: Weighted-fair scheduler share.
    weight: float = 1.0
    #: Token-bucket admission rate at the KvServer (0 = unmetered).
    admit_rate_bytes_per_us: float = 0.0
    #: Admission bucket depth (burst tolerance).
    admit_burst_bytes: float = 8192.0
    #: NIC placement quota rate (0 = no NIC-boundary metering).
    nic_quota_bytes_per_us: float = 0.0
    #: NIC quota bucket depth.
    nic_quota_burst_bytes: float = 16384.0

    def __post_init__(self) -> None:
        if not 0 <= self.tenant_id <= 0xFFFF:
            raise ValueError("tenant id must fit the u16 wire field")
        if self.weight <= 0:
            raise ValueError("tenant weight must be > 0")


class TenantDirectory:
    """Registry of tenant specs plus the src-node → tenant mapping."""

    def __init__(self, tenants: tuple = (), default: Optional[TenantSpec] = None) -> None:
        self.default_spec = default or TenantSpec(DEFAULT_TENANT, name="default")
        self._specs: dict[int, TenantSpec] = {self.default_spec.tenant_id: self.default_spec}
        self._node_tenant: dict[int, int] = {}
        for spec in tenants:
            self.add(spec)

    def add(self, spec: TenantSpec) -> TenantSpec:
        self._specs[spec.tenant_id] = spec
        return spec

    def spec(self, tenant_id: int) -> TenantSpec:
        """Spec for *tenant_id*; unknown tenants get the default policy."""
        return self._specs.get(tenant_id, self.default_spec)

    def ids(self) -> list[int]:
        return sorted(self._specs)

    # ------------------------------------------------------------- membership

    def assign_node(self, node_id: int, tenant_id: int) -> None:
        """Declare that clients on *node_id* belong to *tenant_id*."""
        self._node_tenant[node_id] = tenant_id

    def tenant_of_node(self, node_id: int) -> int:
        return self._node_tenant.get(node_id, DEFAULT_TENANT)


class PlacementQuota:
    """Per-tenant byte metering at the NIC placement boundary.

    Installed as ``nic.placement_quota``; the RVMA NIC consults
    :meth:`admit` after PCIe admission and before any buffer write.
    Only mailboxes inside ``[mailbox_lo, mailbox_hi)`` are metered
    (the KV request-stream slice), so reply traffic, control planes
    and unrelated mailboxes are never taxed.
    """

    def __init__(
        self,
        sim,
        directory: TenantDirectory,
        mailbox_lo: int = 0,
        mailbox_hi: int = 1 << 48,
    ) -> None:
        self.sim = sim
        self.directory = directory
        self.mailbox_lo = mailbox_lo
        self.mailbox_hi = mailbox_hi
        self._buckets: dict[int, Optional[TokenBucket]] = {}
        self._reject_counters: dict[int, object] = {}

    def _bucket(self, tenant: int) -> Optional[TokenBucket]:
        if tenant not in self._buckets:
            spec = self.directory.spec(tenant)
            self._buckets[tenant] = (
                TokenBucket(
                    spec.nic_quota_bytes_per_us / 1000.0,
                    spec.nic_quota_burst_bytes,
                    now=self.sim.now,
                )
                if spec.nic_quota_bytes_per_us > 0
                else None
            )
        return self._buckets[tenant]

    def admit(self, src: int, mailbox: int, nbytes: int, now: float) -> bool:
        """Whether *nbytes* from node *src* may be placed into *mailbox*."""
        if not self.mailbox_lo <= mailbox < self.mailbox_hi:
            return True
        tenant = self.directory.tenant_of_node(src)
        bucket = self._bucket(tenant)
        if bucket is None or bucket.try_take(nbytes, now):
            return True
        counter = self._reject_counters.get(tenant)
        if counter is None:
            counter = self._reject_counters[tenant] = self.sim.stats.counter(
                f"service.kv.tenant.quota_rejects.t{tenant}"
            )
        counter.add()
        return False


def install_placement_quota(
    node,
    directory: TenantDirectory,
    mailbox_lo: int,
    mailbox_hi: int,
) -> PlacementQuota:
    """Attach a :class:`PlacementQuota` to *node*'s NIC; returns it."""
    quota = PlacementQuota(node.sim, directory, mailbox_lo, mailbox_hi)
    node.nic.placement_quota = quota
    return quota
