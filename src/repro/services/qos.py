"""Multi-tenant QoS primitives for the KV service.

Three mechanisms compose into the isolation story (docs/QOS.md):

* **Token-bucket admission** (:class:`AdmissionController`) — every
  request is charged its frame bytes against its tenant's bucket
  *before* it touches the scheduler; over-rate requests are refused
  with an ``RC_OVERLOAD`` reply (``wire.STATUS_OVERLOAD``) instead of
  queueing, so a storming tenant pays for its own burst with cheap
  refusals rather than everyone's latency.
* **p99-driven load shedding** — the controller watches the scheduler
  sojourn histogram through the existing ``Histogram.percentile`` path;
  while the p99 sits above the SLO target, metered tenants' admission
  cost is multiplied (:attr:`QosConfig.overload_shed_factor`), which
  throttles them harder exactly when the service is drowning.
* **Deficit round-robin service** (:class:`DeficitRoundRobin`) — the
  KvServer sweep loop drains admitted requests in weighted-fair order
  instead of FIFO, so whatever backlog does form cannot be monopolised
  by one tenant's arrivals.

Client-side, :class:`ClientRobustnessConfig` arms the missing liveness
primitives on :class:`~repro.services.kv.KvClient`: per-request
deadlines, timeout → retry with exponential backoff + deterministic
jitter (the reliability layer's backoff idiom, same shape as
:class:`~repro.reliability.transport.ReliabilityConfig`), and deadline
propagation so retries never outlive the caller's budget.

Everything here is deterministic: token buckets refill lazily from sim
time, the scheduler is pure data structure, and client jitter draws
from a named RNG stream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Optional


class TokenBucket:
    """Deterministic token bucket refilled lazily from sim time.

    Rates are tokens (bytes) per nanosecond; ``burst`` caps the credit
    a quiet tenant can accumulate.  All arithmetic is a pure function
    of (rate, burst, take history, now), so runs replay bit-identically.
    """

    __slots__ = ("rate_per_ns", "burst", "tokens", "stamp")

    def __init__(self, rate_per_ns: float, burst: float, now: float = 0.0) -> None:
        if rate_per_ns < 0 or burst <= 0:
            raise ValueError("token bucket needs rate >= 0 and burst > 0")
        self.rate_per_ns = rate_per_ns
        self.burst = burst
        self.tokens = burst  # start full: a tenant's first burst is free
        self.stamp = now

    def _refill(self, now: float) -> None:
        if now > self.stamp:
            self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate_per_ns)
            self.stamp = now

    def available(self, now: float) -> float:
        self._refill(now)
        return self.tokens

    def try_take(self, cost: float, now: float) -> bool:
        """Take *cost* tokens if available; False leaves the bucket unchanged."""
        self._refill(now)
        if self.tokens >= cost:
            self.tokens -= cost
            return True
        return False


class DeficitRoundRobin:
    """Work-conserving deficit round-robin across per-tenant queues.

    Classic DRR (Shreedhar & Varghese): each backlogged tenant sits in
    a service ring; a visit grants ``quantum * weight`` deficit, and
    the tenant dequeues head items while its deficit covers their cost.
    Guarantees (the hypothesis property test pins both):

    * **work conservation** — :meth:`take` never returns empty while
      :attr:`pending_items` > 0 (a deficit too small to serve the head
      item simply accrues across ring visits within the same call);
    * **bounded unfairness** — between two continuously backlogged
      equal-weight tenants, served-cost difference never exceeds
      ``quantum * weight + max_item_cost`` for any sweep-budget
      sequence: a budget-truncated visit resumes at the ring head
      without a fresh grant, so truncation neither robs a tenant's
      turn nor mints extra credit.
    """

    def __init__(self, quantum: int = 2048) -> None:
        if quantum < 1:
            raise ValueError("DRR quantum must be >= 1")
        self.quantum = quantum
        self._queues: dict[int, deque] = {}
        self._deficit: dict[int, float] = {}
        self._weight: dict[int, float] = {}
        self._ring: deque = deque()  # backlogged tenants in visit order
        self.pending_items = 0
        self.pending_cost = 0
        #: total cost served per tenant over the scheduler's lifetime
        #: (the unfairness bound is stated over this).
        self.served_cost: dict[int, int] = {}
        #: tenant whose visit a sweep budget cut short: the next sweep
        #: resumes it at the ring head *without* a fresh quantum grant,
        #: so truncation can neither rob a turn nor mint extra credit.
        self._resume: Optional[int] = None

    def set_weight(self, tenant: int, weight: float) -> None:
        if weight <= 0:
            raise ValueError("DRR weight must be > 0")
        self._weight[tenant] = weight

    def push(self, tenant: int, item: Any, cost: int, weight: Optional[float] = None) -> None:
        """Enqueue *item* for *tenant*; ``cost`` is its service charge (bytes)."""
        if weight is not None:
            self.set_weight(tenant, weight)
        q = self._queues.get(tenant)
        if q is None:
            q = self._queues[tenant] = deque()
        if not q:
            self._ring.append(tenant)
            self._deficit.setdefault(tenant, 0.0)
        q.append((item, cost))
        self.pending_items += 1
        self.pending_cost += cost

    def take(self, budget: Optional[int] = None) -> list:
        """Dequeue up to *budget* cost of items in weighted-fair order.

        Always serves at least one item when anything is pending (work
        conservation) — the budget bounds a sweep, it cannot starve it.
        """
        served: list = []
        served_cost = 0
        while self._ring and (budget is None or served_cost < budget or not served):
            tenant = self._ring[0]
            q = self._queues[tenant]
            if self._resume == tenant:
                self._resume = None  # continuing a truncated visit: no new grant
            else:
                self._deficit[tenant] += self.quantum * self._weight.get(tenant, 1.0)
            while q and self._deficit[tenant] >= q[0][1]:
                item, cost = q.popleft()
                self._deficit[tenant] -= cost
                self.pending_items -= 1
                self.pending_cost -= cost
                self.served_cost[tenant] = self.served_cost.get(tenant, 0) + cost
                served.append(item)
                served_cost += cost
                if budget is not None and served_cost >= budget:
                    break
            if q and self._deficit[tenant] >= q[0][1]:
                # The budget cut this visit short of its earned credit:
                # stay at the ring head and finish the visit next sweep.
                self._resume = tenant
                break
            self._ring.popleft()
            if q:
                self._ring.append(tenant)  # still backlogged: next round
            else:
                self._deficit[tenant] = 0.0  # idle tenants carry no credit
        return served


@dataclass
class QosConfig:
    """Server-side QoS tuning (scheduler + admission + shedding)."""

    #: DRR quantum in request-frame bytes per ring visit (× weight).
    quantum_bytes: int = 2048
    #: Max admitted request bytes executed per sweep; backlog beyond
    #: this waits for the next sweep in DRR order.
    sweep_budget_bytes: int = 8192
    #: SLO target: scheduler-sojourn p99 above this flips overload on.
    slo_p99_ns: float = 150_000.0
    #: Overload re-evaluation cadence (percentile() is not free).
    overload_check_interval_ns: float = 20_000.0
    #: Admission-cost multiplier applied to metered tenants while the
    #: sojourn p99 violates the SLO (throttles them harder under load).
    overload_shed_factor: float = 8.0
    #: Sojourn samples required before shedding can trigger.
    min_overload_samples: int = 32


#: ``service.kv.queue_sojourn_ns`` binning: 250 ns resolution to 500 µs.
SOJOURN_HI_NS = 500_000.0
SOJOURN_NBINS = 2000


class AdmissionController:
    """Per-tenant token-bucket admitter with p99-driven shedding.

    ``directory`` is a :class:`~repro.services.tenancy.TenantDirectory`
    (duck-typed: anything with ``spec(tenant_id)``).  One controller
    serves all of a node's shards — admission is a per-tenant, not
    per-shard, contract.
    """

    def __init__(self, sim, directory, config: Optional[QosConfig] = None) -> None:
        self.sim = sim
        self.directory = directory
        self.config = config or QosConfig()
        self._buckets: dict[int, TokenBucket] = {}
        self._admitted: dict[int, Any] = {}
        self._shed: dict[int, Any] = {}
        self._served: dict[int, Any] = {}
        self.overloaded = False
        self._next_check = 0.0
        self._checked_count = 0
        self._overload_span = None
        stats = sim.stats
        self._sojourn = stats.histogram(
            "service.kv.queue_sojourn_ns", lo=0.0, hi=SOJOURN_HI_NS, nbins=SOJOURN_NBINS
        )
        self._overload_replies = stats.counter("service.kv.overload_replies")

    # ------------------------------------------------------------- counters

    def _tenant_counter(self, cache: dict, family: str, tenant: int):
        c = cache.get(tenant)
        if c is None:
            c = cache[tenant] = self.sim.stats.counter(f"service.kv.tenant.{family}.t{tenant}")
        return c

    # ------------------------------------------------------------- admission

    def _bucket(self, tenant: int) -> Optional[TokenBucket]:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            spec = self.directory.spec(tenant)
            if spec.admit_rate_bytes_per_us <= 0:
                return None  # unmetered tenant
            bucket = self._buckets[tenant] = TokenBucket(
                spec.admit_rate_bytes_per_us / 1000.0,
                spec.admit_burst_bytes,
                now=self.sim.now,
            )
        return bucket

    def admit(self, tenant: int, cost: int) -> bool:
        """Charge *cost* bytes to *tenant*; False means shed (RC_OVERLOAD)."""
        now = self.sim.now
        self._maybe_recheck(now)
        spec = self.directory.spec(tenant)
        bucket = self._bucket(tenant) if spec.admit_rate_bytes_per_us > 0 else None
        ok = True
        if bucket is not None:
            eff = cost * (self.config.overload_shed_factor if self.overloaded else 1.0)
            ok = bucket.try_take(eff, now)
        if ok:
            self._tenant_counter(self._admitted, "admitted", tenant).add()
        else:
            self._tenant_counter(self._shed, "shed", tenant).add()
            self._overload_replies.add()
        return ok

    def note_served(self, tenant: int, cost: int) -> None:
        self._tenant_counter(self._served, "served_bytes", tenant).add(cost)

    def note_sojourn(self, sojourn_ns: float) -> None:
        self._sojourn.add(sojourn_ns)

    # ------------------------------------------------------------- shedding

    def _maybe_recheck(self, now: float) -> None:
        if now < self._next_check:
            return
        self._next_check = now + self.config.overload_check_interval_ns
        # Only fresh samples since the last check should decide the flag;
        # a bounded window avoids an early spike pinning overload forever.
        fresh = self._sojourn.count - self._checked_count
        if fresh < self.config.min_overload_samples:
            return
        self._checked_count = self._sojourn.count
        p99 = self._sojourn.percentile(0.99)
        overloaded = p99 > self.config.slo_p99_ns
        if overloaded == self.overloaded:
            return
        self.overloaded = overloaded
        spans = self.sim.spans
        if overloaded:
            if spans.active and spans.wants("qos"):
                self._overload_span = spans.begin(
                    "qos", "overload_window", p99_ns=round(p99)
                )
        elif self._overload_span is not None:
            spans.end(self._overload_span, p99_ns=round(p99))
            self._overload_span = None


@dataclass
class ClientRobustnessConfig:
    """Client-side deadlines + timeout/retry/backoff (liveness armor).

    Mirrors the reliability layer's backoff idiom
    (:class:`~repro.reliability.transport.ReliabilityConfig`): timeout
    doubles per retry up to a cap, with deterministic jitter drawn from
    the named ``kv.client.jitter`` RNG stream.  Every attempt's wait is
    clamped to the request's absolute deadline, so retries never
    outlive the caller's budget; at the deadline the request resolves
    locally as ``STATUS_DEADLINE_EXCEEDED``.
    """

    #: First-attempt reply timeout before a retransmission.
    request_timeout_ns: float = 60_000.0
    #: Timeout multiplier per retry (exponential backoff).
    backoff_factor: float = 2.0
    #: Backoff ceiling.
    max_backoff_ns: float = 1_000_000.0
    #: Uniform jitter fraction applied to each attempt's timeout.
    jitter_frac: float = 0.1
    #: Retransmissions per request (after this, wait out the deadline).
    max_retries: int = 6
    #: Per-request budget when the caller does not pass one.
    default_deadline_ns: float = 5_000_000.0
    #: Reply-mailbox poll interval while waiting under a timeout.
    poll_interval_ns: float = 1_000.0
