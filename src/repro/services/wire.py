"""Wire format for the sharded KV service.

Requests travel over receiver-managed byte streams (paper §IV-B), so
they are *framed*: the stream hands the server arbitrary chunk
boundaries and the decoder must reassemble frames that straddle them.
Replies travel as whole puts to a client's completion mailbox, but a
batched reply put carries several frames back-to-back, so the same
decoder discipline applies on the client side.

Frames are little-endian structs:

* request — ``op:u8 | tenant:u16 | client:u32 | req:u32 | key_len:u16 |
  val_len:u32`` followed by ``key`` then ``value`` bytes;
* reply — ``status:u8 | req:u32 | payload_len:u32`` followed by the
  payload (the stored value for GET, a key/value listing for SCAN).

The tenant id rides in every request frame so the server can meter,
schedule and shed *before* touching the store — multi-tenant QoS
(docs/QOS.md) keys everything off this field.  Tenant 0 is the default
(untenanted) principal, so pre-QoS callers encode unchanged semantics.

A client put always carries a whole number of request frames, and the
reliability transport dispatches each put as a unit into the managed
stream, so frames from different clients never interleave mid-frame.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

OP_GET = 1
OP_PUT = 2
OP_DELETE = 3
OP_SCAN = 4
#: Tombstone op: an active mailbox handler (repro.nic.active) already
#: served this frame straight from the NIC, rewriting its op byte in
#: place so the host sweep skips it without a dispatch.  Never encoded
#: by clients; only ever *observed* by the request decoder.
OP_SERVED = 0x7F

OP_NAMES = {OP_GET: "get", OP_PUT: "put", OP_DELETE: "delete", OP_SCAN: "scan"}

STATUS_OK = 0
STATUS_NOT_FOUND = 1
STATUS_ERROR = 2
#: RC_OVERLOAD: the server refused the request at admission (tenant
#: over its token-bucket rate, or p99-driven shedding active).  The
#: request was *not* executed; clients may retry after backoff.
STATUS_OVERLOAD = 3
#: Client-synthesized status: the request's deadline expired before a
#: reply arrived.  Never travels on the wire; whether the server
#: executed the op is unknown (retries may have raced the original).
STATUS_DEADLINE_EXCEEDED = 4

STATUS_NAMES = {
    STATUS_OK: "ok",
    STATUS_NOT_FOUND: "not_found",
    STATUS_ERROR: "error",
    STATUS_OVERLOAD: "overload",
    STATUS_DEADLINE_EXCEEDED: "deadline_exceeded",
}

#: High bit of the reply status byte: the reply was served by a NIC-side
#: active handler, not the host sweep loop.  Clients strip the flag
#: before exposing the reply (handler-served replies are byte-identical
#: to host-dispatched ones above this marker) but count it, so QoS/DRR
#: accounting can tell the two service paths apart.
STATUS_HANDLER_FLAG = 0x80


def status_is_handler_served(status: int) -> bool:
    return bool(status & STATUS_HANDLER_FLAG)


def strip_handler_flag(status: int) -> int:
    return status & ~STATUS_HANDLER_FLAG

#: Default tenant for untenanted callers (always admitted by default).
DEFAULT_TENANT = 0

_REQ_HEADER = struct.Struct("<BHIIHI")
_REPLY_HEADER = struct.Struct("<BII")
_SCAN_ITEM = struct.Struct("<HI")

REQ_HEADER_BYTES = _REQ_HEADER.size
REPLY_HEADER_BYTES = _REPLY_HEADER.size


def peek_request_header(buf, offset: int = 0) -> tuple[int, int, int, int, int, int]:
    """Unpack one request-frame header (no body) at *offset*.

    Returns ``(op, tenant, client_id, req_id, key_len, val_len)``.  The
    NIC-side active-mailbox scanner (repro.nic.active) uses this to walk
    a completed chunk without materialising KvRequest objects.
    """
    return _REQ_HEADER.unpack_from(buf, offset)


class WireError(ValueError):
    """A frame violated the wire format (corrupt or truncated header)."""


@dataclass(frozen=True)
class KvRequest:
    """One decoded request frame."""

    op: int
    client_id: int
    req_id: int
    key: bytes
    value: bytes = b""
    tenant: int = DEFAULT_TENANT

    def encode(self) -> bytes:
        return encode_request(
            self.op, self.client_id, self.req_id, self.key, self.value, tenant=self.tenant
        )


@dataclass(frozen=True)
class KvReply:
    """One decoded reply frame."""

    status: int
    req_id: int
    payload: bytes = b""

    def encode(self) -> bytes:
        return encode_reply(self.status, self.req_id, self.payload)


def encode_request(
    op: int,
    client_id: int,
    req_id: int,
    key: bytes,
    value: bytes = b"",
    tenant: int = DEFAULT_TENANT,
) -> bytes:
    if op not in OP_NAMES:
        raise WireError(f"unknown op code {op}")
    if len(key) > 0xFFFF:
        raise WireError(f"key of {len(key)}B exceeds the u16 length field")
    if not 0 <= tenant <= 0xFFFF:
        raise WireError(f"tenant id {tenant} exceeds the u16 tenant field")
    return _REQ_HEADER.pack(op, tenant, client_id, req_id, len(key), len(value)) + key + value


def encode_reply(status: int, req_id: int, payload: bytes = b"") -> bytes:
    return _REPLY_HEADER.pack(status, req_id, len(payload)) + payload


def encode_scan_payload(items: list[tuple[bytes, bytes]]) -> bytes:
    """SCAN reply payload: repeated (key_len, val_len, key, value)."""
    parts = []
    for key, value in items:
        parts.append(_SCAN_ITEM.pack(len(key), len(value)))
        parts.append(key)
        parts.append(value)
    return b"".join(parts)


def decode_scan_payload(payload: bytes) -> list[tuple[bytes, bytes]]:
    items: list[tuple[bytes, bytes]] = []
    off = 0
    while off < len(payload):
        if off + _SCAN_ITEM.size > len(payload):
            raise WireError("truncated scan item header")
        key_len, val_len = _SCAN_ITEM.unpack_from(payload, off)
        off += _SCAN_ITEM.size
        if off + key_len + val_len > len(payload):
            raise WireError("truncated scan item body")
        items.append((payload[off : off + key_len], payload[off + key_len : off + key_len + val_len]))
        off += key_len + val_len
    return items


class _FrameDecoder:
    """Accumulates stream bytes and yields complete frames."""

    def __init__(self) -> None:
        self._buf = bytearray()
        self.bytes_fed = 0

    def feed_bytes(self, data: bytes) -> None:
        self._buf.extend(data)
        self.bytes_fed += len(data)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buf)


class RequestDecoder(_FrameDecoder):
    """Reassembles :class:`KvRequest` frames from stream chunks."""

    def feed(self, data: bytes) -> list[KvRequest]:
        self.feed_bytes(data)
        out: list[KvRequest] = []
        buf = self._buf
        while len(buf) >= REQ_HEADER_BYTES:
            op, tenant, client_id, req_id, key_len, val_len = _REQ_HEADER.unpack_from(buf)
            total = REQ_HEADER_BYTES + key_len + val_len
            if len(buf) < total:
                break
            if op == OP_SERVED:
                # Handler-served tombstone: the NIC already replied; the
                # host sweep must not dispatch it a second time.
                del buf[:total]
                continue
            if op not in OP_NAMES:
                raise WireError(f"unknown op code {op} in request stream")
            key = bytes(buf[REQ_HEADER_BYTES : REQ_HEADER_BYTES + key_len])
            value = bytes(buf[REQ_HEADER_BYTES + key_len : total])
            del buf[:total]
            out.append(KvRequest(op, client_id, req_id, key, value, tenant))
        return out


class ReplyDecoder(_FrameDecoder):
    """Reassembles :class:`KvReply` frames from reply puts."""

    def feed(self, data: bytes) -> list[KvReply]:
        self.feed_bytes(data)
        out: list[KvReply] = []
        buf = self._buf
        while len(buf) >= REPLY_HEADER_BYTES:
            status, req_id, payload_len = _REPLY_HEADER.unpack_from(buf)
            total = REPLY_HEADER_BYTES + payload_len
            if len(buf) < total:
                break
            payload = bytes(buf[REPLY_HEADER_BYTES : total])
            del buf[:total]
            out.append(KvReply(status, req_id, payload))
        return out
